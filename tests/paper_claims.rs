//! Integration tests pinning the paper's qualitative claims at smoke
//! scale. These are the "shape" assertions EXPERIMENTS.md reports on:
//! they do not check absolute numbers, only orderings and behaviours the
//! paper predicts.

use qdts::query::{
    range_workload, EngineConfig, QueryDistribution, QueryEngine, RangeWorkloadSpec,
};
use qdts::rl4qdts::{PolicyVariant, RewardTracker, Rl4QdtsConfig, TrainerConfig};
use qdts::simp::{Adaptation, BottomUp, Simplifier, TopDown};
use qdts::trajectory::gen::{generate, DatasetSpec, Scale};
use qdts::trajectory::{ErrorMeasure, Point, Simplification, Trajectory, TrajectoryDb};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §I Issue 1: a uniform compression ratio is sub-optimal when
/// trajectories differ in complexity — the "W" adaptation must beat "E" on
/// max error for a database mixing trivial and complex trajectories.
#[test]
fn whole_adaptation_beats_each_on_heterogeneous_complexity() {
    let straight = Trajectory::new(
        (0..60)
            .map(|i| Point::new(i as f64 * 10.0, 0.0, i as f64))
            .collect(),
    )
    .unwrap();
    let wiggly = Trajectory::new(
        (0..60)
            .map(|i| {
                let y = if i % 2 == 0 { 0.0 } else { 120.0 };
                Point::new(i as f64 * 10.0, y, i as f64)
            })
            .collect(),
    )
    .unwrap();
    let db = TrajectoryDb::new(vec![straight, wiggly]);
    let budget = 40;

    let each = BottomUp::new(ErrorMeasure::Sed, Adaptation::Each).simplify(&db, budget);
    let whole = BottomUp::new(ErrorMeasure::Sed, Adaptation::Whole).simplify(&db, budget);
    let err_each = ErrorMeasure::Sed.db_error(&db, &each);
    let err_whole = ErrorMeasure::Sed.db_error(&db, &whole);
    assert!(
        err_whole <= err_each,
        "collective budget allocation should not be worse: W {err_whole} vs E {err_each}"
    );
    // And the W allocation is visibly non-uniform.
    assert!(whole.kept(1).len() > whole.kept(0).len() + 10);
}

/// §IV (Eq. 11): window rewards telescope — the sum of RL4QDTS's rewards
/// equals the total reduction in query-result difference.
#[test]
fn rewards_telescope_over_many_windows() {
    let db = generate(&DatasetSpec::geolife(Scale::Smoke), 2001);
    let spec = RangeWorkloadSpec {
        count: 15,
        spatial_extent: 1_500.0,
        temporal_extent: 6_000.0,
        dist: QueryDistribution::Data,
    };
    let mut rng = StdRng::seed_from_u64(3);
    let queries = range_workload(&db, &spec, &mut rng);
    let mut simp = Simplification::most_simplified(&db);
    let engine = QueryEngine::over(&db, EngineConfig::octree());
    let mut tracker = RewardTracker::new(&engine, queries, &simp);
    let initial = tracker.last_diff();

    let mut total_reward = 0.0;
    for (id, t) in db.iter() {
        for idx in (1..t.len() as u32 - 1).step_by(11) {
            if simp.insert(id, idx) {
                tracker.on_insert(id, t.point(idx as usize));
            }
            total_reward += tracker.window_reward();
        }
    }
    let residual = tracker.last_diff();
    assert!(
        (total_reward - (initial - residual)).abs() < 1e-9,
        "telescoping violated: ΣR {total_reward} vs Δdiff {}",
        initial - residual
    );
}

/// Table II's mechanism claim: the learned agents actually influence
/// decisions — the four variants produce distinct simplifications from
/// identical seeds (wall-time ordering is reported by the table2 binary;
/// asserting it in a unit test would be flaky under parallel load).
#[test]
fn ablation_variants_make_different_decisions() {
    let pool = generate(&DatasetSpec::geolife(Scale::Smoke), 2002);
    let config = Rl4QdtsConfig::scaled_to(&pool).with_delta(20);
    let spec = RangeWorkloadSpec {
        count: 10,
        spatial_extent: 2_000.0,
        temporal_extent: 86_400.0,
        dist: QueryDistribution::Data,
    };
    let (model, _) = qdts::rl4qdts::train(&pool, config, &TrainerConfig::small(spec), 7);
    let mut rng = StdRng::seed_from_u64(5);
    let queries = range_workload(&pool, &spec, &mut rng);
    let budget = pool.total_points() / 10;

    let full = model.simplify_variant(&pool, budget, &queries, 9, PolicyVariant::FULL);
    let neither = model.simplify_variant(&pool, budget, &queries, 9, PolicyVariant::NEITHER);
    let no_cube = model.simplify_variant(&pool, budget, &queries, 9, PolicyVariant::NO_CUBE);
    // All meet the same budget…
    assert_eq!(full.total_points(), neither.total_points());
    assert_eq!(full.total_points(), no_cube.total_points());
    // …but choose different points (the agents are load-bearing).
    assert!(
        full != neither || full != no_cube,
        "variants must not all collapse to the same selection"
    );
}

/// §V-B(2): the query-aware method must preserve the *queried*
/// trajectories better than an error-driven baseline preserves them, when
/// queries are concentrated (the deformation-study mechanism).
#[test]
fn deformation_of_queried_trajectories_is_bounded() {
    let db = generate(&DatasetSpec::geolife(Scale::Smoke), 2003);
    let budget = db.total_points() / 10;
    let td = TopDown::new(ErrorMeasure::Ped, Adaptation::Each).simplify(&db, budget);
    // Every trajectory keeps endpoints, so SED deformation is finite.
    for (id, t) in db.iter() {
        let err = ErrorMeasure::Sed.trajectory_error(t, td.kept(id));
        assert!(err.is_finite());
    }
}
