//! Integration tests for the extension surfaces: error-bounded mode,
//! streaming simplification, trajectory joins, the kd-tree index, and the
//! resampling utilities — exercised together the way a downstream user
//! would combine them.

use qdts::query::join::{similarity_join, JoinParams};
use qdts::simp::Adaptation;
use qdts::simp::{bounded_db, min_eps_for_budget, streaming_simplify, BottomUp, Simplifier};
use qdts::trajectory::gen::{generate, DatasetSpec, Scale};
use qdts::trajectory::resample::{mean_sync_distance, resample_uniform};
use qdts::trajectory::{ErrorMeasure, Trajectory, TrajectoryDb};
use rl4qdts::IndexKind;

/// The min-size (error-bounded) and min-error (budgeted) formulations must
/// agree: simplifying to the ε that `min_eps_for_budget` finds never beats
/// the budget, and its error never exceeds ε.
#[test]
fn bounded_and_budgeted_formulations_are_consistent() {
    let db = generate(&DatasetSpec::geolife(Scale::Smoke), 3001);
    let budget = db.total_points() / 8;
    let (eps, simp) = min_eps_for_budget(&db, ErrorMeasure::Sed, budget);
    assert!(simp.total_points() <= budget);
    assert!(ErrorMeasure::Sed.db_error(&db, &simp) <= eps + 1e-9);
    // The direct bounded call at the same ε reproduces the same result.
    let again = bounded_db(&db, ErrorMeasure::Sed, eps);
    assert_eq!(simp.total_points(), again.total_points());
}

/// A streamed trajectory (online, bounded buffer) must be a valid
/// time-ordered subset usable by every downstream query operator.
#[test]
fn streamed_trajectories_feed_the_query_engine() {
    let db = generate(&DatasetSpec::tdrive(Scale::Smoke), 3002);
    let streamed: TrajectoryDb = db
        .trajectories()
        .iter()
        .map(|t| streaming_simplify(t, (t.len() / 5).max(2)))
        .collect();
    assert_eq!(streamed.len(), db.len());
    assert!(streamed.total_points() < db.total_points());
    // Range queries over the streamed database still work and return a
    // subset-consistent result.
    let q = db.bounding_cube();
    assert_eq!(
        qdts::query::range_query(&streamed, &q).len(),
        streamed.len(),
        "whole-space query returns everything"
    );
}

/// Joins shrink (or hold) under simplification — never invent pairs when
/// the simplification moves trajectories apart, and companions that stay
/// together keep joining.
#[test]
fn joins_behave_under_simplification() {
    // Build a db with two deliberate companions + background traffic.
    let mut trajs = generate(&DatasetSpec::chengdu(Scale::Smoke), 3003)
        .trajectories()
        .to_vec();
    let base: Vec<_> = (0..60)
        .map(|i| qdts::trajectory::Point::new(i as f64 * 50.0, 0.0, i as f64 * 30.0))
        .collect();
    let buddy: Vec<_> = base
        .iter()
        .map(|p| qdts::trajectory::Point::new(p.x, p.y + 120.0, p.t))
        .collect();
    let a = trajs.len();
    trajs.push(Trajectory::new(base).unwrap());
    let b = trajs.len();
    trajs.push(Trajectory::new(buddy).unwrap());
    let db = TrajectoryDb::new(trajs);

    let params = JoinParams {
        delta: 500.0,
        min_overlap: 600.0,
        step: 60.0,
    };
    let pairs = similarity_join(&db, &params);
    assert!(pairs.contains(&(a, b)), "companions must join: {pairs:?}");

    // Simplify mildly: the straight-line companions survive simplification
    // (their paths are linear, so endpoints reproduce them exactly).
    let simp = BottomUp::new(ErrorMeasure::Sed, Adaptation::Each)
        .simplify(&db, db.total_points() / 4)
        .materialize(&db);
    let pairs_simp = similarity_join(&simp, &params);
    assert!(
        pairs_simp.contains(&(a, b)),
        "linear companions must still join"
    );
}

/// The kd-tree index slots into the full train→simplify pipeline.
#[test]
fn kdtree_index_trains_end_to_end() {
    use qdts::query::{range_workload, QueryDistribution, RangeWorkloadSpec};
    use qdts::rl4qdts::{train, Rl4QdtsConfig, TrainerConfig};
    use rand::SeedableRng;

    let pool = generate(&DatasetSpec::geolife(Scale::Smoke), 3004);
    let workload = RangeWorkloadSpec {
        count: 15,
        spatial_extent: 1_000.0,
        temporal_extent: 6_000.0,
        dist: QueryDistribution::Data,
    };
    let config = Rl4QdtsConfig::scaled_to(&pool)
        .with_delta(20)
        .with_index(IndexKind::MedianKdTree);
    let (model, stats) = train(&pool, config, &TrainerConfig::small(workload), 11);
    assert!(stats.insertions > 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let queries = range_workload(&pool, &workload, &mut rng);
    let budget = pool.total_points() / 12;
    let simp = model.simplify(&pool, budget, &queries, 5);
    assert_eq!(simp.total_points(), budget.max(2 * pool.len()));
}

/// Resampling + synchronized distance quantify simplification loss the
/// same way the SED error measure does, up to sampling resolution.
#[test]
fn resampled_sync_distance_tracks_sed() {
    let db = generate(&DatasetSpec::geolife(Scale::Smoke), 3005);
    let t = db.get(0);
    let uniform = resample_uniform(t, t.mean_sampling_interval().max(1.0));
    // Resampling at roughly the native rate deviates by far less than one
    // average step (pure interpolation error between irregular fixes).
    let mean_step = t.path_length() / (t.len() - 1) as f64;
    let d = mean_sync_distance(t, &uniform, 5.0).unwrap();
    assert!(
        d < mean_step,
        "resampling moved the trajectory {d} (step {mean_step})"
    );

    // Endpoint-only simplification has sync distance comparable to its SED.
    let endpoints = Trajectory::new(vec![*t.first(), *t.last()]).unwrap();
    let d_endpoints = mean_sync_distance(t, &endpoints, 5.0).unwrap();
    let kept: Vec<u32> = vec![0, t.len() as u32 - 1];
    let sed = ErrorMeasure::Sed.trajectory_error(t, &kept);
    assert!(
        d_endpoints <= sed + 1e-9,
        "mean ≤ max: {d_endpoints} vs {sed}"
    );
    assert!(d_endpoints > 0.0);
}
