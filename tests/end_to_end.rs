//! Cross-crate integration tests: the full pipeline from synthetic data
//! through training, simplification, and all five query tasks.

use qdts::query::{
    range_workload, EngineConfig, QueryDistribution, QueryEngine, RangeWorkloadSpec,
};
use qdts::rl4qdts::{train, RewardTracker, Rl4QdtsConfig, TrainerConfig};
use qdts::simp::{Adaptation, BottomUp, Simplifier, TopDown, Uniform};
use qdts::trajectory::gen::{generate, DatasetSpec, Scale};
use qdts::trajectory::{ErrorMeasure, Simplification};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload() -> RangeWorkloadSpec {
    RangeWorkloadSpec {
        count: 20,
        spatial_extent: 1_500.0,
        temporal_extent: 6_000.0,
        dist: QueryDistribution::Data,
    }
}

/// The complete pipeline runs end-to-end and produces a valid simplified
/// database within budget.
#[test]
fn full_pipeline_produces_valid_simplification() {
    let pool = generate(&DatasetSpec::geolife(Scale::Smoke), 1001);
    let (train_pool, db) = pool.split_at(6);
    let config = Rl4QdtsConfig::scaled_to(&train_pool).with_delta(20);
    let (model, stats) = train(&train_pool, config, &TrainerConfig::small(workload()), 5);
    assert!(stats.episodes > 0);

    let mut rng = StdRng::seed_from_u64(2);
    let queries = range_workload(&db, &workload(), &mut rng);
    let budget = db.total_points() / 15;
    let simp = model.simplify(&db, budget, &queries, 3);

    assert_eq!(simp.total_points(), budget.max(2 * db.len()));
    for (id, t) in db.iter() {
        let kept = simp.kept(id);
        assert_eq!(kept[0], 0);
        assert_eq!(*kept.last().unwrap(), (t.len() - 1) as u32);
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }
    // Materialization produces a queryable database.
    let m = simp.materialize(&db);
    assert_eq!(m.len(), db.len());
    assert_eq!(m.total_points(), simp.total_points());
}

/// Every simplifier family (error-driven E/W + RL4QDTS) yields results that
/// the query engine can consume, and query accuracy orders sanely with
/// budget for all of them.
#[test]
fn all_simplifier_families_integrate_with_query_engine() {
    let db = generate(&DatasetSpec::geolife(Scale::Smoke), 1002);
    let mut rng = StdRng::seed_from_u64(7);
    let eval_queries = range_workload(&db, &workload(), &mut rng);
    let base = Simplification::most_simplified(&db);
    let engine = QueryEngine::over(&db, EngineConfig::octree());
    let tracker = RewardTracker::new(&engine, eval_queries, &base);

    let methods: Vec<Box<dyn Simplifier>> = vec![
        Box::new(Uniform),
        Box::new(TopDown::new(ErrorMeasure::Sed, Adaptation::Each)),
        Box::new(TopDown::new(ErrorMeasure::Ped, Adaptation::Whole)),
        Box::new(BottomUp::new(ErrorMeasure::Dad, Adaptation::Each)),
        Box::new(BottomUp::new(ErrorMeasure::Sad, Adaptation::Whole)),
    ];
    for m in &methods {
        let small = m.simplify(&db, db.total_points() / 20);
        let large = m.simplify(&db, db.total_points() / 2);
        let d_small = tracker.diff_of(&engine, &small);
        let d_large = tracker.diff_of(&engine, &large);
        assert!(
            d_large <= d_small + 1e-9,
            "{}: more budget must not hurt ({d_small:.3} -> {d_large:.3})",
            m.name()
        );
    }
}

/// The octree, query engine, and simplification layers agree on what a
/// range query returns: querying the materialized database equals querying
/// the kept points in place — through the linear scan and through the
/// index-accelerated engine alike.
#[test]
fn materialized_and_in_place_range_queries_agree() {
    let db = generate(&DatasetSpec::chengdu(Scale::Smoke), 1003);
    let mut simp = Simplification::most_simplified(&db);
    // Insert an arbitrary scattering of points.
    let mut rng = StdRng::seed_from_u64(11);
    let queries = range_workload(&db, &workload(), &mut rng);
    for (id, t) in db.iter() {
        for idx in (1..t.len() as u32 - 1).step_by(7) {
            simp.insert(id, idx);
        }
    }
    let materialized = simp.materialize(&db);
    let engine = QueryEngine::over(&db, EngineConfig::octree());
    let served = QueryEngine::over(&materialized, EngineConfig::octree());
    for q in &queries {
        let in_place = qdts::rl4qdts::range_query_simplified(&db, &simp, q);
        let on_materialized = qdts::query::range_query(&materialized, q);
        assert_eq!(in_place, on_materialized, "query {q:?}");
        assert_eq!(
            engine.range_simplified(&simp, q),
            in_place,
            "engine in-place {q:?}"
        );
        assert_eq!(
            served.range(q),
            on_materialized,
            "engine materialized {q:?}"
        );
    }
}

/// Checkpoint round trip across crate boundaries (model_io ↔ tiny-rl ↔
/// algorithm).
#[test]
fn checkpointed_model_is_equivalent() {
    let pool = generate(&DatasetSpec::tdrive(Scale::Smoke), 1004);
    let config = Rl4QdtsConfig::scaled_to(&pool).with_delta(20);
    let (model, _) = train(&pool, config, &TrainerConfig::small(workload()), 5);

    let dir = std::env::temp_dir().join("qdts_e2e_ckpt");
    qdts::rl4qdts::model_io::save(&model, &dir).unwrap();
    let loaded = qdts::rl4qdts::model_io::load(config, &dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let mut rng = StdRng::seed_from_u64(13);
    let queries = range_workload(&pool, &workload(), &mut rng);
    let budget = pool.total_points() / 10;
    assert_eq!(
        model.simplify(&pool, budget, &queries, 17),
        loaded.simplify(&pool, budget, &queries, 17)
    );
}

/// CSV export/import of a simplified database keeps query results stable
/// (the storage story end to end).
#[test]
fn simplified_database_survives_csv_round_trip() {
    let db = generate(&DatasetSpec::geolife(Scale::Smoke), 1005);
    let simp = Uniform.simplify(&db, db.total_points() / 5);
    let materialized = simp.materialize(&db);

    let mut buf = Vec::new();
    qdts::trajectory::io::write_csv(&materialized, &mut buf).unwrap();
    let back = qdts::trajectory::io::read_csv(&buf[..]).unwrap();

    let mut rng = StdRng::seed_from_u64(19);
    let queries = range_workload(&db, &workload(), &mut rng);
    for q in &queries {
        assert_eq!(
            qdts::query::range_query(&materialized, q),
            qdts::query::range_query(&back, q)
        );
    }
}
