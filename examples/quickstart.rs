//! Quickstart: generate a trajectory database, train RL4QDTS, simplify
//! under a budget, and verify that query accuracy survives.
//!
//! Run with: `cargo run --release --example quickstart`

use qdts::query::{
    range_workload, EngineConfig, QueryDistribution, QueryEngine, RangeWorkloadSpec,
};
use qdts::rl4qdts::{train, RewardTracker, Rl4QdtsConfig, TrainerConfig};
use qdts::trajectory::gen::{generate, DatasetSpec, Scale};
use qdts::trajectory::{DatasetStats, Simplification};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A Geolife-shaped synthetic database (dense GPS, mixed movement).
    let spec = DatasetSpec::geolife(Scale::Smoke).with_trajectories(30);
    let pool = generate(&spec, 42);
    let (train_pool, db) = pool.split_at(14);
    println!("database: {}", DatasetStats::compute(&db));

    // 2. The query workload we want the simplified database to keep
    //    answering correctly: tight range queries (1 km x 1 km x 1 h)
    //    centered on the data — the kind endpoint-only storage fails.
    let workload = RangeWorkloadSpec {
        count: 30,
        spatial_extent: 1_000.0,
        temporal_extent: 3_600.0,
        dist: QueryDistribution::Data,
    };

    // 3. Train the two agents (Agent-Cube picks octree cubes, Agent-Point
    //    picks points) with the shared query-accuracy reward.
    let config = Rl4QdtsConfig::scaled_to(&train_pool).with_delta(25);
    let trainer = TrainerConfig::small(workload);
    let (model, stats) = train(&train_pool, config, &trainer, 7);
    println!(
        "trained: {} episodes, {} insertions, {:.2}s",
        stats.episodes, stats.insertions, stats.wall_seconds
    );

    // 4. Simplify to 5% of the original points.
    let budget = db.total_points() / 20;
    let mut rng = StdRng::seed_from_u64(1);
    let state_queries = range_workload(&db, &workload, &mut rng);
    let simplified = model.simplify(&db, budget, &state_queries, 1);
    println!(
        "simplified: {} -> {} points ({:.1}x reduction)",
        db.total_points(),
        simplified.total_points(),
        db.total_points() as f64 / simplified.total_points() as f64
    );

    // 5. How much query accuracy survived? (1.0 = identical results)
    //    Query execution runs through the index-accelerated engine.
    let eval_queries = range_workload(&db, &workload, &mut rng);
    let baseline = Simplification::most_simplified(&db);
    let engine = QueryEngine::over(&db, EngineConfig::octree());
    let tracker = RewardTracker::new(&engine, eval_queries, &baseline);
    println!(
        "range-query F1 endpoints-only: {:.3}, RL4QDTS: {:.3}",
        1.0 - tracker.diff_of(&engine, &baseline),
        1.0 - tracker.diff_of(&engine, &simplified),
    );
}
