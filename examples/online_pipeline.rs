//! Scenario: an online ingestion pipeline with a downstream join.
//!
//! GPS fixes arrive as streams; each vehicle's trace is simplified on the
//! fly with a bounded buffer (no revisiting dropped points — the paper's
//! online mode), and the archived result still supports the ridesharing
//! use case from the paper's introduction: finding trajectory pairs that
//! travelled together, via the similarity join — plus hotspot (range)
//! lookups served from a [`qdts::query::QueryEngine`] built over the
//! archive.
//!
//! Run with: `cargo run --release --example online_pipeline`

use qdts::query::join::{similarity_join, JoinParams};
use qdts::query::{EngineConfig, QueryEngine};
use qdts::simp::StreamingSimplifier;
use qdts::trajectory::gen::{generate, DatasetSpec, Scale};
use qdts::trajectory::{Cube, Point, Trajectory, TrajectoryDb};

fn main() {
    // A fleet, plus two vehicles deliberately convoying.
    let mut fleet: Vec<Trajectory> = generate(&DatasetSpec::chengdu(Scale::Smoke), 99)
        .trajectories()
        .to_vec();
    let lead: Vec<Point> = (0..120)
        .map(|i| {
            Point::new(
                i as f64 * 40.0,
                (i as f64 * 0.2).sin() * 30.0,
                i as f64 * 15.0,
            )
        })
        .collect();
    let wing: Vec<Point> = lead
        .iter()
        .map(|p| Point::new(p.x, p.y + 80.0, p.t))
        .collect();
    let lead_id = fleet.len();
    fleet.push(Trajectory::new(lead).unwrap());
    let wing_id = fleet.len();
    fleet.push(Trajectory::new(wing).unwrap());
    let original = TrajectoryDb::new(fleet);

    // Online ingestion: every vehicle streams through a 16-point buffer.
    let archived: TrajectoryDb = original
        .trajectories()
        .iter()
        .map(|t| {
            let mut s = StreamingSimplifier::new(16);
            for p in t.points() {
                s.push(*p); // one fix at a time — dropped fixes are gone
            }
            s.finish().expect("non-empty stream")
        })
        .collect();
    println!(
        "streamed {} vehicles: {} -> {} points ({:.1}x reduction, fixed 16-point buffers)",
        original.len(),
        original.total_points(),
        archived.total_points(),
        original.total_points() as f64 / archived.total_points() as f64
    );

    // The ridesharing question, asked of the *archived* data.
    let params = JoinParams {
        delta: 400.0,
        min_overlap: 600.0,
        step: 30.0,
    };
    let truth = similarity_join(&original, &params);
    let found = similarity_join(&archived, &params);
    println!("co-travelling pairs on original: {truth:?}");
    println!("co-travelling pairs on archive:  {found:?}");
    assert!(
        found.contains(&(lead_id, wing_id)),
        "the convoy must survive online simplification"
    );
    println!("convoy ({lead_id}, {wing_id}) detected in both — online archive keeps the answer");

    // Serve hotspot lookups from the archive: the engine indexes the
    // archived points once, then answers each range query by cube-pruned
    // traversal instead of rescanning every vehicle.
    let engine = QueryEngine::new(archived, EngineConfig::octree());
    let convoy_area = Cube::new(0.0, 4_800.0, -120.0, 120.0, 0.0, 1_800.0);
    let vehicles = engine.range(&convoy_area);
    println!(
        "hotspot lookup over the convoy corridor: {} vehicles (engine: {} backend)",
        vehicles.len(),
        engine.backend_kind().label()
    );
    assert!(vehicles.contains(&lead_id) && vehicles.contains(&wing_id));
}
