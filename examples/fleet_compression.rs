//! Scenario: a ride-hailing operator archives a week of taxi traces but
//! must keep answering pickup-hotspot (range) queries from the archive.
//!
//! Compares four ways to spend the same storage budget on a Chengdu-shaped
//! fleet: uniform sampling, per-trajectory Top-Down, database-level
//! Bottom-Up, and RL4QDTS — reporting the storage/accuracy trade-off each
//! achieves under the *real* (pickup/dropoff-biased) query distribution.
//!
//! Run with: `cargo run --release --example fleet_compression`

use qdts::query::{
    range_workload, EngineConfig, QueryDistribution, QueryEngine, RangeWorkloadSpec,
};
use qdts::rl4qdts::{train, RewardTracker, Rl4QdtsConfig, TrainerConfig};
use qdts::simp::{Adaptation, BottomUp, Simplifier, TopDown, Uniform};
use qdts::trajectory::gen::{generate, DatasetSpec, Scale};
use qdts::trajectory::{ErrorMeasure, Simplification};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let fleet = generate(&DatasetSpec::chengdu(Scale::Smoke), 11);
    let (train_pool, archive) = fleet.split_at(20);
    println!(
        "archive: {} trips, {} GPS points",
        archive.len(),
        archive.total_points()
    );

    // Ride-hailing queries concentrate near pickup/dropoff hubs.
    let workload = RangeWorkloadSpec {
        count: 40,
        spatial_extent: 1_500.0,
        temporal_extent: 86_400.0,
        dist: QueryDistribution::Real,
    };
    let mut rng = StdRng::seed_from_u64(2);
    let state_queries = range_workload(&archive, &workload, &mut rng);
    let eval_queries = range_workload(&archive, &workload, &mut rng);
    let baseline = Simplification::most_simplified(&archive);
    let engine = QueryEngine::over(&archive, EngineConfig::octree());
    let tracker = RewardTracker::new(&engine, eval_queries, &baseline);

    let config = Rl4QdtsConfig::scaled_to(&train_pool).with_delta(25);
    let (model, _) = train(&train_pool, config, &TrainerConfig::small(workload), 5);

    let budget = archive.total_points() / 10; // keep 10%
    println!("storage budget: {budget} points (10%)\n");
    println!("{:<22} {:>8} {:>10}", "method", "points", "range F1");

    let report = |name: &str, simp: &Simplification| {
        println!(
            "{:<22} {:>8} {:>10.3}",
            name,
            simp.total_points(),
            1.0 - tracker.diff_of(&engine, simp)
        );
    };

    report("Uniform", &Uniform.simplify(&archive, budget));
    report(
        "Top-Down(E,SED)",
        &TopDown::new(ErrorMeasure::Sed, Adaptation::Each).simplify(&archive, budget),
    );
    report(
        "Bottom-Up(W,PED)",
        &BottomUp::new(ErrorMeasure::Ped, Adaptation::Whole).simplify(&archive, budget),
    );
    report(
        "RL4QDTS",
        &model.simplify(&archive, budget, &state_queries, 3),
    );

    // Where did RL4QDTS spend the budget? Show the spread of per-trip
    // compression ratios — collective simplification is deliberately
    // non-uniform.
    let simp = model.simplify(&archive, budget, &state_queries, 3);
    let ratios = simp.compression_ratios(&archive);
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nRL4QDTS per-trip keep-ratio spread: {:.1}% .. {:.1}% (uniform methods: flat)",
        100.0 * min,
        100.0 * max
    );
}
