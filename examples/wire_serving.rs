//! Scenario: serving a simplified trajectory database over TCP.
//!
//! The in-process façade ([`qdts::TrajDb`]) answers query batches for
//! whoever holds the object; the serving layer (`qdts::serve`) puts the
//! same façade behind a versioned, checksummed wire format so many
//! processes can query one database. This example stands up a loopback
//! server over a snapshot file, drives it from several concurrent
//! client connections, and shows the admission layer coalescing their
//! requests into shared engine passes — while every answer stays
//! byte-identical to in-process execution.
//!
//! Run with: `cargo run --release --example wire_serving`

use qdts::query::knn::{Dissimilarity, KnnQuery};
use qdts::query::{DbOptions, QueryDistribution, RangeWorkloadSpec};
use qdts::serve::server::BatchConfig;
use qdts::trajectory::gen::{generate, DatasetSpec, Scale};
use qdts::trajectory::snapshot::write_snapshot_with;
use qdts::{Client, Query, QueryBatch, QueryExecutor, ServeOptions, Server, TrajDb};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // One snapshot on disk: the simplified archive a fleet would share.
    let db = generate(&DatasetSpec::tdrive(Scale::Smoke).with_trajectories(48), 7);
    let store = db.to_store();
    let mut kept = qdts::trajectory::KeptBitmap::zeros(store.total_points());
    for g in (0..store.total_points()).step_by(2) {
        kept.insert(g as u32);
    }
    let snap = std::env::temp_dir().join(format!("wire_serving_{}.snap", std::process::id()));
    write_snapshot_with(&store, Some(&kept), &snap).expect("write snapshot");

    // The server opens the path through the same auto-detecting façade
    // used in-process (snapshot / quantized / shard dir / CSV), then
    // coalesces concurrently arriving requests into shared passes.
    let server = Server::open(
        &snap,
        DbOptions::new(),
        "127.0.0.1:0",
        ServeOptions {
            mode: qdts::serve::ExecutionMode::Batched(BatchConfig {
                max_queries: 128,
                linger: std::time::Duration::from_millis(1),
            }),
            executors: 1,
        },
    )
    .expect("open + serve");
    let addr = server.local_addr();
    println!("serving {snap:?} on {addr}");

    // A mixed workload: paper-default data-anchored range cubes plus a
    // kNN probe per client.
    let spec = RangeWorkloadSpec::paper_default(8, QueryDistribution::Data);
    let mut rng = StdRng::seed_from_u64(3);
    let cubes = qdts::query::range_workload(&db, &spec, &mut rng);
    let probe = db.get(0).clone();
    let (ts, te) = (probe.points()[0].t, probe.points().last().unwrap().t);

    // Several concurrent client connections, each sending its own batch.
    std::thread::scope(|scope| {
        for (c, chunk) in cubes.chunks(2).enumerate() {
            let probe = probe.clone();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut queries: Vec<Query> = chunk.iter().copied().map(Query::Range).collect();
                queries.push(Query::Knn(KnnQuery {
                    query: probe,
                    ts,
                    te,
                    k: 3,
                    measure: Dissimilarity::Edr { eps: 2_000.0 },
                }));
                let batch = QueryBatch::from_queries(queries);
                let results = client.execute_batch(&batch).expect("remote batch");
                println!(
                    "client {c}: {} queries answered, {} ids total",
                    batch.len(),
                    results
                        .iter()
                        .map(|r| r.ids().map_or(0, <[usize]>::len))
                        .sum::<usize>()
                );
            });
        }
    });

    // The wire adds framing, not semantics: an in-process pass over the
    // same snapshot gives identical results.
    let local = TrajDb::open(&snap, DbOptions::new()).expect("open in-process");
    let check = QueryBatch::from_queries(cubes.iter().copied().map(Query::Range).collect());
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(
        client.execute_batch(&check).expect("remote"),
        local.execute_batch(&check),
        "wire results must match in-process results"
    );

    let stats = server.stats();
    println!(
        "served {} requests / {} queries in {} engine passes (mean batch {:.1})",
        stats.requests,
        stats.queries,
        stats.batches,
        stats.mean_batch_size()
    );
    server.shutdown();
    std::fs::remove_file(&snap).ok();
}
