//! Scenario: serving all four query types from one simplified database.
//!
//! The paper's "Remarks" (§III-B) stress that a *single* simplified
//! database must serve range, kNN, similarity, and clustering queries.
//! This example simplifies a Geolife-shaped database once with RL4QDTS
//! (trained only on range queries) and then measures how every query type
//! fares — the cross-query transferability claim.
//!
//! All serving goes through [`qdts::query::QueryEngine`]: one engine over
//! the original database (the ground truth) and one over the simplified
//! archive, each owning an octree that prunes execution and parallelizes
//! batches — the production path, not the O(N) reference scans.
//!
//! Run with: `cargo run --release --example query_serving`

use qdts::query::knn::{Dissimilarity, KnnQuery};
use qdts::query::similarity::SimilarityQuery;
use qdts::query::traclus::{traclus, TraclusParams};
use qdts::query::{
    f1_pairs, f1_sets, mean_f1, range_workload, traj_query_workload, EngineConfig,
    QueryDistribution, QueryEngine, RangeWorkloadSpec,
};
use qdts::rl4qdts::{train, Rl4QdtsConfig, TrainerConfig};
use qdts::trajectory::gen::{generate, DatasetSpec, Scale};
use qdts::trajectory::AsColumns;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = DatasetSpec::geolife(Scale::Smoke).with_trajectories(36);
    let pool = generate(&spec, 77);
    let (train_pool, db) = pool.split_at(12);

    // Train on range queries only — the paper's strategy.
    let workload = RangeWorkloadSpec {
        count: 30,
        spatial_extent: 1_000.0,
        temporal_extent: 3_600.0,
        dist: QueryDistribution::Data,
    };
    let config = Rl4QdtsConfig::scaled_to(&train_pool).with_delta(25);
    let (model, _) = train(&train_pool, config, &TrainerConfig::small(workload), 9);

    let mut rng = StdRng::seed_from_u64(3);
    let state_queries = range_workload(&db, &workload, &mut rng);
    let budget = db.total_points() / 30;
    let simplified = model
        .simplify(&db, budget, &state_queries, 4)
        .materialize(&db);
    println!(
        "one simplified database: {} -> {} points\n",
        db.total_points(),
        budget
    );

    // Two engines: ground truth and archive. Index built once each; every
    // query below is served with cube pruning + parallel batches.
    let truth_engine = QueryEngine::over(&db, EngineConfig::octree());
    let served_engine = QueryEngine::new(simplified, EngineConfig::octree());

    // 1. Range queries (whole batch, parallel).
    let range_qs = range_workload(&db, &workload, &mut rng);
    let truth_results = truth_engine.range_batch(&range_qs);
    let served_results = served_engine.range_batch(&range_qs);
    let range_scores: Vec<_> = truth_results
        .iter()
        .zip(&served_results)
        .map(|(t, r)| f1_sets(t, r))
        .collect();
    println!("range query F1:       {:.3}", mean_f1(&range_scores));

    // 2. kNN queries under both dissimilarities.
    let knn_specs = traj_query_workload(&db, 8, 7.0 * 86_400.0, &mut rng);
    for (name, measure) in [
        ("kNN (EDR) F1:      ", Dissimilarity::Edr { eps: 100.0 }),
        ("kNN (t2vec) F1:    ", Dissimilarity::t2vec_default()),
    ] {
        let queries: Vec<KnnQuery> = knn_specs
            .iter()
            .map(|s| KnnQuery {
                query: db.get(s.query).clone(),
                ts: s.ts,
                te: s.te,
                k: 3,
                measure,
            })
            .collect();
        let truth = truth_engine.knn_batch(&queries);
        let served = served_engine.knn_batch(&queries);
        let scores: Vec<_> = truth
            .iter()
            .zip(&served)
            .map(|(t, r)| f1_sets(t, r))
            .collect();
        println!("{name}  {:.3}", mean_f1(&scores));
    }

    // 3. Similarity queries (parallel per-candidate checks).
    let sim_specs = traj_query_workload(&db, 8, 7.0 * 86_400.0, &mut rng);
    let sim_queries: Vec<SimilarityQuery> = sim_specs
        .iter()
        .map(|s| SimilarityQuery {
            query: db.get(s.query).clone(),
            ts: s.ts,
            te: s.te,
            delta: 1_000.0,
            step: 600.0,
        })
        .collect();
    let truth = truth_engine.similarity_batch(&sim_queries);
    let served = served_engine.similarity_batch(&sim_queries);
    let sim_scores: Vec<_> = truth
        .iter()
        .zip(&served)
        .map(|(t, r)| f1_sets(t, r))
        .collect();
    println!("similarity query F1:  {:.3}", mean_f1(&sim_scores));

    // 4. TRACLUS clustering (co-clustered trajectory pairs). TRACLUS is
    // the one AoS consumer left, so materialize from the engines' columns.
    let params = TraclusParams::default();
    let truth = traclus(&truth_engine.store().to_db(), &params).co_clustered_pairs();
    let ours = traclus(&served_engine.store().to_db(), &params).co_clustered_pairs();
    println!("clustering pair F1:   {:.3}", f1_pairs(&truth, &ours).f1);
}
