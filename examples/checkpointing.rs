//! Scenario: train once, deploy many times.
//!
//! Simplification runs offline but may be re-run as new data arrives; the
//! trained policies are the reusable artifact. This example trains a
//! model, checkpoints it to disk, reloads it, and shows the reloaded model
//! behaves identically on fresh data.
//!
//! Run with: `cargo run --release --example checkpointing`

use qdts::query::{range_workload, QueryDistribution, RangeWorkloadSpec};
use qdts::rl4qdts::model_io;
use qdts::rl4qdts::{train, Rl4QdtsConfig, TrainerConfig};
use qdts::trajectory::gen::{generate, DatasetSpec, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let pool = generate(&DatasetSpec::tdrive(Scale::Smoke), 21);
    let workload = RangeWorkloadSpec {
        count: 20,
        spatial_extent: 2_000.0,
        temporal_extent: 86_400.0,
        dist: QueryDistribution::Data,
    };
    let config = Rl4QdtsConfig::scaled_to(&pool).with_delta(25);
    let (model, stats) = train(&pool, config, &TrainerConfig::small(workload), 13);
    println!(
        "trained in {:.2}s ({} transitions)",
        stats.wall_seconds, stats.transitions
    );

    // Checkpoint: four plain-text artifacts.
    let dir = std::env::temp_dir().join("rl4qdts_example_ckpt");
    model_io::save(&model, &dir).expect("save checkpoint");
    println!("checkpoint written to {}", dir.display());
    for entry in std::fs::read_dir(&dir).unwrap() {
        let entry = entry.unwrap();
        println!(
            "  {} ({} bytes)",
            entry.file_name().to_string_lossy(),
            entry.metadata().unwrap().len()
        );
    }

    // Reload and verify bit-identical behaviour on *new* data.
    let loaded = model_io::load(config, &dir).expect("load checkpoint");
    let fresh = generate(&DatasetSpec::tdrive(Scale::Smoke), 22);
    let mut rng = StdRng::seed_from_u64(4);
    let queries = range_workload(&fresh, &workload, &mut rng);
    let budget = fresh.total_points() / 10;
    let a = model.simplify(&fresh, budget, &queries, 5);
    let b = loaded.simplify(&fresh, budget, &queries, 5);
    assert_eq!(a, b);
    println!(
        "reloaded model reproduces the original's output exactly ({} points kept)",
        a.total_points()
    );
    std::fs::remove_dir_all(&dir).ok();
}
