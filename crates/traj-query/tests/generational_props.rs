//! Property tests of the live-ingestion layer's core promise: a
//! `GenerationalDb` serving an immutable base generation merged with a
//! WAL-backed delta answers **byte-identical results** to a
//! from-scratch `QueryEngine` rebuilt over the same trajectories — for
//! range, kNN, similarity, simplified-database execution, and
//! heterogeneous batches, across every index backend (scan / octree /
//! median kd-tree), both open modes (owned / mmap-backed base), and on
//! both sides of a compaction — plus crash-recovery: a torn WAL tail
//! and a crash on either side of a compaction's manifest commit
//! recover exactly the acknowledged writes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use traj_query::knn::{Dissimilarity, KnnQuery};
use traj_query::{
    DbOptions, EngineConfig, GenerationalDb, QueryBatch, QueryEngine, QueryExecutor,
    SimilarityQuery,
};
use trajectory::snapshot::fnv1a64;
use trajectory::{Cube, KeepAll, Point, PointStore, Simplification, Trajectory, TrajectoryDb};

fn keep_all() -> traj_query::SimpFactory {
    Box::new(|| Box::new(KeepAll))
}

/// Strategy: a Geolife/T-Drive-shaped database of 1..8 trajectories with
/// 2..24 points each (bounded coordinates, strictly increasing times).
fn arb_db() -> impl Strategy<Value = TrajectoryDb> {
    prop::collection::vec(
        prop::collection::vec((-1e4..1e4f64, -1e4..1e4f64, 0.1..60.0f64), 2..24),
        1..8,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|steps| {
                let mut t = 0.0;
                let pts = steps
                    .into_iter()
                    .map(|(x, y, dt)| {
                        t += dt;
                        Point::new(x, y, t)
                    })
                    .collect();
                Trajectory::new(pts).unwrap()
            })
            .collect()
    })
}

/// Strategy: a query cube positioned relative to the database's bounding
/// cube, ranging from empty corners to whole-space covers.
fn arb_query(db: &TrajectoryDb) -> impl Strategy<Value = Cube> {
    let bc = db.bounding_cube();
    (
        (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
        (0.01..0.8f64, 0.01..0.8f64, 0.01..0.8f64),
    )
        .prop_map(move |((fx, fy, ft), (hx, hy, ht))| {
            let (ex, ey, et) = bc.extents();
            Cube::centered(
                bc.x_min + fx * ex,
                bc.y_min + fy * ey,
                bc.t_min + ft * et,
                (hx * ex).max(1e-6),
                (hy * ey).max(1e-6),
                (ht * et).max(1e-6),
            )
        })
}

fn engine_configs() -> [EngineConfig; 3] {
    [
        EngineConfig::scan(),
        EngineConfig::octree().with_tree_shape(6, 8),
        EngineConfig::median_kd().with_tree_shape(6, 8),
    ]
}

fn open_modes(cfg: EngineConfig) -> [DbOptions; 2] {
    [
        DbOptions::new().engine(cfg).owned(),
        DbOptions::new().engine(cfg).mapped(),
    ]
}

/// A unique temp dir per case so parallel test binaries never collide.
fn unique_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir()
        .join("qdts_generational_props")
        .join(format!(
            "case_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn store_of(trajs: &[Trajectory]) -> PointStore {
    let mut store = PointStore::new();
    for t in trajs {
        store.push_points(t.points()).unwrap();
    }
    store
}

/// A mixed workload over the database's extent: ranges, a kNN, a
/// similarity, and a simplified-range probe.
fn mixed_batch(db: &TrajectoryDb, queries: &[Cube], k: usize) -> QueryBatch {
    let (t0, t1) = db.time_span();
    let mut batch = QueryBatch::new();
    for q in queries {
        batch.push_range(*q);
        batch.push_range_kept(*q);
    }
    batch.push_knn(KnnQuery {
        query: db.get(0).clone(),
        ts: t0,
        te: t0 + 0.7 * (t1 - t0),
        k,
        measure: Dissimilarity::Edr { eps: 1_000.0 },
    });
    batch.push_similarity(SimilarityQuery {
        query: db.get(0).clone(),
        ts: t0,
        te: t1,
        delta: 2_000.0,
        step: 5.0,
    });
    batch
}

fn every_third(db: &TrajectoryDb) -> Simplification {
    let mut simp = Simplification::most_simplified(db);
    for (id, t) in db.iter() {
        for idx in (0..t.len() as u32).step_by(3) {
            simp.insert(id, idx);
        }
    }
    simp
}

/// Asserts the live database currently answers exactly like a
/// from-scratch engine over `full` (same trajectories, same order).
fn assert_equals_rebuild(
    live: &GenerationalDb,
    full: &PointStore,
    db: &TrajectoryDb,
    cfg: EngineConfig,
    queries: &[Cube],
    k: usize,
    label: &str,
) -> Result<(), TestCaseError> {
    let rebuild = QueryEngine::over_store(full, cfg);
    prop_assert_eq!(live.len(), QueryExecutor::len(&rebuild), "len: {}", label);
    prop_assert_eq!(
        QueryExecutor::total_points(live),
        QueryExecutor::total_points(&rebuild),
        "total_points: {}",
        label
    );
    for id in 0..live.len() {
        prop_assert_eq!(
            QueryExecutor::trajectory(live, id),
            rebuild.trajectory(id),
            "trajectory {}: {}",
            id,
            label
        );
    }

    let batch = mixed_batch(db, queries, k);
    prop_assert_eq!(
        live.execute_batch(&batch),
        rebuild.execute_batch(&batch),
        "execute_batch: {}",
        label
    );

    let (t0, t1) = db.time_span();
    let knn = KnnQuery {
        query: db.get(0).clone(),
        ts: t0 + 0.2 * (t1 - t0),
        te: t1,
        k,
        measure: Dissimilarity::Edr { eps: 1_000.0 },
    };
    prop_assert_eq!(live.knn(&knn), rebuild.knn(&knn), "knn: {}", label);
    prop_assert_eq!(
        live.knn_candidates(&knn),
        rebuild.knn_candidates(&knn),
        "knn_candidates: {}",
        label
    );

    let simp = every_third(db);
    for q in queries {
        prop_assert_eq!(
            live.range(q),
            QueryExecutor::range(&rebuild, q),
            "range: {}",
            label
        );
        prop_assert_eq!(
            live.range_simplified(&simp, q),
            rebuild.range_simplified(&simp, q),
            "range_simplified: {}",
            label
        );
    }
    let live_w = QueryExecutor::maintained_workload(live, queries.to_vec(), &simp);
    let rebuild_w = rebuild.maintained_workload(queries.to_vec(), &simp);
    prop_assert!(
        (live_w.diff() - rebuild_w.diff()).abs() < 1e-12,
        "maintained diff: {}",
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: base-prefix + ingested-suffix serving,
    /// before and after compaction and across a reopen, equals a
    /// from-scratch rebuild — for every backend and both open modes.
    #[test]
    fn merged_serving_equals_from_scratch_rebuild(
        (db, queries, split, k) in arb_db().prop_flat_map(|db| {
            let n = db.len();
            let q = prop::collection::vec(arb_query(&db), 2..4);
            (Just(db), q, 0..=n, 1usize..6)
        })
    ) {
        let trajs: Vec<Trajectory> = db.iter().map(|(_, t)| t.clone()).collect();
        let base = store_of(&trajs[..split]);
        let full = store_of(&trajs);
        let delta = &trajs[split..];

        for cfg in engine_configs() {
            for opts in open_modes(cfg) {
                let dir = unique_dir();
                let live = GenerationalDb::create(&dir, &base, opts, keep_all()).unwrap();
                // Ingest the suffix in two batches to exercise batch seams.
                let mid = delta.len() / 2;
                for chunk in [&delta[..mid], &delta[mid..]] {
                    if !chunk.is_empty() {
                        let ack = live.ingest(chunk).unwrap();
                        prop_assert_eq!(ack.accepted as usize, chunk.len());
                        prop_assert_eq!(ack.rejected, 0);
                    }
                }
                assert_equals_rebuild(&live, &full, &db, cfg, &queries, k, "pre-compaction")?;

                let report = live.compact().unwrap();
                if split < trajs.len() {
                    prop_assert_eq!(report.folded_trajs, trajs.len() - split);
                    prop_assert_eq!(live.generation(), 1);
                }
                prop_assert_eq!(live.delta_points(), 0);
                assert_equals_rebuild(&live, &full, &db, cfg, &queries, k, "post-compaction")?;
                drop(live);

                let reopened = GenerationalDb::open(&dir, opts, keep_all()).unwrap();
                assert_equals_rebuild(&reopened, &full, &db, cfg, &queries, k, "reopened")?;
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }

    /// Writes keep landing while generations roll: ingest → compact →
    /// ingest again → the merged view still equals the rebuild, and a
    /// second compaction folds only the new delta.
    #[test]
    fn ingestion_across_generations_stays_consistent(
        (db, queries, s0, s1) in arb_db().prop_flat_map(|db| {
            let n = db.len();
            let q = prop::collection::vec(arb_query(&db), 2..4);
            (Just(db), q, 0..=n, 0..=n)
        })
    ) {
        let (a, b) = if s0 <= s1 { (s0, s1) } else { (s1, s0) };
        let trajs: Vec<Trajectory> = db.iter().map(|(_, t)| t.clone()).collect();
        let full = store_of(&trajs);
        let cfg = EngineConfig::octree().with_tree_shape(6, 8);
        let dir = unique_dir();

        let live =
            GenerationalDb::create(&dir, &store_of(&trajs[..a]), DbOptions::new().engine(cfg), keep_all())
                .unwrap();
        if a < b {
            live.ingest(&trajs[a..b]).unwrap();
        }
        live.compact().unwrap();
        if b < trajs.len() {
            live.ingest(&trajs[b..]).unwrap();
        }
        assert_equals_rebuild(&live, &full, &db, cfg, &queries, 3, "two generations")?;

        let second = live.compact().unwrap();
        prop_assert_eq!(second.folded_trajs, trajs.len() - b);
        assert_equals_rebuild(&live, &full, &db, cfg, &queries, 3, "after second fold")?;
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Crash recovery.
// ---------------------------------------------------------------------

fn crash_case() -> (PathBuf, Vec<Trajectory>, TrajectoryDb) {
    let db: TrajectoryDb = vec![
        Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(1.0, 0.5, 10.0),
            Point::new(2.0, 1.0, 20.0),
        ])
        .unwrap(),
        Trajectory::new(vec![
            Point::new(10.0, 10.0, 5.0),
            Point::new(11.0, 11.0, 15.0),
        ])
        .unwrap(),
        Trajectory::new(vec![Point::new(-5.0, 3.0, 2.0), Point::new(-6.0, 4.0, 8.0)]).unwrap(),
    ]
    .into_iter()
    .collect();
    let trajs: Vec<Trajectory> = db.iter().map(|(_, t)| t.clone()).collect();
    (unique_dir(), trajs, db)
}

fn probe_queries() -> Vec<Cube> {
    vec![
        Cube::new(-10.0, 15.0, -10.0, 15.0, 0.0, 30.0),
        Cube::new(9.0, 12.0, 9.0, 12.0, 0.0, 30.0),
        Cube::new(-7.0, -4.0, 2.0, 5.0, 0.0, 30.0),
    ]
}

/// Kill mid-WAL: a torn tail (an un-terminated trajectory group and a
/// truncated record) appended after the last acked batch is discarded
/// on reopen — exactly the acked writes survive, and the store accepts
/// further appends.
#[test]
fn torn_wal_tail_recovers_exactly_the_acked_writes() {
    let (dir, trajs, db) = crash_case();
    let live =
        GenerationalDb::create(&dir, &store_of(&trajs[..1]), DbOptions::new(), keep_all()).unwrap();
    live.ingest(&trajs[1..2]).unwrap(); // acked
    drop(live);

    // Simulate a crash mid-append: a begin marker without its end, then
    // a half-written point record.
    let wal = dir.join("wal-000000.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let acked_len = bytes.len();
    let begin = {
        let mut rec = [0u8; 9];
        rec[0] = 0x01;
        rec[1..9].copy_from_slice(&fnv1a64(&[0x01]).to_le_bytes());
        rec
    };
    bytes.extend_from_slice(&begin);
    bytes.extend_from_slice(&[0x02, 1, 2, 3, 4, 5]); // truncated point record
    std::fs::write(&wal, &bytes).unwrap();

    let live = GenerationalDb::open(&dir, DbOptions::new(), keep_all()).unwrap();
    assert_eq!(live.len(), 2, "only the acked trajectories survive");
    assert_eq!(
        std::fs::metadata(&wal).unwrap().len(),
        acked_len as u64,
        "the torn tail is truncated away"
    );

    // The recovered store accepts further appends and serves correctly.
    live.ingest(&trajs[2..]).unwrap();
    let full = store_of(&trajs);
    let rebuild = QueryEngine::over_store(&full, EngineConfig::octree());
    for q in probe_queries() {
        assert_eq!(live.range(&q), QueryExecutor::range(&rebuild, &q));
    }
    assert_eq!(live.len(), db.len());
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill mid-compaction, before the manifest commit: the next
/// generation's snapshot and the fresh WAL already exist, but the
/// manifest still names the old generation — reopen replays the WALs
/// and ignores the orphaned snapshot.
#[test]
fn crash_before_manifest_commit_replays_the_wals() {
    let (dir, trajs, _db) = crash_case();
    let live =
        GenerationalDb::create(&dir, &store_of(&trajs[..1]), DbOptions::new(), keep_all()).unwrap();
    live.ingest(&trajs[1..]).unwrap();
    drop(live);

    // Replicate everything compaction does up to (not including) the
    // manifest rename: seal the WAL behind a fresh one, write the next
    // generation's snapshot.
    trajectory::DeltaStore::create(dir.join("wal-000001.log"), Box::new(KeepAll)).unwrap();
    trajectory::snapshot::write_snapshot(&store_of(&trajs), dir.join("gen-000001.snap")).unwrap();

    let live = GenerationalDb::open(&dir, DbOptions::new(), keep_all()).unwrap();
    assert_eq!(live.generation(), 0, "uncommitted generation is ignored");
    assert_eq!(live.len(), trajs.len());
    let full = store_of(&trajs);
    let rebuild = QueryEngine::over_store(&full, EngineConfig::octree());
    for q in probe_queries() {
        assert_eq!(live.range(&q), QueryExecutor::range(&rebuild, &q));
    }
    // And the interrupted compaction can simply run again.
    assert_eq!(live.compact().unwrap().generation, 1);
    assert_eq!(live.len(), trajs.len());
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill mid-compaction, after the manifest commit but before cleanup:
/// the manifest names the new generation while the folded WAL still
/// exists — reopen serves the new snapshot and ignores the stale WAL.
#[test]
fn crash_after_manifest_commit_serves_the_new_generation() {
    let (dir, trajs, _db) = crash_case();
    let live =
        GenerationalDb::create(&dir, &store_of(&trajs[..1]), DbOptions::new(), keep_all()).unwrap();
    live.ingest(&trajs[1..]).unwrap();
    drop(live);

    // Replicate a compaction whose process died right after the commit
    // point: snapshot written, manifest renamed, stale files not yet
    // deleted.
    trajectory::snapshot::write_snapshot(&store_of(&trajs), dir.join("gen-000001.snap")).unwrap();
    std::fs::write(
        dir.join("gens.manifest"),
        "QDTSGENS v1\ngeneration 1\nsnapshot gen-000001.snap\nwal_start 1\n",
    )
    .unwrap();
    assert!(
        dir.join("wal-000000.log").exists(),
        "stale WAL still present"
    );

    let live = GenerationalDb::open(&dir, DbOptions::new(), keep_all()).unwrap();
    assert_eq!(live.generation(), 1);
    assert_eq!(live.len(), trajs.len(), "stale WAL is not double-applied");
    let full = store_of(&trajs);
    let rebuild = QueryEngine::over_store(&full, EngineConfig::octree());
    for q in probe_queries() {
        assert_eq!(live.range(&q), QueryExecutor::range(&rebuild, &q));
    }
    std::fs::remove_dir_all(&dir).ok();
}
