//! Property tests of the public façade's two core promises:
//!
//! 1. **Heterogeneous batches are just queries.** Executing a mixed
//!    range + kNN + similarity + range-kept [`QueryBatch`] in one
//!    data-parallel pass returns exactly the per-query results, across
//!    both executors (single-store and sharded), all three index
//!    backends, and owned as well as mmap-backed stores.
//! 2. **`TrajDb::open` erases the storage format.** The same database
//!    persisted as CSV, snapshot file, and shard-set directory opens
//!    through one call and answers every query identically, with kept
//!    bitmaps served wherever the format persists them.

use proptest::prelude::*;
use traj_query::knn::{Dissimilarity, KnnQuery};
use traj_query::{
    DbOptions, EngineConfig, Query, QueryBatch, QueryEngine, QueryExecutor, QueryResult,
    SimilarityQuery, TrajDb,
};
use traj_simp::{Simplifier, Uniform};
use trajectory::shard::{partition, PartitionStrategy, Shard, ShardSet};
use trajectory::snapshot::write_snapshot_with;
use trajectory::{Cube, KeptBitmap, Point, Simplification, Trajectory, TrajectoryDb};

/// Strategy: a Geolife/T-Drive-shaped database of 1..8 trajectories with
/// 2..40 points each (bounded coordinates, strictly increasing times).
fn arb_db() -> impl Strategy<Value = TrajectoryDb> {
    prop::collection::vec(
        prop::collection::vec((-1e4..1e4f64, -1e4..1e4f64, 0.1..60.0f64), 2..40),
        1..8,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|steps| {
                let mut t = 0.0;
                let pts = steps
                    .into_iter()
                    .map(|(x, y, dt)| {
                        t += dt;
                        Point::new(x, y, t)
                    })
                    .collect();
                Trajectory::new(pts).unwrap()
            })
            .collect()
    })
}

/// Strategy: a query cube positioned relative to the database's bounding
/// cube, ranging from empty corners to whole-space covers.
fn arb_query(db: &TrajectoryDb) -> impl Strategy<Value = Cube> {
    let bc = db.bounding_cube();
    (
        (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
        (0.01..0.8f64, 0.01..0.8f64, 0.01..0.8f64),
    )
        .prop_map(move |((fx, fy, ft), (hx, hy, ht))| {
            let (ex, ey, et) = bc.extents();
            Cube::centered(
                bc.x_min + fx * ex,
                bc.y_min + fy * ey,
                bc.t_min + ft * et,
                (hx * ex).max(1e-6),
                (hy * ey).max(1e-6),
                (ht * et).max(1e-6),
            )
        })
}

fn engine_configs() -> [EngineConfig; 3] {
    [
        EngineConfig::scan(),
        EngineConfig::octree().with_tree_shape(6, 8),
        EngineConfig::median_kd().with_tree_shape(6, 8),
    ]
}

/// A unique temp path per case so parallel test binaries never collide.
fn unique_path(prefix: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("qdts_db_props");
    std::fs::create_dir_all(&dir).ok();
    dir.join(format!(
        "{prefix}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A mixed batch touching every query kind, with two kNN windows (one
/// proper, one empty — the degenerate-scoring edge case) interleaved
/// between the range queries.
fn mixed_batch(db: &TrajectoryDb, cubes: &[Cube]) -> QueryBatch {
    let (t0, t1) = db.time_span();
    let mut batch = QueryBatch::new();
    for (i, c) in cubes.iter().enumerate() {
        batch.push_range(*c);
        batch.push_range_kept(*c);
        if i == 0 {
            batch.push_knn(KnnQuery {
                query: db.get(0).clone(),
                ts: t0,
                te: t0 + 0.7 * (t1 - t0),
                k: 3,
                measure: Dissimilarity::Edr { eps: 1_000.0 },
            });
            batch.push_knn(KnnQuery {
                query: db.get(0).clone(),
                ts: t1 + 5.0,
                te: t1 + 10.0, // empty window: degenerate scoring
                k: 2,
                measure: Dissimilarity::Edr { eps: 1_000.0 },
            });
            batch.push_similarity(SimilarityQuery {
                query: db.get(db.len() - 1).clone(),
                ts: t0,
                te: t1,
                delta: 2_500.0,
                step: 30.0,
            });
        }
    }
    batch
}

/// Asserts that `execute_batch` over `batch` equals one-at-a-time
/// `execute` on the same executor, and returns the batch results.
fn batch_equals_sequential<E: QueryExecutor + ?Sized>(
    exec: &E,
    batch: &QueryBatch,
    label: &str,
) -> Result<Vec<QueryResult>, TestCaseError> {
    let results = exec.execute_batch(batch);
    prop_assert_eq!(results.len(), batch.len(), "{}: shape", label);
    for (i, (q, r)) in batch.queries().iter().zip(&results).enumerate() {
        prop_assert_eq!(r.kind(), q.kind(), "{}: kind of #{}", label, i);
        let one = exec.execute(q);
        prop_assert_eq!(r, &one, "{}: batch vs one-shot #{}", label, i);
        // And against the typed direct calls.
        match q {
            Query::Range(c) => prop_assert_eq!(r.ids().unwrap(), exec.range(c)),
            Query::Knn(k) => prop_assert_eq!(r.ids().unwrap(), exec.knn(k)),
            Query::Similarity(s) => prop_assert_eq!(r.ids().unwrap(), exec.similarity(s)),
            Query::RangeKept(c) => {
                prop_assert_eq!(r, &QueryResult::RangeKept(exec.range_kept(c)))
            }
        }
    }
    Ok(results)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The tentpole property: a heterogeneous batch equals sequential
    /// per-query execution on every executor × backend × storage
    /// combination, and all combinations agree with each other.
    #[test]
    fn heterogeneous_batch_equals_sequential_everywhere(
        (db, cubes) in arb_db().prop_flat_map(|db| {
            let qs = prop::collection::vec(arb_query(&db), 2..5);
            (Just(db), qs)
        })
    ) {
        let store = db.to_store();
        let batch = mixed_batch(&db, &cubes);

        // One simplified snapshot + one simplified shard set on disk:
        // the mmap-backed sources, both carrying kept bitmaps.
        let simp = Uniform.simplify_store(&store, store.total_points() / 2);
        let bitmap = simp.to_bitmap(&store);
        let snap = unique_path("batch").with_extension("snap");
        write_snapshot_with(&store, Some(&bitmap), &snap).unwrap();
        let shard_dir = unique_path("batch_shards");
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 3 });
        // Persist the *same* global simplification, split per shard, so
        // every storage format serves the identical D'.
        let kept_local: Vec<KeptBitmap> = shards
            .iter()
            .map(|sh: &Shard| {
                let kept = sh
                    .global_ids
                    .iter()
                    .map(|&g| simp.kept(g).to_vec())
                    .collect();
                Simplification::from_kept_store(&sh.store, kept).to_bitmap(&sh.store)
            })
            .collect();
        ShardSet::write_with(&shard_dir, &shards, &kept_local).unwrap();

        for cfg in engine_configs() {
            let opts = DbOptions::new().engine(cfg);
            // Single-store executor, owned columns, bitmap attached.
            let owned_single =
                QueryEngine::over_store(&store, cfg).with_kept_bitmap(bitmap.clone());
            // Single-store executor over the mapped snapshot (bitmap
            // auto-attached), sharded executors over owned and mapped
            // shard sets — all through the façade.
            let mapped_single = TrajDb::open(&snap, opts).unwrap();
            let owned_sharded = TrajDb::open(&shard_dir, opts.owned()).unwrap();
            let mapped_sharded = TrajDb::open(&shard_dir, opts.mapped()).unwrap();
            prop_assert!(!mapped_single.is_sharded());
            prop_assert!(owned_sharded.is_sharded() && mapped_sharded.is_sharded());

            let baseline =
                batch_equals_sequential(&owned_single, &batch, "owned single")?;
            for (label, results) in [
                ("mapped single", batch_equals_sequential(&mapped_single, &batch, "mapped single")?),
                ("owned sharded", batch_equals_sequential(&owned_sharded, &batch, "owned sharded")?),
                ("mapped sharded", batch_equals_sequential(&mapped_sharded, &batch, "mapped sharded")?),
            ] {
                prop_assert_eq!(
                    &results, &baseline,
                    "{} vs owned single, backend {:?}", label, cfg.backend
                );
            }
            // The kept bitmap round-tripped through every storage format.
            prop_assert!(mapped_single.has_kept_bitmap());
        }
        std::fs::remove_file(&snap).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }

    /// `TrajDb::open` resolves the same database from all three on-disk
    /// formats, and every format answers identically.
    #[test]
    fn open_auto_detects_all_three_formats(
        (db, qf) in arb_db().prop_flat_map(|db| {
            let q = arb_query(&db);
            (Just(db), q)
        })
    ) {
        let store = db.to_store();
        let csv = unique_path("open").with_extension("csv");
        trajectory::io::write_csv_file(&db, &csv).unwrap();
        let snap = unique_path("open").with_extension("snap");
        trajectory::write_snapshot(&store, &snap).unwrap();
        let dir = unique_path("open_shards");
        let shards = partition(&store, &PartitionStrategy::Grid { nx: 2, ny: 2 });
        trajectory::ShardSet::write(&dir, &shards).unwrap();

        let from_csv = TrajDb::open(&csv, DbOptions::new()).unwrap();
        let from_snap = TrajDb::open(&snap, DbOptions::new()).unwrap();
        let from_snap_owned = TrajDb::open(&snap, DbOptions::new().owned()).unwrap();
        let from_dir = TrajDb::open(&dir, DbOptions::new()).unwrap();
        prop_assert!(!from_csv.is_sharded());
        prop_assert!(!from_snap.is_sharded());
        prop_assert!(from_dir.is_sharded());
        // A partition option re-shards single-store sources in memory.
        let resharded = TrajDb::open(
            &snap,
            DbOptions::new().partition(PartitionStrategy::Time { parts: 2 }),
        )
        .unwrap();
        prop_assert!(resharded.is_sharded());

        let expected = from_csv.range(&qf);
        for (label, db) in [
            ("snapshot", &from_snap),
            ("snapshot owned", &from_snap_owned),
            ("shard dir", &from_dir),
            ("resharded", &resharded),
        ] {
            prop_assert_eq!(db.len(), store.len(), "{}", label);
            prop_assert_eq!(db.total_points(), store.total_points(), "{}", label);
            prop_assert_eq!(db.range(&qf), expected.clone(), "{}", label);
        }
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&snap).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Re-partitioning a simplified snapshot in memory splits its kept
    /// bitmap correctly: `range_kept` matches the unsharded serving for
    /// every partitioner.
    #[test]
    fn partitioned_open_splits_kept_bitmaps(
        (db, qf) in arb_db().prop_flat_map(|db| {
            let q = arb_query(&db);
            (Just(db), q)
        })
    ) {
        let store = db.to_store();
        let simp = Uniform.simplify_store(&store, store.total_points() / 3);
        let bitmap = simp.to_bitmap(&store);
        let snap = unique_path("split").with_extension("snap");
        write_snapshot_with(&store, Some(&bitmap), &snap).unwrap();

        let single = TrajDb::open(&snap, DbOptions::new()).unwrap();
        let expected = single.range_kept(&qf).unwrap();
        for strategy in [
            PartitionStrategy::Grid { nx: 2, ny: 2 },
            PartitionStrategy::Time { parts: 3 },
            PartitionStrategy::Hash { parts: 3 },
        ] {
            let sharded =
                TrajDb::open(&snap, DbOptions::new().partition(strategy)).unwrap();
            prop_assert!(sharded.has_kept_bitmap(), "{:?}", strategy);
            prop_assert_eq!(
                sharded.range_kept(&qf).unwrap(),
                expected.clone(),
                "{:?}",
                strategy
            );
        }
        std::fs::remove_file(&snap).ok();
    }
}

#[test]
fn open_rejects_missing_paths_with_io_errors() {
    let err = TrajDb::open(
        std::env::temp_dir().join("qdts_db_props_definitely_missing"),
        DbOptions::new(),
    )
    .unwrap_err();
    assert!(matches!(err, traj_query::TrajDbError::Io(_)), "{err}");
}
