//! Property tests for the quantized column codec as seen through the
//! query layer: a quantized snapshot decodes every coordinate within
//! the stored error bound, shrinks the file, and — because both load
//! paths rehydrate to plain `f64` columns — answers queries identically
//! across all three index backends, owned and mapped storage, and the
//! single-store and sharded engines. The codec's query-accuracy
//! contract is pinned too: expanding a range cube by the error bound on
//! the quantized database recovers every raw-database hit.

use proptest::prelude::*;
use traj_query::{range_query_store, DbOptions, EngineConfig, QueryExecutor, TrajDb};
use trajectory::shard::{partition, PartitionStrategy, ShardSet};
use trajectory::snapshot::{read_snapshot, write_snapshot_quantized, write_snapshot_with};
use trajectory::{Cube, Point, PointStore, Trajectory, TrajectoryDb};

/// Strategy: a database large enough that quantized sections amortize
/// their metadata (4..8 trajectories, 24..60 points each), with bounded
/// coordinates and strictly increasing times.
fn arb_db() -> impl Strategy<Value = TrajectoryDb> {
    prop::collection::vec(
        prop::collection::vec((-1e4..1e4f64, -1e4..1e4f64, 0.1..60.0f64), 24..60),
        4..8,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|steps| {
                let mut t = 0.0;
                let pts = steps
                    .into_iter()
                    .map(|(x, y, dt)| {
                        t += dt;
                        Point::new(x, y, t)
                    })
                    .collect();
                Trajectory::new(pts).unwrap()
            })
            .collect()
    })
}

/// Strategy: a query cube positioned relative to the database's bounding
/// cube.
fn arb_query(db: &TrajectoryDb) -> impl Strategy<Value = Cube> {
    let bc = db.bounding_cube();
    (
        (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
        (0.05..0.8f64, 0.05..0.8f64, 0.05..0.8f64),
    )
        .prop_map(move |((fx, fy, ft), (hx, hy, ht))| {
            let (ex, ey, et) = bc.extents();
            Cube::centered(
                bc.x_min + fx * ex,
                bc.y_min + fy * ey,
                bc.t_min + ft * et,
                (hx * ex).max(1e-6),
                (hy * ey).max(1e-6),
                (ht * et).max(1e-6),
            )
        })
}

fn engine_configs() -> [EngineConfig; 3] {
    [
        EngineConfig::scan(),
        EngineConfig::octree().with_tree_shape(6, 8),
        EngineConfig::median_kd().with_tree_shape(6, 8),
    ]
}

/// A unique temp path per case so parallel property cases never collide.
fn unique_path(prefix: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("qdts_quantized_props");
    std::fs::create_dir_all(&dir).ok();
    dir.join(format!(
        "{prefix}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Per-coordinate bound check between a raw and a decoded-quantized
/// store (same shape, every axis within `bound`).
fn assert_within_bound(raw: &PointStore, q: &PointStore, bound: f64) -> Result<(), TestCaseError> {
    prop_assert_eq!(raw.offsets(), q.offsets());
    for (axis, (a, b)) in [
        ("x", (raw.xs(), q.xs())),
        ("y", (raw.ys(), q.ys())),
        ("t", (raw.ts(), q.ts())),
    ] {
        for (i, (&r, &d)) in a.iter().zip(b).enumerate() {
            prop_assert!(
                (r - d).abs() <= bound,
                "{}[{}]: raw {} vs quantized {} exceeds bound {}",
                axis,
                i,
                r,
                d,
                bound
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Writing quantized shrinks the file, keeps every coordinate within
    /// the stored bound, and reports the bound through `QuantInfo` on
    /// the owned load path.
    #[test]
    fn quantized_snapshot_is_smaller_and_within_bound(
        (db, max_error) in (arb_db(), 0.05..5.0f64),
    ) {
        let store = db.to_store();
        let raw_path = unique_path("raw").with_extension("snap");
        let q_path = unique_path("quant").with_extension("snap");
        write_snapshot_with(&store, None, &raw_path).unwrap();
        write_snapshot_quantized(&store, None, max_error, &q_path).unwrap();

        let raw_len = std::fs::metadata(&raw_path).unwrap().len();
        let q_len = std::fs::metadata(&q_path).unwrap().len();
        prop_assert!(
            q_len < raw_len,
            "quantized {} >= raw {} bytes at bound {}",
            q_len,
            raw_len,
            max_error
        );

        let snap = read_snapshot(&q_path).unwrap();
        let info = snap.quant.expect("quantized file reports QuantInfo");
        prop_assert_eq!(info.max_error.to_bits(), max_error.to_bits());
        // The encoder honours a slightly tighter bound than it stores;
        // allow only float slack here.
        assert_within_bound(&store, &snap.store, max_error * (1.0 + 1e-9))?;
        std::fs::remove_file(&raw_path).ok();
        std::fs::remove_file(&q_path).ok();
    }

    /// Once decoded, quantized data is just data: every index backend,
    /// both load paths, and the sharded engine answer identically on it,
    /// and all of them match the scalar reference scan over the decoded
    /// store.
    #[test]
    fn backends_and_storage_modes_agree_on_quantized_data(
        ((db, max_error), cubes) in (arb_db(), 0.05..2.0f64).prop_flat_map(|(db, e)| {
            let qs = prop::collection::vec(arb_query(&db), 2..5);
            (Just((db, e)), qs)
        }),
    ) {
        let store = db.to_store();
        let q_path = unique_path("agree").with_extension("snap");
        write_snapshot_quantized(&store, None, max_error, &q_path).unwrap();
        let decoded = read_snapshot(&q_path).unwrap().store;

        let shard_dir = unique_path("agree_shards");
        let shards = partition(&decoded, &PartitionStrategy::Hash { parts: 3 });
        ShardSet::write_quantized(&shard_dir, &shards, None, max_error).unwrap();

        for cfg in engine_configs() {
            let opts = DbOptions::new().engine(cfg);
            let owned = TrajDb::open(&q_path, opts.owned()).unwrap();
            let mapped = TrajDb::open(&q_path, opts.mapped()).unwrap();
            let sharded = TrajDb::open(&shard_dir, opts).unwrap();
            prop_assert!(sharded.is_sharded());
            for q in &cubes {
                let expected = range_query_store(&decoded, q);
                for (label, db) in
                    [("owned", &owned), ("mapped", &mapped), ("sharded", &sharded)]
                {
                    prop_assert_eq!(
                        db.range(q),
                        expected.clone(),
                        "{} diverges from reference scan, backend {:?}",
                        label,
                        cfg.backend
                    );
                }
            }
        }
        std::fs::remove_file(&q_path).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }

    /// The PPQ-style accuracy contract: every raw-database range hit is
    /// recovered on the quantized database by expanding the query cube
    /// by the error bound (a point can move at most `max_error` per
    /// axis, so it cannot escape the expanded cube).
    #[test]
    fn expanding_by_the_bound_recovers_raw_hits(
        ((db, max_error), cube) in (arb_db(), 0.05..2.0f64).prop_flat_map(|(db, e)| {
            let q = arb_query(&db);
            (Just((db, e)), q)
        }),
    ) {
        let store = db.to_store();
        let q_path = unique_path("recall").with_extension("snap");
        write_snapshot_quantized(&store, None, max_error, &q_path).unwrap();
        let decoded = read_snapshot(&q_path).unwrap().store;

        let slack = max_error * (1.0 + 1e-9);
        let expanded = Cube {
            x_min: cube.x_min - slack,
            x_max: cube.x_max + slack,
            y_min: cube.y_min - slack,
            y_max: cube.y_max + slack,
            t_min: cube.t_min - slack,
            t_max: cube.t_max + slack,
        };
        let raw_hits = range_query_store(&store, &cube);
        let quant_hits = range_query_store(&decoded, &expanded);
        for id in &raw_hits {
            prop_assert!(
                quant_hits.contains(id),
                "raw hit {:?} missing from quantized expanded-cube results",
                id
            );
        }
        std::fs::remove_file(&q_path).ok();
    }
}
