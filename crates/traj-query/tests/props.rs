//! Property-based tests for the query engine.

use proptest::prelude::*;
use traj_query::knn::{Dissimilarity, KnnQuery};
use traj_query::{
    edr::edr_points,
    f1_sets,
    metrics::F1Score,
    range_query,
    t2vec::T2vecEmbedder,
    traclus::segdist::{components, segment_distance, DistanceWeights, Segment},
    EngineConfig, QueryEngine,
};
use trajectory::snapshot::{write_snapshot_with, MappedStore};
use trajectory::{Cube, KeptBitmap, Point, Simplification, Trajectory, TrajectoryDb};

/// Strategy: a Geolife/T-Drive-shaped database of 1..8 trajectories with
/// 2..40 points each (bounded coordinates, strictly increasing times).
fn arb_db() -> impl Strategy<Value = TrajectoryDb> {
    prop::collection::vec(
        prop::collection::vec((-1e4..1e4f64, -1e4..1e4f64, 0.1..60.0f64), 2..40),
        1..8,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|steps| {
                let mut t = 0.0;
                let pts = steps
                    .into_iter()
                    .map(|(x, y, dt)| {
                        t += dt;
                        Point::new(x, y, t)
                    })
                    .collect();
                Trajectory::new(pts).unwrap()
            })
            .collect()
    })
}

/// Strategy: a query cube positioned relative to the database's bounding
/// cube (fractional center + fractional half-extents), so queries range
/// from empty corners to whole-space covers.
fn arb_query(db: &TrajectoryDb) -> impl Strategy<Value = Cube> {
    let bc = db.bounding_cube();
    (
        (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
        (0.01..0.8f64, 0.01..0.8f64, 0.01..0.8f64),
    )
        .prop_map(move |((fx, fy, ft), (hx, hy, ht))| {
            let (ex, ey, et) = bc.extents();
            Cube::centered(
                bc.x_min + fx * ex,
                bc.y_min + fy * ey,
                bc.t_min + ft * et,
                (hx * ex).max(1e-6),
                (hy * ey).max(1e-6),
                (ht * et).max(1e-6),
            )
        })
}

/// Every engine backend, small tree shape so smoke-size databases still
/// split into multi-level structures.
fn engine_configs() -> [EngineConfig; 3] {
    [
        EngineConfig::scan(),
        EngineConfig::octree().with_tree_shape(6, 8),
        EngineConfig::median_kd().with_tree_shape(6, 8),
    ]
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 0..max).prop_map(|coords| {
        coords
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Point::new(x, y, i as f64))
            .collect()
    })
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64).prop_map(|(ax, ay, bx, by)| Segment {
        a: Point::new(ax, ay, 0.0),
        b: Point::new(bx, by, 1.0),
        traj: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn edr_is_a_bounded_symmetric_premetric(
        (a, b) in (arb_points(15), arb_points(15)),
        eps in 0.1..100.0f64,
    ) {
        let d_ab = edr_points(&a, &b, eps);
        let d_ba = edr_points(&b, &a, eps);
        prop_assert_eq!(d_ab, d_ba, "symmetry");
        prop_assert!(d_ab >= 0.0);
        prop_assert!(d_ab <= a.len().max(b.len()) as f64, "bounded by max length");
        prop_assert_eq!(edr_points(&a, &a, eps), 0.0, "identity");
    }

    #[test]
    fn edr_length_difference_lower_bound(
        (a, b) in (arb_points(15), arb_points(15)),
    ) {
        // At least |len(a) - len(b)| unmatched elements must be edited.
        let d = edr_points(&a, &b, 50.0);
        prop_assert!(d >= (a.len() as f64 - b.len() as f64).abs());
    }

    #[test]
    fn t2vec_embeddings_are_unit_or_zero(pts in arb_points(20)) {
        let e = T2vecEmbedder::default();
        let v = e.embed_points(&pts);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(norm < 1e-9 || (norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn t2vec_distance_symmetric_and_bounded(
        (a, b) in (arb_points(20), arb_points(20)),
    ) {
        let e = T2vecEmbedder::default();
        let va = e.embed_points(&a);
        let vb = e.embed_points(&b);
        let d = T2vecEmbedder::distance(&va, &vb);
        prop_assert!((d - T2vecEmbedder::distance(&vb, &va)).abs() < 1e-12);
        // Two unit vectors are at most 2 apart.
        prop_assert!(d <= 2.0 + 1e-9);
    }

    #[test]
    fn segment_distance_symmetric_nonnegative(
        (x, y) in (arb_segment(), arb_segment()),
    ) {
        let w = DistanceWeights::default();
        let d_xy = segment_distance(&x, &y, &w);
        let d_yx = segment_distance(&y, &x, &w);
        prop_assert!((d_xy - d_yx).abs() < 1e-6, "{d_xy} vs {d_yx}");
        prop_assert!(d_xy >= 0.0);
        let (p, l, a) = components(&x, &y);
        prop_assert!(p >= 0.0 && l >= 0.0 && a >= 0.0);
    }

    #[test]
    fn segment_self_distance_zero(x in arb_segment()) {
        prop_assert!(segment_distance(&x, &x, &DistanceWeights::default()) < 1e-9);
    }

    #[test]
    fn range_query_results_shrink_under_simplification(pts in arb_points(30)) {
        prop_assume!(pts.len() >= 3);
        let full = Trajectory::new(pts.clone()).unwrap();
        // Endpoint-only simplification of the same trajectory.
        let simp = Trajectory::new(vec![pts[0], pts[pts.len() - 1]]).unwrap();
        let db_full = TrajectoryDb::new(vec![full]);
        let db_simp = TrajectoryDb::new(vec![simp]);
        // Any cube: the simplified db can only lose matches, never gain.
        let c = db_full.bounding_cube();
        let (cx, cy, ct) = c.center();
        let (ex, ey, et) = c.extents();
        let q = Cube::centered(cx, cy, ct, ex / 4.0 + 1.0, ey / 4.0 + 1.0, et / 4.0 + 1.0);
        let r_full = range_query(&db_full, &q);
        let r_simp = range_query(&db_simp, &q);
        for id in &r_simp {
            prop_assert!(r_full.contains(id), "simplified matched but original did not");
        }
    }

    #[test]
    fn f1_is_bounded_and_consistent(
        (truth, result) in (
            prop::collection::btree_set(0usize..30, 0..10),
            prop::collection::btree_set(0usize..30, 0..10),
        )
    ) {
        let t: Vec<usize> = truth.into_iter().collect();
        let r: Vec<usize> = result.into_iter().collect();
        let s = f1_sets(&t, &r);
        prop_assert!(s.f1 >= 0.0 && s.f1 <= 1.0);
        prop_assert!(s.precision >= 0.0 && s.precision <= 1.0);
        prop_assert!(s.recall >= 0.0 && s.recall <= 1.0);
        // F1 is 1 iff sets are equal.
        if t == r {
            prop_assert_eq!(s.f1, 1.0);
        }
        if s.f1 == 1.0 {
            prop_assert_eq!(t, r);
        }
    }

    #[test]
    fn engine_range_equals_linear_scan_for_every_backend(
        (db, qf) in arb_db().prop_flat_map(|db| {
            let q = arb_query(&db);
            (Just(db), q)
        })
    ) {
        let expected = range_query(&db, &qf);
        for cfg in engine_configs() {
            let engine = QueryEngine::over(&db, cfg);
            prop_assert_eq!(
                engine.range(&qf),
                expected.clone(),
                "backend {:?}",
                cfg.backend
            );
        }
    }

    #[test]
    fn engine_batch_equals_per_query_execution(db in arb_db()) {
        let bc = db.bounding_cube();
        let (cx, cy, ct) = bc.center();
        let (ex, ey, et) = bc.extents();
        let queries: Vec<Cube> = (0..6)
            .map(|i| {
                let f = (i + 1) as f64 / 7.0;
                Cube::centered(cx, cy, ct, f * ex / 2.0 + 1e-6, f * ey / 2.0 + 1e-6, f * et / 2.0 + 1e-6)
            })
            .collect();
        let engine = QueryEngine::over(&db, EngineConfig::octree().with_tree_shape(6, 8));
        let batch = engine.range_batch(&queries);
        for (i, q) in queries.iter().enumerate() {
            prop_assert_eq!(&batch[i], &range_query(&db, q));
        }
    }

    #[test]
    fn engine_knn_equals_linear_scan_for_every_backend(
        (db, k, f0, f1) in (arb_db(), 1usize..6, 0.0..1.0f64, 0.0..1.0f64)
    ) {
        let (t0, t1) = db.time_span();
        let (lo, hi) = if f0 <= f1 { (f0, f1) } else { (f1, f0) };
        let q = KnnQuery {
            query: db.get(0).clone(),
            ts: t0 + lo * (t1 - t0),
            te: t0 + hi * (t1 - t0),
            k,
            measure: Dissimilarity::Edr { eps: 1_000.0 },
        };
        let expected = q.execute(&db);
        for cfg in engine_configs() {
            let engine = QueryEngine::over(&db, cfg);
            prop_assert_eq!(engine.knn(&q), expected.clone(), "backend {:?}", cfg.backend);
        }
    }

    #[test]
    fn engine_results_identical_on_aos_and_soa_backing(
        (db, qf, k) in arb_db().prop_flat_map(|db| {
            let q = arb_query(&db);
            (Just(db), q, 1usize..5)
        })
    ) {
        // The same database through both storage layouts — an engine built
        // from the AoS `TrajectoryDb` versus one borrowing the columnar
        // `PointStore` — must serve bit-identical range and kNN results on
        // every index backend.
        let store = db.to_store();
        let (t0, t1) = db.time_span();
        let knn = KnnQuery {
            query: db.get(0).clone(),
            ts: t0,
            te: t0 + 0.7 * (t1 - t0),
            k,
            measure: Dissimilarity::Edr { eps: 1_000.0 },
        };
        for cfg in engine_configs() {
            let via_db = QueryEngine::over(&db, cfg);
            let via_store = QueryEngine::over_store(&store, cfg);
            prop_assert_eq!(
                via_db.range(&qf),
                via_store.range(&qf),
                "range, backend {:?}",
                cfg.backend
            );
            prop_assert_eq!(
                via_db.knn(&knn),
                via_store.knn(&knn),
                "knn, backend {:?}",
                cfg.backend
            );
        }
    }

    #[test]
    fn engine_simplified_range_equals_materialized_scan(
        (db, qf, keep_step) in arb_db().prop_flat_map(|db| {
            let q = arb_query(&db);
            (Just(db), q, 2usize..7)
        })
    ) {
        let mut simp = Simplification::most_simplified(&db);
        for (id, t) in db.iter() {
            for idx in (0..t.len() as u32).step_by(keep_step) {
                simp.insert(id, idx);
            }
        }
        let materialized = simp.materialize(&db);
        let expected = range_query(&materialized, &qf);
        for cfg in engine_configs() {
            let engine = QueryEngine::over(&db, cfg);
            prop_assert_eq!(
                engine.range_simplified(&simp, &qf),
                expected.clone(),
                "backend {:?}",
                cfg.backend
            );
        }
    }

    #[test]
    fn maintained_workload_diff_always_matches_scratch_diff(
        (db, inserts) in arb_db().prop_flat_map(|db| {
            let n = db.len();
            let ins = prop::collection::vec((0..n, 0.0..1.0f64), 0..40);
            (Just(db), ins)
        })
    ) {
        let bc = db.bounding_cube();
        let (cx, cy, ct) = bc.center();
        let (ex, ey, et) = bc.extents();
        let queries: Vec<Cube> = (1..5)
            .map(|i| {
                let f = i as f64 / 5.0;
                Cube::centered(cx, cy, ct, f * ex / 2.0 + 1e-6, f * ey / 2.0 + 1e-6, f * et / 2.0 + 1e-6)
            })
            .collect();
        let engine = QueryEngine::over(&db, EngineConfig::octree().with_tree_shape(6, 8));
        let mut simp = Simplification::most_simplified(&db);
        let mut maintained = engine.maintained_workload(queries, &simp);
        for (traj, frac) in inserts {
            let n = db.get(traj).len() as u32;
            if n <= 2 {
                continue;
            }
            let idx = 1 + ((frac * (n - 2) as f64) as u32).min(n - 3);
            if simp.insert(traj, idx) {
                maintained.insert(traj, db.get(traj).point(idx as usize));
            }
            prop_assert!(
                (maintained.diff() - maintained.diff_of(&engine, &simp)).abs() < 1e-12,
                "incremental diff diverged from scratch recomputation"
            );
        }
        for (i, q) in maintained.queries().to_vec().iter().enumerate() {
            prop_assert_eq!(maintained.result(i), engine.range_simplified(&simp, q));
        }
    }

    #[test]
    fn f1_from_counts_harmonic_mean(
        (i, extra_t, extra_r) in (0usize..20, 0usize..20, 0usize..20)
    ) {
        let s = F1Score::from_counts(i, i + extra_t, i + extra_r);
        if i + extra_t == 0 && i + extra_r == 0 {
            prop_assert_eq!(s.f1, 1.0);
        } else if i == 0 {
            prop_assert_eq!(s.f1, 0.0);
        } else {
            let expect = 2.0 * s.precision * s.recall / (s.precision + s.recall);
            prop_assert!((s.f1 - expect).abs() < 1e-12);
        }
    }
}

/// A unique temp path per case so parallel test binaries never collide.
fn unique_snapshot_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("qdts_query_props");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "engine_{}_{}.snap",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_results_identical_on_owned_and_mapped_stores(
        (db, qf, k, keep_flags) in arb_db().prop_flat_map(|db| {
            let q = arb_query(&db);
            let n = db.total_points();
            (Just(db), q, 1usize..6, prop::collection::vec(any::<bool>(), n))
        })
    ) {
        // The acceptance bar of the persistence layer: a database written
        // with write_snapshot and served over a MappedStore must return
        // byte-identical query results to the owned store — for range,
        // kNN, and kept-bitmap (simplified) execution, on every index
        // backend.
        let store = db.to_store();
        let mut kept = KeptBitmap::zeros(store.total_points());
        for (gid, keep) in keep_flags.iter().enumerate() {
            if *keep {
                kept.insert(gid as u32);
            }
        }
        let path = unique_snapshot_path();
        write_snapshot_with(&store, Some(&kept), &path).unwrap();
        let mapped = MappedStore::open(&path).unwrap();
        let mapped_kept = mapped.kept_bitmap().unwrap();

        let (t0, t1) = db.time_span();
        let knn = KnnQuery {
            query: db.get(0).clone(),
            ts: t0,
            te: t0 + 0.6 * (t1 - t0),
            k,
            measure: Dissimilarity::Edr { eps: 1_000.0 },
        };
        for cfg in engine_configs() {
            let owned = QueryEngine::over_store(&store, cfg);
            let served = QueryEngine::over_mapped(&mapped, cfg);
            prop_assert_eq!(
                owned.range(&qf),
                served.range(&qf),
                "range, backend {:?}",
                cfg.backend
            );
            prop_assert_eq!(
                owned.knn(&knn),
                served.knn(&knn),
                "knn, backend {:?}",
                cfg.backend
            );
            prop_assert_eq!(
                owned.range_with_bitmap(&kept, &qf),
                served.range_with_bitmap(&mapped_kept, &qf),
                "range_with_bitmap, backend {:?}",
                cfg.backend
            );
            // A mapped snapshot with a kept section auto-attaches its
            // bitmap, so the reconciled Option-returning surface serves
            // D' with no further plumbing.
            prop_assert_eq!(
                Some(owned.range_with_bitmap(&kept, &qf)),
                served.range_kept(&qf),
                "range_kept, backend {:?}",
                cfg.backend
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
