//! Property-based tests for the query engine.

use proptest::prelude::*;
use traj_query::{
    edr::edr_points, f1_sets, metrics::F1Score, range_query, t2vec::T2vecEmbedder,
    traclus::segdist::{components, segment_distance, DistanceWeights, Segment},
};
use trajectory::{Cube, Point, Trajectory, TrajectoryDb};

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 0..max).prop_map(|coords| {
        coords
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Point::new(x, y, i as f64))
            .collect()
    })
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64).prop_map(|(ax, ay, bx, by)| {
        Segment { a: Point::new(ax, ay, 0.0), b: Point::new(bx, by, 1.0), traj: 0 }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn edr_is_a_bounded_symmetric_premetric(
        (a, b) in (arb_points(15), arb_points(15)),
        eps in 0.1..100.0f64,
    ) {
        let d_ab = edr_points(&a, &b, eps);
        let d_ba = edr_points(&b, &a, eps);
        prop_assert_eq!(d_ab, d_ba, "symmetry");
        prop_assert!(d_ab >= 0.0);
        prop_assert!(d_ab <= a.len().max(b.len()) as f64, "bounded by max length");
        prop_assert_eq!(edr_points(&a, &a, eps), 0.0, "identity");
    }

    #[test]
    fn edr_length_difference_lower_bound(
        (a, b) in (arb_points(15), arb_points(15)),
    ) {
        // At least |len(a) - len(b)| unmatched elements must be edited.
        let d = edr_points(&a, &b, 50.0);
        prop_assert!(d >= (a.len() as f64 - b.len() as f64).abs());
    }

    #[test]
    fn t2vec_embeddings_are_unit_or_zero(pts in arb_points(20)) {
        let e = T2vecEmbedder::default();
        let v = e.embed_points(&pts);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(norm < 1e-9 || (norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn t2vec_distance_symmetric_and_bounded(
        (a, b) in (arb_points(20), arb_points(20)),
    ) {
        let e = T2vecEmbedder::default();
        let va = e.embed_points(&a);
        let vb = e.embed_points(&b);
        let d = T2vecEmbedder::distance(&va, &vb);
        prop_assert!((d - T2vecEmbedder::distance(&vb, &va)).abs() < 1e-12);
        // Two unit vectors are at most 2 apart.
        prop_assert!(d <= 2.0 + 1e-9);
    }

    #[test]
    fn segment_distance_symmetric_nonnegative(
        (x, y) in (arb_segment(), arb_segment()),
    ) {
        let w = DistanceWeights::default();
        let d_xy = segment_distance(&x, &y, &w);
        let d_yx = segment_distance(&y, &x, &w);
        prop_assert!((d_xy - d_yx).abs() < 1e-6, "{d_xy} vs {d_yx}");
        prop_assert!(d_xy >= 0.0);
        let (p, l, a) = components(&x, &y);
        prop_assert!(p >= 0.0 && l >= 0.0 && a >= 0.0);
    }

    #[test]
    fn segment_self_distance_zero(x in arb_segment()) {
        prop_assert!(segment_distance(&x, &x, &DistanceWeights::default()) < 1e-9);
    }

    #[test]
    fn range_query_results_shrink_under_simplification(pts in arb_points(30)) {
        prop_assume!(pts.len() >= 3);
        let full = Trajectory::new(pts.clone()).unwrap();
        // Endpoint-only simplification of the same trajectory.
        let simp = Trajectory::new(vec![pts[0], pts[pts.len() - 1]]).unwrap();
        let db_full = TrajectoryDb::new(vec![full]);
        let db_simp = TrajectoryDb::new(vec![simp]);
        // Any cube: the simplified db can only lose matches, never gain.
        let c = db_full.bounding_cube();
        let (cx, cy, ct) = c.center();
        let (ex, ey, et) = c.extents();
        let q = Cube::centered(cx, cy, ct, ex / 4.0 + 1.0, ey / 4.0 + 1.0, et / 4.0 + 1.0);
        let r_full = range_query(&db_full, &q);
        let r_simp = range_query(&db_simp, &q);
        for id in &r_simp {
            prop_assert!(r_full.contains(id), "simplified matched but original did not");
        }
    }

    #[test]
    fn f1_is_bounded_and_consistent(
        (truth, result) in (
            prop::collection::btree_set(0usize..30, 0..10),
            prop::collection::btree_set(0usize..30, 0..10),
        )
    ) {
        let t: Vec<usize> = truth.into_iter().collect();
        let r: Vec<usize> = result.into_iter().collect();
        let s = f1_sets(&t, &r);
        prop_assert!(s.f1 >= 0.0 && s.f1 <= 1.0);
        prop_assert!(s.precision >= 0.0 && s.precision <= 1.0);
        prop_assert!(s.recall >= 0.0 && s.recall <= 1.0);
        // F1 is 1 iff sets are equal.
        if t == r {
            prop_assert_eq!(s.f1, 1.0);
        }
        if s.f1 == 1.0 {
            prop_assert_eq!(t, r);
        }
    }

    #[test]
    fn f1_from_counts_harmonic_mean(
        (i, extra_t, extra_r) in (0usize..20, 0usize..20, 0usize..20)
    ) {
        let s = F1Score::from_counts(i, i + extra_t, i + extra_r);
        if i + extra_t == 0 && i + extra_r == 0 {
            prop_assert_eq!(s.f1, 1.0);
        } else if i == 0 {
            prop_assert_eq!(s.f1, 0.0);
        } else {
            let expect = 2.0 * s.precision * s.recall / (s.precision + s.recall);
            prop_assert!((s.f1 - expect).abs() < 1e-12);
        }
    }
}
