//! Property tests of the sharding layer's core promise: a
//! `ShardedQueryEngine` returns **byte-identical results** to a
//! single-store `QueryEngine` over the unsharded database — for range,
//! kNN, similarity, and simplified-database execution, across every
//! partitioner (grid / time / hash) and every index backend (scan /
//! octree / median kd-tree), including shards served off read-only
//! mappings — plus the shard-set persistence round-trip.

use proptest::prelude::*;
use traj_query::knn::{Dissimilarity, KnnQuery};
use traj_query::{range_query, EngineConfig, QueryEngine, ShardedQueryEngine, SimilarityQuery};
use trajectory::shard::{partition, PartitionStrategy, ShardSet};
use trajectory::{Cube, Point, Simplification, Trajectory, TrajectoryDb};

/// Strategy: a Geolife/T-Drive-shaped database of 1..8 trajectories with
/// 2..40 points each (bounded coordinates, strictly increasing times).
fn arb_db() -> impl Strategy<Value = TrajectoryDb> {
    prop::collection::vec(
        prop::collection::vec((-1e4..1e4f64, -1e4..1e4f64, 0.1..60.0f64), 2..40),
        1..8,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|steps| {
                let mut t = 0.0;
                let pts = steps
                    .into_iter()
                    .map(|(x, y, dt)| {
                        t += dt;
                        Point::new(x, y, t)
                    })
                    .collect();
                Trajectory::new(pts).unwrap()
            })
            .collect()
    })
}

/// Strategy: a query cube positioned relative to the database's bounding
/// cube, ranging from empty corners to whole-space covers.
fn arb_query(db: &TrajectoryDb) -> impl Strategy<Value = Cube> {
    let bc = db.bounding_cube();
    (
        (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
        (0.01..0.8f64, 0.01..0.8f64, 0.01..0.8f64),
    )
        .prop_map(move |((fx, fy, ft), (hx, hy, ht))| {
            let (ex, ey, et) = bc.extents();
            Cube::centered(
                bc.x_min + fx * ex,
                bc.y_min + fy * ey,
                bc.t_min + ft * et,
                (hx * ex).max(1e-6),
                (hy * ey).max(1e-6),
                (ht * et).max(1e-6),
            )
        })
}

fn engine_configs() -> [EngineConfig; 3] {
    [
        EngineConfig::scan(),
        EngineConfig::octree().with_tree_shape(6, 8),
        EngineConfig::median_kd().with_tree_shape(6, 8),
    ]
}

fn partition_strategies() -> [PartitionStrategy; 3] {
    [
        PartitionStrategy::Grid { nx: 2, ny: 2 },
        PartitionStrategy::Time { parts: 3 },
        PartitionStrategy::Hash { parts: 3 },
    ]
}

/// A unique temp dir per case so parallel test binaries never collide.
fn unique_shard_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir()
        .join("qdts_sharded_props")
        .join(format!(
            "case_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_range_equals_single_store_everywhere(
        (db, qf) in arb_db().prop_flat_map(|db| {
            let q = arb_query(&db);
            (Just(db), q)
        })
    ) {
        let store = db.to_store();
        for cfg in engine_configs() {
            let single = QueryEngine::over_store(&store, cfg);
            let expected = single.range(&qf);
            prop_assert_eq!(&expected, &range_query(&db, &qf), "engine vs scan");
            for strategy in partition_strategies() {
                let sharded = ShardedQueryEngine::from_partition(&store, &strategy, cfg);
                prop_assert_eq!(
                    sharded.range(&qf),
                    expected.clone(),
                    "range: {:?} over {:?}",
                    strategy,
                    cfg.backend
                );
                prop_assert_eq!(
                    sharded.range_batch(std::slice::from_ref(&qf)).remove(0),
                    expected.clone(),
                    "range_batch: {:?} over {:?}",
                    strategy,
                    cfg.backend
                );
            }
        }
    }

    #[test]
    fn sharded_knn_equals_single_store_everywhere(
        (db, k, f0, f1) in (arb_db(), 1usize..6, 0.0..1.2f64, 0.0..1.2f64)
    ) {
        // The window fractions deliberately overshoot past the database's
        // time span so degenerate (empty-window) queries are exercised.
        let store = db.to_store();
        let (t0, t1) = db.time_span();
        let (lo, hi) = if f0 <= f1 { (f0, f1) } else { (f1, f0) };
        let q = KnnQuery {
            query: db.get(0).clone(),
            ts: t0 + lo * (t1 - t0),
            te: t0 + hi * (t1 - t0),
            k,
            measure: Dissimilarity::Edr { eps: 1_000.0 },
        };
        for cfg in engine_configs() {
            let expected = QueryEngine::over_store(&store, cfg).knn(&q);
            for strategy in partition_strategies() {
                let sharded = ShardedQueryEngine::from_partition(&store, &strategy, cfg);
                prop_assert_eq!(
                    sharded.knn(&q),
                    expected.clone(),
                    "knn: {:?} over {:?}",
                    strategy,
                    cfg.backend
                );
            }
        }
    }

    #[test]
    fn sharded_similarity_equals_single_store_everywhere(
        (db, delta, f0, f1) in (arb_db(), 10.0..5e3f64, 0.0..1.0f64, 0.0..1.0f64)
    ) {
        let store = db.to_store();
        let (t0, t1) = db.time_span();
        let (lo, hi) = if f0 <= f1 { (f0, f1) } else { (f1, f0) };
        let q = SimilarityQuery {
            query: db.get(0).clone(),
            ts: t0 + lo * (t1 - t0),
            te: t0 + hi * (t1 - t0),
            delta,
            step: 5.0,
        };
        let expected = QueryEngine::over_store(&store, EngineConfig::octree()).similarity(&q);
        for strategy in partition_strategies() {
            let sharded =
                ShardedQueryEngine::from_partition(&store, &strategy, EngineConfig::octree());
            prop_assert_eq!(
                sharded.similarity(&q),
                expected.clone(),
                "similarity: {:?}",
                strategy
            );
        }
    }

    #[test]
    fn sharded_range_simplified_equals_single_store(
        (db, qf, keep_step) in arb_db().prop_flat_map(|db| {
            let q = arb_query(&db);
            (Just(db), q, 2usize..7)
        })
    ) {
        let store = db.to_store();
        let mut simp = Simplification::most_simplified(&db);
        for (id, t) in db.iter() {
            for idx in (0..t.len() as u32).step_by(keep_step) {
                simp.insert(id, idx);
            }
        }
        for cfg in engine_configs() {
            let expected = QueryEngine::over_store(&store, cfg).range_simplified(&simp, &qf);
            for strategy in partition_strategies() {
                let sharded = ShardedQueryEngine::from_partition(&store, &strategy, cfg);
                let local = sharded.shard_simplification(&simp);
                prop_assert_eq!(
                    sharded.range_simplified_local(&local, &qf),
                    expected.clone(),
                    "range_simplified_local: {:?} over {:?}",
                    strategy,
                    cfg.backend
                );
                prop_assert_eq!(
                    sharded.range_simplified(&simp, &qf),
                    expected.clone(),
                    "range_simplified: {:?} over {:?}",
                    strategy,
                    cfg.backend
                );
            }
        }
    }

    #[test]
    fn sharded_workload_diff_equals_single_store(
        db in arb_db()
    ) {
        let store = db.to_store();
        let bc = db.bounding_cube();
        let (cx, cy, ct) = bc.center();
        let (ex, ey, et) = bc.extents();
        let queries: Vec<Cube> = (1..5)
            .map(|i| {
                let f = i as f64 / 5.0;
                Cube::centered(cx, cy, ct, f * ex / 2.0 + 1e-6, f * ey / 2.0 + 1e-6, f * et / 2.0 + 1e-6)
            })
            .collect();
        let mut simp = Simplification::most_simplified(&db);
        for (id, t) in db.iter() {
            for idx in (0..t.len() as u32).step_by(3) {
                simp.insert(id, idx);
            }
        }
        let single = QueryEngine::over_store(&store, EngineConfig::octree());
        let single_w = single.maintained_workload(queries.clone(), &simp);
        for strategy in partition_strategies() {
            let sharded =
                ShardedQueryEngine::from_partition(&store, &strategy, EngineConfig::octree());
            let sharded_w = sharded.maintained_workload(queries.clone(), &simp);
            prop_assert!((single_w.diff() - sharded_w.diff()).abs() < 1e-12, "{:?}", strategy);
            for i in 0..queries.len() {
                prop_assert_eq!(single_w.truth(i), sharded_w.truth(i));
                prop_assert_eq!(single_w.result(i), sharded_w.result(i));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mmap_backed_shards_serve_identically_and_round_trip(
        (db, qf, k) in arb_db().prop_flat_map(|db| {
            let q = arb_query(&db);
            (Just(db), q, 1usize..5)
        })
    ) {
        // Persistence round-trip + serving parity: partition, write the
        // shard set, reopen owned AND mapped, and require byte-identical
        // results to the single-store engine from both.
        let store = db.to_store();
        let (t0, t1) = db.time_span();
        let knn = KnnQuery {
            query: db.get(0).clone(),
            ts: t0,
            te: t0 + 0.7 * (t1 - t0),
            k,
            measure: Dissimilarity::Edr { eps: 1_000.0 },
        };
        for strategy in partition_strategies() {
            let shards = partition(&store, &strategy);
            let dir = unique_shard_dir();
            let written = ShardSet::write(&dir, &shards).unwrap();
            let set = ShardSet::load(&dir).unwrap();
            prop_assert_eq!(&set, &written, "manifest round-trip");
            prop_assert_eq!(set.unify().unwrap(), store.clone(), "unify inverts partition");

            // Owned reopen matches the original shards exactly.
            let owned = set.open_owned().unwrap();
            for (open, shard) in owned.iter().zip(&shards) {
                prop_assert_eq!(&open.store, &shard.store);
                prop_assert_eq!(&open.global_ids, &shard.global_ids);
            }

            for cfg in engine_configs() {
                let single = QueryEngine::over_store(&store, cfg);
                let mapped = set.open_mapped().unwrap();
                let served = ShardedQueryEngine::from_mapped_shards(mapped, cfg);
                prop_assert_eq!(
                    served.range(&qf),
                    single.range(&qf),
                    "mapped range: {:?} over {:?}",
                    strategy,
                    cfg.backend
                );
                prop_assert_eq!(
                    served.knn(&knn),
                    single.knn(&knn),
                    "mapped knn: {:?} over {:?}",
                    strategy,
                    cfg.backend
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn persisted_kept_bitmaps_serve_simplified_results(
        (db, qf, keep_step) in arb_db().prop_flat_map(|db| {
            let q = arb_query(&db);
            (Just(db), q, 2usize..6)
        })
    ) {
        // A sharded simplified database (per-shard kept bitmaps) must
        // serve the same D' results as the single-store engine over the
        // equivalent global simplification.
        let store = db.to_store();
        let mut simp = Simplification::most_simplified(&db);
        for (id, t) in db.iter() {
            for idx in (0..t.len() as u32).step_by(keep_step) {
                simp.insert(id, idx);
            }
        }
        let single = QueryEngine::over_store(&store, EngineConfig::octree());
        let expected = single.range_simplified(&simp, &qf);
        for strategy in partition_strategies() {
            let shards = partition(&store, &strategy);
            // Per-shard local simplifications derived from the global one.
            let locals: Vec<Simplification> = shards
                .iter()
                .map(|sh| {
                    let kept: Vec<Vec<u32>> = sh
                        .global_ids
                        .iter()
                        .map(|&g| simp.kept(g).to_vec())
                        .collect();
                    Simplification::from_kept_store(&sh.store, kept)
                })
                .collect();
            let dir = unique_shard_dir();
            traj_simp::write_simplified_shard_set(&dir, &shards, &locals).unwrap();
            let mapped = ShardSet::load(&dir).unwrap().open_mapped().unwrap();
            let served = ShardedQueryEngine::from_mapped_shards(mapped, EngineConfig::octree());
            prop_assert!(served.has_kept_bitmaps());
            prop_assert_eq!(
                served.range_kept(&qf).unwrap(),
                expected.clone(),
                "kept serving: {:?}",
                strategy
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
