//! Similarity queries (§III-B, after Chen & Patel's trajectory join).
//!
//! Given a query trajectory `Tq`, a time window `[ts, te]`, and a distance
//! threshold δ, return every trajectory that stays within δ of `Tq` at
//! *every* instant of the window. Positions between samples are
//! synchronized by linear interpolation — the definition quantifies over
//! all times `i` in the window, so (unlike the point-based range query)
//! this query interpolates on both databases.

use trajectory::{AsColumns, PointSeq, TrajId, Trajectory, TrajectoryDb};

/// A similarity query instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityQuery {
    /// The query trajectory.
    pub query: Trajectory,
    /// Window start.
    pub ts: f64,
    /// Window end.
    pub te: f64,
    /// Distance threshold δ (paper: 5 km).
    pub delta: f64,
    /// Synchronization time step for checking the "for all i" condition
    /// (seconds). The check also evaluates both trajectories' own sample
    /// times inside the window, so no sampled deviation is missed.
    pub step: f64,
}

impl SimilarityQuery {
    /// Executes the query, returning matching ids ascending.
    pub fn execute(&self, db: &TrajectoryDb) -> Vec<TrajId> {
        db.iter()
            .filter(|(_, t)| self.matches(t))
            .map(|(id, _)| id)
            .collect()
    }

    /// [`SimilarityQuery::execute`] over columnar storage (anything
    /// [`AsColumns`]) — candidates are zero-copy views, the checking logic
    /// is shared.
    pub fn execute_store<S: AsColumns + ?Sized>(&self, store: &S) -> Vec<TrajId> {
        store
            .iter()
            .filter(|(_, v)| self.matches_seq(v))
            .map(|(id, _)| id)
            .collect()
    }

    /// True when `t` stays within δ of the query over the whole window.
    pub fn matches(&self, t: &Trajectory) -> bool {
        self.matches_seq(t)
    }

    /// Layout-agnostic core of [`SimilarityQuery::matches`]: `t` may be an
    /// AoS [`Trajectory`] or a zero-copy column view.
    ///
    /// A trajectory that does not overlap the window temporally cannot
    /// testify about it and is rejected; the window is first clipped to the
    /// *query* trajectory's own span (the query cannot demand testimony
    /// about times it does not cover itself).
    pub fn matches_seq<S: PointSeq + ?Sized>(&self, t: &S) -> bool {
        let (q0, q1) = self.query.seq_time_span();
        let ts = self.ts.max(q0);
        let te = self.te.min(q1);
        if ts > te {
            // Window misses the query trajectory entirely: vacuous truth
            // would make every trajectory match; reject instead.
            return false;
        }
        let (t0, t1) = t.seq_time_span();
        if t1 < ts || t0 > te {
            return false;
        }

        // Check at a regular grid plus both trajectories' sample times.
        let step = if self.step > 0.0 {
            self.step
        } else {
            (te - ts).max(1.0) / 16.0
        };
        let mut check_times: Vec<f64> = Vec::new();
        let mut t_cursor = ts;
        while t_cursor < te {
            check_times.push(t_cursor);
            t_cursor += step;
        }
        check_times.push(te);
        if let Some((lo, hi)) = self.query.seq_window_indices(ts, te) {
            check_times.extend((lo..=hi).map(|i| self.query.point_at(i).t));
        }
        if let Some((lo, hi)) = t.seq_window_indices(ts, te) {
            check_times.extend((lo..=hi).map(|i| t.point_at(i).t));
        }
        check_times.iter().all(|&time| {
            let qp = self.query.seq_position_at(time);
            let tp = t.seq_position_at(time);
            qp.spatial_distance(&tp) <= self.delta
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::Point;

    fn line(y: f64, t0: f64, n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| Point::new(i as f64 * 10.0, y, t0 + i as f64))
                .collect(),
        )
        .unwrap()
    }

    fn query(delta: f64) -> SimilarityQuery {
        SimilarityQuery {
            query: line(0.0, 0.0, 10),
            ts: 0.0,
            te: 9.0,
            delta,
            step: 0.5,
        }
    }

    #[test]
    fn close_parallel_trajectory_matches() {
        let db = TrajectoryDb::new(vec![line(3.0, 0.0, 10)]);
        assert_eq!(query(5.0).execute(&db), vec![0]);
    }

    #[test]
    fn distant_trajectory_does_not_match() {
        let db = TrajectoryDb::new(vec![line(100.0, 0.0, 10)]);
        assert!(query(5.0).execute(&db).is_empty());
    }

    #[test]
    fn must_hold_at_every_instant() {
        // Starts close, then diverges mid-window: must NOT match.
        let diverging = Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(40.0, 0.0, 4.0),
            Point::new(50.0, 500.0, 5.0),
            Point::new(90.0, 0.0, 9.0),
        ])
        .unwrap();
        let db = TrajectoryDb::new(vec![diverging]);
        assert!(query(5.0).execute(&db).is_empty());
    }

    #[test]
    fn interpolated_excursions_are_caught() {
        // The excursion happens *between* the grid instants: sample times
        // of the candidate itself must be checked too.
        let spike = Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(42.0, 300.0, 4.2),
            Point::new(90.0, 0.0, 9.0),
        ])
        .unwrap();
        let db = TrajectoryDb::new(vec![spike]);
        let mut q = query(50.0);
        q.step = 9.0; // coarse grid that would miss t=4.2
        assert!(q.execute(&db).is_empty());
    }

    #[test]
    fn temporally_disjoint_trajectory_is_rejected() {
        let db = TrajectoryDb::new(vec![line(0.0, 1_000.0, 10)]);
        assert!(query(5.0).execute(&db).is_empty());
    }

    #[test]
    fn window_outside_query_span_matches_nothing() {
        let db = TrajectoryDb::new(vec![line(0.0, 0.0, 10)]);
        let q = SimilarityQuery {
            query: line(0.0, 0.0, 10),
            ts: 100.0,
            te: 200.0,
            delta: 5.0,
            step: 1.0,
        };
        assert!(q.execute(&db).is_empty());
    }

    #[test]
    fn query_matches_itself() {
        let db = TrajectoryDb::new(vec![line(0.0, 0.0, 10)]);
        assert_eq!(query(0.1).execute(&db), vec![0]);
    }

    #[test]
    fn execute_store_matches_aos_execute() {
        let db = TrajectoryDb::new(vec![
            line(3.0, 0.0, 10),
            line(100.0, 0.0, 10),
            line(0.0, 1_000.0, 10),
        ]);
        let store = db.to_store();
        for delta in [0.1, 5.0, 500.0] {
            let q = query(delta);
            assert_eq!(q.execute(&db), q.execute_store(&store), "delta {delta}");
        }
    }
}
