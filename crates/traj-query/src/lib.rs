//! Trajectory query engine for the RL4QDTS reproduction.
//!
//! Implements the four query operators of §III-B — [`range`] queries,
//! [`knn`] queries (with [`edr`] and a [`t2vec`]-like embedding as the
//! dissimilarity Θ), [`similarity`] queries, and [`traclus`](mod@traclus) clustering —
//! plus the query [`workload`] generators used for training and evaluation
//! and the F1 quality [`metrics`] (Eq. 3) that compare results on the
//! original and simplified databases.

#![warn(missing_docs)]

pub mod edr;
pub mod join;
pub mod knn;
pub mod metrics;
pub mod range;
pub mod similarity;
pub mod t2vec;
pub mod traclus;
pub mod workload;

pub use join::{similarity_join, JoinParams};
pub use knn::{Dissimilarity, KnnQuery};
pub use metrics::{f1_pairs, f1_sets, mean_f1, query_diff, F1Score};
pub use range::{range_query, range_query_batch};
pub use similarity::SimilarityQuery;
pub use t2vec::T2vecEmbedder;
pub use traclus::{traclus, TraclusParams, TraclusResult};
pub use workload::{
    range_workload, traj_query_workload, QueryDistribution, RangeWorkloadSpec, TrajQuerySpec,
};
