//! Trajectory query engine for the RL4QDTS reproduction.
//!
//! Implements the four query operators of §III-B — [`range`] queries,
//! [`knn`] queries (with [`edr`] and a [`t2vec`]-like embedding as the
//! dissimilarity Θ), [`similarity`] queries, and [`traclus`](mod@traclus) clustering —
//! plus the query [`workload`] generators used for training and evaluation
//! and the F1 quality [`metrics`] (Eq. 3) that compare results on the
//! original and simplified databases.
//!
//! # The canonical execution path
//!
//! The per-operator functions ([`range_query`], [`KnnQuery::execute`],
//! [`SimilarityQuery::execute`]) are O(N) linear scans over the AoS
//! [`trajectory::TrajectoryDb`] and remain the semantic reference.
//! Production consumers should construct a [`QueryEngine`] instead: it
//! owns (or borrows) a columnar [`trajectory::PointStore`] together with
//! a spatio-temporal index backend ([`BackendKind`]: octree, median
//! kd-tree, or the naive scan), prunes query execution through the index
//! straight over the coordinate columns, runs batch workloads
//! data-parallel across cores, and — via [`MaintainedWorkload`] — keeps a
//! workload's results over a growing simplification incrementally up to
//! date instead of rescanning. Property tests guarantee engine results
//! equal the AoS scans for every backend — the SoA/AoS equality the
//! storage refactor is pinned to.
//!
//! Every store access goes through [`trajectory::AsColumns`], so the
//! engine serves heap-owned stores and mmap-backed snapshot files
//! ([`trajectory::MappedStore`]) through identical code paths — see
//! [`QueryEngine::over_mapped`] and `docs/ARCHITECTURE.md`.
//!
//! Sharded databases (`trajectory::shard`) are served by a
//! [`ShardedQueryEngine`]: per-shard indexes built in parallel, queries
//! routed to the shards whose bounds can contribute, results merged to
//! match the single-store engine byte-for-byte (see [`sharded`]).
//!
//! Both engines sit behind the public façade in [`db`]: the
//! [`QueryExecutor`] trait (one signature set over every layout), typed
//! [`Query`]/[`QueryResult`] pairs with heterogeneous [`QueryBatch`]
//! plans executed in a single data-parallel pass, and [`TrajDb`] —
//! [`TrajDb::open`] auto-detects CSV vs snapshot vs shard directory and
//! serves whatever it finds through the same API.
//!
//! # Example: build once, serve ranges, kNN, and similarity
//!
//! ```
//! use traj_query::{
//!     range_workload_store, EngineConfig, QueryDistribution, QueryEngine, RangeWorkloadSpec,
//! };
//! use trajectory::gen::{generate, DatasetSpec, Scale};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let store = generate(&DatasetSpec::geolife(Scale::Smoke), 9).to_store();
//! let engine = QueryEngine::over_store(&store, EngineConfig::octree());
//!
//! let spec = RangeWorkloadSpec::paper_default(10, QueryDistribution::Data);
//! let queries = range_workload_store(&store, &spec, &mut StdRng::seed_from_u64(1));
//! let results = engine.range_batch(&queries);
//! assert_eq!(results.len(), 10);
//! // Data-centered queries always contain the point they were centered on.
//! assert!(results.iter().all(|ids| !ids.is_empty()));
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod edr;
pub mod engine;
pub mod generational;
pub mod join;
pub mod knn;
pub mod metrics;
pub mod range;
pub mod sharded;
pub mod similarity;
pub mod t2vec;
pub mod traclus;
pub mod workload;

pub use db::{
    DbOptions, OpenMode, Query, QueryBatch, QueryExecutor, QueryKind, QueryResult, TrajDb,
    TrajDbError,
};
pub use engine::{BackendKind, EngineConfig, MaintainedWorkload, QueryEngine};
pub use generational::{
    spawn_compactor, CompactionReport, CompactorHandle, GenError, GenerationalDb, IngestReport,
    SimpFactory,
};
pub use join::{similarity_join, JoinParams};
pub use knn::{Dissimilarity, KnnQuery};
pub use metrics::{f1_pairs, f1_sets, mean_f1, query_diff, F1Score};
pub use range::{range_query, range_query_batch, range_query_store};
pub use sharded::{
    knn_take_fill, merge_global_ids, merge_knn_candidates, query_touches_bounds,
    ShardedQueryEngine, ShardedSimplification,
};
pub use similarity::SimilarityQuery;
pub use t2vec::T2vecEmbedder;
pub use traclus::{traclus, TraclusParams, TraclusResult};
/// The shared scoped-thread parallel map (re-exported from the data
/// substrate so existing `traj_query::parallel` users keep working).
pub use trajectory::parallel;
pub use workload::{
    range_workload, range_workload_store, traj_query_workload, QueryDistribution,
    RangeWorkloadSpec, TrajQuerySpec,
};
