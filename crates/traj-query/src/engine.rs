//! The canonical query-execution path: an index-accelerated, parallel
//! [`QueryEngine`].
//!
//! Every query operator in this crate has a straightforward linear-scan
//! definition (`range_query`, [`KnnQuery::execute`],
//! [`SimilarityQuery::execute`]); those remain the semantic reference. The
//! engine executes the *same* queries against a spatio-temporal index
//! (octree or median kd-tree from `traj-index`) with cube pruning, and runs
//! batch workloads data-parallel across all cores. Property tests assert
//! result-set equality between the engine and the scans for every backend.
//!
//! Beyond one-shot execution, the engine supports the access pattern at the
//! heart of RL4QDTS's training loop (Eq. 10): a fixed range-query workload
//! repeatedly evaluated against a *growing* simplification. A
//! [`MaintainedWorkload`] keeps every query's result set — and its F1
//! against the ground truth — incrementally up to date as points are
//! re-introduced, turning the per-window reward from a full O(W·N) rescan
//! into O(W) bookkeeping per insertion.

use std::collections::HashMap;

use traj_index::{
    CubeIndex, MedianTree, MedianTreeConfig, NodeId, Octree, OctreeConfig, SpatioTemporalIndex,
};
use trajectory::{
    AsColumns, Cube, KeptBitmap, MappedStore, Point, PointStore, Simplification, StoreRef, TrajId,
    TrajectoryDb,
};

use crate::knn::KnnQuery;
use crate::metrics::{f1_sets, F1Score};
use crate::parallel::{par_map, par_map_with};
use crate::range::range_query_store;
use crate::similarity::SimilarityQuery;

/// Reusable per-worker scratch for batch execution: the hit-flag buffer
/// every range-style marking pass needs, allocated once per worker
/// thread and recycled across the queries it processes (instead of one
/// fresh `vec![false; M]` per query).
pub(crate) struct QueryScratch {
    hit: Vec<bool>,
}

impl QueryScratch {
    /// An empty scratch; buffers grow on first use.
    pub(crate) fn new() -> Self {
        Self { hit: Vec::new() }
    }

    /// The hit-flag buffer, cleared and sized to `len` trajectories.
    fn hit(&mut self, len: usize) -> &mut [bool] {
        self.hit.clear();
        self.hit.resize(len, false);
        &mut self.hit
    }
}

/// Which index structure backs a [`QueryEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// No index: every query is a linear scan (the reference behaviour,
    /// and the fallback for workloads too small to amortize an index).
    Scan,
    /// Spatio-temporal octree (the paper's index).
    #[default]
    Octree,
    /// Median-split kd-tree bundled 8-ary.
    MedianKd,
}

impl BackendKind {
    /// Display label for tables and benchmark ids.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Scan => "scan",
            BackendKind::Octree => "octree",
            BackendKind::MedianKd => "median-kd",
        }
    }
}

/// Build parameters for a [`QueryEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The index backend.
    pub backend: BackendKind,
    /// Maximum index depth (root = 1).
    pub max_depth: u32,
    /// Leaf split threshold.
    pub leaf_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            backend: BackendKind::Octree,
            max_depth: 12,
            leaf_capacity: 64,
        }
    }
}

impl EngineConfig {
    /// An octree-backed configuration with default tree shape.
    #[must_use]
    pub fn octree() -> Self {
        Self::default()
    }

    /// A scan (no-index) configuration.
    #[must_use]
    pub fn scan() -> Self {
        Self {
            backend: BackendKind::Scan,
            ..Self::default()
        }
    }

    /// A median kd-tree configuration with default tree shape.
    #[must_use]
    pub fn median_kd() -> Self {
        Self {
            backend: BackendKind::MedianKd,
            ..Self::default()
        }
    }

    /// Overrides the backend.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the tree shape.
    #[must_use]
    pub fn with_tree_shape(mut self, max_depth: u32, leaf_capacity: usize) -> Self {
        self.max_depth = max_depth;
        self.leaf_capacity = leaf_capacity;
        self
    }
}

/// The constructed index.
pub(crate) enum IndexBackend {
    Scan,
    Octree(Octree),
    MedianKd(MedianTree),
}

/// Owns (or borrows) a columnar store — heap-backed [`PointStore`] or
/// mmap-backed [`MappedStore`], behind a [`StoreRef`] — plus an index over
/// it, and executes all query types through one pruned, parallel path.
///
/// Construction is the only O(N log N) step; afterwards each range query
/// touches only the index nodes intersecting its cube, and every point
/// test is three contiguous column loads. The engine is the seam every
/// consumer goes through: training rewards (`rl4qdts`), the evaluation
/// suite, the benchmarks, and the serving examples. Because every access
/// goes through [`AsColumns`], a snapshot file opened with
/// [`MappedStore::open`] serves queries with zero deserialization
/// ([`QueryEngine::from_mapped`] / [`QueryEngine::over_mapped`]).
pub struct QueryEngine<'a> {
    store: StoreRef<'a>,
    /// The engine's own simplified-database selection, when it serves one:
    /// populated automatically from a mapped snapshot's kept-bitmap
    /// section, or attached with [`QueryEngine::set_kept_bitmap`]. This is
    /// what [`QueryEngine::range_kept`] queries — the same `Option`
    /// semantics as the sharded engine, so both sides of
    /// [`QueryExecutor`](crate::QueryExecutor) agree.
    kept: Option<KeptBitmap>,
    backend: IndexBackend,
    config: EngineConfig,
}

impl QueryEngine<'static> {
    /// Builds an engine owning the columnar conversion of `db`.
    #[must_use]
    pub fn new(db: TrajectoryDb, config: EngineConfig) -> Self {
        Self::from_store(db.to_store(), config)
    }

    /// Builds an engine from an AoS database reference (converted to
    /// columns once; the engine owns the columns, so the returned engine
    /// does not borrow `db`).
    #[must_use]
    pub fn over(db: &TrajectoryDb, config: EngineConfig) -> Self {
        Self::from_store(db.to_store(), config)
    }

    /// Builds an engine owning `store` — the canonical, copy-free
    /// constructor.
    #[must_use]
    pub fn from_store(store: PointStore, config: EngineConfig) -> Self {
        let backend = build_backend(&store, config);
        Self {
            store: StoreRef::Owned(store),
            kept: None,
            backend,
            config,
        }
    }

    /// Builds an engine owning an mmap-backed store: queries execute
    /// straight off the file mapping, so cold start is the index build
    /// alone — no CSV parse, no column deserialization. When the snapshot
    /// carries a kept bitmap (a persisted simplified database), it is
    /// retained so [`QueryEngine::range_kept`] serves `D'` immediately.
    #[must_use]
    pub fn from_mapped(store: MappedStore, config: EngineConfig) -> Self {
        let backend = build_backend(&store, config);
        let kept = store.kept_bitmap();
        Self {
            store: StoreRef::Mapped(store),
            kept,
            backend,
            config,
        }
    }
}

impl<'a> QueryEngine<'a> {
    /// Builds an engine borrowing `store` (zero copy; same execution
    /// paths).
    #[must_use]
    pub fn over_store(store: &'a PointStore, config: EngineConfig) -> Self {
        let backend = build_backend(store, config);
        Self {
            store: StoreRef::Borrowed(store),
            kept: None,
            backend,
            config,
        }
    }

    /// Builds an engine borrowing an mmap-backed store (zero copy; same
    /// execution paths as [`QueryEngine::over_store`]). A kept bitmap in
    /// the snapshot is retained for [`QueryEngine::range_kept`].
    #[must_use]
    pub fn over_mapped(store: &'a MappedStore, config: EngineConfig) -> Self {
        let backend = build_backend(store, config);
        let kept = store.kept_bitmap();
        Self {
            store: StoreRef::MappedRef(store),
            kept,
            backend,
            config,
        }
    }

    /// Assembles an engine from a store handle and an index already built
    /// over it (with [`build_backend`]) — the seam that lets the sharded
    /// engine run all shard index builds in parallel first and attach the
    /// stores afterwards. The caller guarantees `backend` was built over
    /// exactly these columns.
    pub(crate) fn from_backend(
        store: StoreRef<'a>,
        backend: IndexBackend,
        config: EngineConfig,
    ) -> Self {
        Self {
            store,
            kept: None,
            backend,
            config,
        }
    }

    /// Attaches (or clears) the kept bitmap [`QueryEngine::range_kept`]
    /// serves. Callers that computed a [`Simplification`] attach its
    /// bitmap (`simp.to_bitmap(engine.store())`) to serve `D'` through
    /// the same engine that serves `D`.
    ///
    /// # Panics
    /// Panics when the bitmap's point count differs from the store's —
    /// a bitmap built for a different store would otherwise surface as
    /// an index-out-of-bounds (or silently wrong results) deep inside
    /// query execution.
    pub fn set_kept_bitmap(&mut self, kept: Option<KeptBitmap>) {
        if let Some(kept) = &kept {
            assert_eq!(
                kept.len(),
                self.store.total_points(),
                "kept bitmap covers a different point count than the store"
            );
        }
        self.kept = kept;
    }

    /// Builder form of [`QueryEngine::set_kept_bitmap`] (same length
    /// validation).
    #[must_use]
    pub fn with_kept_bitmap(mut self, kept: KeptBitmap) -> Self {
        self.set_kept_bitmap(Some(kept));
        self
    }

    /// The kept bitmap this engine serves through
    /// [`QueryEngine::range_kept`], if any.
    #[must_use]
    pub fn kept_bitmap(&self) -> Option<&KeptBitmap> {
        self.kept.as_ref()
    }

    /// True when the engine carries a kept bitmap — i.e.
    /// [`QueryEngine::range_kept`] serves a simplified database.
    #[must_use]
    pub fn has_kept_bitmap(&self) -> bool {
        self.kept.is_some()
    }

    /// The underlying columnar storage (owned, borrowed, or mapped). All
    /// read access goes through [`AsColumns`]; call
    /// [`StoreRef::as_point_store`] when a heap-backed store specifically
    /// is required.
    #[inline]
    #[must_use]
    pub fn store(&self) -> &StoreRef<'a> {
        &self.store
    }

    /// Materializes trajectory `id` as an AoS
    /// [`Trajectory`](trajectory::Trajectory) (a column gather) — the
    /// executor-level accessor consumers use when an operator needs
    /// whole trajectories (e.g. TRACLUS clustering).
    #[must_use]
    pub fn trajectory(&self, id: TrajId) -> trajectory::Trajectory {
        self.store.view(id).to_trajectory()
    }

    /// The build configuration.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The backend actually in use.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        match self.backend {
            IndexBackend::Scan => BackendKind::Scan,
            IndexBackend::Octree(_) => BackendKind::Octree,
            IndexBackend::MedianKd(_) => BackendKind::MedianKd,
        }
    }

    /// The agents' statistical view of the index ([`CubeIndex`]), `None`
    /// for the scan backend. This lets `rl4qdts` share one index build
    /// between query execution and Agent-Cube's traversal.
    #[must_use]
    pub fn cube_index(&self) -> Option<&dyn CubeIndex> {
        match &self.backend {
            IndexBackend::Scan => None,
            IndexBackend::Octree(t) => Some(t),
            IndexBackend::MedianKd(t) => Some(t),
        }
    }

    /// The structural traversal view, `None` for the scan backend.
    #[must_use]
    fn spatial_index(&self) -> Option<&dyn SpatioTemporalIndex> {
        match &self.backend {
            IndexBackend::Scan => None,
            IndexBackend::Octree(t) => Some(t),
            IndexBackend::MedianKd(t) => Some(t),
        }
    }

    /// Registers a query workload on the index's per-node `Q_B` statistics
    /// (no-op for the scan backend). Required before Agent-Cube sampling.
    pub fn assign_queries(&mut self, queries: &[Cube]) {
        match &mut self.backend {
            IndexBackend::Scan => {}
            IndexBackend::Octree(t) => t.assign_queries(queries),
            IndexBackend::MedianKd(t) => CubeIndex::assign_queries(t, queries),
        }
    }

    // ------------------------------------------------------------------
    // Range queries.
    // ------------------------------------------------------------------

    /// Executes a range query, returning matching trajectory ids ascending.
    /// Identical results to [`crate::range::range_query`], via index
    /// pruning over the columns.
    #[must_use]
    pub fn range(&self, q: &Cube) -> Vec<TrajId> {
        // Dispatch on the concrete index type so the per-node traversal
        // (cube tests, slab scans) monomorphizes and inlines.
        match &self.backend {
            IndexBackend::Scan => range_query_store(&self.store, q),
            IndexBackend::Octree(t) => self.range_marked(t, q),
            IndexBackend::MedianKd(t) => self.range_marked(t, q),
        }
    }

    fn range_marked<I: SpatioTemporalIndex>(&self, index: &I, q: &Cube) -> Vec<TrajId> {
        let mut hit = vec![false; self.store.len()];
        range_mark(index, index.root(), q, &mut hit);
        collect_hits(&hit)
    }

    /// [`QueryEngine::range`] reusing a worker's scratch hit buffer —
    /// the per-query unit batch passes run, so a batch of W queries
    /// allocates one buffer per worker instead of W.
    pub(crate) fn range_scratch(&self, q: &Cube, scratch: &mut QueryScratch) -> Vec<TrajId> {
        match &self.backend {
            IndexBackend::Scan => range_query_store(&self.store, q),
            IndexBackend::Octree(t) => {
                let hit = scratch.hit(self.store.len());
                range_mark(t, SpatioTemporalIndex::root(t), q, hit);
                collect_hits(hit)
            }
            IndexBackend::MedianKd(t) => {
                let hit = scratch.hit(self.store.len());
                range_mark(t, SpatioTemporalIndex::root(t), q, hit);
                collect_hits(hit)
            }
        }
    }

    /// Executes a whole batch of range queries in parallel, with
    /// per-worker scratch reuse.
    #[must_use]
    pub fn range_batch(&self, queries: &[Cube]) -> Vec<Vec<TrajId>> {
        par_map_with(queries, QueryScratch::new, |scratch, q| {
            self.range_scratch(q, scratch)
        })
    }

    /// Executes a range query against a *simplification* of the engine's
    /// database without materializing it: a trajectory matches when one of
    /// its kept points lies inside `q`. Identical results to
    /// `rl4qdts::range_query_simplified`. One-shot calls test kept
    /// membership per leaf point (no O(N) setup); batches should prefer
    /// [`QueryEngine::range_simplified_batch`], which builds the kept
    /// bitmap once.
    #[must_use]
    pub fn range_simplified(&self, simp: &Simplification, q: &Cube) -> Vec<TrajId> {
        match &self.backend {
            IndexBackend::Scan => self.range_simplified_scan(simp, q),
            IndexBackend::Octree(t) => self.range_marked_simplified(t, simp, q),
            IndexBackend::MedianKd(t) => self.range_marked_simplified(t, simp, q),
        }
    }

    /// Kept-list scan: output-sensitive in the number of *kept* points.
    fn range_simplified_scan(&self, simp: &Simplification, q: &Cube) -> Vec<TrajId> {
        self.store
            .iter()
            .filter(|(id, v)| {
                simp.kept(*id).iter().any(|&idx| {
                    let i = idx as usize;
                    q.contains_xyz(v.xs[i], v.ys[i], v.ts[i])
                })
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Pruned traversal testing per-trajectory kept membership per leaf
    /// point — no per-call bitmap construction.
    fn range_marked_simplified<I: SpatioTemporalIndex>(
        &self,
        index: &I,
        simp: &Simplification,
        q: &Cube,
    ) -> Vec<TrajId> {
        let mut hit = vec![false; self.store.len()];
        range_mark_simplified(index, simp, self.store.offsets(), index.root(), q, &mut hit);
        collect_hits(&hit)
    }

    /// Executes a range query against the engine's *own* kept bitmap (a
    /// persisted or attached simplified database) — `None` when the engine
    /// carries none. Same signature and `Option` semantics as
    /// [`ShardedQueryEngine::range_kept`](crate::ShardedQueryEngine::range_kept),
    /// so both executors present one `D'`-serving surface.
    #[must_use]
    pub fn range_kept(&self, q: &Cube) -> Option<Vec<TrajId>> {
        self.kept
            .as_ref()
            .map(|kept| self.range_with_bitmap(kept, q))
    }

    /// [`QueryEngine::range_kept`] reusing a worker's scratch buffers.
    pub(crate) fn range_kept_scratch(
        &self,
        q: &Cube,
        scratch: &mut QueryScratch,
    ) -> Option<Vec<TrajId>> {
        self.kept
            .as_ref()
            .map(|kept| self.range_with_bitmap_scratch(kept, q, scratch))
    }

    /// [`QueryEngine::range_simplified`] against a pre-built kept-point
    /// bitmap. The scan-backend arm is a whole-store sweep (O(N)); with an
    /// index only leaves intersecting `q` are touched.
    #[must_use]
    pub fn range_with_bitmap(&self, kept: &KeptBitmap, q: &Cube) -> Vec<TrajId> {
        let mut hit = vec![false; self.store.len()];
        self.mark_with_bitmap(kept, q, &mut hit);
        collect_hits(&hit)
    }

    /// [`QueryEngine::range_with_bitmap`] reusing a worker's scratch hit
    /// buffer.
    pub(crate) fn range_with_bitmap_scratch(
        &self,
        kept: &KeptBitmap,
        q: &Cube,
        scratch: &mut QueryScratch,
    ) -> Vec<TrajId> {
        let hit = scratch.hit(self.store.len());
        self.mark_with_bitmap(kept, q, hit);
        collect_hits(hit)
    }

    /// The marking core of [`QueryEngine::range_with_bitmap`]: flags in
    /// `hit` every trajectory with a kept point inside `q`. The
    /// scan-backend arm sweeps each trajectory's contiguous column run
    /// through the bitmap-masked containment kernel
    /// ([`trajectory::simd::any_masked_in_cube`]), skipping fully-dropped
    /// 64-point words without touching a coordinate.
    fn mark_with_bitmap(&self, kept: &KeptBitmap, q: &Cube, hit: &mut [bool]) {
        match &self.backend {
            IndexBackend::Scan => {
                let (xs, ys, ts) = (self.store.xs(), self.store.ys(), self.store.ts());
                let offsets = self.store.offsets();
                let words = kept.words();
                for (traj, h) in hit.iter_mut().enumerate() {
                    let (s, e) = (offsets[traj] as usize, offsets[traj + 1] as usize);
                    *h = trajectory::simd::any_masked_in_cube(
                        &xs[s..e],
                        &ys[s..e],
                        &ts[s..e],
                        words,
                        s,
                        q,
                    );
                }
            }
            IndexBackend::Octree(t) => {
                range_mark_kept(t, kept, SpatioTemporalIndex::root(t), q, hit)
            }
            IndexBackend::MedianKd(t) => {
                range_mark_kept(t, kept, SpatioTemporalIndex::root(t), q, hit)
            }
        }
    }

    /// Batch variant of [`QueryEngine::range_simplified`], parallel across
    /// queries. Indexed backends build the kept-point bitmap once for the
    /// whole batch; the scan backend stays on the output-sensitive
    /// kept-list sweep.
    #[must_use]
    pub fn range_simplified_batch(
        &self,
        simp: &Simplification,
        queries: &[Cube],
    ) -> Vec<Vec<TrajId>> {
        match &self.backend {
            IndexBackend::Scan => par_map(queries, |q| self.range_simplified_scan(simp, q)),
            _ => {
                let bitmap = simp.to_bitmap(&self.store);
                par_map_with(queries, QueryScratch::new, |scratch, q| {
                    self.range_with_bitmap_scratch(&bitmap, q, scratch)
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // kNN queries.
    // ------------------------------------------------------------------

    /// Executes a kNN query. Identical results to [`KnnQuery::execute`]:
    /// the index narrows the candidate set to trajectories with points in
    /// the query's time window (everything else ranks at infinity), and
    /// candidate distances are computed in parallel.
    #[must_use]
    pub fn knn(&self, q: &KnnQuery) -> Vec<TrajId> {
        self.knn_from_finite(q.k, self.knn_finite_scored(q))
    }

    /// [`QueryEngine::knn`] with candidate scoring run sequentially in the
    /// calling thread — the per-query unit a batch-level [`par_map`] pass
    /// schedules without nesting thread pools (`cores` workers, not
    /// `cores²`). Identical results to [`QueryEngine::knn`].
    pub(crate) fn knn_seq(&self, q: &KnnQuery) -> Vec<TrajId> {
        self.knn_from_finite(q.k, self.knn_finite_scored_impl(q, false))
    }

    /// The take-`k` / infinite-fill policy shared by the parallel and
    /// sequential kNN paths. Every trajectory absent from `finite` ranks
    /// at infinity. The reference scan orders by (distance, id), so all
    /// finite distances come first and the infinite tail fills in
    /// ascending id order.
    fn knn_from_finite(&self, k: usize, finite: Vec<(f64, TrajId)>) -> Vec<TrajId> {
        let mut in_finite = vec![false; self.store.len()];
        for &(_, id) in &finite {
            in_finite[id] = true;
        }
        let mut ids: Vec<TrajId> = finite.into_iter().take(k).map(|(_, id)| id).collect();
        if ids.len() < k {
            for (id, _) in in_finite.iter().enumerate().filter(|(_, &f)| !f) {
                ids.push(id);
                if ids.len() == k {
                    break;
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    /// The finite-distance half of a kNN execution: every trajectory whose
    /// windowed distance to the query is finite, as `(distance, id)` pairs
    /// sorted ascending by `(distance, id)`. [`QueryEngine::knn`] is this
    /// plus the take-`k` / infinite-fill policy; the sharded engine merges
    /// these lists across shards (mapping ids to global ones) and applies
    /// the same policy once, globally — which is what makes fan-out kNN
    /// byte-identical to the single-store execution.
    pub(crate) fn knn_finite_scored(&self, q: &KnnQuery) -> Vec<(f64, TrajId)> {
        self.knn_finite_scored_impl(q, true)
    }

    /// This store's contribution to a distributed kNN: its
    /// finite-distance candidates sorted by `(distance, id)`, truncated
    /// to the query's `k`, with `-0.0` distances normalized to `+0.0`
    /// so the coordinator's `total_cmp` merge agrees with the
    /// `partial_cmp` sort used here. Feeding these lists through
    /// [`merge_knn_candidates`](crate::merge_knn_candidates) and
    /// [`knn_take_fill`](crate::knn_take_fill) reproduces
    /// [`QueryEngine::knn`] byte-for-byte.
    #[must_use]
    pub fn knn_candidates(&self, q: &KnnQuery) -> Vec<(f64, TrajId)> {
        let mut scored = self.knn_finite_scored(q);
        scored.truncate(q.k);
        for entry in &mut scored {
            entry.0 += 0.0;
        }
        scored
    }

    /// [`QueryEngine::knn_finite_scored`] with the candidate scoring loop
    /// either parallel (`par_map`) or sequential — results are identical
    /// (both preserve candidate order before the final sort).
    pub(crate) fn knn_finite_scored_impl(
        &self,
        q: &KnnQuery,
        parallel: bool,
    ) -> Vec<(f64, TrajId)> {
        let q_window = q.query_window();
        let candidates: Vec<TrajId> = match (self.spatial_index(), q_window.is_empty()) {
            // No index, or a degenerate window (where even trajectories
            // outside [ts, te] score finite): every trajectory is a
            // candidate.
            (None, _) | (_, true) => (0..self.store.len()).collect(),
            (Some(index), false) => {
                // Time-slab pruning: only trajectories with a sampled
                // point in [ts, te] can have a finite distance. The
                // marking is conservative (a leaf partially overlapping
                // the slab contributes all its trajectories), which only
                // adds candidates whose exact distance is then computed —
                // results never change.
                let slab = time_slab(index.cube(index.root()), q.ts, q.te);
                let mut in_window = vec![false; self.store.len()];
                match &self.backend {
                    IndexBackend::Scan => unreachable!("scan handled above"),
                    IndexBackend::Octree(t) => {
                        mark_trajectories_in(t, SpatioTemporalIndex::root(t), &slab, &mut in_window)
                    }
                    IndexBackend::MedianKd(t) => {
                        mark_trajectories_in(t, SpatioTemporalIndex::root(t), &slab, &mut in_window)
                    }
                }
                collect_hits(&in_window)
            }
        };
        let score = |&id: &TrajId| (q.windowed_distance_view(q_window, self.store.view(id)), id);
        let scored: Vec<(f64, TrajId)> = if parallel {
            par_map(&candidates, score)
        } else {
            candidates.iter().map(score).collect()
        };
        let mut finite: Vec<(f64, TrajId)> =
            scored.into_iter().filter(|(d, _)| d.is_finite()).collect();
        finite.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        finite
    }

    /// Executes a batch of kNN queries (parallelism lives inside each
    /// query's candidate scoring).
    #[must_use]
    pub fn knn_batch(&self, queries: &[KnnQuery]) -> Vec<Vec<TrajId>> {
        queries.iter().map(|q| self.knn(q)).collect()
    }

    // ------------------------------------------------------------------
    // Similarity queries.
    // ------------------------------------------------------------------

    /// Executes a similarity query. Identical results to
    /// [`SimilarityQuery::execute`]; the per-trajectory "within δ at every
    /// instant" checks run in parallel over zero-copy views. (Index pruning
    /// is unsound here: a trajectory with no *sampled* point near the
    /// window can still match through interpolation, so the engine
    /// parallelizes instead.)
    #[must_use]
    pub fn similarity(&self, q: &SimilarityQuery) -> Vec<TrajId> {
        let ids: Vec<TrajId> = (0..self.store.len()).collect();
        let matches = par_map(&ids, |&id| q.matches_seq(&self.store.view(id)));
        ids.into_iter()
            .zip(matches)
            .filter_map(|(id, m)| m.then_some(id))
            .collect()
    }

    /// Executes a batch of similarity queries, parallel across queries.
    /// Each query's per-trajectory checks run sequentially inside its
    /// worker — one level of parallelism, not `cores²` threads.
    #[must_use]
    pub fn similarity_batch(&self, queries: &[SimilarityQuery]) -> Vec<Vec<TrajId>> {
        par_map(queries, |q| self.similarity_seq(q))
    }

    /// [`QueryEngine::similarity`] with the per-trajectory checks run
    /// sequentially — the per-query unit batch passes parallelize over.
    pub(crate) fn similarity_seq(&self, q: &SimilarityQuery) -> Vec<TrajId> {
        q.execute_store(&self.store)
    }

    // ------------------------------------------------------------------
    // Workload maintenance.
    // ------------------------------------------------------------------

    /// Builds a [`MaintainedWorkload`] over `queries`: ground truth comes
    /// from this engine (index-accelerated, parallel), and the running
    /// result sets start from `simp`.
    #[must_use]
    pub fn maintained_workload(
        &self,
        queries: Vec<Cube>,
        simp: &Simplification,
    ) -> MaintainedWorkload {
        MaintainedWorkload::new(self, queries, simp)
    }
}

/// Builds the configured index over the columns of `store` (any
/// [`AsColumns`] backend). `pub(crate)` so the sharded engine can run
/// per-shard builds in parallel before assembling its [`QueryEngine`]s.
pub(crate) fn build_backend<S: AsColumns + ?Sized>(
    store: &S,
    config: EngineConfig,
) -> IndexBackend {
    match config.backend {
        BackendKind::Scan => IndexBackend::Scan,
        BackendKind::Octree => IndexBackend::Octree(Octree::build(
            store,
            OctreeConfig {
                max_depth: config.max_depth,
                leaf_capacity: config.leaf_capacity,
            },
        )),
        BackendKind::MedianKd => IndexBackend::MedianKd(MedianTree::build(
            store,
            MedianTreeConfig {
                max_depth: config.max_depth,
                leaf_capacity: config.leaf_capacity,
            },
        )),
    }
}

/// Ascending ids of the set `hit` flags.
fn collect_hits(hit: &[bool]) -> Vec<TrajId> {
    hit.iter()
        .enumerate()
        .filter_map(|(id, &h)| h.then_some(id))
        .collect()
}

/// True when `inner` lies entirely inside `outer`.
fn covers(outer: &Cube, inner: &Cube) -> bool {
    outer.x_min <= inner.x_min
        && inner.x_max <= outer.x_max
        && outer.y_min <= inner.y_min
        && inner.y_max <= outer.y_max
        && outer.t_min <= inner.t_min
        && inner.t_max <= outer.t_max
}

/// The root cube widened to cover all x/y but clipped to `[ts, te]` in time.
fn time_slab(root: Cube, ts: f64, te: f64) -> Cube {
    Cube {
        x_min: f64::NEG_INFINITY,
        x_max: f64::INFINITY,
        y_min: f64::NEG_INFINITY,
        y_max: f64::INFINITY,
        t_min: ts.min(root.t_max),
        t_max: te.max(root.t_min),
    }
}

/// Marks every trajectory with a point inside `q` in the subtree of `id`.
///
/// Pruning and whole-acceptance both test the node's *tight* cube
/// ([`SpatioTemporalIndex::tight_cube`]): a subtree whose tight bounds
/// miss `q` is skipped, and one fully covered by `q` is accepted by
/// marking owners alone — neither touches a coordinate. Leaves that
/// straddle the boundary are scanned as packed coordinate/owner runs
/// ([`LeafSlab`]), one same-owner run at a time through the lane-wide
/// containment kernel ([`trajectory::simd::any_in_cube`]); runs whose
/// owner is already marked are skipped without a single point test.
fn range_mark<I: SpatioTemporalIndex + ?Sized>(index: &I, id: NodeId, q: &Cube, hit: &mut [bool]) {
    if index.point_count(id) == 0 {
        return;
    }
    let tight = index.tight_cube(id);
    if !tight.intersects(q) {
        return;
    }
    if covers(q, &tight) {
        mark_all_owners(index, id, hit);
        return;
    }
    match index.children(id) {
        Some(children) => {
            for c in children {
                range_mark(index, c, q, hit);
            }
        }
        None => {
            let slab = index.leaf_slab(id);
            for (owner, lo, hi) in OwnerRuns::new(slab.owners) {
                if !hit[owner]
                    && trajectory::simd::any_in_cube(
                        &slab.xs[lo..hi],
                        &slab.ys[lo..hi],
                        &slab.ts[lo..hi],
                        q,
                    )
                {
                    hit[owner] = true;
                }
            }
        }
    }
}

/// Marks every owner in the subtree of `id` without touching coordinates
/// — the whole-accept arm of [`range_mark`] once a node's tight cube is
/// covered by the query.
fn mark_all_owners<I: SpatioTemporalIndex + ?Sized>(index: &I, id: NodeId, hit: &mut [bool]) {
    match index.children(id) {
        Some(children) => {
            for c in children {
                if index.point_count(c) > 0 {
                    mark_all_owners(index, c, hit);
                }
            }
        }
        None => {
            for &owner in index.leaf_slab(id).owners {
                hit[owner as usize] = true;
            }
        }
    }
}

/// Iterator over maximal same-owner runs of a packed owner column:
/// yields `(owner, start, end)` half-open ranges. Leaf slabs keep each
/// trajectory's points adjacent, so runs are long and each becomes one
/// kernel call.
struct OwnerRuns<'a> {
    owners: &'a [u32],
    pos: usize,
}

impl<'a> OwnerRuns<'a> {
    fn new(owners: &'a [u32]) -> Self {
        Self { owners, pos: 0 }
    }
}

impl Iterator for OwnerRuns<'_> {
    type Item = (usize, usize, usize);

    fn next(&mut self) -> Option<(usize, usize, usize)> {
        let lo = self.pos;
        let owner = *self.owners.get(lo)?;
        let mut hi = lo + 1;
        while self.owners.get(hi) == Some(&owner) {
            hi += 1;
        }
        self.pos = hi;
        Some((owner as usize, lo, hi))
    }
}

/// [`range_mark`] over only the *kept* points of a simplification,
/// resolving kept membership per leaf point (owner from the slab, local
/// index from the offset table) — the bitmap-free single-query path.
fn range_mark_simplified<I: SpatioTemporalIndex + ?Sized>(
    index: &I,
    simp: &Simplification,
    offsets: &[u32],
    id: NodeId,
    q: &Cube,
    hit: &mut [bool],
) {
    let tight = index.tight_cube(id);
    if index.point_count(id) == 0 || !tight.intersects(q) {
        return;
    }
    match index.children(id) {
        Some(children) => {
            for c in children {
                range_mark_simplified(index, simp, offsets, c, q, hit);
            }
        }
        None => {
            let contained = covers(q, &tight);
            let slab = index.leaf_slab(id);
            for i in 0..slab.len() {
                let traj = slab.owners[i] as usize;
                if hit[traj] || !simp.contains(traj, slab.gids[i] - offsets[traj]) {
                    continue;
                }
                if contained || q.contains_xyz(slab.xs[i], slab.ys[i], slab.ts[i]) {
                    hit[traj] = true;
                }
            }
        }
    }
}

/// [`range_mark`] over only the points set in the kept bitmap.
fn range_mark_kept<I: SpatioTemporalIndex + ?Sized>(
    index: &I,
    kept: &KeptBitmap,
    id: NodeId,
    q: &Cube,
    hit: &mut [bool],
) {
    let tight = index.tight_cube(id);
    if index.point_count(id) == 0 || !tight.intersects(q) {
        return;
    }
    match index.children(id) {
        Some(children) => {
            for c in children {
                range_mark_kept(index, kept, c, q, hit);
            }
        }
        None => {
            let contained = covers(q, &tight);
            let slab = index.leaf_slab(id);
            for (traj, lo, hi) in OwnerRuns::new(slab.owners) {
                if hit[traj] {
                    continue;
                }
                for i in lo..hi {
                    if !kept.contains(slab.gids[i]) {
                        continue;
                    }
                    if contained || q.contains_xyz(slab.xs[i], slab.ys[i], slab.ts[i]) {
                        hit[traj] = true;
                        break;
                    }
                }
            }
        }
    }
}

/// Conservatively marks every trajectory that *may* have a point inside
/// `q`: all trajectories of every leaf whose cube intersects `q`. A
/// superset is fine for candidate pruning — exact per-candidate work
/// decides membership afterwards.
fn mark_trajectories_in<I: SpatioTemporalIndex + ?Sized>(
    index: &I,
    id: NodeId,
    q: &Cube,
    hit: &mut [bool],
) {
    if index.point_count(id) == 0 || !index.tight_cube(id).intersects(q) {
        return;
    }
    match index.children(id) {
        Some(children) => {
            for c in children {
                mark_trajectories_in(index, c, q, hit);
            }
        }
        None => {
            for &owner in index.leaf_slab(id).owners {
                hit[owner as usize] = true;
            }
        }
    }
}

/// A range-query workload whose results over a growing [`Simplification`]
/// are maintained incrementally.
///
/// For each query `q` the structure tracks how many kept points of each
/// trajectory lie inside `q`, the resulting result-set size, and its
/// intersection with the ground truth `Q(D)`. [`MaintainedWorkload::insert`]
/// updates all three in O(queries containing the point); the aggregate
/// `diff` (Eq. 10's `1 − mean F1`) is then O(W) with no database access at
/// all — the "maintain, don't rescan" half of the tentpole.
#[derive(Debug, Clone)]
pub struct MaintainedWorkload {
    queries: Vec<Cube>,
    /// Ground-truth result ids, sorted, per query.
    truth: Vec<Vec<TrajId>>,
    /// Kept-point hit counts per query, per matching trajectory.
    counts: Vec<HashMap<TrajId, u32>>,
    /// `|Rs|` per query.
    result_len: Vec<usize>,
    /// `|Ro ∩ Rs|` per query.
    inter_len: Vec<usize>,
}

impl MaintainedWorkload {
    /// Builds the workload state: ground truth via `engine` (indexed,
    /// parallel), initial result sets from `simp`.
    #[must_use]
    pub fn new(engine: &QueryEngine<'_>, queries: Vec<Cube>, simp: &Simplification) -> Self {
        let truth = engine.range_batch(&queries);
        let store = engine.store();
        let initial: Vec<HashMap<TrajId, u32>> = par_map(&queries, |q| {
            let mut counts: HashMap<TrajId, u32> = HashMap::new();
            for (id, v) in store.iter() {
                let n = simp
                    .kept(id)
                    .iter()
                    .filter(|&&idx| {
                        let i = idx as usize;
                        q.contains_xyz(v.xs[i], v.ys[i], v.ts[i])
                    })
                    .count() as u32;
                if n > 0 {
                    counts.insert(id, n);
                }
            }
            counts
        });
        Self::from_parts(queries, truth, initial)
    }

    /// Assembles the workload state from already-computed ground truth and
    /// kept-point hit counts — the seam the sharded engine uses: truth and
    /// counts come from a fan-out over shards (with ids mapped back to
    /// global), the derived `|Rs|` / `|Ro ∩ Rs|` bookkeeping is shared.
    pub(crate) fn from_parts(
        queries: Vec<Cube>,
        truth: Vec<Vec<TrajId>>,
        counts: Vec<HashMap<TrajId, u32>>,
    ) -> Self {
        let result_len: Vec<usize> = counts.iter().map(HashMap::len).collect();
        let inter_len: Vec<usize> = counts
            .iter()
            .zip(&truth)
            .map(|(counts, truth)| {
                counts
                    .keys()
                    .filter(|id| truth.binary_search(id).is_ok())
                    .count()
            })
            .collect();
        Self {
            queries,
            truth,
            counts,
            result_len,
            inter_len,
        }
    }

    /// Number of workload queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload holds no queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The workload's query cubes.
    #[must_use]
    pub fn queries(&self) -> &[Cube] {
        &self.queries
    }

    /// The ground-truth result of query `i`.
    #[must_use]
    pub fn truth(&self, i: usize) -> &[TrajId] {
        &self.truth[i]
    }

    /// Records that point `idx` of trajectory `traj` (located at `p`) was
    /// inserted into the simplification. O(W) cube tests, O(1) updates.
    pub fn insert(&mut self, traj: TrajId, p: &Point) {
        for (i, q) in self.queries.iter().enumerate() {
            if !q.contains(p) {
                continue;
            }
            let count = self.counts[i].entry(traj).or_insert(0);
            *count += 1;
            if *count == 1 {
                self.result_len[i] += 1;
                if self.truth[i].binary_search(&traj).is_ok() {
                    self.inter_len[i] += 1;
                }
            }
        }
    }

    /// Records that a kept point was *removed* from the simplification.
    pub fn remove(&mut self, traj: TrajId, p: &Point) {
        for (i, q) in self.queries.iter().enumerate() {
            if !q.contains(p) {
                continue;
            }
            let Some(count) = self.counts[i].get_mut(&traj) else {
                continue;
            };
            *count -= 1;
            if *count == 0 {
                self.counts[i].remove(&traj);
                self.result_len[i] -= 1;
                if self.truth[i].binary_search(&traj).is_ok() {
                    self.inter_len[i] -= 1;
                }
            }
        }
    }

    /// Current result of query `i`, sorted ascending (materialized from
    /// the maintained counts; intended for verification and serving).
    #[must_use]
    pub fn result(&self, i: usize) -> Vec<TrajId> {
        let mut ids: Vec<TrajId> = self.counts[i].keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Per-query F1 of the maintained results against the ground truth.
    #[must_use]
    pub fn f1_scores(&self) -> Vec<F1Score> {
        (0..self.queries.len())
            .map(|i| {
                F1Score::from_counts(self.inter_len[i], self.truth[i].len(), self.result_len[i])
            })
            .collect()
    }

    /// `diff(Q(D), Q(D'))` = `1 − mean F1` over the workload, from the
    /// maintained counters alone.
    #[must_use]
    pub fn diff(&self) -> f64 {
        crate::metrics::query_diff(&self.f1_scores())
    }

    /// From-scratch recomputation of [`MaintainedWorkload::diff`] for
    /// `simp` via the engine — the O(W·N) path the incremental bookkeeping
    /// replaces; kept for verification and for scoring unrelated
    /// simplifications.
    #[must_use]
    pub fn diff_of(&self, engine: &QueryEngine<'_>, simp: &Simplification) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let results = engine.range_simplified_batch(simp, &self.queries);
        let scores: Vec<F1Score> = results
            .iter()
            .zip(&self.truth)
            .map(|(result, truth)| f1_sets(truth, result))
            .collect();
        crate::metrics::query_diff(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::Dissimilarity;
    use crate::range::range_query;
    use crate::workload::{range_workload, QueryDistribution, RangeWorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajectory::gen::{generate, DatasetSpec, Scale};

    fn small_db() -> TrajectoryDb {
        generate(&DatasetSpec::geolife(Scale::Smoke), 4242)
    }

    fn workload(db: &TrajectoryDb, n: usize, seed: u64) -> Vec<Cube> {
        let spec = RangeWorkloadSpec {
            count: n,
            spatial_extent: 2_000.0,
            temporal_extent: 86_400.0,
            dist: QueryDistribution::Data,
        };
        range_workload(db, &spec, &mut StdRng::seed_from_u64(seed))
    }

    fn all_backends() -> [EngineConfig; 3] {
        [
            EngineConfig::scan(),
            EngineConfig::octree(),
            EngineConfig::median_kd(),
        ]
    }

    #[test]
    fn range_matches_linear_scan_for_every_backend() {
        let db = small_db();
        let queries = workload(&db, 25, 1);
        for cfg in all_backends() {
            let engine = QueryEngine::over(&db, cfg);
            for q in &queries {
                assert_eq!(
                    engine.range(q),
                    range_query(&db, q),
                    "backend {:?}",
                    cfg.backend
                );
            }
        }
    }

    #[test]
    fn range_batch_matches_single_queries() {
        let db = small_db();
        let queries = workload(&db, 40, 2);
        let engine = QueryEngine::over(&db, EngineConfig::octree());
        let batch = engine.range_batch(&queries);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], engine.range(q));
        }
    }

    #[test]
    fn whole_space_query_returns_everything() {
        let db = small_db();
        for cfg in all_backends() {
            let engine = QueryEngine::over(&db, cfg);
            let all = engine.range(&db.bounding_cube());
            assert_eq!(all, (0..db.len()).collect::<Vec<_>>(), "{:?}", cfg.backend);
        }
    }

    #[test]
    fn empty_database_serves_empty_results() {
        let db = TrajectoryDb::default();
        for cfg in all_backends() {
            let engine = QueryEngine::over(&db, cfg);
            assert!(engine
                .range(&Cube::new(0.0, 1.0, 0.0, 1.0, 0.0, 1.0))
                .is_empty());
        }
    }

    #[test]
    fn knn_matches_linear_scan_for_every_backend() {
        let db = small_db();
        let (t0, t1) = db.time_span();
        for cfg in all_backends() {
            let engine = QueryEngine::over(&db, cfg);
            for (k, ts, te) in [(3, t0, t1), (1, t0, (t0 + t1) / 2.0), (100, t1, t1 + 10.0)] {
                let q = KnnQuery {
                    query: db.get(0).clone(),
                    ts,
                    te,
                    k,
                    measure: Dissimilarity::Edr { eps: 1_000.0 },
                };
                assert_eq!(engine.knn(&q), q.execute(&db), "backend {:?}", cfg.backend);
            }
        }
    }

    #[test]
    fn similarity_matches_linear_scan() {
        let db = small_db();
        let (t0, t1) = db.get(0).time_span();
        let q = SimilarityQuery {
            query: db.get(0).clone(),
            ts: t0,
            te: t1,
            delta: 2_500.0,
            step: 300.0,
        };
        for cfg in all_backends() {
            let engine = QueryEngine::over(&db, cfg);
            assert_eq!(engine.similarity(&q), q.execute(&db), "{:?}", cfg.backend);
        }
    }

    #[test]
    fn range_simplified_matches_materialized_database() {
        let db = small_db();
        let mut simp = Simplification::most_simplified(&db);
        for (id, t) in db.iter() {
            for idx in (0..t.len() as u32).step_by(5) {
                simp.insert(id, idx);
            }
        }
        let materialized = simp.materialize(&db);
        let queries = workload(&db, 20, 3);
        for cfg in all_backends() {
            let engine = QueryEngine::over(&db, cfg);
            for q in &queries {
                assert_eq!(
                    engine.range_simplified(&simp, q),
                    range_query(&materialized, q),
                    "backend {:?}",
                    cfg.backend
                );
            }
        }
    }

    #[test]
    fn maintained_workload_tracks_insertions_exactly() {
        let db = small_db();
        let queries = workload(&db, 30, 4);
        let engine = QueryEngine::over(&db, EngineConfig::octree());
        let mut simp = Simplification::most_simplified(&db);
        let mut maintained = engine.maintained_workload(queries.clone(), &simp);
        assert!((maintained.diff() - maintained.diff_of(&engine, &simp)).abs() < 1e-12);

        // Insert a scattering of points, checking the invariant as we go.
        let mut rng = StdRng::seed_from_u64(9);
        use rand::Rng;
        for _ in 0..200 {
            let traj = rng.gen_range(0..db.len());
            let n = db.get(traj).len() as u32;
            if n <= 2 {
                continue;
            }
            let idx = rng.gen_range(1..n - 1);
            if simp.insert(traj, idx) {
                maintained.insert(traj, db.get(traj).point(idx as usize));
            }
        }
        assert!(
            (maintained.diff() - maintained.diff_of(&engine, &simp)).abs() < 1e-12,
            "incremental diff must equal from-scratch diff"
        );
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(maintained.result(i), engine.range_simplified(&simp, q));
        }
    }

    #[test]
    fn maintained_workload_supports_removal() {
        let db = small_db();
        let queries = workload(&db, 10, 5);
        let engine = QueryEngine::over(&db, EngineConfig::octree());
        let mut simp = Simplification::most_simplified(&db);
        let mut maintained = engine.maintained_workload(queries, &simp);
        let traj = 0;
        let idx = 1u32;
        if db.get(traj).len() > 2 && simp.insert(traj, idx) {
            maintained.insert(traj, db.get(traj).point(idx as usize));
            assert!((maintained.diff() - maintained.diff_of(&engine, &simp)).abs() < 1e-12);
            simp.remove(traj, idx);
            maintained.remove(traj, db.get(traj).point(idx as usize));
            assert!((maintained.diff() - maintained.diff_of(&engine, &simp)).abs() < 1e-12);
        }
    }

    #[test]
    fn full_simplification_has_zero_diff() {
        let db = small_db();
        let queries = workload(&db, 15, 6);
        let engine = QueryEngine::over(&db, EngineConfig::octree());
        let full = Simplification::full(&db);
        let maintained = engine.maintained_workload(queries, &full);
        assert!(
            maintained.diff().abs() < 1e-12,
            "identity simplification must have diff 0"
        );
    }

    #[test]
    #[should_panic(expected = "different point count")]
    fn attaching_a_mismatched_kept_bitmap_fails_fast() {
        let db = small_db();
        let mut engine = QueryEngine::over(&db, EngineConfig::octree());
        engine.set_kept_bitmap(Some(KeptBitmap::zeros(db.total_points() + 1)));
    }

    #[test]
    fn cube_index_is_shared_for_indexed_backends() {
        let db = small_db();
        let mut engine = QueryEngine::over(&db, EngineConfig::octree());
        assert!(engine.cube_index().is_some());
        let queries = workload(&db, 5, 7);
        engine.assign_queries(&queries);
        let idx = engine.cube_index().unwrap();
        assert!(
            idx.query_count(idx.root()) > 0,
            "assigned workload must reach the index"
        );
        assert!(QueryEngine::over(&db, EngineConfig::scan())
            .cube_index()
            .is_none());
    }
}
