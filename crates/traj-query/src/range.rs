//! Range queries (§III-B).
//!
//! A range query is a spatio-temporal cube; it returns every trajectory
//! with at least one *sampled* point inside the cube. Running the same
//! query over the original and the simplified database and comparing the
//! result sets is the core accuracy signal of the paper (both for training
//! rewards and for evaluation).

use trajectory::{AsColumns, Cube, TrajId, TrajView, Trajectory, TrajectoryDb};

/// Executes a range query, returning matching trajectory ids in ascending
/// order.
///
/// This is the O(M) linear-scan reference; production code should prefer
/// [`crate::QueryEngine::range`], which prunes through an index and returns
/// identical results.
#[must_use]
pub fn range_query(db: &TrajectoryDb, q: &Cube) -> Vec<TrajId> {
    let mut out = Vec::new();
    range_query_into(db, q, &mut out);
    out
}

/// [`range_query`] writing into a caller-provided buffer (cleared first),
/// so batch drivers can reuse one allocation across queries.
pub fn range_query_into(db: &TrajectoryDb, q: &Cube, out: &mut Vec<TrajId>) {
    out.clear();
    out.extend(
        db.iter()
            .filter(|(_, t)| trajectory_matches(t, q))
            .map(|(id, _)| id),
    );
}

/// True when `t` has at least one point inside `q`. Uses the time dimension
/// to narrow the scan before testing the spatial predicate.
#[must_use]
pub fn trajectory_matches(t: &Trajectory, q: &Cube) -> bool {
    match t.window_indices(q.t_min, q.t_max) {
        None => false,
        Some((lo, hi)) => t.points()[lo..=hi]
            .iter()
            .any(|p| p.x >= q.x_min && p.x <= q.x_max && p.y >= q.y_min && p.y <= q.y_max),
    }
}

/// [`trajectory_matches`] over a zero-copy column view: the time window is
/// narrowed on the contiguous `ts` column, then the surviving x/y/t runs
/// go through the lane-wide containment kernel
/// ([`trajectory::simd::any_in_cube`]).
#[must_use]
pub fn view_matches(v: TrajView<'_>, q: &Cube) -> bool {
    match v.window_indices(q.t_min, q.t_max) {
        None => false,
        Some((lo, hi)) => {
            trajectory::simd::any_in_cube(&v.xs[lo..=hi], &v.ys[lo..=hi], &v.ts[lo..=hi], q)
        }
    }
}

/// [`range_query`] over columnar storage — owned or mmap-backed, anything
/// [`AsColumns`] — returning matching ids ascending.
#[must_use]
pub fn range_query_store<S: AsColumns + ?Sized>(store: &S, q: &Cube) -> Vec<TrajId> {
    store
        .iter()
        .filter(|(_, v)| view_matches(*v, q))
        .map(|(id, _)| id)
        .collect()
}

/// Executes a batch of range queries (the result of one workload).
///
/// The batch path of [`crate::QueryEngine::range_batch`] additionally
/// spreads queries across cores and prunes each through the index.
#[must_use]
pub fn range_query_batch(db: &TrajectoryDb, queries: &[Cube]) -> Vec<Vec<TrajId>> {
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        let mut ids = Vec::new();
        range_query_into(db, q, &mut ids);
        out.push(ids);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::Point;

    fn db() -> TrajectoryDb {
        let east = Trajectory::new(
            (0..10)
                .map(|i| Point::new(i as f64 * 10.0, 0.0, i as f64))
                .collect(),
        )
        .unwrap();
        let north = Trajectory::new(
            (0..10)
                .map(|i| Point::new(0.0, i as f64 * 10.0, i as f64 + 100.0))
                .collect(),
        )
        .unwrap();
        TrajectoryDb::new(vec![east, north])
    }

    #[test]
    fn finds_spatially_and_temporally_matching_trajectories() {
        let db = db();
        // Around (50, 0) at times 0..10: only the eastbound trajectory.
        let q = Cube::new(45.0, 55.0, -1.0, 1.0, 0.0, 10.0);
        assert_eq!(range_query(&db, &q), vec![0]);
        // Around (0, 50) at times 100..110: only the northbound one.
        let q = Cube::new(-1.0, 1.0, 45.0, 55.0, 100.0, 110.0);
        assert_eq!(range_query(&db, &q), vec![1]);
    }

    #[test]
    fn time_window_filters_even_when_space_matches() {
        let db = db();
        // Space matches the eastbound path but the time window is wrong.
        let q = Cube::new(45.0, 55.0, -1.0, 1.0, 500.0, 600.0);
        assert!(range_query(&db, &q).is_empty());
    }

    #[test]
    fn whole_space_returns_everything() {
        let db = db();
        let q = db.bounding_cube();
        assert_eq!(range_query(&db, &q), vec![0, 1]);
    }

    #[test]
    fn matches_are_point_based_not_interpolated() {
        // A gap between samples: the object "passed through" the box between
        // fixes but no sample lies inside => no match. This is the
        // simplification-sensitive semantics the paper measures.
        let t = Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(100.0, 0.0, 10.0),
        ])
        .unwrap();
        let db = TrajectoryDb::new(vec![t]);
        let q = Cube::new(40.0, 60.0, -1.0, 1.0, 0.0, 10.0);
        assert!(range_query(&db, &q).is_empty());
    }

    #[test]
    fn store_scan_matches_aos_scan() {
        let db = db();
        let store = db.to_store();
        for q in [
            Cube::new(45.0, 55.0, -1.0, 1.0, 0.0, 10.0),
            Cube::new(-1.0, 1.0, 45.0, 55.0, 100.0, 110.0),
            Cube::new(45.0, 55.0, -1.0, 1.0, 500.0, 600.0),
            db.bounding_cube(),
        ] {
            assert_eq!(range_query(&db, &q), range_query_store(&store, &q));
        }
    }

    #[test]
    fn batch_matches_single_queries() {
        let db = db();
        let qs = vec![
            Cube::new(45.0, 55.0, -1.0, 1.0, 0.0, 10.0),
            db.bounding_cube(),
        ];
        let batch = range_query_batch(&db, &qs);
        assert_eq!(batch[0], range_query(&db, &qs[0]));
        assert_eq!(batch[1], range_query(&db, &qs[1]));
    }
}
