//! Edit Distance on Real sequence (EDR) — Chen, Özsu, Oria (SIGMOD 2005).
//!
//! EDR counts the minimum number of insert / delete / substitute edits
//! needed to align two point sequences, where two points "match" (zero-cost
//! substitution) when they are within a tolerance `ε` on both axes. It is
//! the non-learning dissimilarity the paper uses to instantiate kNN
//! queries (ε = 2 km in the experiments).

use trajectory::{Point, PointSeq, Trajectory};

/// Computes `EDR(a, b)` with matching tolerance `eps` (meters, per axis).
///
/// Runs the standard O(|a|·|b|) dynamic program with a rolling row.
/// An empty sequence is at distance `|other|` (all inserts).
pub fn edr(a: &Trajectory, b: &Trajectory, eps: f64) -> f64 {
    edr_seq(a, b, eps)
}

/// EDR over raw point slices (used by windowed kNN without re-allocating
/// sub-trajectories).
pub fn edr_points(a: &[Point], b: &[Point], eps: f64) -> f64 {
    edr_seq(a, b, eps)
}

/// EDR over any pair of point sequences — the one dynamic program serving
/// AoS slices and zero-copy column views alike.
pub fn edr_seq<A: PointSeq + ?Sized, B: PointSeq + ?Sized>(a: &A, b: &B, eps: f64) -> f64 {
    let (n, m) = (a.n_points(), b.n_points());
    if n == 0 {
        return m as f64;
    }
    if m == 0 {
        return n as f64;
    }
    // prev[j] = dp[i-1][j], curr[j] = dp[i][j]; dp[0][j] = j.
    let mut prev: Vec<u32> = (0..=m as u32).collect();
    let mut curr: Vec<u32> = vec![0; m + 1];
    for i in 1..=n {
        curr[0] = i as u32;
        let pa = a.point_at(i - 1);
        for j in 1..=m {
            let pb = b.point_at(j - 1);
            let sub = if matches(&pa, &pb, eps) { 0 } else { 1 };
            curr[j] = (prev[j - 1] + sub).min(prev[j] + 1).min(curr[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m] as f64
}

#[inline]
fn matches(a: &Point, b: &Point, eps: f64) -> bool {
    (a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| Point::new(x, y, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = traj(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(edr(&a, &a, 0.5), 0.0);
    }

    #[test]
    fn within_tolerance_counts_as_match() {
        let a = traj(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = traj(&[(0.3, -0.3), (10.4, 0.2)]);
        assert_eq!(edr(&a, &b, 0.5), 0.0);
        assert_eq!(edr(&a, &b, 0.1), 2.0);
    }

    #[test]
    fn length_difference_costs_inserts() {
        let a = traj(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let b = traj(&[(0.0, 0.0), (3.0, 0.0)]);
        // Two interior points must be deleted.
        assert_eq!(edr(&a, &b, 0.1), 2.0);
    }

    #[test]
    fn empty_sequence_distance_is_other_length() {
        let a = traj(&[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(edr_points(a.points(), &[], 1.0), 2.0);
        assert_eq!(edr_points(&[], a.points(), 1.0), 2.0);
        assert_eq!(edr_points(&[], &[], 1.0), 0.0);
    }

    #[test]
    fn edr_is_symmetric() {
        let a = traj(&[(0.0, 0.0), (5.0, 1.0), (9.0, 3.0), (12.0, 8.0)]);
        let b = traj(&[(0.2, 0.1), (7.0, 7.0), (12.0, 8.0)]);
        assert_eq!(edr(&a, &b, 1.0), edr(&b, &a, 1.0));
    }

    #[test]
    fn edr_bounded_by_max_length() {
        let a = traj(&[(0.0, 0.0), (1e6, 0.0), (2e6, 0.0)]);
        let b = traj(&[(-1e6, 5.0), (-2e6, 5.0)]);
        let d = edr(&a, &b, 1.0);
        assert!(d <= 3.0);
        assert_eq!(d, 3.0, "totally dissimilar: substitutions + delete");
    }

    #[test]
    fn simplification_increases_edr_to_original() {
        // Dropping points from a trajectory changes its EDR to the original
        // by at most the number of dropped points (each is one delete).
        let a = traj(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (4.0, 0.0)]);
        let simplified = traj(&[(0.0, 0.0), (4.0, 0.0)]);
        let d = edr(&a, &simplified, 0.1);
        assert_eq!(d, 3.0);
    }
}
