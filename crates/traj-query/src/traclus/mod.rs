//! TRACLUS: partition-and-group trajectory clustering
//! (Lee, Han, Whang — SIGMOD 2007), the clustering operator of §III-B.
//!
//! Pipeline: (1) each trajectory is partitioned into characteristic
//! segments by approximate MDL; (2) the segments of *all* trajectories are
//! clustered with DBSCAN under the three-component segment distance.
//! The paper's clustering quality measure compares the sets of trajectory
//! pairs that share a cluster on the original vs. the simplified database,
//! so the representative-trajectory post-processing step of TRACLUS is not
//! needed here.

pub mod dbscan;
pub mod partition;
pub mod segdist;

pub use dbscan::Label;
pub use segdist::{segment_distance, DistanceWeights, Segment};

use trajectory::{TrajId, TrajectoryDb};

/// TRACLUS parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraclusParams {
    /// DBSCAN neighbourhood radius over the segment distance (meters).
    pub eps: f64,
    /// DBSCAN core threshold (minimum segments in a neighbourhood).
    pub min_lns: usize,
    /// Component weights of the segment distance.
    pub weights: DistanceWeights,
}

impl Default for TraclusParams {
    fn default() -> Self {
        Self {
            eps: 300.0,
            min_lns: 3,
            weights: DistanceWeights::default(),
        }
    }
}

/// The clustering outcome.
#[derive(Debug, Clone)]
pub struct TraclusResult {
    /// All characteristic segments (input to DBSCAN).
    pub segments: Vec<Segment>,
    /// Per-segment labels.
    pub labels: Vec<Label>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl TraclusResult {
    /// The distinct trajectory ids present in each cluster.
    pub fn cluster_members(&self) -> Vec<Vec<TrajId>> {
        let mut members: Vec<Vec<TrajId>> = vec![Vec::new(); self.num_clusters];
        for (seg, label) in self.segments.iter().zip(&self.labels) {
            if let Label::Cluster(c) = label {
                members[*c].push(seg.traj);
            }
        }
        for m in &mut members {
            m.sort_unstable();
            m.dedup();
        }
        members
    }

    /// All unordered pairs of trajectories sharing at least one cluster,
    /// normalized as `(min, max)` and sorted — the paper's `Ro`/`Rs` for
    /// the clustering F1 (Eq. 3).
    pub fn co_clustered_pairs(&self) -> Vec<(TrajId, TrajId)> {
        let mut pairs = Vec::new();
        for members in self.cluster_members() {
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    pairs.push((members[i], members[j]));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

/// Runs TRACLUS over a database.
pub fn traclus(db: &TrajectoryDb, params: &TraclusParams) -> TraclusResult {
    let segments = partition::partition_database(db);
    let (labels, num_clusters) =
        dbscan::dbscan(&segments, params.eps, params.min_lns, &params.weights);
    TraclusResult {
        segments,
        labels,
        num_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::{Point, Trajectory};

    fn line(y: f64, jitter: f64, id_seed: u64) -> Trajectory {
        // Slightly jittered west-east lines so MDL keeps them as ~1 segment.
        let mut pts = Vec::new();
        for i in 0..12 {
            let j = ((i as u64 * 2654435761 + id_seed) % 100) as f64 / 100.0 - 0.5;
            pts.push(Point::new(i as f64 * 100.0, y + jitter * j, i as f64));
        }
        Trajectory::new(pts).unwrap()
    }

    fn corridor_db() -> TrajectoryDb {
        // Corridor A: trajectories 0..3 around y=0.
        // Corridor B: trajectories 3..6 around y=50_000.
        TrajectoryDb::new(vec![
            line(0.0, 10.0, 1),
            line(40.0, 10.0, 2),
            line(80.0, 10.0, 3),
            line(50_000.0, 10.0, 4),
            line(50_040.0, 10.0, 5),
            line(50_080.0, 10.0, 6),
        ])
    }

    #[test]
    fn clusters_corridors_separately() {
        let r = traclus(&corridor_db(), &TraclusParams::default());
        assert!(
            r.num_clusters >= 2,
            "expected ≥2 clusters, got {}",
            r.num_clusters
        );
        let pairs = r.co_clustered_pairs();
        // Same-corridor pairs must be present.
        assert!(pairs.contains(&(0, 1)), "pairs: {pairs:?}");
        assert!(pairs.contains(&(3, 4)), "pairs: {pairs:?}");
        // Cross-corridor pairs must be absent.
        assert!(
            !pairs.iter().any(|&(a, b)| a < 3 && b >= 3),
            "pairs: {pairs:?}"
        );
    }

    #[test]
    fn pairs_are_normalized_and_deduplicated() {
        let r = traclus(&corridor_db(), &TraclusParams::default());
        let pairs = r.co_clustered_pairs();
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        assert!(pairs.iter().all(|&(a, b)| a < b), "normalized");
    }

    #[test]
    fn empty_database_clusters_to_nothing() {
        let r = traclus(&TrajectoryDb::default(), &TraclusParams::default());
        assert_eq!(r.num_clusters, 0);
        assert!(r.co_clustered_pairs().is_empty());
    }

    #[test]
    fn cluster_members_are_distinct() {
        let r = traclus(&corridor_db(), &TraclusParams::default());
        for m in r.cluster_members() {
            let mut d = m.clone();
            d.dedup();
            assert_eq!(m, d);
        }
    }
}
