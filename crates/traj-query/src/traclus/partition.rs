//! TRACLUS trajectory partitioning via approximate MDL.
//!
//! A trajectory is cut into *characteristic segments* at the points where
//! continuing the current straight-line hypothesis would cost more bits
//! (MDL) than starting a new one. `L(H)` encodes the hypothesis segment's
//! length; `L(D|H)` encodes how far the data deviates from it
//! (perpendicular + angular distances).

use super::segdist::{components, Segment};
use trajectory::Trajectory;

/// Indices of the characteristic points of `traj` (always includes the
/// first and last index). `partition_only` trades a little quality for
/// robustness by clamping distances below 1 m/1 rad before taking logs
/// (log2 of a near-zero distance would reward the hypothesis unboundedly).
pub fn characteristic_points(traj: &Trajectory) -> Vec<usize> {
    let n = traj.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut cps = vec![0usize];
    let mut start = 0usize;
    let mut length = 1usize;
    while start + length < n {
        let curr = start + length;
        let cost_par = mdl_par(traj, start, curr);
        let cost_nopar = mdl_nopar(traj, start, curr);
        if cost_par > cost_nopar {
            // Partition at the previous point.
            let cp = curr - 1;
            if cp > start {
                cps.push(cp);
                start = cp;
                length = 1;
            } else {
                // Degenerate: the very next point already violates MDL;
                // accept the single original segment and move on.
                cps.push(curr);
                start = curr;
                length = 1;
            }
        } else {
            length += 1;
        }
    }
    if *cps.last().unwrap() != n - 1 {
        cps.push(n - 1);
    }
    cps
}

/// Converts the characteristic points of every trajectory in a database
/// into the flat segment list TRACLUS clusters.
pub fn partition_database(db: &trajectory::TrajectoryDb) -> Vec<Segment> {
    let mut segments = Vec::new();
    for (id, t) in db.iter() {
        let cps = characteristic_points(t);
        for w in cps.windows(2) {
            let s = Segment {
                a: *t.point(w[0]),
                b: *t.point(w[1]),
                traj: id,
            };
            if !s.is_empty() {
                segments.push(s);
            }
        }
    }
    segments
}

/// `MDL_par(i, j) = L(H) + L(D|H)`: cost of replacing `p_i..p_j` with the
/// single segment `(p_i, p_j)`.
fn mdl_par(traj: &Trajectory, i: usize, j: usize) -> f64 {
    let hyp = Segment {
        a: *traj.point(i),
        b: *traj.point(j),
        traj: 0,
    };
    let lh = log2_clamped(hyp.len());
    let mut ldh = 0.0;
    for k in i..j {
        let data = Segment {
            a: *traj.point(k),
            b: *traj.point(k + 1),
            traj: 0,
        };
        let (d_perp, _, d_angle) = components(&hyp, &data);
        ldh += log2_clamped(d_perp) + log2_clamped(d_angle);
    }
    lh + ldh
}

/// `MDL_nopar(i, j)`: cost of keeping the original segments (`L(D|H) = 0`).
fn mdl_nopar(traj: &Trajectory, i: usize, j: usize) -> f64 {
    (i..j)
        .map(|k| log2_clamped(traj.point(k).spatial_distance(traj.point(k + 1))))
        .sum()
}

/// `log2(max(x, 1))`: sub-meter deviations cost nothing rather than
/// negative bits (standard practical clamp for TRACLUS).
fn log2_clamped(x: f64) -> f64 {
    x.max(1.0).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::{Point, TrajectoryDb};

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| Point::new(x, y, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn straight_line_is_one_segment() {
        let t = traj(&[
            (0.0, 0.0),
            (100.0, 0.0),
            (200.0, 0.0),
            (300.0, 0.0),
            (400.0, 0.0),
        ]);
        let cps = characteristic_points(&t);
        assert_eq!(cps, vec![0, 4]);
    }

    #[test]
    fn sharp_corner_is_a_characteristic_point() {
        // East for 4 points, then hard north: the corner must be kept.
        let t = traj(&[
            (0.0, 0.0),
            (100.0, 0.0),
            (200.0, 0.0),
            (300.0, 0.0),
            (300.0, 100.0),
            (300.0, 200.0),
            (300.0, 300.0),
        ]);
        let cps = characteristic_points(&t);
        assert!(cps.contains(&3), "corner at index 3 missing from {cps:?}");
        assert_eq!(*cps.first().unwrap(), 0);
        assert_eq!(*cps.last().unwrap(), 6);
    }

    #[test]
    fn short_trajectories_are_kept_whole() {
        assert_eq!(
            characteristic_points(&traj(&[(0.0, 0.0), (1.0, 1.0)])),
            vec![0, 1]
        );
    }

    #[test]
    fn endpoints_always_included() {
        let t = traj(&[
            (0.0, 0.0),
            (50.0, 80.0),
            (120.0, 10.0),
            (30.0, -60.0),
            (0.0, 0.0),
        ]);
        let cps = characteristic_points(&t);
        assert_eq!(*cps.first().unwrap(), 0);
        assert_eq!(*cps.last().unwrap(), t.len() - 1);
        assert!(cps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn partition_database_produces_traj_tagged_segments() {
        let db = TrajectoryDb::new(vec![
            traj(&[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)]),
            traj(&[(0.0, 50.0), (100.0, 50.0)]),
        ]);
        let segs = partition_database(&db);
        assert!(!segs.is_empty());
        assert!(segs.iter().any(|s| s.traj == 0));
        assert!(segs.iter().any(|s| s.traj == 1));
        assert!(segs.iter().all(|s| !s.is_empty()));
    }
}
