//! TRACLUS line-segment distance (Lee, Han, Whang — SIGMOD 2007).
//!
//! The distance between two directed segments is a weighted sum of three
//! components measured with the *longer* segment as the base:
//! perpendicular distance, parallel distance, and angular distance.

use trajectory::geom;
use trajectory::Point;

/// A directed line segment belonging to a trajectory.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
    /// The trajectory this segment came from.
    pub traj: usize,
}

impl Segment {
    /// Spatial length of the segment.
    pub fn len(&self) -> f64 {
        self.a.spatial_distance(&self.b)
    }

    /// True for zero-length segments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0.0
    }
}

/// Weights of the three distance components.
#[derive(Debug, Clone, Copy)]
pub struct DistanceWeights {
    /// Weight of the perpendicular component.
    pub perpendicular: f64,
    /// Weight of the parallel component.
    pub parallel: f64,
    /// Weight of the angular component.
    pub angular: f64,
}

impl Default for DistanceWeights {
    fn default() -> Self {
        Self {
            perpendicular: 1.0,
            parallel: 1.0,
            angular: 1.0,
        }
    }
}

/// The three raw components `(d_perp, d_par, d_angle)` between two
/// segments, using the longer one as the base (TRACLUS Definitions 5–7).
pub fn components(x: &Segment, y: &Segment) -> (f64, f64, f64) {
    // Longer segment becomes the base L_i; the other is L_j.
    let (li, lj) = if x.len() >= y.len() { (x, y) } else { (y, x) };

    // Unclamped projection parameters of L_j's endpoints on L_i's line.
    let (u1, d1sq) = project_line(&li.a, &li.b, &lj.a);
    let (u2, d2sq) = project_line(&li.a, &li.b, &lj.b);
    let l_perp1 = d1sq.sqrt();
    let l_perp2 = d2sq.sqrt();
    let d_perp = if l_perp1 + l_perp2 > 0.0 {
        (l_perp1 * l_perp1 + l_perp2 * l_perp2) / (l_perp1 + l_perp2)
    } else {
        0.0
    };

    // Parallel distance: how far the projections fall outside L_i,
    // measured to the nearer endpoint.
    let base_len = li.len();
    let outside = |u: f64| -> f64 {
        if u < 0.0 {
            (-u) * base_len
        } else if u > 1.0 {
            (u - 1.0) * base_len
        } else {
            0.0
        }
    };
    let d_par = outside(u1).min(outside(u2));

    // Angular distance: ||L_j||·sin θ for θ < 90°, else ||L_j||.
    let theta = geom::angle_diff(geom::direction(&li.a, &li.b), geom::direction(&lj.a, &lj.b));
    let d_angle = if theta < std::f64::consts::FRAC_PI_2 {
        lj.len() * theta.sin()
    } else {
        lj.len()
    };

    (d_perp, d_par, d_angle)
}

/// Weighted TRACLUS distance between two segments.
pub fn segment_distance(x: &Segment, y: &Segment, w: &DistanceWeights) -> f64 {
    let (d_perp, d_par, d_angle) = components(x, y);
    w.perpendicular * d_perp + w.parallel * d_par + w.angular * d_angle
}

/// Projects `p` onto the *infinite line* through `(a, b)` (no clamping —
/// the parallel component needs the raw parameter). Returns `(u, d²)`.
fn project_line(a: &Point, b: &Point, p: &Point) -> (f64, f64) {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len2 = abx * abx + aby * aby;
    let u = if len2 <= 0.0 {
        0.0
    } else {
        ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2
    };
    let cx = a.x + u * abx;
    let cy = a.y + u * aby;
    let dx = p.x - cx;
    let dy = p.y - cy;
    (u, dx * dx + dy * dy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment {
            a: Point::new(ax, ay, 0.0),
            b: Point::new(bx, by, 1.0),
            traj: 0,
        }
    }

    #[test]
    fn identical_segments_have_zero_distance() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(segment_distance(&s, &s, &DistanceWeights::default()), 0.0);
    }

    #[test]
    fn parallel_offset_contributes_perpendicular_only() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(0.0, 4.0, 10.0, 4.0);
        let (d_perp, d_par, d_angle) = components(&a, &b);
        assert!((d_perp - 4.0).abs() < 1e-12);
        assert_eq!(d_par, 0.0);
        assert!(d_angle < 1e-12);
    }

    #[test]
    fn disjoint_collinear_segments_have_parallel_distance() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(15.0, 0.0, 20.0, 0.0);
        let (d_perp, d_par, d_angle) = components(&a, &b);
        assert_eq!(d_perp, 0.0);
        assert!((d_par - 5.0).abs() < 1e-9, "gap of 5 expected, got {d_par}");
        assert!(d_angle < 1e-12);
    }

    #[test]
    fn perpendicular_segments_pay_full_angular_cost() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(5.0, 0.0, 5.0, 3.0); // length 3, at 90°
        let (_, _, d_angle) = components(&a, &b);
        assert!((d_angle - 3.0).abs() < 1e-12);
    }

    #[test]
    fn angular_cost_uses_sine_below_right_angle() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(0.0, 0.0, 3.0, 3.0); // 45°, length 3√2
        let (_, _, d_angle) = components(&a, &b);
        let expected = (18.0f64).sqrt() * (std::f64::consts::FRAC_PI_4).sin();
        assert!((d_angle - expected).abs() < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = seg(0.0, 0.0, 10.0, 2.0);
        let b = seg(1.0, 5.0, 4.0, 6.0);
        let w = DistanceWeights::default();
        assert!((segment_distance(&a, &b, &w) - segment_distance(&b, &a, &w)).abs() < 1e-9);
    }

    #[test]
    fn zero_length_segments_do_not_panic() {
        let z = seg(5.0, 5.0, 5.0, 5.0);
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let d = segment_distance(&z, &a, &DistanceWeights::default());
        assert!(d.is_finite());
    }
}
