//! Density-based grouping of trajectory segments (TRACLUS phase 2).
//!
//! A straightforward DBSCAN over the segment set with the TRACLUS segment
//! distance: core segments have at least `min_lns` segments within `eps`;
//! clusters are the transitive closure of core neighbourhoods.

use super::segdist::{segment_distance, DistanceWeights, Segment};

/// Cluster label of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// Not yet processed.
    Unvisited,
    /// Processed and not density-reachable from any core segment.
    Noise,
    /// Member of the cluster with this index.
    Cluster(usize),
}

/// DBSCAN over segments. Returns per-segment labels and the cluster count.
pub fn dbscan(
    segments: &[Segment],
    eps: f64,
    min_lns: usize,
    weights: &DistanceWeights,
) -> (Vec<Label>, usize) {
    let n = segments.len();
    let mut labels = vec![Label::Unvisited; n];
    let mut clusters = 0usize;

    for i in 0..n {
        if labels[i] != Label::Unvisited {
            continue;
        }
        let neighbours = region_query(segments, i, eps, weights);
        if neighbours.len() < min_lns {
            labels[i] = Label::Noise;
            continue;
        }
        let cluster = clusters;
        clusters += 1;
        labels[i] = Label::Cluster(cluster);
        // Expand the cluster breadth-first.
        let mut queue: Vec<usize> = neighbours;
        while let Some(j) = queue.pop() {
            match labels[j] {
                Label::Cluster(_) => continue,
                Label::Noise => {
                    // Border segment: belongs to the cluster but does not
                    // expand it.
                    labels[j] = Label::Cluster(cluster);
                    continue;
                }
                Label::Unvisited => {
                    labels[j] = Label::Cluster(cluster);
                    let nb = region_query(segments, j, eps, weights);
                    if nb.len() >= min_lns {
                        queue.extend(
                            nb.into_iter()
                                .filter(|&k| matches!(labels[k], Label::Unvisited | Label::Noise)),
                        );
                    }
                }
            }
        }
    }
    (labels, clusters)
}

/// Indices of all segments within `eps` of segment `i` (including itself,
/// per the DBSCAN convention).
fn region_query(segments: &[Segment], i: usize, eps: f64, weights: &DistanceWeights) -> Vec<usize> {
    let si = &segments[i];
    segments
        .iter()
        .enumerate()
        .filter(|(j, s)| *j == i || segment_distance(si, s, weights) <= eps)
        .map(|(j, _)| j)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::Point;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64, traj: usize) -> Segment {
        Segment {
            a: Point::new(ax, ay, 0.0),
            b: Point::new(bx, by, 1.0),
            traj,
        }
    }

    /// Two bundles of parallel segments far apart, plus one outlier.
    fn two_bundles() -> Vec<Segment> {
        let mut v = Vec::new();
        for i in 0..4 {
            v.push(seg(0.0, i as f64, 100.0, i as f64, i)); // bundle A
        }
        for i in 0..4 {
            v.push(seg(
                0.0,
                10_000.0 + i as f64,
                100.0,
                10_000.0 + i as f64,
                4 + i,
            )); // bundle B
        }
        v.push(seg(5_000.0, 5_000.0, 5_100.0, 5_100.0, 99)); // outlier
        v
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let segs = two_bundles();
        let (labels, clusters) = dbscan(&segs, 10.0, 3, &DistanceWeights::default());
        assert_eq!(clusters, 2);
        assert_eq!(labels[8], Label::Noise, "outlier must be noise");
        // All of bundle A share a cluster, all of bundle B share another.
        let a = labels[0];
        assert!(labels[..4].iter().all(|&l| l == a));
        let b = labels[4];
        assert!(labels[4..8].iter().all(|&l| l == b));
        assert_ne!(a, b);
    }

    #[test]
    fn min_lns_too_high_yields_all_noise() {
        let segs = two_bundles();
        let (labels, clusters) = dbscan(&segs, 10.0, 100, &DistanceWeights::default());
        assert_eq!(clusters, 0);
        assert!(labels.iter().all(|&l| l == Label::Noise));
    }

    #[test]
    fn empty_input_is_fine() {
        let (labels, clusters) = dbscan(&[], 10.0, 2, &DistanceWeights::default());
        assert!(labels.is_empty());
        assert_eq!(clusters, 0);
    }

    #[test]
    fn every_segment_gets_a_final_label() {
        let segs = two_bundles();
        let (labels, _) = dbscan(&segs, 50.0, 2, &DistanceWeights::default());
        assert!(labels.iter().all(|l| *l != Label::Unvisited));
    }
}
