//! The public database façade: one typed query surface over every
//! physical layout.
//!
//! Everything below this module — single-store vs. sharded engines,
//! heap-owned vs. mmap-backed columns, CSV vs. snapshot vs. shard-set
//! files — is an *execution detail*. The paper's contract (§III-B) is a
//! database `D` answering a workload of range / kNN / similarity queries,
//! and a simplified database `D'` answering the same workload almost as
//! well. This module states that contract once:
//!
//! - [`QueryExecutor`] is the full query surface (one-shot, batch,
//!   simplified-database variants, and workload maintenance), implemented
//!   by both [`QueryEngine`] and [`ShardedQueryEngine`] with identical
//!   signatures — including the previously diverging `range_kept`, which
//!   now serves the executor's *own* persisted simplification behind the
//!   same `Option` on both sides.
//! - [`Query`] / [`QueryResult`] are the typed request/response pair, and
//!   a [`QueryBatch`] is a *heterogeneous* plan: a mixed
//!   range+kNN+similarity workload (the shape of the paper's Eq. 10
//!   evaluation) executes in **one** [`par_map`] pass instead of three
//!   serial per-kind batches — each worker runs its query with sequential
//!   inner loops, so the pass uses `cores` threads, not `cores²`.
//! - [`TrajDb`] is the façade over storage: [`TrajDb::open`] auto-detects
//!   the three on-disk formats (CSV file, snapshot file, shard-set
//!   directory), honours a builder-style [`DbOptions`] (index backend and
//!   tree shape, owned vs. mmap opening, optional re-partitioning into an
//!   in-memory sharded engine), and serves the whole [`QueryExecutor`]
//!   surface — including `D'` through a persisted kept bitmap.
//!
//! This is also the seam the ROADMAP's sharding follow-ups (backend
//! mixing, remote shards, rebalancing) plug into: a [`Query`] is
//! serializable in spirit — plain data, no lifetimes — so the same plan
//! that fans out across local shards can cross a network boundary
//! unchanged.
//!
//! Batch-vs-sequential equality is property-tested in
//! `tests/db_props.rs` across both executors, all three index backends,
//! and owned as well as mmap-backed stores.

use std::fmt;
use std::path::Path;

use rand::rngs::StdRng;
use trajectory::io::ReadError;
use trajectory::shard::{partition, OpenShard, PartitionStrategy, Shard, ShardSet, ShardSetError};
use trajectory::snapshot::{is_snapshot_file, read_snapshot, MappedStore, SnapshotError};
use trajectory::{AsColumns, Cube, KeptBitmap, PointStore, Simplification, TrajId, TrajectoryDb};

use crate::engine::{BackendKind, EngineConfig, MaintainedWorkload, QueryEngine, QueryScratch};
use crate::knn::KnnQuery;
use crate::parallel::{par_map, par_map_with};
use crate::sharded::ShardedQueryEngine;
use crate::similarity::SimilarityQuery;
use crate::workload::{range_workload_store, RangeWorkloadSpec};

// ---------------------------------------------------------------------
// Typed queries.
// ---------------------------------------------------------------------

/// One typed query against a trajectory database: the request half of the
/// public API. Plain data (no lifetimes, no store references), so a query
/// built once can be executed against any [`QueryExecutor`] — or, later,
/// shipped across a network boundary to a remote shard.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Range query: which trajectories have a sampled point inside the
    /// cube? (§III-B1.)
    Range(Cube),
    /// k-nearest-neighbours by windowed dissimilarity (§III-B2).
    Knn(KnnQuery),
    /// "Within δ at every instant" similarity (§III-B3).
    Similarity(SimilarityQuery),
    /// Range query against the executor's *persisted simplified database*
    /// `D'` (its kept bitmap). Answers [`QueryResult::RangeKept`]`(None)`
    /// on executors serving only the full database.
    RangeKept(Cube),
}

impl Query {
    /// The query's kind (for plan grouping and reporting).
    #[must_use]
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::Range(_) => QueryKind::Range,
            Query::Knn(_) => QueryKind::Knn,
            Query::Similarity(_) => QueryKind::Similarity,
            Query::RangeKept(_) => QueryKind::RangeKept,
        }
    }
}

/// The kind of a [`Query`] / [`QueryResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// [`Query::Range`].
    Range,
    /// [`Query::Knn`].
    Knn,
    /// [`Query::Similarity`].
    Similarity,
    /// [`Query::RangeKept`].
    RangeKept,
}

impl QueryKind {
    /// All kinds, in declaration order.
    pub const ALL: [QueryKind; 4] = [
        QueryKind::Range,
        QueryKind::Knn,
        QueryKind::Similarity,
        QueryKind::RangeKept,
    ];

    /// Display label for reports and benchmark ids.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Range => "range",
            QueryKind::Knn => "knn",
            QueryKind::Similarity => "similarity",
            QueryKind::RangeKept => "range-kept",
        }
    }
}

/// The typed answer to a [`Query`], mirroring its kind. Every operator
/// returns trajectory ids ascending; [`QueryResult::RangeKept`] keeps the
/// `Option` of the reconciled `range_kept` surface (`None` when the
/// executor serves no simplified database).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Answer to [`Query::Range`].
    Range(Vec<TrajId>),
    /// Answer to [`Query::Knn`].
    Knn(Vec<TrajId>),
    /// Answer to [`Query::Similarity`].
    Similarity(Vec<TrajId>),
    /// Answer to [`Query::RangeKept`] — `None` when the executor carries
    /// no kept bitmap.
    RangeKept(Option<Vec<TrajId>>),
}

impl QueryResult {
    /// The result's kind.
    #[must_use]
    pub fn kind(&self) -> QueryKind {
        match self {
            QueryResult::Range(_) => QueryKind::Range,
            QueryResult::Knn(_) => QueryKind::Knn,
            QueryResult::Similarity(_) => QueryKind::Similarity,
            QueryResult::RangeKept(_) => QueryKind::RangeKept,
        }
    }

    /// The result ids, `None` only for [`QueryResult::RangeKept`]`(None)`.
    #[must_use]
    pub fn ids(&self) -> Option<&[TrajId]> {
        match self {
            QueryResult::Range(ids) | QueryResult::Knn(ids) | QueryResult::Similarity(ids) => {
                Some(ids)
            }
            QueryResult::RangeKept(ids) => ids.as_deref(),
        }
    }

    /// Consumes the result into its ids (see [`QueryResult::ids`]).
    #[must_use]
    pub fn into_ids(self) -> Option<Vec<TrajId>> {
        match self {
            QueryResult::Range(ids) | QueryResult::Knn(ids) | QueryResult::Similarity(ids) => {
                Some(ids)
            }
            QueryResult::RangeKept(ids) => ids,
        }
    }
}

/// A heterogeneous batch plan: any mix of query kinds, executed by
/// [`QueryExecutor::execute_batch`] in **one** data-parallel pass.
///
/// The homogeneous `*_batch` methods already parallelize within one kind;
/// what they cannot do is overlap *across* kinds — a workload of 100
/// ranges, 20 kNNs, and 20 similarities would run as three serial
/// batches, each ending with a synchronization barrier. A `QueryBatch`
/// erases the kind boundary: all 140 queries enter one [`par_map`] whose
/// work-stealing counter balances the (wildly uneven) per-kind costs
/// automatically. Results come back in submission order, each tagged as a
/// typed [`QueryResult`] — property-tested equal to executing every query
/// one at a time.
#[derive(Debug, Clone, Default)]
pub struct QueryBatch {
    queries: Vec<Query>,
}

impl QueryBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A batch over pre-assembled queries.
    #[must_use]
    pub fn from_queries(queries: Vec<Query>) -> Self {
        Self { queries }
    }

    /// Appends one query, returning `self` for chaining.
    #[must_use]
    pub fn with(mut self, q: Query) -> Self {
        self.queries.push(q);
        self
    }

    /// Appends one query.
    pub fn push(&mut self, q: Query) {
        self.queries.push(q);
    }

    /// Appends a range query.
    pub fn push_range(&mut self, q: Cube) {
        self.queries.push(Query::Range(q));
    }

    /// Appends a kNN query.
    pub fn push_knn(&mut self, q: KnnQuery) {
        self.queries.push(Query::Knn(q));
    }

    /// Appends a similarity query.
    pub fn push_similarity(&mut self, q: SimilarityQuery) {
        self.queries.push(Query::Similarity(q));
    }

    /// Appends a simplified-database range query.
    pub fn push_range_kept(&mut self, q: Cube) {
        self.queries.push(Query::RangeKept(q));
    }

    /// The planned queries, in submission order.
    #[must_use]
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Consumes the batch into its queries, in submission order (the
    /// admission layer moves queries between batches without cloning).
    #[must_use]
    pub fn into_queries(self) -> Vec<Query> {
        self.queries
    }

    /// Number of planned queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the batch holds no queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Per-kind query counts, indexed like [`QueryKind::ALL`] (the plan
    /// summary reports print).
    #[must_use]
    pub fn kind_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for q in &self.queries {
            counts[q.kind() as usize] += 1;
        }
        counts
    }
}

impl FromIterator<Query> for QueryBatch {
    fn from_iter<I: IntoIterator<Item = Query>>(iter: I) -> Self {
        Self {
            queries: iter.into_iter().collect(),
        }
    }
}

impl Extend<Query> for QueryBatch {
    fn extend<I: IntoIterator<Item = Query>>(&mut self, iter: I) {
        self.queries.extend(iter);
    }
}

// ---------------------------------------------------------------------
// The executor trait.
// ---------------------------------------------------------------------

/// The full query surface of a trajectory database, implemented by both
/// the single-store [`QueryEngine`] and the fan-out
/// [`ShardedQueryEngine`] (whose results are property-tested identical).
///
/// Code written against this trait — the evaluation tasks, the serving
/// pipeline, benchmarks — runs unchanged over every physical layout.
/// `Sync` is a supertrait so batch execution can share `&self` across
/// worker threads.
pub trait QueryExecutor: Sync {
    /// Number of trajectories served.
    fn len(&self) -> usize;

    /// True when the executor serves no trajectories.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total points served.
    fn total_points(&self) -> usize;

    /// Materializes trajectory `id` as an AoS
    /// [`Trajectory`](trajectory::Trajectory) — for operators that
    /// consume whole trajectories (e.g. TRACLUS clustering).
    fn trajectory(&self, id: TrajId) -> trajectory::Trajectory;

    /// Executes a range query (ids ascending).
    fn range(&self, q: &Cube) -> Vec<TrajId>;

    /// Executes a batch of range queries, parallel across queries.
    fn range_batch(&self, queries: &[Cube]) -> Vec<Vec<TrajId>>;

    /// Executes a kNN query (ids ascending).
    fn knn(&self, q: &KnnQuery) -> Vec<TrajId>;

    /// Executes a batch of kNN queries.
    fn knn_batch(&self, queries: &[KnnQuery]) -> Vec<Vec<TrajId>>;

    /// Executes a similarity query (ids ascending).
    fn similarity(&self, q: &SimilarityQuery) -> Vec<TrajId>;

    /// Executes a batch of similarity queries, parallel across queries.
    fn similarity_batch(&self, queries: &[SimilarityQuery]) -> Vec<Vec<TrajId>>;

    /// True when the executor carries a persisted kept bitmap — i.e.
    /// [`QueryExecutor::range_kept`] serves a simplified database.
    fn has_kept_bitmap(&self) -> bool;

    /// Executes a range query against the executor's persisted simplified
    /// database (`None` when it carries none). The signature both engines
    /// now share — the reconciliation of the former
    /// `range_kept(&KeptBitmap, &Cube)` vs `range_kept(&Cube)` split.
    fn range_kept(&self, q: &Cube) -> Option<Vec<TrajId>>;

    /// Executes a range query against an in-memory [`Simplification`]
    /// (global trajectory ids) without materializing `D'`.
    fn range_simplified(&self, simp: &Simplification, q: &Cube) -> Vec<TrajId>;

    /// Batch variant of [`QueryExecutor::range_simplified`], parallel
    /// across queries (per-batch setup such as bitmap construction or
    /// per-shard splitting happens once).
    fn range_simplified_batch(&self, simp: &Simplification, queries: &[Cube]) -> Vec<Vec<TrajId>>;

    /// Builds a [`MaintainedWorkload`] over `queries`: ground truth from
    /// this executor, running result sets from `simp` (global ids).
    fn maintained_workload(&self, queries: Vec<Cube>, simp: &Simplification) -> MaintainedWorkload;

    /// Executes one typed query **in the calling thread**, with
    /// sequential inner loops — the unit of work
    /// [`QueryExecutor::execute_batch`] parallelizes over. Identical
    /// results to [`QueryExecutor::execute`].
    fn execute_one(&self, q: &Query) -> QueryResult;

    /// Executes one typed query with the executor's full internal
    /// parallelism (candidate scoring, shard fan-out).
    fn execute(&self, q: &Query) -> QueryResult {
        match q {
            Query::Range(c) => QueryResult::Range(self.range(c)),
            Query::Knn(k) => QueryResult::Knn(self.knn(k)),
            Query::Similarity(s) => QueryResult::Similarity(self.similarity(s)),
            Query::RangeKept(c) => QueryResult::RangeKept(self.range_kept(c)),
        }
    }

    /// Executes a heterogeneous [`QueryBatch`] in one data-parallel pass:
    /// every query — whatever its kind — is a work item of a single
    /// [`par_map`], so mixed workloads get the same core saturation
    /// homogeneous `*_batch` calls already enjoy. Results come back in
    /// submission order.
    fn execute_batch(&self, batch: &QueryBatch) -> Vec<QueryResult> {
        par_map(batch.queries(), |q| self.execute_one(q))
    }
}

impl QueryExecutor for QueryEngine<'_> {
    fn len(&self) -> usize {
        self.store().len()
    }

    fn total_points(&self) -> usize {
        self.store().total_points()
    }

    fn trajectory(&self, id: TrajId) -> trajectory::Trajectory {
        QueryEngine::trajectory(self, id)
    }

    fn range(&self, q: &Cube) -> Vec<TrajId> {
        QueryEngine::range(self, q)
    }

    fn range_batch(&self, queries: &[Cube]) -> Vec<Vec<TrajId>> {
        QueryEngine::range_batch(self, queries)
    }

    fn knn(&self, q: &KnnQuery) -> Vec<TrajId> {
        QueryEngine::knn(self, q)
    }

    fn knn_batch(&self, queries: &[KnnQuery]) -> Vec<Vec<TrajId>> {
        QueryEngine::knn_batch(self, queries)
    }

    fn similarity(&self, q: &SimilarityQuery) -> Vec<TrajId> {
        QueryEngine::similarity(self, q)
    }

    fn similarity_batch(&self, queries: &[SimilarityQuery]) -> Vec<Vec<TrajId>> {
        QueryEngine::similarity_batch(self, queries)
    }

    fn has_kept_bitmap(&self) -> bool {
        QueryEngine::has_kept_bitmap(self)
    }

    fn range_kept(&self, q: &Cube) -> Option<Vec<TrajId>> {
        QueryEngine::range_kept(self, q)
    }

    fn range_simplified(&self, simp: &Simplification, q: &Cube) -> Vec<TrajId> {
        QueryEngine::range_simplified(self, simp, q)
    }

    fn range_simplified_batch(&self, simp: &Simplification, queries: &[Cube]) -> Vec<Vec<TrajId>> {
        QueryEngine::range_simplified_batch(self, simp, queries)
    }

    fn maintained_workload(&self, queries: Vec<Cube>, simp: &Simplification) -> MaintainedWorkload {
        QueryEngine::maintained_workload(self, queries, simp)
    }

    fn execute_one(&self, q: &Query) -> QueryResult {
        match q {
            Query::Range(c) => QueryResult::Range(self.range(c)),
            Query::Knn(k) => QueryResult::Knn(self.knn_seq(k)),
            Query::Similarity(s) => QueryResult::Similarity(self.similarity_seq(s)),
            Query::RangeKept(c) => QueryResult::RangeKept(QueryEngine::range_kept(self, c)),
        }
    }

    /// One data-parallel pass with **per-worker scratch reuse**: the
    /// hit-flag buffer range-style queries need is allocated once per
    /// worker thread and recycled across every query that worker pulls,
    /// instead of once per query (identical results to the default).
    fn execute_batch(&self, batch: &QueryBatch) -> Vec<QueryResult> {
        par_map_with(batch.queries(), QueryScratch::new, |scratch, q| match q {
            Query::Range(c) => QueryResult::Range(self.range_scratch(c, scratch)),
            Query::Knn(k) => QueryResult::Knn(self.knn_seq(k)),
            Query::Similarity(s) => QueryResult::Similarity(self.similarity_seq(s)),
            Query::RangeKept(c) => QueryResult::RangeKept(self.range_kept_scratch(c, scratch)),
        })
    }
}

impl QueryExecutor for ShardedQueryEngine<'_> {
    fn len(&self) -> usize {
        ShardedQueryEngine::len(self)
    }

    fn total_points(&self) -> usize {
        ShardedQueryEngine::total_points(self)
    }

    fn trajectory(&self, id: TrajId) -> trajectory::Trajectory {
        ShardedQueryEngine::trajectory(self, id)
    }

    fn range(&self, q: &Cube) -> Vec<TrajId> {
        ShardedQueryEngine::range(self, q)
    }

    fn range_batch(&self, queries: &[Cube]) -> Vec<Vec<TrajId>> {
        ShardedQueryEngine::range_batch(self, queries)
    }

    fn knn(&self, q: &KnnQuery) -> Vec<TrajId> {
        ShardedQueryEngine::knn(self, q)
    }

    fn knn_batch(&self, queries: &[KnnQuery]) -> Vec<Vec<TrajId>> {
        ShardedQueryEngine::knn_batch(self, queries)
    }

    fn similarity(&self, q: &SimilarityQuery) -> Vec<TrajId> {
        ShardedQueryEngine::similarity(self, q)
    }

    fn similarity_batch(&self, queries: &[SimilarityQuery]) -> Vec<Vec<TrajId>> {
        ShardedQueryEngine::similarity_batch(self, queries)
    }

    fn has_kept_bitmap(&self) -> bool {
        self.has_kept_bitmaps()
    }

    fn range_kept(&self, q: &Cube) -> Option<Vec<TrajId>> {
        ShardedQueryEngine::range_kept(self, q)
    }

    fn range_simplified(&self, simp: &Simplification, q: &Cube) -> Vec<TrajId> {
        ShardedQueryEngine::range_simplified(self, simp, q)
    }

    fn range_simplified_batch(&self, simp: &Simplification, queries: &[Cube]) -> Vec<Vec<TrajId>> {
        ShardedQueryEngine::range_simplified_batch(self, simp, queries)
    }

    fn maintained_workload(&self, queries: Vec<Cube>, simp: &Simplification) -> MaintainedWorkload {
        ShardedQueryEngine::maintained_workload(self, queries, simp)
    }

    fn execute_one(&self, q: &Query) -> QueryResult {
        match q {
            Query::Range(c) => QueryResult::Range(self.range_seq(c)),
            Query::Knn(k) => QueryResult::Knn(self.knn_seq(k)),
            Query::Similarity(s) => QueryResult::Similarity(self.similarity_seq(s)),
            Query::RangeKept(c) => QueryResult::RangeKept(self.range_kept_seq(c)),
        }
    }
}

// ---------------------------------------------------------------------
// Open options.
// ---------------------------------------------------------------------

/// How [`TrajDb::open`] materializes the columns of a snapshot source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpenMode {
    /// Snapshot sources are mmap-ed (zero-copy serving); CSV sources —
    /// which have no zero-copy representation — parse into owned columns.
    #[default]
    Auto,
    /// Force heap-owned columns for every source.
    Owned,
    /// Equivalent to [`OpenMode::Auto`]: mmap whenever the format allows.
    Mapped,
}

/// Builder-style options for [`TrajDb::open`] and the in-memory
/// constructors: the index configuration (subsuming [`EngineConfig`]),
/// the open mode, and an optional partitioning choice.
///
/// ```
/// use traj_query::{BackendKind, DbOptions};
/// use trajectory::PartitionStrategy;
///
/// let opts = DbOptions::new()
///     .backend(BackendKind::Octree)
///     .tree_shape(10, 32)
///     .partition(PartitionStrategy::Hash { parts: 4 })
///     .owned();
/// assert_eq!(opts.engine_config().max_depth, 10);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DbOptions {
    engine: EngineConfig,
    mode: OpenMode,
    partition: Option<PartitionStrategy>,
}

impl DbOptions {
    /// Default options: octree backend, [`OpenMode::Auto`], no
    /// re-partitioning.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the whole engine configuration.
    #[must_use]
    pub fn engine(mut self, config: EngineConfig) -> Self {
        self.engine = config;
        self
    }

    /// Overrides the index backend.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.engine = self.engine.with_backend(backend);
        self
    }

    /// Overrides the index tree shape.
    #[must_use]
    pub fn tree_shape(mut self, max_depth: u32, leaf_capacity: usize) -> Self {
        self.engine = self.engine.with_tree_shape(max_depth, leaf_capacity);
        self
    }

    /// Re-partitions a *single-store* source (CSV or snapshot) with
    /// `strategy` and serves it through a fan-out [`ShardedQueryEngine`].
    /// Ignored for shard-set directories, whose on-disk partition is
    /// authoritative.
    #[must_use]
    pub fn partition(mut self, strategy: PartitionStrategy) -> Self {
        self.partition = Some(strategy);
        self
    }

    /// Forces heap-owned columns ([`OpenMode::Owned`]).
    #[must_use]
    pub fn owned(mut self) -> Self {
        self.mode = OpenMode::Owned;
        self
    }

    /// Requests mmap-backed columns where the format allows
    /// ([`OpenMode::Mapped`]).
    #[must_use]
    pub fn mapped(mut self) -> Self {
        self.mode = OpenMode::Mapped;
        self
    }

    /// The engine configuration these options resolve to.
    #[must_use]
    pub fn engine_config(&self) -> EngineConfig {
        self.engine
    }

    /// The open mode.
    #[must_use]
    pub fn open_mode(&self) -> OpenMode {
        self.mode
    }

    /// The re-partitioning choice, if any.
    #[must_use]
    pub fn partition_strategy(&self) -> Option<PartitionStrategy> {
        self.partition
    }
}

/// What [`TrajDb::open`] can fail with: one typed wrapper per source
/// format, plus raw I/O from the format sniff.
#[derive(Debug)]
pub enum TrajDbError {
    /// Reading the path (existence check, format sniff) failed.
    Io(std::io::Error),
    /// The path looked like a snapshot but failed validation.
    Snapshot(SnapshotError),
    /// The path was a directory but not a valid shard set.
    Shards(ShardSetError),
    /// The path was parsed as CSV and a line was malformed.
    Csv(ReadError),
}

impl fmt::Display for TrajDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajDbError::Io(e) => write!(f, "i/o error: {e}"),
            TrajDbError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            TrajDbError::Shards(e) => write!(f, "shard-set error: {e}"),
            TrajDbError::Csv(e) => write!(f, "csv error: {e}"),
        }
    }
}

impl std::error::Error for TrajDbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrajDbError::Io(e) => Some(e),
            TrajDbError::Snapshot(e) => Some(e),
            TrajDbError::Shards(e) => Some(e),
            TrajDbError::Csv(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TrajDbError {
    fn from(e: std::io::Error) -> Self {
        TrajDbError::Io(e)
    }
}

impl From<SnapshotError> for TrajDbError {
    fn from(e: SnapshotError) -> Self {
        TrajDbError::Snapshot(e)
    }
}

impl From<ShardSetError> for TrajDbError {
    fn from(e: ShardSetError) -> Self {
        TrajDbError::Shards(e)
    }
}

impl From<ReadError> for TrajDbError {
    fn from(e: ReadError) -> Self {
        TrajDbError::Csv(e)
    }
}

// ---------------------------------------------------------------------
// The façade.
// ---------------------------------------------------------------------

/// The layout the opened database resolved to.
enum Inner {
    Single(Box<QueryEngine<'static>>),
    Sharded(ShardedQueryEngine<'static>),
}

/// The public trajectory-database façade: open any supported on-disk
/// format (or adopt an in-memory store), get back one object serving the
/// whole [`QueryExecutor`] surface.
///
/// [`TrajDb::open`] auto-detects the format:
///
/// | on disk | detection | served by |
/// |---|---|---|
/// | shard-set directory | `path.is_dir()` | [`ShardedQueryEngine`] (per-shard kept bitmaps retained) |
/// | snapshot file | leading [`trajectory::snapshot::MAGIC`] | [`QueryEngine`] over mmap (or owned), kept bitmap retained |
/// | CSV file | fallback | [`QueryEngine`] over parsed owned columns |
///
/// A [`DbOptions::partition`] choice turns a single-store source into an
/// in-memory sharded engine (splitting a snapshot's kept bitmap across
/// the shards); shard-set directories keep their persisted partition.
pub struct TrajDb {
    inner: Inner,
}

impl TrajDb {
    /// Opens a trajectory database at `path`, auto-detecting CSV,
    /// snapshot, or shard-set directory (see the type docs for the
    /// detection table).
    pub fn open(path: impl AsRef<Path>, opts: DbOptions) -> Result<TrajDb, TrajDbError> {
        let path = path.as_ref();
        if path.is_dir() {
            let set = ShardSet::load(path)?;
            let engine = match opts.mode {
                OpenMode::Auto | OpenMode::Mapped => {
                    ShardedQueryEngine::from_mapped_shards(set.open_mapped()?, opts.engine)
                }
                OpenMode::Owned => {
                    ShardedQueryEngine::from_open_shards(set.open_owned()?, opts.engine)
                }
            };
            return Ok(TrajDb {
                inner: Inner::Sharded(engine),
            });
        }
        if is_snapshot_file(path)? {
            return match (opts.mode, opts.partition) {
                (OpenMode::Auto | OpenMode::Mapped, None) => {
                    let mapped = MappedStore::open(path)?;
                    Ok(TrajDb {
                        inner: Inner::Single(Box::new(QueryEngine::from_mapped(
                            mapped,
                            opts.engine,
                        ))),
                    })
                }
                // Partitioning rearranges the columns, so the mapping
                // cannot be served in place: decode into owned shards.
                _ => {
                    let snap = read_snapshot(path)?;
                    Ok(Self::from_store_with_kept(snap.store, snap.kept, opts))
                }
            };
        }
        let store = trajectory::io::read_csv_store(std::fs::File::open(path)?)?;
        Ok(Self::from_store(store, opts))
    }

    /// Adopts an in-memory columnar store (honouring
    /// [`DbOptions::partition`]; the open mode is irrelevant in memory).
    #[must_use]
    pub fn from_store(store: PointStore, opts: DbOptions) -> TrajDb {
        Self::from_store_with_kept(store, None, opts)
    }

    /// Adopts an AoS database (converted to columns once).
    #[must_use]
    pub fn from_db(db: &TrajectoryDb, opts: DbOptions) -> TrajDb {
        Self::from_store(db.to_store(), opts)
    }

    /// The shared in-memory constructor core: partitions when requested,
    /// carrying an optional kept bitmap through (split per shard when
    /// partitioning).
    fn from_store_with_kept(
        store: PointStore,
        kept: Option<KeptBitmap>,
        opts: DbOptions,
    ) -> TrajDb {
        match opts.partition {
            None => {
                let mut engine = QueryEngine::from_store(store, opts.engine);
                engine.set_kept_bitmap(kept);
                TrajDb {
                    inner: Inner::Single(Box::new(engine)),
                }
            }
            Some(strategy) => {
                let shards = partition(&store, &strategy);
                let kept_per_shard = match kept {
                    Some(bitmap) => split_kept_bitmap(&bitmap, store.offsets(), &shards)
                        .into_iter()
                        .map(Some)
                        .collect(),
                    None => vec![None; shards.len()],
                };
                let open: Vec<OpenShard<PointStore>> = shards
                    .into_iter()
                    .zip(kept_per_shard)
                    .map(|(sh, kept)| OpenShard {
                        store: sh.store,
                        global_ids: sh.global_ids,
                        kept,
                    })
                    .collect();
                TrajDb {
                    inner: Inner::Sharded(ShardedQueryEngine::from_open_shards(open, opts.engine)),
                }
            }
        }
    }

    /// True when the database is served by a fan-out sharded engine.
    #[must_use]
    pub fn is_sharded(&self) -> bool {
        matches!(self.inner, Inner::Sharded(_))
    }

    /// Number of shards (1 for a single-store database).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        match &self.inner {
            Inner::Single(_) => 1,
            Inner::Sharded(e) => e.shard_count(),
        }
    }

    /// The engine configuration in use.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        match &self.inner {
            Inner::Single(e) => e.config(),
            Inner::Sharded(e) => e.config(),
        }
    }

    /// The single-store engine behind the façade, when the database is
    /// unsharded — the escape hatch for layout-specific features
    /// ([`QueryEngine::cube_index`], `assign_queries`).
    #[must_use]
    pub fn as_single(&self) -> Option<&QueryEngine<'static>> {
        match &self.inner {
            Inner::Single(e) => Some(e.as_ref()),
            Inner::Sharded(_) => None,
        }
    }

    /// This database's contribution to a *distributed* kNN: its finite
    /// candidates sorted by `(distance, id)`, truncated to `q.k`,
    /// `-0.0`-normalized. A coordinator that merges these lists across
    /// shard processes with
    /// [`merge_knn_candidates`](crate::merge_knn_candidates) and
    /// [`knn_take_fill`](crate::knn_take_fill) reproduces the
    /// in-process [`QueryExecutor::knn`] answer byte-for-byte.
    #[must_use]
    pub fn knn_candidates(&self, q: &KnnQuery) -> Vec<(f64, TrajId)> {
        match &self.inner {
            Inner::Single(e) => e.knn_candidates(q),
            Inner::Sharded(e) => e.knn_candidates(q),
        }
    }

    /// Smallest cube covering every served point, as the open database
    /// decodes them (for quantized snapshots: the decoded coordinates).
    /// A serving process reports this in its placement handshake so a
    /// distributed coordinator can route with
    /// [`query_touches_bounds`](crate::query_touches_bounds).
    #[must_use]
    pub fn bounding_cube(&self) -> Cube {
        match &self.inner {
            Inner::Single(e) => e.store().bounding_cube(),
            Inner::Sharded(e) => {
                let mut all = Cube::empty();
                for b in e.shard_bounds() {
                    all.union_with(&b);
                }
                all
            }
        }
    }

    /// The sharded engine behind the façade, when the database is
    /// sharded.
    #[must_use]
    pub fn as_sharded(&self) -> Option<&ShardedQueryEngine<'static>> {
        match &self.inner {
            Inner::Single(_) => None,
            Inner::Sharded(e) => Some(e),
        }
    }

    /// Generates a range-query workload over the served database with
    /// `spec` — data-centered anchors come from the actual columns, and a
    /// sharded database contributes anchors per shard proportional to its
    /// share of the points (so the workload's spatial distribution
    /// matches the data regardless of layout).
    #[must_use]
    pub fn range_workload(&self, spec: &RangeWorkloadSpec, rng: &mut StdRng) -> Vec<Cube> {
        match &self.inner {
            Inner::Single(e) => range_workload_store(e.store(), spec, rng),
            Inner::Sharded(e) => {
                let total: usize = e.total_points();
                let shares: Vec<&trajectory::StoreRef<'static>> = e.shard_stores().collect();
                let mut queries = Vec::with_capacity(spec.count);
                for (i, store) in shares.iter().enumerate() {
                    let share = if total == 0 {
                        0
                    } else if i + 1 == shares.len() {
                        spec.count - queries.len()
                    } else {
                        spec.count * store.total_points() / total
                    };
                    let shard_spec = RangeWorkloadSpec {
                        count: share,
                        ..*spec
                    };
                    queries.extend(range_workload_store(*store, &shard_spec, rng));
                }
                queries
            }
        }
    }
}

impl fmt::Debug for TrajDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrajDb")
            .field("sharded", &self.is_sharded())
            .field("shards", &self.shard_count())
            .field("trajectories", &QueryExecutor::len(self))
            .field("points", &QueryExecutor::total_points(self))
            .finish_non_exhaustive()
    }
}

impl QueryExecutor for TrajDb {
    fn len(&self) -> usize {
        match &self.inner {
            Inner::Single(e) => QueryExecutor::len(e.as_ref()),
            Inner::Sharded(e) => QueryExecutor::len(e),
        }
    }

    fn total_points(&self) -> usize {
        match &self.inner {
            Inner::Single(e) => QueryExecutor::total_points(e.as_ref()),
            Inner::Sharded(e) => QueryExecutor::total_points(e),
        }
    }

    fn trajectory(&self, id: TrajId) -> trajectory::Trajectory {
        match &self.inner {
            Inner::Single(e) => e.trajectory(id),
            Inner::Sharded(e) => e.trajectory(id),
        }
    }

    fn range(&self, q: &Cube) -> Vec<TrajId> {
        match &self.inner {
            Inner::Single(e) => e.range(q),
            Inner::Sharded(e) => e.range(q),
        }
    }

    fn range_batch(&self, queries: &[Cube]) -> Vec<Vec<TrajId>> {
        match &self.inner {
            Inner::Single(e) => e.range_batch(queries),
            Inner::Sharded(e) => e.range_batch(queries),
        }
    }

    fn knn(&self, q: &KnnQuery) -> Vec<TrajId> {
        match &self.inner {
            Inner::Single(e) => e.knn(q),
            Inner::Sharded(e) => e.knn(q),
        }
    }

    fn knn_batch(&self, queries: &[KnnQuery]) -> Vec<Vec<TrajId>> {
        match &self.inner {
            Inner::Single(e) => e.knn_batch(queries),
            Inner::Sharded(e) => e.knn_batch(queries),
        }
    }

    fn similarity(&self, q: &SimilarityQuery) -> Vec<TrajId> {
        match &self.inner {
            Inner::Single(e) => e.similarity(q),
            Inner::Sharded(e) => e.similarity(q),
        }
    }

    fn similarity_batch(&self, queries: &[SimilarityQuery]) -> Vec<Vec<TrajId>> {
        match &self.inner {
            Inner::Single(e) => e.similarity_batch(queries),
            Inner::Sharded(e) => e.similarity_batch(queries),
        }
    }

    fn has_kept_bitmap(&self) -> bool {
        match &self.inner {
            Inner::Single(e) => e.has_kept_bitmap(),
            Inner::Sharded(e) => e.has_kept_bitmaps(),
        }
    }

    fn range_kept(&self, q: &Cube) -> Option<Vec<TrajId>> {
        match &self.inner {
            Inner::Single(e) => e.range_kept(q),
            Inner::Sharded(e) => e.range_kept(q),
        }
    }

    fn range_simplified(&self, simp: &Simplification, q: &Cube) -> Vec<TrajId> {
        match &self.inner {
            Inner::Single(e) => QueryExecutor::range_simplified(e.as_ref(), simp, q),
            Inner::Sharded(e) => QueryExecutor::range_simplified(e, simp, q),
        }
    }

    fn range_simplified_batch(&self, simp: &Simplification, queries: &[Cube]) -> Vec<Vec<TrajId>> {
        match &self.inner {
            Inner::Single(e) => QueryExecutor::range_simplified_batch(e.as_ref(), simp, queries),
            Inner::Sharded(e) => QueryExecutor::range_simplified_batch(e, simp, queries),
        }
    }

    fn maintained_workload(&self, queries: Vec<Cube>, simp: &Simplification) -> MaintainedWorkload {
        match &self.inner {
            Inner::Single(e) => e.maintained_workload(queries, simp),
            Inner::Sharded(e) => e.maintained_workload(queries, simp),
        }
    }

    fn execute_one(&self, q: &Query) -> QueryResult {
        match &self.inner {
            Inner::Single(e) => e.execute_one(q),
            Inner::Sharded(e) => e.execute_one(q),
        }
    }

    fn execute_batch(&self, batch: &QueryBatch) -> Vec<QueryResult> {
        match &self.inner {
            Inner::Single(e) => e.as_ref().execute_batch(batch),
            Inner::Sharded(e) => e.execute_batch(batch),
        }
    }
}

/// Splits a whole-database kept bitmap (indexed by the original store's
/// global point ids) into per-shard bitmaps (indexed by each shard's own
/// point numbering). `orig_offsets` is the original store's offset table;
/// shards reference it through their `global_ids`.
fn split_kept_bitmap(
    bitmap: &KeptBitmap,
    orig_offsets: &[u32],
    shards: &[Shard],
) -> Vec<KeptBitmap> {
    shards
        .iter()
        .map(|sh| {
            let mut local = KeptBitmap::zeros(sh.store.total_points());
            let shard_offsets = sh.store.offsets();
            for (local_id, &global_id) in sh.global_ids.iter().enumerate() {
                let src = orig_offsets[global_id];
                let dst = shard_offsets[local_id];
                let len = orig_offsets[global_id + 1] - src;
                for i in 0..len {
                    if bitmap.contains(src + i) {
                        local.insert(dst + i);
                    }
                }
            }
            local
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::Dissimilarity;
    use crate::workload::QueryDistribution;
    use rand::SeedableRng;
    use trajectory::gen::{generate, DatasetSpec, Scale};

    fn sample_store() -> PointStore {
        generate(&DatasetSpec::geolife(Scale::Smoke), 4242).to_store()
    }

    fn mixed_batch(store: &PointStore, n_range: usize) -> QueryBatch {
        let spec = RangeWorkloadSpec {
            count: n_range,
            spatial_extent: 2_000.0,
            temporal_extent: 86_400.0,
            dist: QueryDistribution::Data,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let cubes = range_workload_store(store, &spec, &mut rng);
        let db = store.to_db();
        let (t0, t1) = store.time_span();
        let mut batch = QueryBatch::new();
        for (i, c) in cubes.into_iter().enumerate() {
            if i % 2 == 0 {
                batch.push_range(c);
            } else {
                batch.push_range_kept(c);
            }
        }
        batch.push_knn(KnnQuery {
            query: db.get(0).clone(),
            ts: t0,
            te: t1,
            k: 3,
            measure: Dissimilarity::Edr { eps: 1_000.0 },
        });
        batch.push_similarity(SimilarityQuery {
            query: db.get(1).clone(),
            ts: t0,
            te: t1,
            delta: 2_500.0,
            step: 300.0,
        });
        batch
    }

    #[test]
    fn batch_matches_one_shot_execution_on_both_executors() {
        let store = sample_store();
        let batch = mixed_batch(&store, 10);
        let single = TrajDb::from_store(store.clone(), DbOptions::new());
        let sharded = TrajDb::from_store(
            store,
            DbOptions::new().partition(PartitionStrategy::Hash { parts: 3 }),
        );
        assert!(!single.is_sharded());
        assert!(sharded.is_sharded());
        for db in [&single, &sharded] {
            let results = db.execute_batch(&batch);
            assert_eq!(results.len(), batch.len());
            for (q, r) in batch.queries().iter().zip(&results) {
                assert_eq!(r.kind(), q.kind());
                assert_eq!(*r, db.execute(q), "{:?}", q.kind());
            }
        }
        // And the two layouts agree with each other.
        assert_eq!(single.execute_batch(&batch), sharded.execute_batch(&batch));
    }

    #[test]
    fn kind_counts_reflect_the_plan() {
        let store = sample_store();
        let batch = mixed_batch(&store, 10);
        let counts = batch.kind_counts();
        assert_eq!(counts[QueryKind::Range as usize], 5);
        assert_eq!(counts[QueryKind::RangeKept as usize], 5);
        assert_eq!(counts[QueryKind::Knn as usize], 1);
        assert_eq!(counts[QueryKind::Similarity as usize], 1);
        assert_eq!(batch.len(), 12);
    }

    #[test]
    fn range_kept_is_none_without_a_bitmap_on_every_layout() {
        let store = sample_store();
        let q = Cube::new(0.0, 1.0, 0.0, 1.0, 0.0, 1.0);
        for opts in [
            DbOptions::new(),
            DbOptions::new().partition(PartitionStrategy::Time { parts: 2 }),
        ] {
            let db = TrajDb::from_store(store.clone(), opts);
            assert!(!db.has_kept_bitmap());
            assert!(db.range_kept(&q).is_none());
            assert_eq!(
                db.execute(&Query::RangeKept(q)),
                QueryResult::RangeKept(None)
            );
        }
    }

    #[test]
    fn executors_work_as_trait_objects() {
        let store = sample_store();
        let engine = QueryEngine::over_store(&store, EngineConfig::octree());
        let dyn_exec: &dyn QueryExecutor = &engine;
        let q = store.bounding_cube();
        assert_eq!(dyn_exec.range(&q), engine.range(&q));
        assert_eq!(dyn_exec.len(), store.len());
    }

    #[test]
    fn workload_generation_covers_both_layouts() {
        let store = sample_store();
        let spec = RangeWorkloadSpec {
            count: 12,
            spatial_extent: 1_000.0,
            temporal_extent: 86_400.0,
            dist: QueryDistribution::Data,
        };
        let single = TrajDb::from_store(store.clone(), DbOptions::new());
        let sharded = TrajDb::from_store(
            store,
            DbOptions::new().partition(PartitionStrategy::Hash { parts: 4 }),
        );
        for db in [&single, &sharded] {
            let w = db.range_workload(&spec, &mut StdRng::seed_from_u64(3));
            assert_eq!(w.len(), 12);
            // Data-centered queries must actually hit data.
            assert!(w.iter().all(|q| !db.range(q).is_empty()));
        }
    }
}
