//! Fan-out query execution over a sharded database.
//!
//! A [`ShardedQueryEngine`] holds one [`QueryEngine`] per shard (each over
//! its own columns — heap-owned or mmap-backed — with its own index, all
//! built **in parallel** via [`par_map`]) plus the shard-local → global
//! trajectory id maps and per-shard bounding cubes. Queries are routed to
//! the shards that can contribute and the per-shard results merged so
//! that every query returns **byte-identical answers** to a single-store
//! [`QueryEngine`] over the unsharded database:
//!
//! - **range**: only shards whose bounds intersect the query cube execute
//!   it (shard-bound pruning); local hits map to global ids and merge
//!   sorted.
//! - **kNN**: each contributing shard produces its finite-distance
//!   candidates best-first; a global k-heap merges the per-shard streams
//!   by `(distance, global id)` and the single-store infinite-fill policy
//!   is applied once, globally.
//! - **similarity** and [`MaintainedWorkload`]: per-shard candidate
//!   generation (interpolation makes spatial pruning unsound, exactly as
//!   in the single-store engine), then a global merge.
//!
//! The equality is property-tested in `tests/sharded_props.rs` across all
//! partitioners and index backends, including mmap-backed shards.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

use trajectory::shard::{partition, OpenShard, PartitionStrategy, Shard};
use trajectory::{
    AsColumns, Cube, KeptBitmap, MappedStore, PointStore, Simplification, StoreRef, TrajId,
};

use crate::db::Query;
use crate::engine::{build_backend, EngineConfig, MaintainedWorkload, QueryEngine};
use crate::knn::KnnQuery;
use crate::parallel::{par_map, par_map_indexed};
use crate::similarity::SimilarityQuery;

/// One shard as the router sees it: its engine (which carries the shard
/// snapshot's kept bitmap, when one was persisted), its id translation,
/// and its bounds.
struct ShardHandle<'a> {
    engine: QueryEngine<'a>,
    /// `global_ids[local]` = global trajectory id; strictly ascending, so
    /// shard-local result order is global order.
    global_ids: Vec<TrajId>,
    /// Smallest cube covering the shard's points — what range routing and
    /// kNN time pruning test against.
    bounds: Cube,
}

/// A query engine over a sharded database: per-shard indexes built in
/// parallel, queries fanned out to the shards whose bounds can
/// contribute, results merged to match the single-store [`QueryEngine`]
/// exactly. See the [module docs](self) for the routing/merge rules.
pub struct ShardedQueryEngine<'a> {
    shards: Vec<ShardHandle<'a>>,
    total_trajs: usize,
    config: EngineConfig,
}

impl ShardedQueryEngine<'static> {
    /// Partitions `store` with `strategy` and builds one engine per shard
    /// (index builds run in parallel). The convenience constructor for
    /// "shard this database now"; use [`ShardedQueryEngine::from_shards`]
    /// when the partition is reused.
    #[must_use]
    pub fn from_partition(
        store: &PointStore,
        strategy: &PartitionStrategy,
        config: EngineConfig,
    ) -> Self {
        Self::from_shards(partition(store, strategy), config)
    }

    /// Builds the fan-out engine over already-partitioned shards,
    /// consuming their stores. All shard index builds run in parallel via
    /// [`par_map`], then each store moves into its engine — no column is
    /// copied.
    #[must_use]
    pub fn from_shards(shards: Vec<Shard>, config: EngineConfig) -> Self {
        Self::build(
            shards
                .into_iter()
                .map(|sh| (StoreRef::Owned(sh.store), sh.global_ids, None))
                .collect(),
            config,
        )
    }

    /// Builds the fan-out engine over shards reopened from a
    /// [`ShardSet`](trajectory::ShardSet) as owned stores
    /// (`open_owned`). Kept bitmaps carried by the shard snapshots are
    /// retained for [`ShardedQueryEngine::range_kept`].
    #[must_use]
    pub fn from_open_shards(shards: Vec<OpenShard<PointStore>>, config: EngineConfig) -> Self {
        Self::build(
            shards
                .into_iter()
                .map(|sh| (StoreRef::Owned(sh.store), sh.global_ids, sh.kept))
                .collect(),
            config,
        )
    }

    /// Builds the fan-out engine over mmap-backed shards (`open_mapped`):
    /// per-shard index builds walk the mapped columns in parallel and
    /// queries execute with zero deserialization, exactly as
    /// [`QueryEngine::from_mapped`] does for a single store.
    #[must_use]
    pub fn from_mapped_shards(shards: Vec<OpenShard<MappedStore>>, config: EngineConfig) -> Self {
        Self::build(
            shards
                .into_iter()
                .map(|sh| (StoreRef::Mapped(sh.store), sh.global_ids, sh.kept))
                .collect(),
            config,
        )
    }
}

impl<'a> ShardedQueryEngine<'a> {
    /// Builds the fan-out engine *borrowing* already-partitioned shards —
    /// the zero-copy twin of [`ShardedQueryEngine::from_shards`], for
    /// callers (benchmarks, repeated builds) that keep the partition
    /// around.
    #[must_use]
    pub fn over_shards(shards: &'a [Shard], config: EngineConfig) -> Self {
        Self::build(
            shards
                .iter()
                .map(|sh| (StoreRef::Borrowed(&sh.store), sh.global_ids.clone(), None))
                .collect(),
            config,
        )
    }

    /// The shared constructor core: per-shard index builds run in
    /// parallel via [`par_map`] over the store handles (owned, borrowed,
    /// or mapped — [`StoreRef`] implements `AsColumns`), then each store
    /// moves into its engine alongside its bounds and id map.
    fn build(
        shards: Vec<(StoreRef<'a>, Vec<TrajId>, Option<KeptBitmap>)>,
        config: EngineConfig,
    ) -> Self {
        let backends = par_map(&shards, |(store, _, _)| build_backend(store, config));
        let handles = shards
            .into_iter()
            .zip(backends)
            .map(|((store, global_ids, kept), backend)| {
                let bounds = store.bounding_cube();
                let mut engine = QueryEngine::from_backend(store, backend, config);
                engine.set_kept_bitmap(kept);
                ShardHandle {
                    engine,
                    global_ids,
                    bounds,
                }
            })
            .collect();
        Self::from_handles(handles, config)
    }

    fn from_handles(shards: Vec<ShardHandle<'a>>, config: EngineConfig) -> Self {
        let total_trajs = shards.iter().map(|sh| sh.global_ids.len()).sum();
        debug_assert!(
            {
                let mut seen = vec![false; total_trajs];
                shards
                    .iter()
                    .flat_map(|sh| &sh.global_ids)
                    .all(|&g| g < total_trajs && !std::mem::replace(&mut seen[g], true))
            },
            "shard global ids must partition 0..total"
        );
        Self {
            shards,
            total_trajs,
            config,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total trajectories across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total_trajs
    }

    /// True when the engine serves no trajectories.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_trajs == 0
    }

    /// Total points across all shards.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.engine.store().total_points())
            .sum()
    }

    /// The per-shard build configuration.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Per-shard bounding cubes (the router's pruning bounds).
    pub fn shard_bounds(&self) -> impl Iterator<Item = Cube> + '_ {
        self.shards.iter().map(|sh| sh.bounds)
    }

    /// True when every shard carries a persisted kept bitmap — i.e. the
    /// set was written as a simplified database and
    /// [`ShardedQueryEngine::range_kept`] can serve `D'`.
    #[must_use]
    pub fn has_kept_bitmaps(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(|sh| sh.engine.has_kept_bitmap())
    }

    /// Per-shard store handles, in shard order (owned, borrowed, or
    /// mapped). The accessor workload generators and statistics use; query
    /// execution itself goes through the fan-out methods.
    pub fn shard_stores(&self) -> impl Iterator<Item = &StoreRef<'a>> {
        self.shards.iter().map(|sh| sh.engine.store())
    }

    /// Materializes the trajectory with *global* id `id` (a binary search
    /// for the owning shard, then a column gather).
    ///
    /// # Panics
    /// Panics when `id >= self.len()`.
    #[must_use]
    pub fn trajectory(&self, id: TrajId) -> trajectory::Trajectory {
        assert!(id < self.total_trajs, "trajectory id out of range");
        for sh in &self.shards {
            if let Ok(local) = sh.global_ids.binary_search(&id) {
                return sh.engine.trajectory(local);
            }
        }
        unreachable!("shard global ids partition 0..total")
    }

    /// Maps per-shard local result lists to global ids and merges them
    /// ascending.
    fn merge_local(&self, per_shard: Vec<Vec<TrajId>>) -> Vec<TrajId> {
        let mut out = Vec::with_capacity(per_shard.iter().map(Vec::len).sum());
        for (sh, ids) in self.shards.iter().zip(per_shard) {
            out.extend(ids.into_iter().map(|local| sh.global_ids[local]));
        }
        out.sort_unstable();
        out
    }

    // ------------------------------------------------------------------
    // Range queries.
    // ------------------------------------------------------------------

    /// Executes a range query, fanning out across shards in parallel.
    /// Shards whose bounds miss `q` are pruned without touching their
    /// index. Identical results to [`QueryEngine::range`] over the
    /// unsharded store.
    #[must_use]
    pub fn range(&self, q: &Cube) -> Vec<TrajId> {
        self.merge_local(par_map(&self.shards, |sh| shard_range(sh, q)))
    }

    /// Executes a whole batch of range queries, parallel across queries
    /// (each query walks its shards sequentially — one level of
    /// parallelism, not `cores²` threads).
    #[must_use]
    pub fn range_batch(&self, queries: &[Cube]) -> Vec<Vec<TrajId>> {
        par_map(queries, |q| self.range_seq(q))
    }

    /// [`ShardedQueryEngine::range`] walking the shards sequentially —
    /// the per-query unit batch passes parallelize over.
    pub(crate) fn range_seq(&self, q: &Cube) -> Vec<TrajId> {
        self.merge_local(self.shards.iter().map(|sh| shard_range(sh, q)).collect())
    }

    /// Executes a range query against the *persisted* per-shard kept
    /// bitmaps (a simplified shard set) — `None` when the shards carry no
    /// bitmaps. Identical results to [`QueryEngine::range_kept`] with the
    /// equivalent global bitmap.
    #[must_use]
    pub fn range_kept(&self, q: &Cube) -> Option<Vec<TrajId>> {
        if !self.has_kept_bitmaps() {
            return None;
        }
        Some(self.merge_local(par_map(&self.shards, |sh| shard_range_kept(sh, q))))
    }

    /// [`ShardedQueryEngine::range_kept`] walking the shards sequentially
    /// — the per-query unit batch passes parallelize over.
    pub(crate) fn range_kept_seq(&self, q: &Cube) -> Option<Vec<TrajId>> {
        if !self.has_kept_bitmaps() {
            return None;
        }
        Some(
            self.merge_local(
                self.shards
                    .iter()
                    .map(|sh| shard_range_kept(sh, q))
                    .collect(),
            ),
        )
    }

    // ------------------------------------------------------------------
    // kNN queries.
    // ------------------------------------------------------------------

    /// Executes a kNN query: contributing shards produce their
    /// finite-distance candidates best-first (shards temporally disjoint
    /// from the window are pruned), a global k-heap merges the streams by
    /// `(distance, global id)`, and the infinite tail fills in ascending
    /// global id order — the exact single-store policy, applied once
    /// globally. Identical results to [`QueryEngine::knn`].
    #[must_use]
    pub fn knn(&self, q: &KnnQuery) -> Vec<TrajId> {
        let per_shard = par_map(&self.shards, |sh| shard_knn_candidates(sh, q, true));
        self.knn_merge(q.k, per_shard)
    }

    /// [`ShardedQueryEngine::knn`] walking the shards sequentially with
    /// sequential per-shard scoring — the per-query unit batch passes
    /// parallelize over. Identical results to [`ShardedQueryEngine::knn`].
    pub(crate) fn knn_seq(&self, q: &KnnQuery) -> Vec<TrajId> {
        let per_shard = self
            .shards
            .iter()
            .map(|sh| shard_knn_candidates(sh, q, false))
            .collect();
        self.knn_merge(q.k, per_shard)
    }

    /// The global merge half of a kNN fan-out (see
    /// [`ShardedQueryEngine::knn`]).
    fn knn_merge(&self, k: usize, per_shard: Vec<Vec<(f64, TrajId)>>) -> Vec<TrajId> {
        knn_take_fill(k, &merge_knn_candidates(k, &per_shard), 0..self.total_trajs)
    }

    /// This engine's contribution to a distributed kNN: the global best
    /// `k` finite-distance candidates, sorted by `(distance, global
    /// id)`, `-0.0`-normalized — the sharded twin of
    /// [`QueryEngine::knn_candidates`]. A remote coordinator merges
    /// these lists across shard processes with [`merge_knn_candidates`]
    /// and [`knn_take_fill`] and reproduces
    /// [`ShardedQueryEngine::knn`] byte-for-byte.
    #[must_use]
    pub fn knn_candidates(&self, q: &KnnQuery) -> Vec<(f64, TrajId)> {
        let per_shard = par_map(&self.shards, |sh| shard_knn_candidates(sh, q, true));
        merge_knn_candidates(q.k, &per_shard)
    }

    /// Executes a batch of kNN queries (parallelism lives inside each
    /// query's shard fan-out).
    #[must_use]
    pub fn knn_batch(&self, queries: &[KnnQuery]) -> Vec<Vec<TrajId>> {
        queries.iter().map(|q| self.knn(q)).collect()
    }

    // ------------------------------------------------------------------
    // Similarity queries.
    // ------------------------------------------------------------------

    /// Executes a similarity query: per-shard candidate generation in
    /// parallel, global merge. Spatial pruning stays unsound here (a
    /// trajectory can match through interpolation with no sampled point
    /// near the window), but a shard temporally disjoint from the window
    /// cannot match. Identical results to [`QueryEngine::similarity`].
    #[must_use]
    pub fn similarity(&self, q: &SimilarityQuery) -> Vec<TrajId> {
        self.merge_local(par_map(&self.shards, |sh| shard_similarity(sh, q)))
    }

    /// Executes a batch of similarity queries, parallel across queries.
    #[must_use]
    pub fn similarity_batch(&self, queries: &[SimilarityQuery]) -> Vec<Vec<TrajId>> {
        par_map(queries, |q| self.similarity_seq(q))
    }

    /// [`ShardedQueryEngine::similarity`] walking the shards sequentially
    /// — the per-query unit batch passes parallelize over.
    pub(crate) fn similarity_seq(&self, q: &SimilarityQuery) -> Vec<TrajId> {
        self.merge_local(
            self.shards
                .iter()
                .map(|sh| shard_similarity(sh, q))
                .collect(),
        )
    }

    // ------------------------------------------------------------------
    // Simplified-database execution.
    // ------------------------------------------------------------------

    /// Executes a range query against a global [`Simplification`] without
    /// materializing `D'` — the per-shard split happens internally.
    /// Identical results to [`QueryEngine::range_simplified`]; batches
    /// should prefer [`ShardedQueryEngine::range_simplified_batch`] (or a
    /// pre-split [`ShardedQueryEngine::range_simplified_local`]), which
    /// splits once.
    #[must_use]
    pub fn range_simplified(&self, simp: &Simplification, q: &Cube) -> Vec<TrajId> {
        self.range_simplified_local(&self.shard_simplification(simp), q)
    }

    /// Batch variant of [`ShardedQueryEngine::range_simplified`]: the
    /// global simplification splits into shard-local ones once for the
    /// whole batch.
    #[must_use]
    pub fn range_simplified_batch(
        &self,
        simp: &Simplification,
        queries: &[Cube],
    ) -> Vec<Vec<TrajId>> {
        self.range_simplified_local_batch(&self.shard_simplification(simp), queries)
    }

    /// Splits a global [`Simplification`] into per-shard local ones —
    /// compute once, then serve
    /// [`ShardedQueryEngine::range_simplified_local`] /
    /// [`ShardedQueryEngine::range_simplified_local_batch`] against it.
    #[must_use]
    pub fn shard_simplification(&self, simp: &Simplification) -> ShardedSimplification {
        let locals = self
            .shards
            .iter()
            .map(|sh| {
                let kept: Vec<Vec<u32>> = sh
                    .global_ids
                    .iter()
                    .map(|&g| simp.kept(g).to_vec())
                    .collect();
                Simplification::from_kept_store(sh.engine.store(), kept)
            })
            .collect();
        ShardedSimplification { locals }
    }

    /// Executes a range query against a pre-split sharded simplification
    /// without materializing `D'`. Identical results to
    /// [`QueryEngine::range_simplified`] with the corresponding global
    /// simplification.
    #[must_use]
    pub fn range_simplified_local(&self, simp: &ShardedSimplification, q: &Cube) -> Vec<TrajId> {
        assert_eq!(simp.locals.len(), self.shards.len(), "shard count mismatch");
        self.merge_local(par_map_indexed(&self.shards, |i, sh| {
            if !sh.bounds.intersects(q) {
                return Vec::new();
            }
            sh.engine.range_simplified(&simp.locals[i], q)
        }))
    }

    /// Batch variant of [`ShardedQueryEngine::range_simplified_local`],
    /// parallel across queries.
    #[must_use]
    pub fn range_simplified_local_batch(
        &self,
        simp: &ShardedSimplification,
        queries: &[Cube],
    ) -> Vec<Vec<TrajId>> {
        assert_eq!(simp.locals.len(), self.shards.len(), "shard count mismatch");
        par_map(queries, |q| {
            self.merge_local(
                self.shards
                    .iter()
                    .enumerate()
                    .map(|(i, sh)| {
                        if !sh.bounds.intersects(q) {
                            return Vec::new();
                        }
                        sh.engine.range_simplified(&simp.locals[i], q)
                    })
                    .collect(),
            )
        })
    }

    // ------------------------------------------------------------------
    // Workload maintenance.
    // ------------------------------------------------------------------

    /// Builds a [`MaintainedWorkload`] over `queries` with ground truth
    /// from this sharded engine and running result sets from `simp`
    /// (global trajectory ids throughout): per-shard candidate
    /// generation, global merge. The returned workload is
    /// indistinguishable from one built by the single-store engine —
    /// every subsequent `insert`/`remove`/`diff` is pure bookkeeping on
    /// global ids.
    #[must_use]
    pub fn maintained_workload(
        &self,
        queries: Vec<Cube>,
        simp: &Simplification,
    ) -> MaintainedWorkload {
        let truth = self.range_batch(&queries);
        let counts: Vec<HashMap<TrajId, u32>> = par_map(&queries, |q| {
            let mut counts: HashMap<TrajId, u32> = HashMap::new();
            for sh in &self.shards {
                // Kept points inside q lie inside the shard's bounds.
                if !sh.bounds.intersects(q) {
                    continue;
                }
                for (local, v) in sh.engine.store().iter() {
                    let global = sh.global_ids[local];
                    let n = simp
                        .kept(global)
                        .iter()
                        .filter(|&&idx| {
                            let i = idx as usize;
                            q.contains_xyz(v.xs[i], v.ys[i], v.ts[i])
                        })
                        .count() as u32;
                    if n > 0 {
                        counts.insert(global, n);
                    }
                }
            }
            counts
        });
        MaintainedWorkload::from_parts(queries, truth, counts)
    }
}

/// A global [`Simplification`] split into per-shard local ones (see
/// [`ShardedQueryEngine::shard_simplification`]).
#[derive(Debug, Clone)]
pub struct ShardedSimplification {
    /// `locals[shard]` = the simplification restricted to that shard, in
    /// shard-local trajectory ids.
    locals: Vec<Simplification>,
}

impl ShardedSimplification {
    /// Total number of retained points across all shards.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.locals.iter().map(Simplification::total_points).sum()
    }
}

/// True when `q` can contribute results from a shard whose points all
/// lie inside `bounds` — the single definition of the router's pruning
/// rules, shared by the in-process fan-out below and by a distributed
/// coordinator deciding which shard *processes* to send a query to at
/// all:
///
/// - **range / range-kept**: the query cube must intersect the bounds
///   (a hit is a sampled point inside both).
/// - **kNN**: a shard temporally disjoint from a *non-empty* query
///   window cannot score finite. With an empty window every trajectory
///   scores finite (the both-empty convention), so nothing prunes.
/// - **similarity**: only the time axis prunes — interpolation makes
///   spatial pruning unsound, but a candidate in a shard disjoint from
///   `[ts, te]` always fails the matcher's window-overlap test.
///
/// A `false` here guarantees the shard's contribution is empty, so
/// skipping it cannot change the merged answer.
#[must_use]
pub fn query_touches_bounds(q: &Query, bounds: &Cube) -> bool {
    match q {
        Query::Range(c) | Query::RangeKept(c) => bounds.intersects(c),
        Query::Knn(k) => {
            k.query_window().is_empty() || !(bounds.t_max < k.ts || bounds.t_min > k.te)
        }
        Query::Similarity(s) => !(bounds.t_max < s.ts || bounds.t_min > s.te),
    }
}

/// One shard's share of a range query (shard-local ids).
fn shard_range(sh: &ShardHandle<'_>, q: &Cube) -> Vec<TrajId> {
    if !sh.bounds.intersects(q) {
        return Vec::new();
    }
    sh.engine.range(q)
}

/// One shard's share of a kept-bitmap range query (shard-local ids). The
/// caller guarantees every shard engine carries a bitmap.
fn shard_range_kept(sh: &ShardHandle<'_>, q: &Cube) -> Vec<TrajId> {
    if !sh.bounds.intersects(q) {
        return Vec::new();
    }
    sh.engine
        .range_kept(q)
        .expect("checked by has_kept_bitmaps")
}

/// One shard's finite-distance kNN candidates, mapped to global ids and
/// truncated to the query's `k` (only a shard's best `k` can reach the
/// global top `k`; anything past that is dead weight in the merge — the
/// infinite-fill path is unaffected, since it only triggers when the
/// global finite count is below `k`, in which case no shard was
/// truncated). Pruning is [`query_touches_bounds`]' kNN rule.
fn shard_knn_candidates(sh: &ShardHandle<'_>, q: &KnnQuery, parallel: bool) -> Vec<(f64, TrajId)> {
    let window_empty = q.query_window().is_empty();
    if !window_empty && (sh.bounds.t_max < q.ts || sh.bounds.t_min > q.te) {
        return Vec::new();
    }
    let mut scored = sh.engine.knn_finite_scored_impl(q, parallel);
    scored.truncate(q.k);
    for entry in &mut scored {
        entry.1 = sh.global_ids[entry.1];
        entry.0 += 0.0; // normalize -0.0 so total_cmp == partial_cmp
    }
    scored
}

/// One shard's share of a similarity query (shard-local ids). Only the
/// time axis prunes (see [`query_touches_bounds`]).
fn shard_similarity(sh: &ShardHandle<'_>, q: &SimilarityQuery) -> Vec<TrajId> {
    if sh.bounds.t_max < q.ts || sh.bounds.t_min > q.te {
        return Vec::new();
    }
    q.execute_store(sh.engine.store())
}

/// Merges per-stream kNN candidate lists into the global best `k`,
/// still sorted ascending by `(distance, id)`. Each input stream must
/// be sorted ascending by `(distance, id)` with finite,
/// `-0.0`-normalized distances and globally unique ids — the shape
/// [`QueryEngine::knn_candidates`] returns. This is the exact k-heap
/// [`ShardedQueryEngine::knn`] runs in-process, exposed so a
/// coordinator merging candidates from shard *processes* reproduces it
/// byte-for-byte.
#[must_use]
pub fn merge_knn_candidates(k: usize, per_stream: &[Vec<(f64, TrajId)>]) -> Vec<(f64, TrajId)> {
    // Global k-heap: a best-first k-way merge over the sorted
    // per-stream lists. Ties on distance break by id, exactly like the
    // single-store sort.
    let mut heap: BinaryHeap<std::cmp::Reverse<KnnHeapEntry>> = BinaryHeap::new();
    for (shard, list) in per_stream.iter().enumerate() {
        if let Some(&(d, id)) = list.first() {
            heap.push(std::cmp::Reverse(KnnHeapEntry {
                d,
                id,
                shard,
                pos: 0,
            }));
        }
    }
    let mut merged: Vec<(f64, TrajId)> = Vec::with_capacity(k);
    while merged.len() < k {
        let Some(std::cmp::Reverse(e)) = heap.pop() else {
            break;
        };
        merged.push((e.d, e.id));
        if let Some(&(d, id)) = per_stream[e.shard].get(e.pos + 1) {
            heap.push(std::cmp::Reverse(KnnHeapEntry {
                d,
                id,
                shard: e.shard,
                pos: e.pos + 1,
            }));
        }
    }
    merged
}

/// Applies the single-store take-`k` / infinite-fill policy to a
/// [`merge_knn_candidates`] result: take the candidate ids and, when
/// fewer than `k` trajectories scored finite, fill with ids from
/// `universe` not already present, then sort ascending. `universe`
/// must yield the servable trajectory ids in ascending order —
/// `0..total` for a complete database, the surviving shards' global
/// ids for a degraded one.
///
/// When `merged.len() < k` the k-heap above exhausted every stream, so
/// `merged` alone lists *all* finite-distance ids and the fill can
/// skip exactly those.
#[must_use]
pub fn knn_take_fill(
    k: usize,
    merged: &[(f64, TrajId)],
    universe: impl IntoIterator<Item = TrajId>,
) -> Vec<TrajId> {
    let mut ids: Vec<TrajId> = merged.iter().map(|&(_, id)| id).collect();
    if ids.len() < k {
        let finite: HashSet<TrajId> = ids.iter().copied().collect();
        for id in universe {
            if finite.contains(&id) {
                continue;
            }
            ids.push(id);
            if ids.len() == k {
                break;
            }
        }
    }
    ids.sort_unstable();
    ids
}

/// Concatenates per-stream *global*-id result lists and sorts them
/// ascending — the coordinator-side twin of the in-process
/// remap-and-merge for range/similarity fan-out (each shard's local
/// hits are already remapped to global ids by the time they cross the
/// wire).
#[must_use]
pub fn merge_global_ids(per_stream: Vec<Vec<TrajId>>) -> Vec<TrajId> {
    let mut out: Vec<TrajId> = per_stream.into_iter().flatten().collect();
    out.sort_unstable();
    out
}

/// Heap entry of the global kNN merge: ordered by `(distance, global
/// id)`; `shard`/`pos` locate the successor in that shard's stream.
/// Distances are finite and `-0.0`-normalized, so `total_cmp` agrees with
/// the single-store sort's `partial_cmp`.
struct KnnHeapEntry {
    d: f64,
    id: TrajId,
    shard: usize,
    pos: usize,
}

impl PartialEq for KnnHeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for KnnHeapEntry {}

impl PartialOrd for KnnHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KnnHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.d
            .total_cmp(&other.d)
            .then(self.id.cmp(&other.id))
            .then(self.shard.cmp(&other.shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::Dissimilarity;
    use crate::workload::{range_workload_store, QueryDistribution, RangeWorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajectory::gen::{generate, DatasetSpec, Scale};

    fn sample_store() -> PointStore {
        generate(&DatasetSpec::geolife(Scale::Smoke), 4242).to_store()
    }

    fn workload(store: &PointStore, n: usize, seed: u64) -> Vec<Cube> {
        let spec = RangeWorkloadSpec {
            count: n,
            spatial_extent: 2_000.0,
            temporal_extent: 86_400.0,
            dist: QueryDistribution::Data,
        };
        range_workload_store(store, &spec, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn sharded_range_matches_single_store() {
        let store = sample_store();
        let queries = workload(&store, 25, 1);
        let single = QueryEngine::over_store(&store, EngineConfig::octree());
        for strategy in [
            PartitionStrategy::Grid { nx: 2, ny: 2 },
            PartitionStrategy::Time { parts: 3 },
            PartitionStrategy::Hash { parts: 4 },
        ] {
            let sharded =
                ShardedQueryEngine::from_partition(&store, &strategy, EngineConfig::octree());
            assert!(sharded.shard_count() >= 1);
            assert_eq!(sharded.len(), store.len());
            assert_eq!(sharded.total_points(), store.total_points());
            for q in &queries {
                assert_eq!(sharded.range(q), single.range(q), "{strategy:?}");
            }
            assert_eq!(sharded.range_batch(&queries), single.range_batch(&queries));
        }
    }

    #[test]
    fn sharded_knn_matches_single_store() {
        let store = sample_store();
        let db = store.to_db();
        let (t0, t1) = store.time_span();
        let single = QueryEngine::over_store(&store, EngineConfig::octree());
        let sharded = ShardedQueryEngine::from_partition(
            &store,
            &PartitionStrategy::Hash { parts: 3 },
            EngineConfig::octree(),
        );
        for (k, ts, te) in [
            (3, t0, t1),
            (1, t0, (t0 + t1) / 2.0),
            (100, t1 + 1.0, t1 + 10.0), // empty window: degenerate scoring
        ] {
            let q = KnnQuery {
                query: db.get(0).clone(),
                ts,
                te,
                k,
                measure: Dissimilarity::Edr { eps: 1_000.0 },
            };
            assert_eq!(sharded.knn(&q), single.knn(&q), "k={k} ts={ts} te={te}");
        }
    }

    #[test]
    fn sharded_similarity_matches_single_store() {
        let store = sample_store();
        let db = store.to_db();
        let (t0, t1) = db.get(0).time_span();
        let q = SimilarityQuery {
            query: db.get(0).clone(),
            ts: t0,
            te: t1,
            delta: 2_500.0,
            step: 300.0,
        };
        let single = QueryEngine::over_store(&store, EngineConfig::octree());
        let sharded = ShardedQueryEngine::from_partition(
            &store,
            &PartitionStrategy::Time { parts: 4 },
            EngineConfig::octree(),
        );
        assert_eq!(sharded.similarity(&q), single.similarity(&q));
        assert_eq!(
            sharded.similarity_batch(std::slice::from_ref(&q)),
            single.similarity_batch(std::slice::from_ref(&q))
        );
    }

    #[test]
    fn sharded_simplified_and_workload_match_single_store() {
        let store = sample_store();
        let db = store.to_db();
        let mut simp = Simplification::most_simplified(&db);
        for (id, t) in db.iter() {
            for idx in (0..t.len() as u32).step_by(4) {
                simp.insert(id, idx);
            }
        }
        let queries = workload(&store, 15, 9);
        let single = QueryEngine::over_store(&store, EngineConfig::octree());
        let sharded = ShardedQueryEngine::from_partition(
            &store,
            &PartitionStrategy::Grid { nx: 2, ny: 2 },
            EngineConfig::octree(),
        );
        let local = sharded.shard_simplification(&simp);
        assert_eq!(local.total_points(), simp.total_points());
        for q in &queries {
            assert_eq!(
                sharded.range_simplified_local(&local, q),
                single.range_simplified(&simp, q)
            );
            assert_eq!(
                sharded.range_simplified(&simp, q),
                single.range_simplified(&simp, q)
            );
        }
        assert_eq!(
            sharded.range_simplified_batch(&simp, &queries),
            single.range_simplified_batch(&simp, &queries)
        );

        let mut single_w = single.maintained_workload(queries.clone(), &simp);
        let mut sharded_w = sharded.maintained_workload(queries.clone(), &simp);
        assert!((single_w.diff() - sharded_w.diff()).abs() < 1e-12);
        for i in 0..queries.len() {
            assert_eq!(single_w.truth(i), sharded_w.truth(i));
            assert_eq!(single_w.result(i), sharded_w.result(i));
        }
        // The maintained state evolves identically under insertions.
        for id in 0..db.len().min(8) {
            let n = db.get(id).len() as u32;
            if n > 2 && simp.insert(id, 1) {
                single_w.insert(id, db.get(id).point(1));
                sharded_w.insert(id, db.get(id).point(1));
            }
        }
        assert!((single_w.diff() - sharded_w.diff()).abs() < 1e-12);
    }

    #[test]
    fn borrowed_shards_serve_identically() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 2 });
        let owned = ShardedQueryEngine::from_shards(shards.clone(), EngineConfig::median_kd());
        let borrowed = ShardedQueryEngine::over_shards(&shards, EngineConfig::median_kd());
        for q in workload(&store, 10, 3) {
            assert_eq!(owned.range(&q), borrowed.range(&q));
        }
    }

    #[test]
    fn empty_database_serves_empty_results() {
        let sharded = ShardedQueryEngine::from_partition(
            &PointStore::new(),
            &PartitionStrategy::Hash { parts: 4 },
            EngineConfig::octree(),
        );
        assert_eq!(sharded.shard_count(), 0);
        assert!(sharded.is_empty());
        assert!(sharded
            .range(&Cube::new(0.0, 1.0, 0.0, 1.0, 0.0, 1.0))
            .is_empty());
        assert!(!sharded.has_kept_bitmaps());
        assert!(sharded
            .range_kept(&Cube::new(0.0, 1.0, 0.0, 1.0, 0.0, 1.0))
            .is_none());
    }
}
