//! Query-result quality measures (Eq. 3): precision, recall, F1.
//!
//! The results on the original database are the ground truth; the results
//! on the simplified database are scored against them. For clustering the
//! same measure is applied to the sets of co-clustered trajectory *pairs*.

use trajectory::TrajId;

/// Precision / recall / F1 of one query result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Score {
    /// `|Ro ∩ Rs| / |Rs|`.
    pub precision: f64,
    /// `|Ro ∩ Rs| / |Ro|`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl F1Score {
    /// Builds from raw counts. Empty-vs-empty counts as perfect agreement
    /// (the simplified database made no mistake the query could observe).
    pub fn from_counts(intersection: usize, truth: usize, result: usize) -> Self {
        if truth == 0 && result == 0 {
            return Self {
                precision: 1.0,
                recall: 1.0,
                f1: 1.0,
            };
        }
        let precision = if result == 0 {
            0.0
        } else {
            intersection as f64 / result as f64
        };
        let recall = if truth == 0 {
            0.0
        } else {
            intersection as f64 / truth as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// Scores a result id set against a ground-truth id set. Both slices must
/// be sorted ascending (the query functions in this crate return sorted
/// ids).
pub fn f1_sets(truth: &[TrajId], result: &[TrajId]) -> F1Score {
    debug_assert!(truth.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(result.windows(2).all(|w| w[0] < w[1]));
    let intersection = sorted_intersection_len(truth, result);
    F1Score::from_counts(intersection, truth.len(), result.len())
}

/// Scores co-clustered pairs (clustering quality). Pairs must be
/// normalized as `(min, max)` and sorted.
pub fn f1_pairs(truth: &[(TrajId, TrajId)], result: &[(TrajId, TrajId)]) -> F1Score {
    let intersection = sorted_intersection_len(truth, result);
    F1Score::from_counts(intersection, truth.len(), result.len())
}

/// Mean F1 across a batch of per-query scores.
pub fn mean_f1(scores: &[F1Score]) -> f64 {
    if scores.is_empty() {
        return 1.0;
    }
    scores.iter().map(|s| s.f1).sum::<f64>() / scores.len() as f64
}

/// The paper's `diff(Q(D), Q(D'))` (Eq. 10): dissimilarity of the two query
/// result sets, instantiated as `1 − mean F1` so that identical results
/// give 0 and disjoint results give 1.
pub fn query_diff(scores: &[F1Score]) -> f64 {
    1.0 - mean_f1(scores)
}

fn sorted_intersection_len<T: Ord>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let s = f1_sets(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn disjoint_results_score_zero() {
        let s = f1_sets(&[1, 2], &[3, 4]);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn partial_overlap() {
        // truth {1,2,3,4}, result {3,4,5}: P=2/3, R=1/2, F1=4/7.
        let s = f1_sets(&[1, 2, 3, 4], &[3, 4, 5]);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        assert!((s.f1 - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_and_result_is_perfect() {
        let s = f1_sets(&[], &[]);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn empty_result_with_nonempty_truth_is_zero() {
        assert_eq!(f1_sets(&[1], &[]).f1, 0.0);
        assert_eq!(f1_sets(&[], &[1]).f1, 0.0);
    }

    #[test]
    fn knn_property_precision_equals_recall() {
        // For kNN |Ro| = |Rs| = k, so P = R = F1.
        let s = f1_sets(&[1, 2, 3], &[2, 3, 9]);
        assert_eq!(s.precision, s.recall);
        assert!((s.f1 - s.precision).abs() < 1e-12);
    }

    #[test]
    fn pair_f1_for_clusterings() {
        let truth = vec![(1, 2), (1, 3), (2, 3)];
        let result = vec![(1, 2), (4, 5)];
        let s = f1_pairs(&truth, &result);
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn diff_is_one_minus_mean_f1() {
        let scores = vec![f1_sets(&[1], &[1]), f1_sets(&[1], &[2])];
        assert!((mean_f1(&scores) - 0.5).abs() < 1e-12);
        assert!((query_diff(&scores) - 0.5).abs() < 1e-12);
        assert_eq!(query_diff(&[]), 0.0);
    }
}
