//! Live ingestion: merged base + delta serving with background
//! compaction into snapshot generations.
//!
//! The engines in [`engine`](crate::engine) and
//! [`sharded`](crate::sharded) serve *immutable* databases: their
//! indexes are built once over frozen columns. A [`GenerationalDb`]
//! adds writes without giving that up, LSM-style:
//!
//! - the **base** is an immutable snapshot generation (`gen-N.snap`),
//!   served by an ordinary [`QueryEngine`] (owned or mmap-backed per
//!   [`DbOptions`]);
//! - the **active delta** is a WAL-guarded
//!   [`DeltaStore`](trajectory::DeltaStore): appends are simplified
//!   online at admission, logged, and acknowledged only after an
//!   `fsync` — a crash replays exactly the acked trajectories;
//! - **sealed** deltas are frozen in-memory segments awaiting
//!   compaction (their WALs still on disk);
//! - a **compaction** folds base + sealed segments into the next
//!   snapshot generation and commits it by atomically renaming the
//!   `gens.manifest` — serving never stops, and a crash on either side
//!   of the rename recovers a consistent database.
//!
//! Queries see one logical database: trajectory ids are assigned in
//! ingest order (`base` first, then sealed segments, then the active
//! delta), and every operator answers **identically to a from-scratch
//! rebuild** over the same trajectories — the merge reuses the
//! distributed kNN kernels ([`merge_knn_candidates`],
//! [`knn_take_fill`]) that already reproduce single-store answers
//! byte-for-byte, and the delta side is pruned per trajectory through
//! cached bounding cubes. Compaction preserves ids: folding appends
//! sealed trajectories to the base columns in segment order, exactly
//! where the merged view already placed them.
//!
//! # Directory layout
//!
//! ```text
//! live-db/
//! ├── gens.manifest      # "QDTSGENS v1" + generation + snapshot + wal_start
//! ├── gen-000003.snap    # current base generation (snapshot format)
//! └── wal-000007.log     # active delta WAL (earlier seqs = sealed)
//! ```
//!
//! `wal_start` names the first WAL sequence the manifest still depends
//! on: on open, WALs `wal_start..` are replayed (all but the highest as
//! sealed segments, the highest reopened for appends) and anything
//! older is garbage from before the last commit.
//!
//! # Example
//!
//! ```
//! use traj_query::{DbOptions, GenerationalDb, QueryExecutor};
//! use trajectory::{Cube, KeepAll, Point, PointStore, Trajectory};
//!
//! let dir = std::env::temp_dir().join("traj_query_generational_doc");
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut base = PointStore::new();
//! base.push_points(&[Point::new(0.0, 0.0, 0.0), Point::new(1.0, 1.0, 10.0)])
//!     .unwrap();
//! let db = GenerationalDb::create(&dir, &base, DbOptions::new(), Box::new(|| Box::new(KeepAll)))
//!     .unwrap();
//!
//! // Writes are durable once `ingest` returns...
//! let t = Trajectory::new(vec![Point::new(5.0, 5.0, 0.0), Point::new(6.0, 6.0, 5.0)]).unwrap();
//! let ack = db.ingest(std::slice::from_ref(&t)).unwrap();
//! assert_eq!((ack.accepted, ack.first_id), (1, Some(1)));
//!
//! // ...and served immediately, merged with the base generation.
//! assert_eq!(db.len(), 2);
//! assert_eq!(db.range(&Cube::new(4.0, 7.0, 4.0, 7.0, 0.0, 9.0)), vec![1]);
//!
//! // Compaction folds the delta into generation 1; ids are stable.
//! let report = db.compact().unwrap();
//! assert_eq!((report.generation, report.folded_trajs), (1, 1));
//! assert_eq!(db.range(&Cube::new(4.0, 7.0, 4.0, 7.0, 0.0, 9.0)), vec![1]);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use trajectory::delta::{replay_wal, BoxedSimplifier, DeltaError, DeltaStore};
use trajectory::parallel::par_map;
use trajectory::simd::any_in_cube;
use trajectory::snapshot::{read_snapshot, write_snapshot, MappedStore, SnapshotError};
use trajectory::{AsColumns, Cube, PointStore, Simplification, TrajId, TrajView, Trajectory};

use crate::db::{DbOptions, OpenMode, Query, QueryBatch, QueryExecutor, QueryResult};
use crate::engine::{MaintainedWorkload, QueryEngine};
use crate::knn::KnnQuery;
use crate::sharded::{knn_take_fill, merge_knn_candidates};
use crate::similarity::SimilarityQuery;

/// File name of the generation manifest inside a live-db directory.
pub const GENS_MANIFEST: &str = "gens.manifest";

const MANIFEST_MAGIC: &str = "QDTSGENS v1";

fn snapshot_name(generation: u64) -> String {
    format!("gen-{generation:06}.snap")
}

fn wal_name(seq: u64) -> String {
    format!("wal-{seq:06}.log")
}

fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("gen-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// What opening, ingesting into, or compacting a [`GenerationalDb`] can
/// fail with.
#[derive(Debug)]
pub enum GenError {
    /// Raw I/O (directory scans, WAL appends, manifest writes).
    Io(io::Error),
    /// A base generation snapshot failed to read or write.
    Snapshot(SnapshotError),
    /// A delta WAL failed to open or replay.
    Delta(DeltaError),
    /// The `gens.manifest` file is malformed.
    Manifest {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::Io(e) => write!(f, "live db I/O error: {e}"),
            GenError::Snapshot(e) => write!(f, "generation snapshot error: {e}"),
            GenError::Delta(e) => write!(f, "delta WAL error: {e}"),
            GenError::Manifest { reason } => write!(f, "malformed generation manifest: {reason}"),
        }
    }
}

impl std::error::Error for GenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenError::Io(e) => Some(e),
            GenError::Snapshot(e) => Some(e),
            GenError::Delta(e) => Some(e),
            GenError::Manifest { .. } => None,
        }
    }
}

impl From<io::Error> for GenError {
    fn from(e: io::Error) -> Self {
        GenError::Io(e)
    }
}

impl From<SnapshotError> for GenError {
    fn from(e: SnapshotError) -> Self {
        GenError::Snapshot(e)
    }
}

impl From<DeltaError> for GenError {
    fn from(e: DeltaError) -> Self {
        GenError::Delta(e)
    }
}

// ---------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------

struct Manifest {
    generation: u64,
    snapshot: String,
    wal_start: u64,
}

fn load_manifest(path: &Path) -> Result<Manifest, GenError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let magic = lines.next().unwrap_or("");
    if magic != MANIFEST_MAGIC {
        return Err(GenError::Manifest {
            reason: format!("bad magic line {magic:?}"),
        });
    }
    let (mut generation, mut snapshot, mut wal_start) = (None, None, None);
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line.split_once(' ').ok_or_else(|| GenError::Manifest {
            reason: format!("line {line:?} is not `key value`"),
        })?;
        let slot: &mut Option<String> = match key {
            "generation" => &mut generation,
            "snapshot" => &mut snapshot,
            "wal_start" => &mut wal_start,
            _ => {
                return Err(GenError::Manifest {
                    reason: format!("unknown key {key:?}"),
                })
            }
        };
        if slot.replace(value.to_string()).is_some() {
            return Err(GenError::Manifest {
                reason: format!("duplicate key {key:?}"),
            });
        }
    }
    let parse_u64 = |key: &str, v: Option<String>| -> Result<u64, GenError> {
        v.ok_or_else(|| GenError::Manifest {
            reason: format!("missing key {key:?}"),
        })?
        .parse()
        .map_err(|_| GenError::Manifest {
            reason: format!("key {key:?} is not a u64"),
        })
    };
    Ok(Manifest {
        generation: parse_u64("generation", generation)?,
        snapshot: snapshot.ok_or_else(|| GenError::Manifest {
            reason: "missing key \"snapshot\"".to_string(),
        })?,
        wal_start: parse_u64("wal_start", wal_start)?,
    })
}

/// Writes the manifest durably: temp file, `fsync`, atomic rename —
/// the rename is the commit point of a compaction.
fn store_manifest(dir: &Path, m: &Manifest) -> Result<(), GenError> {
    let text = format!(
        "{MANIFEST_MAGIC}\ngeneration {}\nsnapshot {}\nwal_start {}\n",
        m.generation, m.snapshot, m.wal_start
    );
    let tmp = dir.join(format!("{GENS_MANIFEST}.tmp"));
    let mut f = File::create(&tmp)?;
    f.write_all(text.as_bytes())?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, dir.join(GENS_MANIFEST))?;
    // Make the rename itself durable where the platform allows it.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The merged view.
// ---------------------------------------------------------------------

/// A sealed delta: frozen columns plus per-trajectory bounding cubes,
/// queued for the next compaction. Its WAL stays on disk until the
/// manifest commits a generation that contains it.
struct Segment {
    seq: u64,
    store: PointStore,
    bounds: Vec<Cube>,
}

impl Segment {
    fn new(seq: u64, store: PointStore) -> Self {
        let bounds = store.views().map(|v| v.bounding_cube()).collect();
        Self { seq, store, bounds }
    }
}

struct Inner {
    generation: u64,
    base: Arc<QueryEngine<'static>>,
    base_len: usize,
    sealed: Vec<Arc<Segment>>,
    active: DeltaStore,
    active_bounds: Vec<Cube>,
    active_seq: u64,
}

impl Inner {
    fn sealed_trajs(&self) -> usize {
        self.sealed.iter().map(|s| s.store.len()).sum()
    }

    fn total_len(&self) -> usize {
        self.base_len + self.sealed_trajs() + self.active.len()
    }

    fn total_points(&self) -> usize {
        self.base.store().total_points()
            + self
                .sealed
                .iter()
                .map(|s| s.store.total_points())
                .sum::<usize>()
            + self.active.total_points()
    }

    fn delta_points(&self) -> usize {
        self.sealed
            .iter()
            .map(|s| s.store.total_points())
            .sum::<usize>()
            + self.active.total_points()
    }

    /// Visits every delta trajectory (sealed segments in seal order,
    /// then the active store) with its global id, cached bounding cube,
    /// and column view — the id order a from-scratch rebuild would
    /// assign after the base.
    fn for_each_delta<F: FnMut(TrajId, &Cube, TrajView<'_>)>(&self, mut f: F) {
        let mut next = self.base_len;
        for seg in &self.sealed {
            for (local, v) in seg.store.iter() {
                f(next + local, &seg.bounds[local], v);
            }
            next += seg.store.len();
        }
        for (local, v) in self.active.store().iter() {
            f(next + local, &self.active_bounds[local], v);
        }
    }

    fn trajectory(&self, id: TrajId) -> Trajectory {
        if id < self.base_len {
            return self.base.trajectory(id);
        }
        let mut next = self.base_len;
        for seg in &self.sealed {
            if id < next + seg.store.len() {
                return seg.store.view(id - next).to_trajectory();
            }
            next += seg.store.len();
        }
        self.active.store().view(id - next).to_trajectory()
    }

    fn range(&self, q: &Cube) -> Vec<TrajId> {
        let mut ids = self.base.range(q);
        self.for_each_delta(|global, bounds, v| {
            if bounds.intersects(q) && any_in_cube(v.xs, v.ys, v.ts, q) {
                ids.push(global);
            }
        });
        ids
    }

    /// The delta side's contribution to a distributed kNN, in the same
    /// shape [`QueryEngine::knn_candidates`] produces: finite-distance
    /// candidates sorted by `(distance, id)`, truncated to `k`, with
    /// `-0.0` normalized to `+0.0` for the `total_cmp` merge.
    fn delta_knn_candidates(&self, q: &KnnQuery) -> Vec<(f64, TrajId)> {
        let q_window = q.query_window();
        let mut finite: Vec<(f64, TrajId)> = Vec::new();
        self.for_each_delta(|global, bounds, v| {
            // With an empty query window every trajectory scores 0.0, so
            // the time prune is only sound when the window is non-empty
            // (time-disjoint trajectories then score infinity anyway).
            if !q_window.is_empty() && (bounds.t_max < q.ts || bounds.t_min > q.te) {
                return;
            }
            let d = q.windowed_distance_view(q_window, v);
            if d.is_finite() {
                finite.push((d, global));
            }
        });
        finite.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        finite.truncate(q.k);
        for entry in &mut finite {
            entry.0 += 0.0;
        }
        finite
    }

    fn knn_streams(&self, q: &KnnQuery, parallel: bool) -> [Vec<(f64, TrajId)>; 2] {
        let mut base = self.base.knn_finite_scored_impl(q, parallel);
        base.truncate(q.k);
        for entry in &mut base {
            entry.0 += 0.0;
        }
        [base, self.delta_knn_candidates(q)]
    }

    fn knn_candidates(&self, q: &KnnQuery, parallel: bool) -> Vec<(f64, TrajId)> {
        merge_knn_candidates(q.k, &self.knn_streams(q, parallel))
    }

    fn knn(&self, q: &KnnQuery, parallel: bool) -> Vec<TrajId> {
        let merged = self.knn_candidates(q, parallel);
        knn_take_fill(q.k, &merged, 0..self.total_len())
    }

    fn similarity(&self, q: &SimilarityQuery, parallel: bool) -> Vec<TrajId> {
        let mut ids = if parallel {
            self.base.similarity(q)
        } else {
            self.base.similarity_seq(q)
        };
        self.for_each_delta(|global, bounds, v| {
            // Conservative prune: `matches_seq` always rejects
            // trajectories entirely outside the query's time window.
            if bounds.t_max < q.ts || bounds.t_min > q.te {
                return;
            }
            if q.matches_seq(&v) {
                ids.push(global);
            }
        });
        ids
    }

    fn kept_of(simp: &Simplification, id: TrajId) -> &[u32] {
        if id < simp.len() {
            simp.kept(id)
        } else {
            &[]
        }
    }

    fn range_simplified(&self, simp: &Simplification, q: &Cube) -> Vec<TrajId> {
        let mut ids = self.base.range_simplified(simp, q);
        self.for_each_delta(|global, bounds, v| {
            if !bounds.intersects(q) {
                return;
            }
            let hit = Self::kept_of(simp, global).iter().any(|&idx| {
                let i = idx as usize;
                q.contains_xyz(v.xs[i], v.ys[i], v.ts[i])
            });
            if hit {
                ids.push(global);
            }
        });
        ids
    }

    fn maintained_workload(&self, queries: Vec<Cube>, simp: &Simplification) -> MaintainedWorkload {
        let truth = par_map(&queries, |q| self.range(q));
        let counts = par_map(&queries, |q| {
            let mut counts = HashMap::new();
            let mut tally = |id: TrajId, v: TrajView<'_>| {
                let n = Self::kept_of(simp, id)
                    .iter()
                    .filter(|&&idx| {
                        let i = idx as usize;
                        q.contains_xyz(v.xs[i], v.ys[i], v.ts[i])
                    })
                    .count() as u32;
                if n > 0 {
                    counts.insert(id, n);
                }
            };
            for (id, v) in self.base.store().iter() {
                tally(id, v);
            }
            self.for_each_delta(|global, bounds, v| {
                if bounds.intersects(q) {
                    tally(global, v);
                }
            });
            counts
        });
        MaintainedWorkload::from_parts(queries, truth, counts)
    }

    /// One typed query with sequential inner loops — the unit
    /// [`QueryExecutor::execute_batch`] parallelizes over.
    fn execute_one(&self, q: &Query) -> QueryResult {
        match q {
            Query::Range(c) => QueryResult::Range(self.range(c)),
            Query::Knn(k) => QueryResult::Knn(self.knn(k, false)),
            Query::Similarity(s) => QueryResult::Similarity(self.similarity(s, false)),
            Query::RangeKept(_) => QueryResult::RangeKept(None),
        }
    }

    fn bounding_cube(&self) -> Cube {
        let mut cube = self.base.store().bounding_cube();
        self.for_each_delta(|_, bounds, _| cube.union_with(bounds));
        cube
    }
}

// ---------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------

/// What one [`GenerationalDb::ingest`] batch did. Returned only after
/// the WAL is synced: every accepted trajectory survives a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Trajectories admitted (logged, simplified, and serving).
    pub accepted: u32,
    /// Trajectories rejected wholesale (empty, non-finite coordinates,
    /// or time-regressing samples).
    pub rejected: u32,
    /// Global id of the first accepted trajectory; subsequent accepted
    /// trajectories of the batch took consecutive ids.
    pub first_id: Option<TrajId>,
    /// Total trajectories served after the batch.
    pub total_trajs: u64,
    /// Total points served after the batch (post-simplification).
    pub total_points: u64,
}

/// What one [`GenerationalDb::compact`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// The generation now serving (unchanged when there was nothing to
    /// fold).
    pub generation: u64,
    /// Delta trajectories folded into the new base generation.
    pub folded_trajs: usize,
    /// Delta points folded into the new base generation.
    pub folded_points: usize,
    /// Base trajectories after the pass.
    pub base_trajs: usize,
}

/// Builds the online simplifier each new delta WAL admits points
/// through — one fresh instance per WAL, so replay is deterministic.
pub type SimpFactory = Box<dyn Fn() -> BoxedSimplifier + Send + Sync>;

// ---------------------------------------------------------------------
// The database.
// ---------------------------------------------------------------------

/// A mutable trajectory database: an immutable base snapshot
/// generation merged with a WAL-backed delta, compacted in the
/// background. See the [module docs](self) for the layout and
/// recovery protocol.
///
/// All methods take `&self`; interior locking makes the database
/// shareable across serving threads (`Arc<GenerationalDb>`). Queries
/// hold a read lock for their duration; [`GenerationalDb::ingest`]
/// holds the write lock only for the in-memory append and buffered
/// WAL write, running its durability `fsync` after release so readers
/// never queue behind stable storage; [`GenerationalDb::compact`]
/// holds the write lock only briefly at its seal and swap edges, so
/// serving continues while the new generation is written.
pub struct GenerationalDb {
    inner: RwLock<Inner>,
    dir: PathBuf,
    opts: DbOptions,
    simp_factory: SimpFactory,
    /// Serializes compaction passes (the write lock is released during
    /// the fold, so the gate keeps two passes from interleaving).
    compact_gate: Mutex<()>,
}

impl fmt::Debug for GenerationalDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read().unwrap();
        f.debug_struct("GenerationalDb")
            .field("dir", &self.dir)
            .field("generation", &inner.generation)
            .field("base_len", &inner.base_len)
            .field("sealed", &inner.sealed.len())
            .field("active_len", &inner.active.len())
            .finish()
    }
}

impl GenerationalDb {
    /// Initializes `dir` as a live database whose generation 0 is a
    /// snapshot of `base`, then opens it.
    pub fn create(
        dir: impl AsRef<Path>,
        base: &PointStore,
        opts: DbOptions,
        simp_factory: SimpFactory,
    ) -> Result<Self, GenError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let snap = snapshot_name(0);
        let tmp = dir.join(format!("{snap}.tmp"));
        write_snapshot(base, &tmp)?;
        fs::rename(&tmp, dir.join(&snap))?;
        store_manifest(
            &dir,
            &Manifest {
                generation: 0,
                snapshot: snap,
                wal_start: 0,
            },
        )?;
        Self::open(dir, opts, simp_factory)
    }

    /// Opens a live database directory: reads the manifest, serves the
    /// committed base generation (owned or mmap-backed per `opts`),
    /// replays every WAL the manifest still depends on — all but the
    /// highest sequence become sealed segments, the highest is
    /// reopened for appends (its torn tail, if any, truncated).
    pub fn open(
        dir: impl AsRef<Path>,
        opts: DbOptions,
        simp_factory: SimpFactory,
    ) -> Result<Self, GenError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = load_manifest(&dir.join(GENS_MANIFEST))?;
        let snap_path = dir.join(&manifest.snapshot);
        let cfg = opts.engine_config();
        let base = match opts.open_mode() {
            OpenMode::Owned => QueryEngine::from_store(read_snapshot(&snap_path)?.store, cfg),
            OpenMode::Auto | OpenMode::Mapped => {
                QueryEngine::from_mapped(MappedStore::open(&snap_path)?, cfg)
            }
        };
        let base_len = base.store().len();

        let mut seqs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            if let Some(seq) = parse_wal_name(&entry?.file_name().to_string_lossy()) {
                if seq >= manifest.wal_start {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        let active_seq = seqs.pop().unwrap_or(manifest.wal_start);
        let mut sealed = Vec::new();
        for seq in seqs {
            let mut simp = simp_factory();
            let store = replay_wal(dir.join(wal_name(seq)), simp.as_mut())?;
            if !store.is_empty() {
                sealed.push(Arc::new(Segment::new(seq, store)));
            }
        }
        let active = DeltaStore::open(dir.join(wal_name(active_seq)), simp_factory())?;
        let active_bounds = active.store().views().map(|v| v.bounding_cube()).collect();

        Ok(Self {
            inner: RwLock::new(Inner {
                generation: manifest.generation,
                base: Arc::new(base),
                base_len,
                sealed,
                active,
                active_bounds,
                active_seq,
            }),
            dir,
            opts,
            simp_factory,
            compact_gate: Mutex::new(()),
        })
    }

    /// Ingests a batch of trajectories: each is WAL-logged, simplified
    /// online at admission, and serving in the merged view when this
    /// returns. Returns after a single `fsync` covering the whole
    /// batch — the acknowledgement point crash recovery honors.
    ///
    /// The write lock covers only the in-memory append and the buffered
    /// WAL write; the durability `fsync` runs on a cloned file handle
    /// after the lock is released, so queries are never stuck behind
    /// stable storage. A concurrent [`GenerationalDb::compact`] cannot
    /// orphan the batch: its seal phase syncs the outgoing WAL under
    /// the write lock before swapping it out, so the bytes this call
    /// flushed are on disk before the WAL is retired, and the late
    /// `sync_data` here is a no-op on the old file.
    ///
    /// Invalid trajectories (empty, non-finite, time-regressing) are
    /// rejected individually; the rest of the batch proceeds.
    pub fn ingest(&self, trajs: &[Trajectory]) -> io::Result<IngestReport> {
        let (report, wal) = {
            let mut guard = self.inner.write().unwrap();
            let inner = &mut *guard;
            let first_global = inner.base_len + inner.sealed_trajs() + inner.active.len();
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            let mut first_id = None;
            for t in trajs {
                match inner.active.push_traj(t.points())? {
                    Some(local) => {
                        let bounds = inner.active.store().view(local).bounding_cube();
                        inner.active_bounds.push(bounds);
                        if first_id.is_none() {
                            first_id = Some(first_global + accepted as usize);
                        }
                        accepted += 1;
                    }
                    None => rejected += 1,
                }
            }
            let wal = inner.active.sync_handle()?;
            let report = IngestReport {
                accepted,
                rejected,
                first_id,
                total_trajs: inner.total_len() as u64,
                total_points: inner.total_points() as u64,
            };
            (report, wal)
        };
        wal.sync_data()?;
        Ok(report)
    }

    /// Folds every sealed segment and the current active delta into
    /// the next snapshot generation, then swaps serving onto it.
    ///
    /// The pass holds the write lock only while sealing the active
    /// delta (a pointer swap plus one small file create) and while
    /// swapping the new base in; the fold — column copy, snapshot
    /// write, index rebuild — runs with serving live. The atomic
    /// manifest rename is the commit point: a crash before it replays
    /// the old generation plus all WALs, a crash after it opens the
    /// new generation and ignores the folded WALs. Trajectory ids are
    /// preserved exactly.
    pub fn compact(&self) -> Result<CompactionReport, GenError> {
        let _gate = self.compact_gate.lock().unwrap();

        // Phase 1 (write lock): seal the active delta behind a fresh WAL.
        let (base, sealed, next_gen, new_wal_start);
        {
            let mut guard = self.inner.write().unwrap();
            let inner = &mut *guard;
            inner.active.sync()?;
            if inner.sealed.is_empty() && inner.active.is_empty() {
                return Ok(CompactionReport {
                    generation: inner.generation,
                    folded_trajs: 0,
                    folded_points: 0,
                    base_trajs: inner.base_len,
                });
            }
            let new_seq = inner.active_seq + 1;
            let fresh =
                DeltaStore::create(self.dir.join(wal_name(new_seq)), (self.simp_factory)())?;
            let old = std::mem::replace(&mut inner.active, fresh);
            let old_bounds = std::mem::take(&mut inner.active_bounds);
            let old_seq = inner.active_seq;
            inner.active_seq = new_seq;
            if !old.is_empty() {
                inner.sealed.push(Arc::new(Segment {
                    seq: old_seq,
                    store: old.into_store(),
                    bounds: old_bounds,
                }));
            }
            base = Arc::clone(&inner.base);
            sealed = inner.sealed.clone();
            next_gen = inner.generation + 1;
            new_wal_start = new_seq;
        }

        // Phase 2 (no lock): fold base + sealed into the next snapshot.
        let mut folded = base.store().to_point_store();
        let (mut folded_trajs, mut folded_points) = (0usize, 0usize);
        for seg in &sealed {
            for v in seg.store.views() {
                folded_trajs += 1;
                folded_points += v.len();
                folded.push_view(v);
            }
        }
        let new_base_len = folded.len();
        let snap = snapshot_name(next_gen);
        let snap_path = self.dir.join(&snap);
        let tmp = self.dir.join(format!("{snap}.tmp"));
        write_snapshot(&folded, &tmp)?;
        File::open(&tmp)?.sync_all()?;
        fs::rename(&tmp, &snap_path)?;
        let engine = match self.opts.open_mode() {
            OpenMode::Owned => QueryEngine::from_store(folded, self.opts.engine_config()),
            OpenMode::Auto | OpenMode::Mapped => {
                QueryEngine::from_mapped(MappedStore::open(&snap_path)?, self.opts.engine_config())
            }
        };

        // Phase 3: commit — atomic manifest rename.
        store_manifest(
            &self.dir,
            &Manifest {
                generation: next_gen,
                snapshot: snap,
                wal_start: new_wal_start,
            },
        )?;

        // Phase 4 (write lock): swap serving onto the new generation.
        {
            let mut inner = self.inner.write().unwrap();
            inner.base = Arc::new(engine);
            inner.base_len = new_base_len;
            inner.generation = next_gen;
            inner.sealed.retain(|s| s.seq >= new_wal_start);
        }

        // Phase 5: best-effort cleanup of superseded files.
        self.cleanup(next_gen, new_wal_start);

        Ok(CompactionReport {
            generation: next_gen,
            folded_trajs,
            folded_points,
            base_trajs: new_base_len,
        })
    }

    /// Deletes snapshots below `generation` and WALs below `wal_start`.
    /// Failures are ignored: stale files are re-collected by the next
    /// pass and never affect correctness (open ignores them).
    fn cleanup(&self, generation: u64, wal_start: u64) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let stale = parse_snapshot_name(&name).is_some_and(|g| g < generation)
                || parse_wal_name(&name).is_some_and(|s| s < wal_start);
            if stale {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// The generation currently serving as the immutable base.
    pub fn generation(&self) -> u64 {
        self.inner.read().unwrap().generation
    }

    /// Points currently living in the delta (sealed + active) — the
    /// quantity compaction thresholds watch.
    pub fn delta_points(&self) -> usize {
        self.inner.read().unwrap().delta_points()
    }

    /// Trajectories currently living in the delta (sealed + active).
    pub fn delta_trajs(&self) -> usize {
        let inner = self.inner.read().unwrap();
        inner.sealed_trajs() + inner.active.len()
    }

    /// The directory this database lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bounding cube of every point served (base and delta).
    pub fn bounding_cube(&self) -> Cube {
        self.inner.read().unwrap().bounding_cube()
    }

    /// This database's contribution to a distributed kNN — merged
    /// base + delta candidates in the shape
    /// [`QueryEngine::knn_candidates`] produces, so a coordinator can
    /// merge live shards and static shards identically.
    pub fn knn_candidates(&self, q: &KnnQuery) -> Vec<(f64, TrajId)> {
        self.inner.read().unwrap().knn_candidates(q, true)
    }
}

impl QueryExecutor for GenerationalDb {
    fn len(&self) -> usize {
        self.inner.read().unwrap().total_len()
    }

    fn total_points(&self) -> usize {
        self.inner.read().unwrap().total_points()
    }

    fn trajectory(&self, id: TrajId) -> Trajectory {
        self.inner.read().unwrap().trajectory(id)
    }

    fn range(&self, q: &Cube) -> Vec<TrajId> {
        self.inner.read().unwrap().range(q)
    }

    fn range_batch(&self, queries: &[Cube]) -> Vec<Vec<TrajId>> {
        let inner = self.inner.read().unwrap();
        par_map(queries, |q| inner.range(q))
    }

    fn knn(&self, q: &KnnQuery) -> Vec<TrajId> {
        self.inner.read().unwrap().knn(q, true)
    }

    fn knn_batch(&self, queries: &[KnnQuery]) -> Vec<Vec<TrajId>> {
        let inner = self.inner.read().unwrap();
        par_map(queries, |q| inner.knn(q, false))
    }

    fn similarity(&self, q: &SimilarityQuery) -> Vec<TrajId> {
        self.inner.read().unwrap().similarity(q, true)
    }

    fn similarity_batch(&self, queries: &[SimilarityQuery]) -> Vec<Vec<TrajId>> {
        let inner = self.inner.read().unwrap();
        par_map(queries, |q| inner.similarity(q, false))
    }

    fn has_kept_bitmap(&self) -> bool {
        false
    }

    fn range_kept(&self, _q: &Cube) -> Option<Vec<TrajId>> {
        None
    }

    fn range_simplified(&self, simp: &Simplification, q: &Cube) -> Vec<TrajId> {
        self.inner.read().unwrap().range_simplified(simp, q)
    }

    fn range_simplified_batch(&self, simp: &Simplification, queries: &[Cube]) -> Vec<Vec<TrajId>> {
        let inner = self.inner.read().unwrap();
        par_map(queries, |q| inner.range_simplified(simp, q))
    }

    fn maintained_workload(&self, queries: Vec<Cube>, simp: &Simplification) -> MaintainedWorkload {
        self.inner
            .read()
            .unwrap()
            .maintained_workload(queries, simp)
    }

    fn execute_one(&self, q: &Query) -> QueryResult {
        self.inner.read().unwrap().execute_one(q)
    }

    /// One read-lock acquisition for the whole batch: every query of
    /// the plan sees the same consistent generation + delta snapshot.
    fn execute_batch(&self, batch: &QueryBatch) -> Vec<QueryResult> {
        let inner = self.inner.read().unwrap();
        par_map(batch.queries(), |q| inner.execute_one(q))
    }
}

// ---------------------------------------------------------------------
// The background compactor.
// ---------------------------------------------------------------------

/// Handle on a background compaction thread: signals shutdown and
/// joins on [`CompactorHandle::shutdown`] or drop.
#[derive(Debug)]
pub struct CompactorHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl CompactorHandle {
    /// Stops the compactor and waits for an in-flight pass to finish.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Spawns a background thread that compacts `db` whenever the delta
/// holds at least `threshold_points` points, polling every `interval`.
/// Compaction errors are swallowed (the delta keeps serving and the
/// next pass retries); shut the handle down to stop the thread.
pub fn spawn_compactor(
    db: Arc<GenerationalDb>,
    threshold_points: usize,
    interval: Duration,
) -> CompactorHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        while !flag.load(Ordering::Relaxed) {
            if db.delta_points() >= threshold_points {
                let _ = db.compact();
            }
            let mut slept = Duration::ZERO;
            while slept < interval && !flag.load(Ordering::Relaxed) {
                let step = (interval - slept).min(Duration::from_millis(20));
                std::thread::sleep(step);
                slept += step;
            }
        }
    });
    CompactorHandle {
        stop,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::{KeepAll, Point};

    fn keep_all_factory() -> SimpFactory {
        Box::new(|| Box::new(KeepAll))
    }

    fn traj(points: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::new(
            points
                .iter()
                .map(|&(x, y, t)| Point::new(x, y, t))
                .collect(),
        )
        .unwrap()
    }

    fn base_store() -> PointStore {
        let mut s = PointStore::new();
        s.push_points(&[
            Point::new(0.0, 0.0, 0.0),
            Point::new(1.0, 0.5, 10.0),
            Point::new(2.0, 1.0, 20.0),
        ])
        .unwrap();
        s.push_points(&[Point::new(10.0, 10.0, 5.0), Point::new(11.0, 11.0, 15.0)])
            .unwrap();
        s
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qdts_generational_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ingest_serves_immediately_and_survives_reopen() {
        let dir = tmp_dir("reopen");
        let db = GenerationalDb::create(&dir, &base_store(), DbOptions::new(), keep_all_factory())
            .unwrap();
        let ack = db
            .ingest(&[
                traj(&[(5.0, 5.0, 0.0), (6.0, 6.0, 5.0)]),
                traj(&[(20.0, 20.0, 0.0)]),
            ])
            .unwrap();
        assert_eq!((ack.accepted, ack.rejected, ack.first_id), (2, 0, Some(2)));
        assert_eq!(db.len(), 4);
        let q = Cube::new(4.0, 7.0, 4.0, 7.0, -1.0, 9.0);
        assert_eq!(db.range(&q), vec![2]);
        drop(db);

        let db = GenerationalDb::open(&dir, DbOptions::new(), keep_all_factory()).unwrap();
        assert_eq!(db.len(), 4);
        assert_eq!(db.range(&q), vec![2]);
        assert_eq!(db.generation(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_ids_and_answers() {
        let dir = tmp_dir("compact");
        let db = GenerationalDb::create(&dir, &base_store(), DbOptions::new(), keep_all_factory())
            .unwrap();
        db.ingest(&[traj(&[(5.0, 5.0, 0.0), (6.0, 6.0, 5.0)])])
            .unwrap();
        let q = Cube::new(4.0, 7.0, 4.0, 7.0, -1.0, 9.0);
        let before = db.range(&q);
        let report = db.compact().unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.folded_trajs, 1);
        assert_eq!(db.range(&q), before);
        assert_eq!(db.delta_points(), 0);
        // A second pass with nothing to fold is a no-op.
        assert_eq!(db.compact().unwrap().generation, 1);
        drop(db);

        // Reopen serves the committed generation.
        let db = GenerationalDb::open(&dir, DbOptions::new(), keep_all_factory()).unwrap();
        assert_eq!(db.generation(), 1);
        assert_eq!(db.len(), 3);
        assert_eq!(db.range(&q), before);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_rejects_invalid_trajectories_individually() {
        let dir = tmp_dir("reject");
        let db = GenerationalDb::create(&dir, &base_store(), DbOptions::new(), keep_all_factory())
            .unwrap();
        // A trajectory with no admissible point is rejected wholesale;
        // its neighbors in the batch are unaffected.
        let bad = Trajectory::from_sorted_unchecked(vec![Point::new(f64::NAN, 1.0, 5.0)]);
        let ok = traj(&[(3.0, 3.0, 0.0)]);
        let ack = db.ingest(&[ok.clone(), bad, ok]).unwrap();
        assert_eq!((ack.accepted, ack.rejected), (2, 1));
        assert_eq!(db.len(), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_round_trips_and_rejects_malformed() {
        let dir = tmp_dir("manifest");
        fs::create_dir_all(&dir).unwrap();
        store_manifest(
            &dir,
            &Manifest {
                generation: 3,
                snapshot: "gen-000003.snap".into(),
                wal_start: 7,
            },
        )
        .unwrap();
        let m = load_manifest(&dir.join(GENS_MANIFEST)).unwrap();
        assert_eq!((m.generation, m.wal_start), (3, 7));
        assert_eq!(m.snapshot, "gen-000003.snap");

        for bad in [
            "QDTSWRONG v1\ngeneration 0\nsnapshot a\nwal_start 0\n",
            "QDTSGENS v1\ngeneration x\nsnapshot a\nwal_start 0\n",
            "QDTSGENS v1\nsnapshot a\nwal_start 0\n",
            "QDTSGENS v1\ngeneration 0\ngeneration 1\nsnapshot a\nwal_start 0\n",
            "QDTSGENS v1\ngeneration 0\nsnapshot a\nwal_start 0\nmystery 1\n",
        ] {
            fs::write(dir.join(GENS_MANIFEST), bad).unwrap();
            assert!(matches!(
                load_manifest(&dir.join(GENS_MANIFEST)),
                Err(GenError::Manifest { .. })
            ));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_compactor_fires_on_threshold() {
        let dir = tmp_dir("compactor");
        let db = Arc::new(
            GenerationalDb::create(&dir, &base_store(), DbOptions::new(), keep_all_factory())
                .unwrap(),
        );
        let handle = spawn_compactor(Arc::clone(&db), 1, Duration::from_millis(5));
        db.ingest(&[traj(&[(5.0, 5.0, 0.0), (6.0, 6.0, 5.0)])])
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while db.generation() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.shutdown();
        assert!(db.generation() >= 1, "compactor never folded the delta");
        assert_eq!(db.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }
}
