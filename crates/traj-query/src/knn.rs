//! kNN queries over time windows (§III-B).
//!
//! Given a query trajectory `Tq` and a window `[ts, te]`, return the `k`
//! database trajectories whose windowed restriction is closest to `Tq`'s
//! under a dissimilarity Θ — instantiated here with EDR or the t2vec-like
//! embedding (the solution is orthogonal to the choice, as the paper
//! notes).

use crate::edr::edr_seq;
use crate::t2vec::T2vecEmbedder;
use trajectory::{AsColumns, Point, PointSeq, TrajId, TrajView, Trajectory, TrajectoryDb};

/// The dissimilarity Θ used by a kNN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dissimilarity {
    /// Edit Distance on Real sequence with matching tolerance ε (meters).
    Edr {
        /// Matching tolerance (paper: 2 km).
        eps: f64,
    },
    /// t2vec-like embedding distance.
    T2vec(T2vecEmbedder),
}

impl Dissimilarity {
    /// The paper's EDR configuration (ε = 2 km).
    pub fn edr_paper() -> Self {
        Dissimilarity::Edr { eps: 2_000.0 }
    }

    /// The default t2vec-like configuration.
    pub fn t2vec_default() -> Self {
        Dissimilarity::T2vec(T2vecEmbedder::default())
    }

    /// Short name as used in figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            Dissimilarity::Edr { .. } => "EDR",
            Dissimilarity::T2vec(_) => "t2vec",
        }
    }

    /// Distance between two windowed point sequences (any layout).
    pub(crate) fn distance_seq<A: PointSeq + ?Sized, B: PointSeq + ?Sized>(
        &self,
        a: &A,
        b: &B,
    ) -> f64 {
        match self {
            Dissimilarity::Edr { eps } => edr_seq(a, b, *eps),
            Dissimilarity::T2vec(e) => T2vecEmbedder::distance(&e.embed_seq(a), &e.embed_seq(b)),
        }
    }
}

/// A kNN query instance.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnQuery {
    /// The query trajectory (not required to be in the database).
    pub query: Trajectory,
    /// Window start.
    pub ts: f64,
    /// Window end.
    pub te: f64,
    /// Number of neighbours to return.
    pub k: usize,
    /// Dissimilarity measure Θ.
    pub measure: Dissimilarity,
}

impl KnnQuery {
    /// Executes the query, returning the ids of the `k` nearest
    /// trajectories in ascending id order (the F1 comparison is
    /// set-based, and sorted output makes it deterministic).
    ///
    /// Trajectories with no points in the window rank after all others;
    /// ties break by id, so results are stable across runs.
    pub fn execute(&self, db: &TrajectoryDb) -> Vec<TrajId> {
        let q_window = self.query_window();
        let scored: Vec<(f64, TrajId)> = db
            .iter()
            .map(|(id, t)| (self.windowed_distance(q_window, t), id))
            .collect();
        rank_ids(scored, self.k)
    }

    /// [`KnnQuery::execute`] over columnar storage (anything
    /// [`AsColumns`]): candidate windows are zero-copy column sub-views,
    /// no `Vec<Point>` is materialized.
    pub fn execute_store<S: AsColumns + ?Sized>(&self, store: &S) -> Vec<TrajId> {
        let q_window = self.query_window();
        let scored: Vec<(f64, TrajId)> = store
            .iter()
            .map(|(id, v)| (self.windowed_distance_view(q_window, v), id))
            .collect();
        rank_ids(scored, self.k)
    }

    /// The query trajectory's windowed restriction (empty when the window
    /// misses it entirely). Compute once per query, then feed to
    /// [`KnnQuery::windowed_distance`] per candidate.
    pub(crate) fn query_window(&self) -> &[Point] {
        window_points(&self.query, self.ts, self.te)
    }

    /// Distance between the precomputed query window and `t`'s window.
    /// This is the single definition of the empty-window conventions the
    /// engine's pruned execution shares with the scan: both empty → 0,
    /// candidate empty → ∞.
    pub(crate) fn windowed_distance(&self, q_window: &[Point], t: &Trajectory) -> f64 {
        let pts = window_points(t, self.ts, self.te);
        if pts.is_empty() && q_window.is_empty() {
            0.0
        } else if pts.is_empty() {
            f64::INFINITY
        } else {
            self.measure.distance_seq(q_window, pts)
        }
    }

    /// [`KnnQuery::windowed_distance`] against a zero-copy column view —
    /// the same empty-window conventions, the same kernels, no copies.
    pub(crate) fn windowed_distance_view(&self, q_window: &[Point], v: TrajView<'_>) -> f64 {
        match v.window(self.ts, self.te) {
            None if q_window.is_empty() => 0.0,
            None => f64::INFINITY,
            Some(w) => self.measure.distance_seq(q_window, &w),
        }
    }
}

/// Selects the `k` best `(distance, id)` scores — ordered by
/// `(distance, id)`, so ties are deterministic — and returns their ids
/// ascending (the set-based F1 comparison downstream is
/// order-insensitive). An O(n) `select_nth_unstable_by` partition
/// replaces the former full O(n log n) sort: only the k survivors pay
/// the final (id) sort.
fn rank_ids(mut scored: Vec<(f64, TrajId)>, k: usize) -> Vec<TrajId> {
    if k < scored.len() {
        scored.select_nth_unstable_by(k, |a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored.truncate(k);
    }
    let mut ids: Vec<TrajId> = scored.into_iter().map(|(_, id)| id).collect();
    ids.sort_unstable();
    ids
}

/// The windowed restriction `T[ts, te]` as a point slice (no allocation).
fn window_points(t: &Trajectory, ts: f64, te: f64) -> &[Point] {
    match t.window_indices(ts, te) {
        Some((lo, hi)) => &t.points()[lo..=hi],
        None => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(coords: &[(f64, f64)], t0: f64) -> Trajectory {
        Trajectory::new(
            coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| Point::new(x, y, t0 + i as f64))
                .collect(),
        )
        .unwrap()
    }

    fn db() -> TrajectoryDb {
        TrajectoryDb::new(vec![
            traj(&[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)], 0.0), // 0: east low
            traj(&[(0.0, 50.0), (100.0, 50.0), (200.0, 50.0)], 0.0), // 1: east mid
            traj(&[(0.0, 9e5), (100.0, 9e5), (200.0, 9e5)], 0.0), // 2: far away
            traj(&[(0.0, 0.0), (100.0, 0.0)], 1e6),               // 3: wrong time
        ])
    }

    #[test]
    fn knn_edr_returns_nearest_ids() {
        let q = KnnQuery {
            query: traj(&[(0.0, 10.0), (100.0, 10.0), (200.0, 10.0)], 0.0),
            ts: 0.0,
            te: 10.0,
            k: 2,
            measure: Dissimilarity::Edr { eps: 100.0 },
        };
        assert_eq!(q.execute(&db()), vec![0, 1]);
    }

    #[test]
    fn knn_t2vec_returns_nearest_ids() {
        let q = KnnQuery {
            query: traj(&[(0.0, 10.0), (100.0, 10.0), (200.0, 10.0)], 0.0),
            ts: 0.0,
            te: 10.0,
            k: 2,
            measure: Dissimilarity::t2vec_default(),
        };
        let r = q.execute(&db());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&0) || r.contains(&1));
        assert!(!r.contains(&2), "far trajectory must not be a neighbour");
    }

    #[test]
    fn out_of_window_trajectories_rank_last() {
        let q = KnnQuery {
            query: traj(&[(0.0, 0.0), (100.0, 0.0)], 0.0),
            ts: 0.0,
            te: 10.0,
            k: 3,
            measure: Dissimilarity::Edr { eps: 100.0 },
        };
        let r = q.execute(&db());
        assert!(!r.contains(&3), "trajectory outside the window: {r:?}");
    }

    #[test]
    fn k_larger_than_db_returns_all() {
        let q = KnnQuery {
            query: traj(&[(0.0, 0.0)], 0.0),
            ts: 0.0,
            te: 10.0,
            k: 100,
            measure: Dissimilarity::edr_paper(),
        };
        assert_eq!(q.execute(&db()).len(), 4);
    }

    #[test]
    fn execute_store_matches_aos_execute() {
        let db = db();
        let store = db.to_store();
        for measure in [
            Dissimilarity::Edr { eps: 100.0 },
            Dissimilarity::t2vec_default(),
        ] {
            for (ts, te, k) in [(0.0, 10.0, 2), (0.0, 1.0, 3), (5e5, 6e5, 1)] {
                let q = KnnQuery {
                    query: traj(&[(0.0, 10.0), (100.0, 10.0), (200.0, 10.0)], 0.0),
                    ts,
                    te,
                    k,
                    measure,
                };
                assert_eq!(q.execute(&db), q.execute_store(&store), "{ts}..{te} k={k}");
            }
        }
    }

    #[test]
    fn results_are_deterministic_under_ties() {
        let db = TrajectoryDb::new(vec![
            traj(&[(0.0, 0.0), (1.0, 0.0)], 0.0),
            traj(&[(0.0, 0.0), (1.0, 0.0)], 0.0),
            traj(&[(0.0, 0.0), (1.0, 0.0)], 0.0),
        ]);
        let q = KnnQuery {
            query: traj(&[(0.0, 0.0), (1.0, 0.0)], 0.0),
            ts: 0.0,
            te: 10.0,
            k: 2,
            measure: Dissimilarity::edr_paper(),
        };
        // All tie at distance 0; ids 0 and 1 win deterministically.
        assert_eq!(q.execute(&db), vec![0, 1]);
    }
}
