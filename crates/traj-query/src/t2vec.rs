//! t2vec-like trajectory embedding.
//!
//! The paper instantiates one kNN variant with t2vec (Li et al., ICDE 2018),
//! a GRU encoder trained on GPU to map trajectories to vectors whose
//! Euclidean distances reflect trajectory similarity. Training a deep
//! sequence encoder is outside this reproduction's offline budget, so we
//! substitute a deterministic embedding with the same *interface* and the
//! same sensitivity profile (DESIGN.md §5):
//!
//! 1. discretize the trajectory into a sequence of spatial grid cells
//!    (t2vec's own preprocessing step),
//! 2. hash the cell k-grams (k = 1, 2, 3) into a fixed-dimension feature
//!    vector, weighting longer n-grams higher (they encode order), and
//! 3. L2-normalize, so the Euclidean distance is a cosine-like measure.
//!
//! Trajectories sharing cells and cell transitions embed nearby; dropping
//! points removes cells/transitions and moves the vector — exactly the
//! degradation signal kNN accuracy measurement needs.

use trajectory::{Point, PointSeq, Trajectory};

/// The embedder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct T2vecEmbedder {
    /// Grid cell side length (meters). t2vec's "hot cell" size analog.
    pub cell_size: f64,
    /// Embedding dimension.
    pub dim: usize,
}

impl Default for T2vecEmbedder {
    fn default() -> Self {
        Self {
            cell_size: 250.0,
            dim: 64,
        }
    }
}

impl T2vecEmbedder {
    /// Embeds a point slice into a `dim`-dimensional unit vector.
    /// An empty sequence embeds to the zero vector.
    pub fn embed_points(&self, pts: &[Point]) -> Vec<f64> {
        self.embed_seq(pts)
    }

    /// Embeds any point sequence — slice or zero-copy column view.
    pub fn embed_seq<S: PointSeq + ?Sized>(&self, pts: &S) -> Vec<f64> {
        let mut v = vec![0.0f64; self.dim];
        let cells = self.cell_sequence(pts);
        if cells.is_empty() {
            return v;
        }
        for k in 1..=3usize {
            if cells.len() < k {
                break;
            }
            // Longer n-grams carry ordering information; weight them up.
            let w = k as f64;
            for gram in cells.windows(k) {
                let h = hash_gram(gram, k as u64);
                let slot = (h % self.dim as u64) as usize;
                // A second hash bit gives signed features, reducing the
                // bias of pure counting (standard feature hashing).
                let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
                v[slot] += sign * w;
            }
        }
        l2_normalize(&mut v);
        v
    }

    /// Embeds a whole trajectory.
    pub fn embed(&self, t: &Trajectory) -> Vec<f64> {
        self.embed_points(t.points())
    }

    /// Euclidean distance between two embeddings — the lane-wide
    /// squared-difference accumulation ([`trajectory::simd::squared_distance`]).
    pub fn distance(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        trajectory::simd::squared_distance(a, b).sqrt()
    }

    /// The cell-token sequence of a point sequence, with consecutive
    /// repeats collapsed (a stationary object shouldn't dominate the
    /// embedding).
    fn cell_sequence<S: PointSeq + ?Sized>(&self, pts: &S) -> Vec<(i64, i64)> {
        let mut cells: Vec<(i64, i64)> = Vec::with_capacity(pts.n_points());
        for i in 0..pts.n_points() {
            let p = pts.point_at(i);
            let c = (
                (p.x / self.cell_size).floor() as i64,
                (p.y / self.cell_size).floor() as i64,
            );
            if cells.last() != Some(&c) {
                cells.push(c);
            }
        }
        cells
    }
}

/// FNV-1a over the gram's cell coordinates, salted by the gram length.
fn hash_gram(gram: &[(i64, i64)], salt: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ salt.wrapping_mul(FNV_PRIME);
    for &(cx, cy) in gram {
        for b in cx.to_le_bytes().into_iter().chain(cy.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

fn l2_normalize(v: &mut [f64]) {
    let norm: f64 = trajectory::simd::sum_squares(v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| Point::new(x, y, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn embedding_is_unit_norm() {
        let e = T2vecEmbedder::default();
        let v = e.embed(&traj(&[(0.0, 0.0), (300.0, 0.0), (600.0, 300.0)]));
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identical_trajectories_embed_identically() {
        let e = T2vecEmbedder::default();
        let t = traj(&[(0.0, 0.0), (300.0, 100.0), (700.0, 300.0)]);
        assert_eq!(T2vecEmbedder::distance(&e.embed(&t), &e.embed(&t)), 0.0);
    }

    #[test]
    fn similar_beats_dissimilar() {
        let e = T2vecEmbedder::default();
        let base = traj(&[(0.0, 0.0), (300.0, 0.0), (600.0, 0.0), (900.0, 0.0)]);
        // Small perturbation, same cells mostly.
        let near = traj(&[(10.0, 10.0), (310.0, 5.0), (620.0, -10.0), (890.0, 12.0)]);
        // Entirely different area.
        let far = traj(&[
            (10_000.0, 10_000.0),
            (10_300.0, 10_300.0),
            (10_600.0, 10_600.0),
        ]);
        let vb = e.embed(&base);
        let dn = T2vecEmbedder::distance(&vb, &e.embed(&near));
        let df = T2vecEmbedder::distance(&vb, &e.embed(&far));
        assert!(dn < df, "near {dn} should beat far {df}");
    }

    #[test]
    fn stationary_points_do_not_dominate() {
        let e = T2vecEmbedder::default();
        let moving = traj(&[(0.0, 0.0), (300.0, 0.0), (600.0, 0.0)]);
        // Same path but with the object parked at the start for a while.
        let parked = traj(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (1.0, 1.0),
            (300.0, 0.0),
            (600.0, 0.0),
        ]);
        let d = T2vecEmbedder::distance(&e.embed(&moving), &e.embed(&parked));
        assert!(
            d < 0.5,
            "parking noise should barely move the embedding: {d}"
        );
    }

    #[test]
    fn empty_sequence_embeds_to_zero() {
        let e = T2vecEmbedder::default();
        let v = e.embed_points(&[]);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn simplification_degrades_gracefully() {
        // The embedding of a simplified trajectory should stay closer to its
        // own original than to an unrelated trajectory.
        let e = T2vecEmbedder::default();
        let orig = traj(&[
            (0.0, 0.0),
            (300.0, 100.0),
            (600.0, 150.0),
            (900.0, 300.0),
            (1200.0, 500.0),
        ]);
        let simp = traj(&[(0.0, 0.0), (600.0, 150.0), (1200.0, 500.0)]);
        let other = traj(&[
            (-5_000.0, 2_000.0),
            (-5_300.0, 2_300.0),
            (-5_600.0, 2_600.0),
        ]);
        let vo = e.embed(&orig);
        assert!(
            T2vecEmbedder::distance(&vo, &e.embed(&simp))
                < T2vecEmbedder::distance(&vo, &e.embed(&other))
        );
    }
}
