//! Query workload generators.
//!
//! The paper trains RL4QDTS on synthetic range-query workloads drawn from
//! one of three distributions — the data distribution, a Gaussian, or a
//! "real" ride-hailing distribution concentrated near pickup/dropoff
//! locations — and additionally evaluates transferability against Zipf
//! workloads (Fig. 9). This module generates all of them, plus the query
//! trajectories / time windows used by kNN and similarity queries.

use rand::rngs::StdRng;
use rand::Rng;
use trajectory::{AsColumns, Cube, PointStore, TrajId, TrajectoryDb};

/// Where query centers come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryDistribution {
    /// Query centers are sampled points of the database itself.
    Data,
    /// Per-axis Gaussian over the normalized bounding cube
    /// (paper default: μ = 0.5, σ = 0.25).
    Gaussian {
        /// Mean in normalized `[0,1]` coordinates.
        mu: f64,
        /// Standard deviation in normalized coordinates.
        sigma: f64,
    },
    /// Per-axis Zipf over a discretized normalized axis (Fig. 9(c)).
    Zipf {
        /// Zipf exponent `a`; larger concentrates mass near the low corner.
        a: f64,
    },
    /// Ride-hailing-like: centers near trajectory start/end points
    /// (pickup/dropoff locations), with Gaussian jitter.
    Real,
}

impl std::fmt::Display for QueryDistribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryDistribution::Data => write!(f, "data"),
            QueryDistribution::Gaussian { mu, sigma } => write!(f, "gaussian(μ={mu},σ={sigma})"),
            QueryDistribution::Zipf { a } => write!(f, "zipf(a={a})"),
            QueryDistribution::Real => write!(f, "real"),
        }
    }
}

/// Shape of a range-query workload.
#[derive(Debug, Clone, Copy)]
pub struct RangeWorkloadSpec {
    /// Number of queries.
    pub count: usize,
    /// Side length of the square spatial region (paper: 2 km).
    pub spatial_extent: f64,
    /// Length of the temporal window (paper: 7 days).
    pub temporal_extent: f64,
    /// Distribution of query centers.
    pub dist: QueryDistribution,
}

impl RangeWorkloadSpec {
    /// The paper's default query shape: 2 km × 2 km × 7 days.
    pub fn paper_default(count: usize, dist: QueryDistribution) -> Self {
        Self {
            count,
            spatial_extent: 2_000.0,
            temporal_extent: 7.0 * 86_400.0,
            dist,
        }
    }
}

/// Where point-anchored distributions (`Data`, `Real`) draw their anchor
/// points from: either storage layout, borrowed with zero copies.
/// Cube-only distributions (Gaussian, Zipf) never touch it.
enum Anchor<'a, S: AsColumns + ?Sized> {
    /// No point data needed.
    None,
    /// Columnar storage (owned or mapped): O(1) data-point sampling by
    /// column index.
    Store(&'a S),
    /// AoS compat: the pre-columnar O(M) walk, but no conversion copy.
    Db(&'a TrajectoryDb),
}

/// Generates a range-query workload over `db` (deterministic parity with
/// [`range_workload_store`] for the same seed; no columnar conversion —
/// the database is only borrowed for anchor sampling).
#[must_use]
pub fn range_workload(db: &TrajectoryDb, spec: &RangeWorkloadSpec, rng: &mut StdRng) -> Vec<Cube> {
    let anchor: Anchor<'_, PointStore> = match spec.dist {
        QueryDistribution::Data | QueryDistribution::Real => Anchor::Db(db),
        _ => Anchor::None,
    };
    workload_impl(db.bounding_cube(), anchor, spec, rng)
}

/// Generates a range-query workload over columnar storage. Data-centered
/// queries sample their anchor point in O(1) straight from the columns
/// (the AoS path walks the trajectory list per sample).
#[must_use]
pub fn range_workload_store<S: AsColumns + ?Sized>(
    store: &S,
    spec: &RangeWorkloadSpec,
    rng: &mut StdRng,
) -> Vec<Cube> {
    workload_impl(store.bounding_cube(), Anchor::Store(store), spec, rng)
}

/// Shared generator core. `anchor` must carry point data for the
/// point-anchored distributions (`Data`, `Real`).
fn workload_impl<S: AsColumns + ?Sized>(
    bc: Cube,
    anchor: Anchor<'_, S>,
    spec: &RangeWorkloadSpec,
    rng: &mut StdRng,
) -> Vec<Cube> {
    if bc.is_empty() {
        return Vec::new();
    }
    let zipf = match spec.dist {
        QueryDistribution::Zipf { a } => Some(ZipfSampler::new(a)),
        _ => None,
    };
    (0..spec.count)
        .map(|_| {
            let (cx, cy, ct) = sample_center(&anchor, &bc, spec.dist, zipf.as_ref(), rng);
            Cube::centered(
                cx,
                cy,
                ct,
                spec.spatial_extent / 2.0,
                spec.spatial_extent / 2.0,
                spec.temporal_extent / 2.0,
            )
        })
        .collect()
}

fn sample_center<S: AsColumns + ?Sized>(
    anchor: &Anchor<'_, S>,
    bc: &Cube,
    dist: QueryDistribution,
    zipf: Option<&ZipfSampler>,
    rng: &mut StdRng,
) -> (f64, f64, f64) {
    match dist {
        QueryDistribution::Data => {
            // Uniform over points (trajectories weighted by length). Both
            // layouts consume one identical RNG draw.
            let k = rng.gen_range(0..anchor.total_points());
            let p = match anchor {
                Anchor::Store(store) => store.point(k as u32),
                Anchor::Db(db) => *sample_nth_point(db, k),
                Anchor::None => unreachable!("data-anchored workload without point data"),
            };
            (p.x, p.y, p.t)
        }
        QueryDistribution::Gaussian { mu, sigma } => {
            let (ex, ey, et) = bc.extents();
            let g = |rng: &mut StdRng| (mu + sigma * gaussian(rng)).clamp(0.0, 1.0);
            (
                bc.x_min + g(rng) * ex,
                bc.y_min + g(rng) * ey,
                bc.t_min + g(rng) * et,
            )
        }
        QueryDistribution::Zipf { .. } => {
            let (ex, ey, et) = bc.extents();
            let sampler = zipf.expect("sampler prepared for zipf workloads");
            let z = |rng: &mut StdRng| sampler.sample_unit(rng);
            (
                bc.x_min + z(rng) * ex,
                bc.y_min + z(rng) * ey,
                bc.t_min + z(rng) * et,
            )
        }
        QueryDistribution::Real => {
            let id = rng.gen_range(0..anchor.len());
            let first = rng.gen_bool(0.5);
            let p = match anchor {
                Anchor::Store(store) => {
                    let v = store.view(id);
                    if first {
                        v.first()
                    } else {
                        v.last()
                    }
                }
                Anchor::Db(db) => {
                    let t = db.get(id);
                    if first {
                        *t.first()
                    } else {
                        *t.last()
                    }
                }
                Anchor::None => unreachable!("endpoint-anchored workload without point data"),
            };
            (
                p.x + 500.0 * gaussian(rng),
                p.y + 500.0 * gaussian(rng),
                p.t,
            )
        }
    }
}

impl<S: AsColumns + ?Sized> Anchor<'_, S> {
    fn total_points(&self) -> usize {
        match self {
            Anchor::Store(store) => store.total_points(),
            Anchor::Db(db) => db.total_points(),
            Anchor::None => 0,
        }
    }

    fn len(&self) -> usize {
        match self {
            Anchor::Store(store) => store.len(),
            Anchor::Db(db) => db.len(),
            Anchor::None => 0,
        }
    }
}

/// The `k`-th point of the database in global (trajectory-major) order —
/// the AoS twin of `PointStore::point(k)`.
fn sample_nth_point(db: &TrajectoryDb, mut k: usize) -> &trajectory::Point {
    for (_, t) in db.iter() {
        if k < t.len() {
            return t.point(k);
        }
        k -= t.len();
    }
    unreachable!("k < total_points")
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Zipf sampler over `K = 100` buckets mapped to `[0, 1)`: rank `k` is
/// drawn from `P(k) ∝ k^-a` by inverse-CDF binary search, then jittered
/// uniformly within the bucket. The cumulative weights are computed once
/// per workload generation, not per sample.
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    const K: usize = 100;

    fn new(a: f64) -> Self {
        let mut cumulative = Vec::with_capacity(Self::K);
        let mut total = 0.0;
        for k in 1..=Self::K {
            total += (k as f64).powf(-a);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    fn sample_unit(&self, rng: &mut StdRng) -> f64 {
        let total = *self.cumulative.last().expect("non-empty buckets");
        let pick = rng.gen_range(0.0..total);
        let bucket = self
            .cumulative
            .partition_point(|&c| c < pick)
            .min(Self::K - 1);
        (bucket as f64 + rng.gen_range(0.0..1.0)) / Self::K as f64
    }
}

/// A kNN or similarity query instance: a query trajectory (by id, taken
/// from the database) plus a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajQuerySpec {
    /// The query trajectory's id in the originating database.
    pub query: TrajId,
    /// Window start.
    pub ts: f64,
    /// Window end.
    pub te: f64,
}

/// Samples `count` query-trajectory specs: a random trajectory and a window
/// of `window_len` seconds positioned to overlap it (paper: 7 days, which
/// typically covers whole trajectories).
pub fn traj_query_workload(
    db: &TrajectoryDb,
    count: usize,
    window_len: f64,
    rng: &mut StdRng,
) -> Vec<TrajQuerySpec> {
    if db.is_empty() {
        return Vec::new();
    }
    (0..count)
        .map(|_| {
            let query = rng.gen_range(0..db.len());
            let (t0, t1) = db.get(query).time_span();
            // Center the window at a random instant of the trajectory.
            let c = rng.gen_range(t0..=t1.max(t0 + f64::EPSILON));
            TrajQuerySpec {
                query,
                ts: c - window_len / 2.0,
                te: c + window_len / 2.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use trajectory::gen::{generate, DatasetSpec, Scale};

    fn db() -> TrajectoryDb {
        generate(&DatasetSpec::geolife(Scale::Smoke), 5)
    }

    #[test]
    fn workload_has_requested_count_and_shape() {
        let db = db();
        let spec = RangeWorkloadSpec {
            count: 25,
            spatial_extent: 2_000.0,
            temporal_extent: 7.0 * 86_400.0,
            dist: QueryDistribution::Data,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let qs = range_workload(&db, &spec, &mut rng);
        assert_eq!(qs.len(), 25);
        for q in &qs {
            let (ex, ey, et) = q.extents();
            assert!((ex - 2_000.0).abs() < 1e-9);
            assert!((ey - 2_000.0).abs() < 1e-9);
            assert!((et - 7.0 * 86_400.0).abs() < 1e-6);
        }
    }

    #[test]
    fn data_distribution_queries_hit_data() {
        let db = db();
        let spec = RangeWorkloadSpec::paper_default(50, QueryDistribution::Data);
        let mut rng = StdRng::seed_from_u64(2);
        let qs = range_workload(&db, &spec, &mut rng);
        // Every data-centered query contains at least the point it was
        // centered on.
        let hits = qs
            .iter()
            .filter(|q| !crate::range::range_query(&db, q).is_empty())
            .count();
        assert_eq!(hits, qs.len());
    }

    #[test]
    fn gaussian_centers_cluster_around_mu() {
        let db = db();
        let bc = db.bounding_cube();
        let spec = RangeWorkloadSpec {
            count: 300,
            spatial_extent: 10.0,
            temporal_extent: 10.0,
            dist: QueryDistribution::Gaussian {
                mu: 0.5,
                sigma: 0.1,
            },
        };
        let mut rng = StdRng::seed_from_u64(3);
        let qs = range_workload(&db, &spec, &mut rng);
        let mean_x: f64 = qs.iter().map(|q| q.center().0).sum::<f64>() / qs.len() as f64;
        let mid_x = bc.center().0;
        let (ex, _, _) = bc.extents();
        assert!(
            (mean_x - mid_x).abs() < 0.05 * ex,
            "mean {mean_x} vs mid {mid_x}"
        );
    }

    #[test]
    fn zipf_concentrates_near_origin_for_large_a() {
        let db = db();
        let bc = db.bounding_cube();
        let spec = RangeWorkloadSpec {
            count: 200,
            spatial_extent: 10.0,
            temporal_extent: 10.0,
            dist: QueryDistribution::Zipf { a: 6.0 },
        };
        let mut rng = StdRng::seed_from_u64(4);
        let qs = range_workload(&db, &spec, &mut rng);
        let (ex, _, _) = bc.extents();
        let near_min = qs
            .iter()
            .filter(|q| q.center().0 < bc.x_min + 0.1 * ex)
            .count();
        assert!(
            near_min > qs.len() / 2,
            "only {near_min}/{} near min",
            qs.len()
        );
    }

    #[test]
    fn real_distribution_is_endpoint_biased() {
        let db = db();
        let spec = RangeWorkloadSpec {
            count: 100,
            spatial_extent: 10.0,
            temporal_extent: 10.0,
            dist: QueryDistribution::Real,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let qs = range_workload(&db, &spec, &mut rng);
        // Centers should be within jitter distance of *some* endpoint.
        let endpoints: Vec<(f64, f64)> = db
            .iter()
            .flat_map(|(_, t)| [(t.first().x, t.first().y), (t.last().x, t.last().y)])
            .collect();
        for q in &qs {
            let (cx, cy, _) = q.center();
            let near = endpoints
                .iter()
                .any(|(ex, ey)| ((cx - ex).powi(2) + (cy - ey).powi(2)).sqrt() < 3_000.0);
            assert!(near, "query center ({cx},{cy}) not near any endpoint");
        }
    }

    #[test]
    fn db_and_store_workloads_are_identical() {
        // Both anchor layouts must consume the same RNG stream and pick
        // the same centers — the determinism the trainer relies on.
        let db = db();
        let store = db.to_store();
        for dist in [
            QueryDistribution::Data,
            QueryDistribution::Real,
            QueryDistribution::Gaussian {
                mu: 0.5,
                sigma: 0.25,
            },
            QueryDistribution::Zipf { a: 2.0 },
        ] {
            let spec = RangeWorkloadSpec {
                count: 20,
                spatial_extent: 500.0,
                temporal_extent: 500.0,
                dist,
            };
            let a = range_workload(&db, &spec, &mut StdRng::seed_from_u64(17));
            let b = range_workload_store(&store, &spec, &mut StdRng::seed_from_u64(17));
            assert_eq!(a, b, "{dist}");
        }
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let db = db();
        let spec = RangeWorkloadSpec::paper_default(10, QueryDistribution::Data);
        let a = range_workload(&db, &spec, &mut StdRng::seed_from_u64(7));
        let b = range_workload(&db, &spec, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn traj_query_workload_windows_overlap_their_trajectory() {
        let db = db();
        let mut rng = StdRng::seed_from_u64(8);
        let specs = traj_query_workload(&db, 20, 3_600.0, &mut rng);
        assert_eq!(specs.len(), 20);
        for s in specs {
            let (t0, t1) = db.get(s.query).time_span();
            assert!(s.ts <= t1 && s.te >= t0, "window misses its trajectory");
        }
    }

    #[test]
    fn empty_db_yields_empty_workloads() {
        let db = TrajectoryDb::default();
        let spec = RangeWorkloadSpec::paper_default(5, QueryDistribution::Data);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(range_workload(&db, &spec, &mut rng).is_empty());
        assert!(traj_query_workload(&db, 5, 10.0, &mut rng).is_empty());
    }
}
