//! Trajectory similarity join (extension).
//!
//! The paper's introduction motivates simplification with applications
//! like "identifying ridesharing candidates", and the evaluation
//! methodology it follows (Zhang et al., PVLDB'18) includes a join
//! operator. This module provides it: find all pairs of trajectories that
//! travel within δ of each other for a sufficient stretch of *common*
//! time. Like the similarity query, the join interpolates synchronized
//! positions, so it runs identically on original and simplified databases.

use trajectory::{TrajId, Trajectory, TrajectoryDb};

/// Parameters of a trajectory similarity join.
#[derive(Debug, Clone, Copy)]
pub struct JoinParams {
    /// Distance threshold δ (meters): pairs must stay within δ.
    pub delta: f64,
    /// Minimum temporal overlap (seconds) for a pair to be considered.
    pub min_overlap: f64,
    /// Synchronization step (seconds) for the "at all times" check.
    pub step: f64,
}

impl Default for JoinParams {
    fn default() -> Self {
        Self {
            delta: 1_000.0,
            min_overlap: 300.0,
            step: 60.0,
        }
    }
}

/// Self-join: all unordered pairs `(i, j)`, `i < j`, whose trajectories
/// overlap for at least `min_overlap` seconds and stay within `delta`
/// throughout the overlap. Pairs are returned sorted.
pub fn similarity_join(db: &TrajectoryDb, params: &JoinParams) -> Vec<(TrajId, TrajId)> {
    let mut out = Vec::new();
    // Precompute bounding cubes once: cheap pair pruning.
    let cubes: Vec<trajectory::Cube> = db
        .trajectories()
        .iter()
        .map(Trajectory::bounding_cube)
        .collect();
    for i in 0..db.len() {
        for j in i + 1..db.len() {
            // Spatial prune: expand one box by δ and require intersection.
            let mut grown = cubes[i];
            grown.x_min -= params.delta;
            grown.x_max += params.delta;
            grown.y_min -= params.delta;
            grown.y_max += params.delta;
            if !grown.intersects(&cubes[j]) {
                continue;
            }
            if pair_matches(db.get(i), db.get(j), params) {
                out.push((i, j));
            }
        }
    }
    out
}

/// True when the pair overlaps long enough and stays within δ.
pub fn pair_matches(a: &Trajectory, b: &Trajectory, params: &JoinParams) -> bool {
    let (a0, a1) = a.time_span();
    let (b0, b1) = b.time_span();
    let lo = a0.max(b0);
    let hi = a1.min(b1);
    if hi - lo < params.min_overlap {
        return false;
    }
    // Regular grid plus both trajectories' own samples inside the overlap.
    let step = if params.step > 0.0 {
        params.step
    } else {
        (hi - lo) / 16.0
    };
    let mut t = lo;
    while t < hi {
        if a.position_at(t).spatial_distance(&b.position_at(t)) > params.delta {
            return false;
        }
        t += step;
    }
    for src in [a, b] {
        if let Some((s, e)) = src.window_indices(lo, hi) {
            for p in &src.points()[s..=e] {
                if a.position_at(p.t).spatial_distance(&b.position_at(p.t)) > params.delta {
                    return false;
                }
            }
        }
    }
    a.position_at(hi).spatial_distance(&b.position_at(hi)) <= params.delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::Point;

    fn line(y: f64, t0: f64, n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| Point::new(i as f64 * 100.0, y, t0 + i as f64 * 60.0))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn parallel_companions_join() {
        // Two vehicles driving the same road 200 m apart, same schedule.
        let db = TrajectoryDb::new(vec![line(0.0, 0.0, 20), line(200.0, 0.0, 20)]);
        let pairs = similarity_join(&db, &JoinParams::default());
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn distant_trajectories_do_not_join() {
        let db = TrajectoryDb::new(vec![line(0.0, 0.0, 20), line(50_000.0, 0.0, 20)]);
        assert!(similarity_join(&db, &JoinParams::default()).is_empty());
    }

    #[test]
    fn temporally_disjoint_trajectories_do_not_join() {
        // Same road, but hours apart.
        let db = TrajectoryDb::new(vec![line(0.0, 0.0, 20), line(100.0, 1e6, 20)]);
        assert!(similarity_join(&db, &JoinParams::default()).is_empty());
    }

    #[test]
    fn short_overlap_is_rejected() {
        let a = line(0.0, 0.0, 20); // spans [0, 1140]
        let b = line(100.0, 1100.0, 20); // overlap of only 40 s
        let db = TrajectoryDb::new(vec![a, b]);
        let params = JoinParams {
            min_overlap: 300.0,
            ..JoinParams::default()
        };
        assert!(similarity_join(&db, &params).is_empty());
    }

    #[test]
    fn mid_route_divergence_breaks_the_pair() {
        let a = line(0.0, 0.0, 20);
        // Starts close, veers 5 km away at the midpoint, then comes back.
        let mut pts = Vec::new();
        for i in 0..20 {
            let y = if (8..12).contains(&i) { 5_000.0 } else { 150.0 };
            pts.push(Point::new(i as f64 * 100.0, y, i as f64 * 60.0));
        }
        let b = Trajectory::new(pts).unwrap();
        let db = TrajectoryDb::new(vec![a, b]);
        assert!(similarity_join(&db, &JoinParams::default()).is_empty());
    }

    #[test]
    fn join_shrinks_under_aggressive_simplification() {
        // Two wiggly companions: endpoint-only simplification straightens
        // one of them, pulling the pair apart mid-route.
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        for i in 0..30 {
            let wiggle = if i % 2 == 0 { 0.0 } else { 800.0 };
            pa.push(Point::new(i as f64 * 100.0, wiggle, i as f64 * 60.0));
            pb.push(Point::new(
                i as f64 * 100.0,
                wiggle + 100.0,
                i as f64 * 60.0,
            ));
        }
        let a = Trajectory::new(pa).unwrap();
        let b = Trajectory::new(pb).unwrap();
        let db = TrajectoryDb::new(vec![a.clone(), b.clone()]);
        let params = JoinParams {
            delta: 500.0,
            min_overlap: 300.0,
            step: 30.0,
        };
        assert_eq!(similarity_join(&db, &params), vec![(0, 1)]);

        // Simplify trajectory 1 to its endpoints: a straight line that the
        // wiggling partner departs from by ~800 m.
        let simplified_b = Trajectory::new(vec![*b.first(), *b.last()]).unwrap();
        let db2 = TrajectoryDb::new(vec![a, simplified_b]);
        assert!(similarity_join(&db2, &params).is_empty());
    }

    #[test]
    fn pairs_are_sorted_and_unique() {
        let db = TrajectoryDb::new(vec![
            line(0.0, 0.0, 20),
            line(100.0, 0.0, 20),
            line(200.0, 0.0, 20),
        ]);
        let pairs = similarity_join(&db, &JoinParams::default());
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }
}
