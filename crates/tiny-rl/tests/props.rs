//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tiny_rl::nn::serialize::{mlp_from_str, mlp_to_string, whitener_from_str, whitener_to_string};
use tiny_rl::{Dqn, DqnConfig, Mlp, ReplayMemory, Transition, Whitener};

fn arb_input(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mlp_forward_is_deterministic_and_finite(
        (seed, x) in (0u64..1000, arb_input(6))
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[6, 12, 4], &mut rng);
        let a = net.forward(&x);
        let b = net.forward(&x);
        prop_assert_eq!(a.clone(), b);
        prop_assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mlp_serialization_round_trips_exactly(
        (seed, x) in (0u64..1000, arb_input(5))
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[5, 7, 3], &mut rng);
        let back = mlp_from_str(&mlp_to_string(&net)).unwrap();
        prop_assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn whitener_output_is_standardized(
        samples in prop::collection::vec(arb_input(3), 10..100)
    ) {
        let mut w = Whitener::new(3);
        for s in &samples {
            w.observe(s);
        }
        let back = whitener_from_str(&whitener_to_string(&w)).unwrap();
        // Whitening the observed mean lands on ~0 for both copies.
        let (mean, _, _) = w.raw();
        let mut x = mean.to_vec();
        let mut y = mean.to_vec();
        w.transform(&mut x);
        back.transform(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-12);
            prop_assert!(a.abs() < 1e-9, "whitened mean should be ~0, got {a}");
        }
    }

    #[test]
    fn greedy_action_always_respects_mask(
        (seed, x, mask) in (
            0u64..500,
            arb_input(4),
            prop::collection::vec(any::<bool>(), 3),
        )
    ) {
        let agent = Dqn::new(&[4, 8, 3], DqnConfig::default(), seed);
        let a = agent.greedy_action(&x, &mask);
        if mask.iter().any(|&m| m) {
            prop_assert!(mask[a], "picked masked action {a}");
        } else {
            prop_assert_eq!(a, 0);
        }
    }

    #[test]
    fn replay_never_exceeds_capacity(
        (cap, n) in (1usize..50, 0usize..200)
    ) {
        let mut m = ReplayMemory::new(cap);
        for i in 0..n {
            m.push(Transition {
                state: vec![i as f64],
                action: 0,
                reward: 0.0,
                next_state: None,
                next_mask: vec![],
            });
        }
        prop_assert_eq!(m.len(), n.min(cap));
    }

    #[test]
    fn train_step_keeps_parameters_finite(
        seed in 0u64..200
    ) {
        let mut agent = Dqn::new(&[3, 8, 2], DqnConfig { batch_size: 8, ..DqnConfig::default() }, seed);
        for i in 0..32 {
            agent.remember(Transition {
                state: vec![i as f64 % 3.0, 1.0, -1.0],
                action: i % 2,
                reward: (i % 5) as f64 - 2.0,
                next_state: if i % 4 == 0 { None } else { Some(vec![0.0, 0.5, 0.5]) },
                next_mask: vec![true, true],
            });
        }
        for _ in 0..20 {
            if let Some(loss) = agent.train_step() {
                prop_assert!(loss.is_finite());
            }
        }
        let q = agent.q_values(&[0.1, 0.2, 0.3]);
        prop_assert!(q.iter().all(|v| v.is_finite()));
    }
}
