//! A minimal, dependency-light reinforcement-learning toolkit.
//!
//! The paper trains its two agents with Deep Q-Networks: two-layer
//! feedforward networks (25 tanh hidden units, linear head) optimized with
//! Adam (lr 0.01), ε-greedy exploration (floor 0.1, decay 0.99), replay
//! memory of 2000 transitions, and discount 0.99. No deep-learning crate is
//! available offline, so this crate implements exactly that stack from
//! scratch: [`nn`] (dense layers, MLPs, Adam, feature whitening, text
//! checkpoints), [`replay`] (experience replay), and [`dqn`] (the agent).
//!
//! Both the RLTS+ baseline (`traj-simp`) and RL4QDTS itself (`rl4qdts`)
//! build on this crate.

#![warn(missing_docs)]

pub mod dqn;
pub mod nn;
pub mod replay;

pub use dqn::{Dqn, DqnConfig};
pub use nn::{Adam, Dense, Mlp, Whitener};
pub use replay::{ReplayMemory, Transition};
