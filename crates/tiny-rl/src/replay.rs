//! Experience replay memory (Mnih et al., 2013; paper: capacity 2000).

use rand::rngs::StdRng;
use rand::Rng;

/// One transition `(s, a, r, s′)`.
///
/// `next_state` is `None` for terminal transitions. `next_mask` flags which
/// actions are valid in `s′` — both agents in RL4QDTS have state-dependent
/// action sets (octree children without trajectories are invalid; Agent-
/// Point's candidate list may be shorter than `K`), and the Bellman target
/// must only maximize over valid actions.
#[derive(Debug, Clone)]
pub struct Transition {
    /// State the action was taken in.
    pub state: Vec<f64>,
    /// Chosen action index.
    pub action: usize,
    /// Observed (possibly delayed, shared) reward.
    pub reward: f64,
    /// Successor state; `None` when the episode ended.
    pub next_state: Option<Vec<f64>>,
    /// Valid-action flags in the successor state.
    pub next_mask: Vec<bool>,
}

/// Fixed-capacity ring buffer of transitions with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayMemory {
    buf: Vec<Transition>,
    capacity: usize,
    head: usize,
}

impl ReplayMemory {
    /// An empty memory of the given capacity (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is stored yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stores a transition, overwriting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples `n` transitions uniformly with replacement. Returns an empty
    /// vector when the memory is empty.
    pub fn sample<'a>(&'a self, n: usize, rng: &mut StdRng) -> Vec<&'a Transition> {
        if self.buf.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|_| &self.buf[rng.gen_range(0..self.buf.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(reward: f64) -> Transition {
        Transition {
            state: vec![reward],
            action: 0,
            reward,
            next_state: None,
            next_mask: vec![],
        }
    }

    #[test]
    fn push_grows_until_capacity_then_overwrites_oldest() {
        let mut m = ReplayMemory::new(3);
        for i in 0..5 {
            m.push(t(i as f64));
        }
        assert_eq!(m.len(), 3);
        let rewards: Vec<f64> = m.buf.iter().map(|t| t.reward).collect();
        // 0 and 1 were overwritten by 3 and 4.
        assert!(rewards.contains(&2.0));
        assert!(rewards.contains(&3.0));
        assert!(rewards.contains(&4.0));
    }

    #[test]
    fn sample_returns_requested_count() {
        let mut m = ReplayMemory::new(10);
        for i in 0..4 {
            m.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.sample(16, &mut rng).len(), 16);
        assert!(ReplayMemory::new(5).sample(3, &mut rng).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_is_rejected() {
        let _ = ReplayMemory::new(0);
    }
}
