//! Deep Q-Network with replay memory and ε-greedy exploration
//! (Mnih et al., 2013), parameterized exactly as the paper trains both
//! agents: γ = 0.99, Adam lr 0.01, replay capacity 2000, ε floor 0.1 with
//! multiplicative decay 0.99.

use crate::nn::{Adam, Mlp, Whitener};
use crate::replay::{ReplayMemory, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DQN hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct DqnConfig {
    /// Discount rate γ (paper: 0.99).
    pub gamma: f64,
    /// Adam learning rate (paper: 0.01).
    pub lr: f64,
    /// Initial exploration rate.
    pub epsilon_start: f64,
    /// Exploration floor (paper: 0.1).
    pub epsilon_min: f64,
    /// Multiplicative ε decay applied per training step (paper: 0.99).
    pub epsilon_decay: f64,
    /// Replay memory capacity (paper: 2000).
    pub replay_capacity: usize,
    /// Minibatch size per training step.
    pub batch_size: usize,
    /// Copy online → target network every this many training steps.
    pub target_sync_every: u64,
    /// Use Double DQN targets (van Hasselt et al., 2016): the online
    /// network selects the argmax action, the target network evaluates it.
    /// Reduces the maximization bias of vanilla DQN; off by default to
    /// match the paper's setup.
    pub double_dqn: bool,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            lr: 0.01,
            epsilon_start: 1.0,
            epsilon_min: 0.1,
            epsilon_decay: 0.99,
            replay_capacity: 2000,
            batch_size: 32,
            target_sync_every: 50,
            double_dqn: false,
        }
    }
}

/// A DQN agent: online + target Q-networks, replay memory, ε-greedy policy,
/// and an input whitener (the paper's batch-norm stand-in; DESIGN.md §6).
#[derive(Debug, Clone)]
pub struct Dqn {
    online: Mlp,
    target: Mlp,
    optimizer: Adam,
    replay: ReplayMemory,
    whitener: Whitener,
    config: DqnConfig,
    epsilon: f64,
    train_steps: u64,
    rng: StdRng,
}

impl Dqn {
    /// Builds an agent with the given network shape (e.g. `[16, 25, 9]`).
    pub fn new(sizes: &[usize], config: DqnConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let online = Mlp::new(sizes, &mut rng);
        let target = online.clone();
        let optimizer = Adam::new(&online, config.lr);
        Self {
            whitener: Whitener::new(sizes[0]),
            replay: ReplayMemory::new(config.replay_capacity),
            online,
            target,
            optimizer,
            config,
            epsilon: config.epsilon_start,
            train_steps: 0,
            rng,
        }
    }

    /// Rebuilds an agent around a deserialized network (inference).
    pub fn from_parts(online: Mlp, whitener: Whitener, config: DqnConfig, seed: u64) -> Self {
        let optimizer = Adam::new(&online, config.lr);
        Self {
            target: online.clone(),
            replay: ReplayMemory::new(config.replay_capacity),
            whitener,
            online,
            optimizer,
            config,
            epsilon: config.epsilon_min,
            train_steps: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of actions.
    pub fn action_dim(&self) -> usize {
        self.online.output_dim()
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.online.input_dim()
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The online network (serialization).
    pub fn online(&self) -> &Mlp {
        &self.online
    }

    /// The input whitener (serialization).
    pub fn whitener(&self) -> &Whitener {
        &self.whitener
    }

    /// Training steps taken.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Transitions currently stored.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Whitens a raw state. Training observes (updates statistics);
    /// inference only transforms.
    pub fn whiten(&mut self, state: &[f64], learn: bool) -> Vec<f64> {
        let mut s = state.to_vec();
        if learn {
            self.whitener.observe_transform(&mut s);
        } else {
            self.whitener.transform(&mut s);
        }
        s
    }

    /// Q-values of a (whitened) state.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.online.forward(state)
    }

    /// ε-greedy action over the valid actions flagged by `mask`.
    /// Falls back to action 0 when the mask is all-false.
    pub fn select_action(&mut self, state: &[f64], mask: &[bool]) -> usize {
        debug_assert_eq!(mask.len(), self.action_dim());
        let valid: Vec<usize> = (0..mask.len()).filter(|&a| mask[a]).collect();
        if valid.is_empty() {
            return 0;
        }
        if self.rng.gen_range(0.0..1.0) < self.epsilon {
            return valid[self.rng.gen_range(0..valid.len())];
        }
        self.greedy_action(state, mask)
    }

    /// Greedy (argmax-Q) action over valid actions.
    pub fn greedy_action(&self, state: &[f64], mask: &[bool]) -> usize {
        let q = self.q_values(state);
        let mut best = None::<(usize, f64)>;
        for (a, (&qa, &ok)) in q.iter().zip(mask).enumerate() {
            if !ok {
                continue;
            }
            if best.is_none_or(|(_, bq)| qa > bq) {
                best = Some((a, qa));
            }
        }
        best.map_or(0, |(a, _)| a)
    }

    /// Stores a transition.
    pub fn remember(&mut self, t: Transition) {
        self.replay.push(t);
    }

    /// One DQN training step: sample a minibatch, regress the chosen
    /// action's Q-value toward `r + γ·max_valid Q_target(s′)`, Adam-update,
    /// decay ε, and periodically sync the target network.
    ///
    /// Returns the minibatch MSE, or `None` when the replay memory has
    /// fewer than `batch_size` transitions.
    pub fn train_step(&mut self) -> Option<f64> {
        if self.replay.len() < self.config.batch_size {
            return None;
        }
        let batch: Vec<Transition> = self
            .replay
            .sample(self.config.batch_size, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();

        let mut grad = self.online.zero_grad();
        let mut loss = 0.0;
        let scale = 1.0 / batch.len() as f64;
        for t in &batch {
            let target = match &t.next_state {
                None => t.reward,
                Some(ns) => {
                    let q_target = self.target.forward(ns);
                    let best = if self.config.double_dqn {
                        // Double DQN: online net picks, target net scores.
                        let q_online = self.online.forward(ns);
                        let mut pick = None::<(usize, f64)>;
                        for (a, (&qa, &ok)) in q_online.iter().zip(&t.next_mask).enumerate() {
                            if ok && pick.is_none_or(|(_, bq)| qa > bq) {
                                pick = Some((a, qa));
                            }
                        }
                        pick.map_or(f64::NEG_INFINITY, |(a, _)| q_target[a])
                    } else {
                        q_target
                            .iter()
                            .zip(&t.next_mask)
                            .filter(|(_, &ok)| ok)
                            .map(|(&q, _)| q)
                            .fold(f64::NEG_INFINITY, f64::max)
                    };
                    if best.is_finite() {
                        t.reward + self.config.gamma * best
                    } else {
                        // No valid successor action: treat as terminal.
                        t.reward
                    }
                }
            };
            let acts = self.online.forward_trace(&t.state);
            let q = acts.last().expect("trace non-empty");
            let td = q[t.action] - target;
            loss += td * td * scale;
            let mut d_out = vec![0.0; q.len()];
            d_out[t.action] = 2.0 * td * scale;
            self.online.backward(&acts, &d_out, &mut grad);
        }
        self.optimizer.step(&mut self.online, &grad);

        self.train_steps += 1;
        self.epsilon = (self.epsilon * self.config.epsilon_decay).max(self.config.epsilon_min);
        if self
            .train_steps
            .is_multiple_of(self.config.target_sync_every)
        {
            self.sync_target();
        }
        Some(loss)
    }

    /// Copies the online network into the target network.
    pub fn sync_target(&mut self) {
        self.target = self.online.clone();
    }

    /// Freezes exploration (inference mode).
    pub fn freeze(&mut self) {
        self.epsilon = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 5-state corridor: start at 0, actions {0: left, 1: right},
    /// reward 1 for reaching state 4 (terminal), 0 otherwise.
    struct Corridor {
        pos: usize,
    }

    impl Corridor {
        fn state(&self) -> Vec<f64> {
            let mut s = vec![0.0; 5];
            s[self.pos] = 1.0;
            s
        }

        fn step(&mut self, action: usize) -> (f64, bool) {
            if action == 1 {
                self.pos += 1;
            } else {
                self.pos = self.pos.saturating_sub(1);
            }
            if self.pos == 4 {
                (1.0, true)
            } else {
                (0.0, false)
            }
        }
    }

    #[test]
    fn dqn_learns_the_corridor() {
        let config = DqnConfig {
            batch_size: 16,
            replay_capacity: 500,
            epsilon_decay: 0.995,
            ..DqnConfig::default()
        };
        let mut agent = Dqn::new(&[5, 16, 2], config, 42);
        let mask = [true, true];
        for _ in 0..300 {
            let mut env = Corridor { pos: 0 };
            for _ in 0..20 {
                let s = env.state();
                let a = agent.select_action(&s, &mask);
                let (r, done) = env.step(a);
                let next = if done { None } else { Some(env.state()) };
                agent.remember(Transition {
                    state: s,
                    action: a,
                    reward: r,
                    next_state: next,
                    next_mask: mask.to_vec(),
                });
                agent.train_step();
                if done {
                    break;
                }
            }
        }
        agent.freeze();
        // The greedy policy must walk right from every state.
        for pos in 0..4 {
            let env = Corridor { pos };
            assert_eq!(
                agent.greedy_action(&env.state(), &mask),
                1,
                "state {pos} should go right"
            );
        }
    }

    #[test]
    fn double_dqn_also_learns_the_corridor() {
        let config = DqnConfig {
            batch_size: 16,
            replay_capacity: 500,
            epsilon_decay: 0.995,
            double_dqn: true,
            ..DqnConfig::default()
        };
        let mut agent = Dqn::new(&[5, 16, 2], config, 43);
        let mask = [true, true];
        for _ in 0..300 {
            let mut env = Corridor { pos: 0 };
            for _ in 0..20 {
                let s = env.state();
                let a = agent.select_action(&s, &mask);
                let (r, done) = env.step(a);
                let next = if done { None } else { Some(env.state()) };
                agent.remember(Transition {
                    state: s,
                    action: a,
                    reward: r,
                    next_state: next,
                    next_mask: mask.to_vec(),
                });
                agent.train_step();
                if done {
                    break;
                }
            }
        }
        agent.freeze();
        for pos in 0..4 {
            let env = Corridor { pos };
            assert_eq!(agent.greedy_action(&env.state(), &mask), 1, "state {pos}");
        }
    }

    #[test]
    fn masked_actions_are_never_selected() {
        let mut agent = Dqn::new(&[2, 8, 3], DqnConfig::default(), 7);
        let mask = [false, true, false];
        for _ in 0..200 {
            let a = agent.select_action(&[0.0, 1.0], &mask);
            assert_eq!(a, 1);
        }
        assert_eq!(agent.greedy_action(&[0.0, 1.0], &mask), 1);
    }

    #[test]
    fn all_false_mask_falls_back_to_zero() {
        let mut agent = Dqn::new(&[1, 4, 2], DqnConfig::default(), 8);
        assert_eq!(agent.select_action(&[0.0], &[false, false]), 0);
    }

    #[test]
    fn train_step_requires_a_full_batch() {
        let mut agent = Dqn::new(&[1, 4, 2], DqnConfig::default(), 9);
        assert!(agent.train_step().is_none());
        for _ in 0..DqnConfig::default().batch_size {
            agent.remember(Transition {
                state: vec![0.0],
                action: 0,
                reward: 1.0,
                next_state: None,
                next_mask: vec![],
            });
        }
        assert!(agent.train_step().is_some());
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let config = DqnConfig {
            epsilon_decay: 0.5,
            batch_size: 1,
            ..DqnConfig::default()
        };
        let mut agent = Dqn::new(&[1, 4, 2], config, 10);
        agent.remember(Transition {
            state: vec![0.0],
            action: 0,
            reward: 0.0,
            next_state: None,
            next_mask: vec![],
        });
        for _ in 0..20 {
            agent.train_step();
        }
        assert_eq!(agent.epsilon(), config.epsilon_min);
    }

    #[test]
    fn terminal_targets_equal_reward() {
        // With a single terminal transition repeated, Q(s, a) must converge
        // to exactly the reward.
        let config = DqnConfig {
            batch_size: 4,
            lr: 0.05,
            ..DqnConfig::default()
        };
        let mut agent = Dqn::new(&[1, 8, 2], config, 11);
        for _ in 0..8 {
            agent.remember(Transition {
                state: vec![1.0],
                action: 1,
                reward: 3.0,
                next_state: None,
                next_mask: vec![],
            });
        }
        for _ in 0..500 {
            agent.train_step();
        }
        let q = agent.q_values(&[1.0]);
        assert!((q[1] - 3.0).abs() < 0.1, "Q = {q:?}");
    }

    #[test]
    fn whiten_learn_vs_inference() {
        let mut agent = Dqn::new(&[2, 4, 2], DqnConfig::default(), 12);
        for i in 0..100 {
            let _ = agent.whiten(&[i as f64, 1000.0 * i as f64], true);
        }
        let w = agent.whiten(&[50.0, 50_000.0], false);
        assert!(w.iter().all(|v| v.abs() < 3.0), "whitened: {w:?}");
    }
}
