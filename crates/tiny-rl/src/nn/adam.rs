//! Adam optimizer (Kingma & Ba, 2015) — the paper trains both agents with
//! "Adam stochastic gradient descent with an initial learning rate of 0.01".

use super::mlp::{Mlp, MlpGrad};

/// Adam state for one [`Mlp`].
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper: 0.01).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    t: u64,
    m: Vec<Vec<f64>>, // per layer: weights then biases concatenated
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Adam with the paper's learning rate and standard betas.
    pub fn new(net: &Mlp, lr: f64) -> Self {
        let shapes: Vec<usize> = net.layers().iter().map(|l| l.w.len() + l.b.len()).collect();
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: shapes.iter().map(|&n| vec![0.0; n]).collect(),
            v: shapes.iter().map(|&n| vec![0.0; n]).collect(),
        }
    }

    /// Applies one Adam update with gradients `grad`.
    pub fn step(&mut self, net: &mut Mlp, grad: &MlpGrad) {
        self.t += 1;
        let t = self.t as f64;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            let g = &grad.layers[li];
            let m = &mut self.m[li];
            let v = &mut self.v[li];
            let nw = layer.w.len();
            for (i, (param, grad)) in layer
                .w
                .iter_mut()
                .chain(layer.b.iter_mut())
                .zip(g.w.iter().chain(g.b.iter()))
                .enumerate()
            {
                debug_assert!(i < nw + g.b.len());
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad * grad;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                *param -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Adam must drive a small regression problem's loss to near zero.
    #[test]
    fn fits_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Mlp::new(&[2, 8, 1], &mut rng);
        let mut adam = Adam::new(&net, 0.01);
        let data: Vec<([f64; 2], f64)> = vec![
            ([0.0, 0.0], 0.0),
            ([1.0, 0.0], 1.0),
            ([0.0, 1.0], -1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut final_loss = f64::INFINITY;
        for _ in 0..2000 {
            let mut grad = net.zero_grad();
            let mut loss = 0.0;
            for (x, t) in &data {
                let acts = net.forward_trace(x);
                let y = acts.last().unwrap()[0];
                loss += (y - t) * (y - t);
                net.backward(&acts, &[2.0 * (y - t) / data.len() as f64], &mut grad);
            }
            adam.step(&mut net, &grad);
            final_loss = loss / data.len() as f64;
        }
        assert!(final_loss < 1e-3, "loss {final_loss}");
    }

    /// XOR is not linearly separable: passing requires the hidden layer and
    /// the optimizer to actually work together.
    #[test]
    fn fits_xor() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Mlp::new(&[2, 8, 1], &mut rng);
        let mut adam = Adam::new(&net, 0.02);
        let data: Vec<([f64; 2], f64)> = vec![
            ([0.0, 0.0], 0.0),
            ([1.0, 0.0], 1.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..3000 {
            let mut grad = net.zero_grad();
            for (x, t) in &data {
                let acts = net.forward_trace(x);
                let y = acts.last().unwrap()[0];
                net.backward(&acts, &[2.0 * (y - t) / data.len() as f64], &mut grad);
            }
            adam.step(&mut net, &grad);
        }
        for (x, t) in &data {
            let y = net.forward(x)[0];
            assert!((y - t).abs() < 0.2, "xor({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    fn step_counter_increments() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Mlp::new(&[1, 1], &mut rng);
        let mut adam = Adam::new(&net, 0.01);
        assert_eq!(adam.steps(), 0);
        let grad = net.zero_grad();
        adam.step(&mut net, &grad);
        assert_eq!(adam.steps(), 1);
    }
}
