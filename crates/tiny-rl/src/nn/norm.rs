//! Online feature whitening.
//!
//! The paper employs batch normalization "to avoid data scale issues".
//! In a replay-based DQN with tiny batches, batch statistics are noisy and
//! make the policy non-deterministic at inference; a running
//! (Welford) estimate of per-feature mean/variance provides the same scale
//! robustness deterministically. The ablation in this module's tests shows
//! it normalizes arbitrary scales to O(1) features. See DESIGN.md §6.

/// Running per-feature mean/variance estimator used to whiten MDP states
/// before they reach the Q-network.
#[derive(Debug, Clone)]
pub struct Whitener {
    mean: Vec<f64>,
    m2: Vec<f64>,
    count: f64,
}

impl Whitener {
    /// A whitener for `dim`-dimensional features.
    pub fn new(dim: usize) -> Self {
        Self {
            mean: vec![0.0; dim],
            m2: vec![0.0; dim],
            count: 0.0,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of observations folded in.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Folds one observation into the running statistics (Welford).
    pub fn observe(&mut self, x: &[f64]) {
        debug_assert_eq!(x.len(), self.mean.len());
        self.count += 1.0;
        for (i, &xi) in x.iter().enumerate() {
            let delta = xi - self.mean[i];
            self.mean[i] += delta / self.count;
            let delta2 = xi - self.mean[i];
            self.m2[i] += delta * delta2;
        }
    }

    /// Whitens `x` in place: `(x - mean) / (std + eps)`. Before any
    /// observation this is the identity.
    pub fn transform(&self, x: &mut [f64]) {
        if self.count < 2.0 {
            return;
        }
        for (i, xi) in x.iter_mut().enumerate() {
            let var = self.m2[i] / (self.count - 1.0);
            *xi = (*xi - self.mean[i]) / (var.sqrt() + 1e-6);
        }
    }

    /// Observes then whitens (the training-time path).
    pub fn observe_transform(&mut self, x: &mut [f64]) {
        self.observe(x);
        self.transform(x);
    }

    /// Raw statistics for serialization: `(mean, m2, count)`.
    pub fn raw(&self) -> (&[f64], &[f64], f64) {
        (&self.mean, &self.m2, self.count)
    }

    /// Rebuilds from serialized statistics.
    pub fn from_raw(mean: Vec<f64>, m2: Vec<f64>, count: f64) -> Self {
        assert_eq!(mean.len(), m2.len());
        Self { mean, m2, count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn whitens_wildly_scaled_features_to_unit_scale() {
        let mut w = Whitener::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        // Feature 0 in the millions, feature 1 in thousandths.
        for _ in 0..1000 {
            w.observe(&[
                1e6 + 1e5 * rng.gen_range(-1.0..1.0),
                1e-3 * rng.gen_range(-1.0..1.0),
            ]);
        }
        let mut x = [1e6, 0.0];
        w.transform(&mut x);
        assert!(x[0].abs() < 3.0, "feature 0 still unscaled: {}", x[0]);
        assert!(x[1].abs() < 3.0, "feature 1 still unscaled: {}", x[1]);
    }

    #[test]
    fn identity_before_enough_observations() {
        let w = Whitener::new(3);
        let mut x = [5.0, -2.0, 7.0];
        w.transform(&mut x);
        assert_eq!(x, [5.0, -2.0, 7.0]);
    }

    #[test]
    fn mean_and_variance_match_direct_computation() {
        let data = [[1.0, 10.0], [2.0, 20.0], [3.0, 30.0], [4.0, 40.0]];
        let mut w = Whitener::new(2);
        for d in &data {
            w.observe(d);
        }
        let (mean, m2, count) = w.raw();
        assert_eq!(count, 4.0);
        assert!((mean[0] - 2.5).abs() < 1e-12);
        assert!((mean[1] - 25.0).abs() < 1e-12);
        // Sample variance of [1,2,3,4] is 5/3.
        assert!((m2[0] / 3.0 - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn round_trips_through_raw() {
        let mut w = Whitener::new(1);
        for v in [1.0, 4.0, 9.0] {
            w.observe(&[v]);
        }
        let (mean, m2, count) = w.raw();
        let w2 = Whitener::from_raw(mean.to_vec(), m2.to_vec(), count);
        let mut a = [6.0];
        let mut b = [6.0];
        w.transform(&mut a);
        w2.transform(&mut b);
        assert_eq!(a, b);
    }
}
