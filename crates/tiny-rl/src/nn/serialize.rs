//! Plain-text (de)serialization of networks and whiteners.
//!
//! A tiny versioned line format keeps the library free of serde while
//! making checkpoints diffable and greppable. Floats are written with
//! maximum precision (`{:.17e}`) so round trips are exact.

use super::dense::Dense;
use super::mlp::Mlp;
use super::norm::Whitener;
use std::fmt::Write as _;

/// Deserialization error: message plus (best-effort) line number.
#[derive(Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
    }
}

/// Serializes an MLP.
pub fn mlp_to_string(net: &Mlp) -> String {
    let mut s = String::new();
    writeln!(s, "tinyrl-mlp v1").unwrap();
    writeln!(s, "layers {}", net.layers().len()).unwrap();
    for layer in net.layers() {
        writeln!(s, "layer {} {}", layer.input, layer.output).unwrap();
        write_floats(&mut s, "w", &layer.w);
        write_floats(&mut s, "b", &layer.b);
    }
    s
}

/// Deserializes an MLP written by [`mlp_to_string`].
pub fn mlp_from_str(text: &str) -> Result<Mlp, ParseError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| err("empty input"))?;
    if header.trim() != "tinyrl-mlp v1" {
        return Err(err(format!("bad header: {header:?}")));
    }
    let n: usize = parse_tagged(lines.next(), "layers")?;
    let mut layers = Vec::with_capacity(n);
    for i in 0..n {
        let spec = lines
            .next()
            .ok_or_else(|| err(format!("missing layer {i}")))?;
        let mut parts = spec.split_whitespace();
        if parts.next() != Some("layer") {
            return Err(err(format!("expected 'layer', got {spec:?}")));
        }
        let input: usize = parts
            .next()
            .ok_or_else(|| err("missing input dim"))?
            .parse()
            .map_err(|e| err(format!("input dim: {e}")))?;
        let output: usize = parts
            .next()
            .ok_or_else(|| err("missing output dim"))?
            .parse()
            .map_err(|e| err(format!("output dim: {e}")))?;
        let w = read_floats(lines.next(), "w", input * output)?;
        let b = read_floats(lines.next(), "b", output)?;
        layers.push(Dense {
            input,
            output,
            w,
            b,
        });
    }
    Ok(Mlp::from_layers(layers))
}

/// Serializes a whitener.
pub fn whitener_to_string(w: &Whitener) -> String {
    let (mean, m2, count) = w.raw();
    let mut s = String::new();
    writeln!(s, "tinyrl-whitener v1").unwrap();
    writeln!(s, "dim {}", mean.len()).unwrap();
    writeln!(s, "count {count:.17e}").unwrap();
    write_floats(&mut s, "mean", mean);
    write_floats(&mut s, "m2", m2);
    s
}

/// Deserializes a whitener written by [`whitener_to_string`].
pub fn whitener_from_str(text: &str) -> Result<Whitener, ParseError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| err("empty input"))?;
    if header.trim() != "tinyrl-whitener v1" {
        return Err(err(format!("bad header: {header:?}")));
    }
    let dim: usize = parse_tagged(lines.next(), "dim")?;
    let count: f64 = parse_tagged(lines.next(), "count")?;
    let mean = read_floats(lines.next(), "mean", dim)?;
    let m2 = read_floats(lines.next(), "m2", dim)?;
    Ok(Whitener::from_raw(mean, m2, count))
}

fn write_floats(s: &mut String, tag: &str, values: &[f64]) {
    write!(s, "{tag}").unwrap();
    for v in values {
        write!(s, " {v:.17e}").unwrap();
    }
    writeln!(s).unwrap();
}

fn read_floats(line: Option<&str>, tag: &str, expect: usize) -> Result<Vec<f64>, ParseError> {
    let line = line.ok_or_else(|| err(format!("missing '{tag}' line")))?;
    let mut parts = line.split_whitespace();
    if parts.next() != Some(tag) {
        return Err(err(format!("expected '{tag}' line, got {line:?}")));
    }
    let values: Result<Vec<f64>, _> = parts.map(str::parse).collect();
    let values = values.map_err(|e| err(format!("{tag}: {e}")))?;
    if values.len() != expect {
        return Err(err(format!(
            "{tag}: expected {expect} values, got {}",
            values.len()
        )));
    }
    Ok(values)
}

fn parse_tagged<T: std::str::FromStr>(line: Option<&str>, tag: &str) -> Result<T, ParseError>
where
    T::Err: std::fmt::Display,
{
    let line = line.ok_or_else(|| err(format!("missing '{tag}' line")))?;
    let mut parts = line.split_whitespace();
    if parts.next() != Some(tag) {
        return Err(err(format!("expected '{tag}' line, got {line:?}")));
    }
    parts
        .next()
        .ok_or_else(|| err(format!("missing value after '{tag}'")))?
        .parse()
        .map_err(|e| err(format!("{tag}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_round_trips_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Mlp::new(&[4, 25, 9], &mut rng);
        let text = mlp_to_string(&net);
        let back = mlp_from_str(&text).unwrap();
        assert_eq!(net.layers().len(), back.layers().len());
        for (a, b) in net.layers().iter().zip(back.layers()) {
            assert_eq!(a.w, b.w);
            assert_eq!(a.b, b.b);
        }
        let x = [0.1, -0.2, 0.3, -0.4];
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn whitener_round_trips_exactly() {
        let mut w = Whitener::new(3);
        for v in [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]] {
            w.observe(&v);
        }
        let back = whitener_from_str(&whitener_to_string(&w)).unwrap();
        let mut a = [2.0, 2.0, 2.0];
        let mut b = [2.0, 2.0, 2.0];
        w.transform(&mut a);
        back.transform(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(mlp_from_str("").is_err());
        assert!(mlp_from_str("wrong header\n").is_err());
        assert!(mlp_from_str("tinyrl-mlp v1\nlayers 1\nlayer 2 2\nw 1 2 3\nb 0 0\n").is_err());
        assert!(whitener_from_str("tinyrl-whitener v1\ndim x\n").is_err());
    }
}
