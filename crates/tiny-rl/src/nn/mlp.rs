//! Multi-layer perceptrons: tanh hidden layers, linear output.
//!
//! This matches the paper's network shapes exactly: Agent-Cube uses a
//! two-layer FNN with 25 tanh hidden units and a 9-way linear head;
//! Agent-Point the same with a `K`-way head.

use super::dense::{Dense, DenseGrad};
use rand::rngs::StdRng;

/// An MLP with tanh activations on all hidden layers and a linear output.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Per-layer gradient buffers for an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpGrad {
    /// One gradient buffer per layer.
    pub layers: Vec<DenseGrad>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[16, 25, 9]`.
    /// Requires at least an input and an output size.
    pub fn new(sizes: &[usize], rng: &mut StdRng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Dense::xavier(w[0], w[1], rng))
            .collect();
        Self { layers }
    }

    /// Constructs from explicit layers (deserialization).
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty());
        Self { layers }
    }

    /// The layers (serialization).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].output
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(&h);
            if i != last {
                for v in &mut y {
                    *v = v.tanh();
                }
            }
            h = y;
        }
        h
    }

    /// Forward pass keeping every layer's *post-activation* output
    /// (`activations[0]` is the input itself); needed for backprop.
    pub fn forward_trace(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(acts.last().expect("non-empty"));
            if i != last {
                for v in &mut y {
                    *v = v.tanh();
                }
            }
            acts.push(y);
        }
        acts
    }

    /// Backpropagates `d_out` (gradient w.r.t. the network output) through
    /// the trace produced by [`Mlp::forward_trace`], accumulating into
    /// `grad`.
    pub fn backward(&self, acts: &[Vec<f64>], d_out: &[f64], grad: &mut MlpGrad) {
        debug_assert_eq!(acts.len(), self.layers.len() + 1);
        let mut dy = d_out.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            // acts[i] is the layer input; acts[i+1] its post-activation output.
            let dx = grad.layers[i].accumulate(layer, &acts[i], &dy);
            dy = dx;
            if i > 0 {
                // Undo the tanh of the previous layer: d tanh(z) = 1 - y².
                for (d, y) in dy.iter_mut().zip(&acts[i]) {
                    *d *= 1.0 - y * y;
                }
            }
        }
    }

    /// Mutable access for the optimizer.
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Zeroed gradients matching this network.
    pub fn zero_grad(&self) -> MlpGrad {
        MlpGrad {
            layers: self.layers.iter().map(DenseGrad::zeros_like).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Mlp::new(&[16, 25, 9], &mut rng);
        assert_eq!(net.input_dim(), 16);
        assert_eq!(net.output_dim(), 9);
        assert_eq!(net.param_count(), 16 * 25 + 25 + 25 * 9 + 9);
        assert_eq!(net.forward(&[0.1; 16]).len(), 9);
    }

    #[test]
    fn forward_trace_matches_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Mlp::new(&[4, 8, 3], &mut rng);
        let x = [0.5, -0.25, 1.0, 0.0];
        let acts = net.forward_trace(&x);
        assert_eq!(acts.len(), 3);
        assert_eq!(acts.last().unwrap(), &net.forward(&x));
    }

    /// Numerical gradient check: the backprop gradient of a scalar loss
    /// must match finite differences on every parameter of a small net.
    #[test]
    fn backprop_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Mlp::new(&[3, 5, 2], &mut rng);
        let x = [0.3, -0.7, 0.9];
        let target = [0.5, -1.0];

        let loss = |net: &Mlp| -> f64 {
            let y = net.forward(&x);
            y.iter()
                .zip(&target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };

        // Analytic gradient.
        let acts = net.forward_trace(&x);
        let y = acts.last().unwrap().clone();
        let d_out: Vec<f64> = y.iter().zip(&target).map(|(a, b)| 2.0 * (a - b)).collect();
        let mut grad = net.zero_grad();
        net.backward(&acts, &d_out, &mut grad);

        // Compare against central finite differences.
        let eps = 1e-6;
        for l in 0..net.layers().len() {
            for wi in 0..net.layers()[l].w.len() {
                let orig = net.layers()[l].w[wi];
                net.layers_mut()[l].w[wi] = orig + eps;
                let up = loss(&net);
                net.layers_mut()[l].w[wi] = orig - eps;
                let down = loss(&net);
                net.layers_mut()[l].w[wi] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grad.layers[l].w[wi];
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "layer {l} w[{wi}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            for bi in 0..net.layers()[l].b.len() {
                let orig = net.layers()[l].b[bi];
                net.layers_mut()[l].b[bi] = orig + eps;
                let up = loss(&net);
                net.layers_mut()[l].b[bi] = orig - eps;
                let down = loss(&net);
                net.layers_mut()[l].b[bi] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grad.layers[l].b[bi];
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "layer {l} b[{bi}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "need at least input and output")]
    fn rejects_degenerate_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = Mlp::new(&[3], &mut rng);
    }
}
