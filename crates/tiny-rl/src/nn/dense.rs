//! Fully-connected layers.

use rand::rngs::StdRng;
use rand::Rng;

/// A dense layer `y = W·x + b` with `W` stored row-major (`out × in`).
#[derive(Debug, Clone)]
pub struct Dense {
    /// Input dimension.
    pub input: usize,
    /// Output dimension.
    pub output: usize,
    /// Weights, row-major: `w[o * input + i]`.
    pub w: Vec<f64>,
    /// Biases, one per output.
    pub b: Vec<f64>,
}

impl Dense {
    /// Xavier/Glorot-uniform initialization, appropriate for the tanh
    /// hidden layers the paper's FNNs use.
    pub fn xavier(input: usize, output: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (input + output) as f64).sqrt();
        let w = (0..input * output)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Self {
            input,
            output,
            w,
            b: vec![0.0; output],
        }
    }

    /// Forward pass into a caller-provided buffer (avoids allocation in
    /// hot training loops).
    pub fn forward_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.input);
        debug_assert_eq!(y.len(), self.output);
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.input..(o + 1) * self.input];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            *yo = acc;
        }
    }

    /// Convenience allocating forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.output];
        self.forward_into(x, &mut y);
        y
    }

    /// Number of parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// Gradient buffers matching a [`Dense`] layer's shape.
#[derive(Debug, Clone)]
pub struct DenseGrad {
    /// Weight gradients, same layout as [`Dense::w`].
    pub w: Vec<f64>,
    /// Bias gradients.
    pub b: Vec<f64>,
}

impl DenseGrad {
    /// Zeroed gradients for `layer`.
    pub fn zeros_like(layer: &Dense) -> Self {
        Self {
            w: vec![0.0; layer.w.len()],
            b: vec![0.0; layer.b.len()],
        }
    }

    /// Resets all gradients to zero (buffer reuse between batches).
    pub fn zero(&mut self) {
        self.w.iter_mut().for_each(|g| *g = 0.0);
        self.b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Accumulates this layer's gradients for one sample and returns the
    /// gradient w.r.t. the layer input.
    ///
    /// `x` is the layer input, `dy` the gradient w.r.t. the layer output.
    pub fn accumulate(&mut self, layer: &Dense, x: &[f64], dy: &[f64]) -> Vec<f64> {
        let mut dx = vec![0.0; layer.input];
        for (o, &g) in dy.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            self.b[o] += g;
            let row = o * layer.input;
            for i in 0..layer.input {
                self.w[row + i] += g * x[i];
                dx[i] += g * layer.w[row + i];
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_computes_affine_map() {
        let layer = Dense {
            input: 2,
            output: 2,
            w: vec![1.0, 2.0, 3.0, 4.0],
            b: vec![0.5, -0.5],
        };
        let y = layer.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn xavier_initialization_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Dense::xavier(10, 5, &mut rng);
        let limit = (6.0 / 15.0f64).sqrt();
        assert!(a.w.iter().all(|w| w.abs() <= limit));
        assert!(a.b.iter().all(|&b| b == 0.0));
        let mut rng2 = StdRng::seed_from_u64(1);
        let b = Dense::xavier(10, 5, &mut rng2);
        assert_eq!(a.w, b.w);
    }

    #[test]
    fn gradient_accumulation_matches_manual_computation() {
        let layer = Dense {
            input: 2,
            output: 1,
            w: vec![2.0, -1.0],
            b: vec![0.0],
        };
        let mut grad = DenseGrad::zeros_like(&layer);
        // y = 2x0 - x1; dL/dy = 1 => dW = x, db = 1, dx = W.
        let dx = grad.accumulate(&layer, &[3.0, 4.0], &[1.0]);
        assert_eq!(grad.w, vec![3.0, 4.0]);
        assert_eq!(grad.b, vec![1.0]);
        assert_eq!(dx, vec![2.0, -1.0]);
    }

    #[test]
    fn zero_resets_buffers() {
        let layer = Dense {
            input: 1,
            output: 1,
            w: vec![1.0],
            b: vec![1.0],
        };
        let mut grad = DenseGrad::zeros_like(&layer);
        grad.accumulate(&layer, &[1.0], &[1.0]);
        grad.zero();
        assert_eq!(grad.w, vec![0.0]);
        assert_eq!(grad.b, vec![0.0]);
    }
}
