//! Minimal neural-network building blocks: dense layers, tanh MLPs, Adam,
//! online feature whitening, and text serialization. Everything is written
//! from scratch on `Vec<f64>` — the networks here are tiny (tens of units),
//! so clarity and determinism beat BLAS.

pub mod adam;
pub mod dense;
pub mod mlp;
pub mod norm;
pub mod serialize;

pub use adam::Adam;
pub use dense::{Dense, DenseGrad};
pub use mlp::{Mlp, MlpGrad};
pub use norm::Whitener;
