//! Agent-Cube: the MDP for choosing an octree cube (§IV-A).
//!
//! The agent walks the octree top-down from a sampled start node. At each
//! node it observes the data/query distribution of the 8 children (Eq. 4)
//! and either descends into one of them (actions 0–7) or stops and hands
//! the current cube to Agent-Point (action 8, the paper's `a = 9`).

use crate::config::Rl4QdtsConfig;
use traj_index::{CubeIndex, NodeId};

/// Index of the "stop here" action.
pub const STOP_ACTION: usize = 8;

/// The Eq. 4 state at `node`: for each of the 8 children, its share of the
/// parent's trajectories (`M_child / M_B`) and of the parent's queries
/// (`Q_child / Q_B`), interleaved as `[m1, q1, m2, q2, …]`.
/// Returns `None` for leaves (no children to observe — traversal must stop).
pub fn cube_state<I: CubeIndex + ?Sized>(tree: &I, node: NodeId) -> Option<Vec<f64>> {
    let stats = tree.child_stats(node)?;
    let m_total = tree.traj_count(node).max(1) as f64;
    let q_total = tree.query_count(node).max(1) as f64;
    let mut s = Vec::with_capacity(Rl4QdtsConfig::CUBE_STATE_DIM);
    for (m, q) in stats {
        s.push(m as f64 / m_total);
        s.push(q as f64 / q_total);
    }
    Some(s)
}

/// Valid actions at `node`: descending into child `k` is allowed only when
/// that child contains at least one trajectory (the paper's action-space
/// constraint); stopping is always allowed.
pub fn cube_mask<I: CubeIndex + ?Sized>(tree: &I, node: NodeId) -> [bool; 9] {
    let mut mask = [false; 9];
    mask[STOP_ACTION] = true;
    if let Some(stats) = tree.child_stats(node) {
        for (k, (m, _)) in stats.iter().enumerate() {
            mask[k] = *m > 0;
        }
    }
    mask
}

/// True when the traversal must stop at `node` regardless of the policy:
/// the node is a leaf, or the depth cap `E` is reached (§IV-D,
/// enhancement 1).
pub fn forced_stop<I: CubeIndex + ?Sized>(tree: &I, node: NodeId, max_depth: u32) -> bool {
    tree.is_leaf(node) || tree.depth(node) >= max_depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_index::{Octree, OctreeConfig};
    use trajectory::gen::{generate, DatasetSpec, Scale};
    use trajectory::Cube;

    fn tree() -> Octree {
        let store = generate(&DatasetSpec::geolife(Scale::Smoke), 3).to_store();
        let mut t = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 6,
                leaf_capacity: 32,
            },
        );
        let bc = store.bounding_cube();
        let (cx, cy, ct) = bc.center();
        t.assign_queries(&[Cube::centered(cx, cy, ct, 1000.0, 1000.0, 10_000.0)]);
        t
    }

    #[test]
    fn state_has_16_normalized_features() {
        let t = tree();
        let s = cube_state(&t, t.root()).expect("root has children");
        assert_eq!(s.len(), 16);
        assert!(s.iter().all(|&v| (0.0..=8.0).contains(&v)), "{s:?}");
        // Trajectory shares sum to ≥ 1 (children double-count crossers)
        // but each individual share is ≤ 1 plus rounding.
        let m_sum: f64 = s.iter().step_by(2).sum();
        assert!(m_sum >= 0.99, "m shares sum {m_sum}");
    }

    #[test]
    fn leaf_state_is_none() {
        let t = tree();
        // Find any leaf.
        let leaf = (0..t.len() as NodeId)
            .find(|&id| t.node(id).is_leaf())
            .unwrap();
        assert!(cube_state(&t, leaf).is_none());
        assert!(forced_stop(&t, leaf, 99));
    }

    #[test]
    fn mask_allows_stop_and_populated_children_only() {
        let t = tree();
        let mask = cube_mask(&t, t.root());
        assert!(mask[STOP_ACTION]);
        let stats = t.child_stats(t.root()).unwrap();
        for k in 0..8 {
            assert_eq!(mask[k], stats[k].0 > 0, "child {k}");
        }
    }

    #[test]
    fn depth_cap_forces_stop() {
        let t = tree();
        assert!(forced_stop(&t, t.root(), 1));
        assert!(!forced_stop(&t, t.root(), 6));
    }
}
