//! The RL4QDTS algorithm (Algorithm 1–3): collective, query-aware
//! simplification of a trajectory database with two cooperating agents.

use crate::config::{PolicyVariant, Rl4QdtsConfig};
use crate::cube_agent::{cube_mask, cube_state, forced_stop, STOP_ACTION};
use crate::point_agent::point_state;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tiny_rl::Dqn;
use traj_index::{CubeIndex, NodeId};
use traj_query::QueryEngine;
use trajectory::{AsColumns, Cube, Simplification, TrajectoryDb};

/// The RL4QDTS simplifier: a trained Agent-Cube and Agent-Point pair plus
/// their hyperparameters. Produced by [`crate::trainer::train`] (or
/// [`Rl4Qdts::untrained`] for testing) and applied with
/// [`Rl4Qdts::simplify`].
#[derive(Debug, Clone)]
pub struct Rl4Qdts {
    /// Hyperparameters (must match between training and inference).
    pub config: Rl4QdtsConfig,
    pub(crate) cube_agent: Dqn,
    pub(crate) point_agent: Dqn,
}

impl Rl4Qdts {
    /// An untrained instance (random policies). Useful for tests and as the
    /// starting point of training.
    pub fn untrained(config: Rl4QdtsConfig, seed: u64) -> Self {
        let cube_agent = Dqn::new(
            &[
                Rl4QdtsConfig::CUBE_STATE_DIM,
                25,
                Rl4QdtsConfig::CUBE_ACTION_DIM,
            ],
            config.dqn,
            seed,
        );
        let point_agent = Dqn::new(
            &[config.point_state_dim(), 25, config.k],
            config.dqn,
            seed ^ 0x9e3779b97f4a7c15,
        );
        Self {
            config,
            cube_agent,
            point_agent,
        }
    }

    /// Rebuilds from deserialized agents (see [`crate::model_io`]).
    pub fn from_agents(config: Rl4QdtsConfig, cube_agent: Dqn, point_agent: Dqn) -> Self {
        assert_eq!(cube_agent.state_dim(), Rl4QdtsConfig::CUBE_STATE_DIM);
        assert_eq!(point_agent.state_dim(), config.point_state_dim());
        Self {
            config,
            cube_agent,
            point_agent,
        }
    }

    /// Access to the trained agents (serialization).
    pub fn agents(&self) -> (&Dqn, &Dqn) {
        (&self.cube_agent, &self.point_agent)
    }

    /// Algorithm 1 with the full method. `state_queries` is the synthetic
    /// range-query workload that defines the octree's `Q_B` statistics and
    /// the start-cube sampling distribution — the same role it plays during
    /// training. `seed` drives the (paper-noted) random start-cube
    /// sampling; the experiments average over several seeds.
    pub fn simplify(
        &self,
        db: &TrajectoryDb,
        budget: usize,
        state_queries: &[Cube],
        seed: u64,
    ) -> Simplification {
        self.simplify_variant(db, budget, state_queries, seed, PolicyVariant::FULL)
    }

    /// Algorithm 1 parameterized by the ablation variant (Table II).
    /// Builds a [`QueryEngine`] with the configured index backend
    /// ([`crate::config::IndexKind`]) and runs the insertion loop against
    /// its shared cube hierarchy.
    pub fn simplify_variant(
        &self,
        db: &TrajectoryDb,
        budget: usize,
        state_queries: &[Cube],
        seed: u64,
        variant: PolicyVariant,
    ) -> Simplification {
        let mut engine = QueryEngine::over(db, self.config.engine_config());
        engine.assign_queries(state_queries);
        let tree = engine
            .cube_index()
            .expect("rl4qdts engines are always indexed");
        self.simplify_with_index(engine.store(), budget, tree, seed, variant)
    }

    /// Algorithm 1 against an already-built, query-assigned index over the
    /// columnar `store` (owned or mapped — anything [`AsColumns`]).
    pub fn simplify_with_index<S: AsColumns + ?Sized, I: CubeIndex + ?Sized>(
        &self,
        store: &S,
        budget: usize,
        tree: &I,
        seed: u64,
        variant: PolicyVariant,
    ) -> Simplification {
        let mut rng = StdRng::seed_from_u64(seed);

        let mut simp = Simplification::most_simplified_store(store);
        let total_points = store.total_points();
        let budget = budget.clamp(simp.total_points(), total_points);

        // Inference clones so `&self` stays shareable and runs independent.
        let mut cube_agent = self.cube_agent.clone();
        let mut point_agent = self.point_agent.clone();
        cube_agent.freeze();
        point_agent.freeze();

        let mut consecutive_misses = 0usize;
        const MAX_MISSES: usize = 64;

        while simp.total_points() < budget {
            // The full method samples the start cube by the *query*
            // distribution and refines with Agent-Cube; the "w/o
            // Agent-Cube" ablation replaces the whole cube stage with
            // *data*-distribution sampling (§V-B(3)).
            let node = if variant.use_cube_agent {
                let start = tree.sample_start(self.config.start_level, &mut rng);
                self.descend(tree, start, &mut cube_agent)
            } else {
                tree.sample_start_by_data(self.config.start_level, &mut rng)
            };
            let inserted = match point_state(store, &simp, tree, node, &self.config) {
                Some(ps) => {
                    let action = if variant.use_point_agent {
                        let ws = point_agent.whiten(&ps.state, false);
                        point_agent.greedy_action(&ws, &ps.mask)
                    } else {
                        0 // maximum-v_s candidate
                    };
                    let c = ps.candidates[action.min(ps.candidates.len() - 1)];
                    simp.insert(c.point.traj, c.point.idx)
                }
                None => false,
            };
            if inserted {
                consecutive_misses = 0;
            } else {
                consecutive_misses += 1;
                if consecutive_misses >= MAX_MISSES {
                    // The sampled region is exhausted; fill the remaining
                    // budget deterministically so the contract (exactly
                    // `budget` points when available) holds.
                    fill_remaining(store, &mut simp, budget);
                    break;
                }
            }
        }
        simp
    }

    /// Algorithm 2: Agent-Cube's greedy top-down traversal from `node`.
    fn descend<I: CubeIndex + ?Sized>(
        &self,
        tree: &I,
        mut node: NodeId,
        agent: &mut Dqn,
    ) -> NodeId {
        loop {
            if forced_stop(tree, node, self.config.max_depth) {
                return node;
            }
            let Some(raw) = cube_state(tree, node) else {
                return node;
            };
            let state = agent.whiten(&raw, false);
            let mask = cube_mask(tree, node);
            let action = agent.greedy_action(&state, &mask);
            if action == STOP_ACTION {
                return node;
            }
            let children = tree.children(node).expect("non-leaf");
            node = children[action];
        }
    }
}

/// Deterministically inserts not-yet-kept points (highest-SED first per
/// trajectory, round-robin) until `budget` is reached. Only used as the
/// exhaustion fallback; normal operation inserts via the agents.
fn fill_remaining<S: AsColumns + ?Sized>(store: &S, simp: &mut Simplification, budget: usize) {
    use crate::point_agent::point_value;
    use traj_index::PointRef;
    let mut total = simp.total_points();
    if total >= budget {
        return;
    }
    // One O(N log N) pass: rank all remaining points by their current
    // v_s and insert the best until the budget is met. Rankings are not
    // refreshed as anchors change — acceptable for the rare exhaustion
    // fallback, and it keeps the worst case out of O(N·W).
    let mut candidates: Vec<(f64, PointRef)> = Vec::new();
    for (traj, v) in store.iter() {
        for idx in 1..v.len().saturating_sub(1) as u32 {
            let r = PointRef { traj, idx };
            if let Some((vs, _)) = point_value(store, simp, r) {
                candidates.push((vs, r));
            }
        }
    }
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (_, r) in candidates {
        if total >= budget {
            break;
        }
        if simp.insert(r.traj, r.idx) {
            total += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexKind;
    use traj_query::{range_workload, QueryDistribution, RangeWorkloadSpec};
    use trajectory::gen::{generate, DatasetSpec, Scale};

    fn setup() -> (TrajectoryDb, Vec<Cube>, Rl4QdtsConfig) {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 17);
        let cfg = Rl4QdtsConfig::scaled_to(&db).with_delta(20);
        let spec = RangeWorkloadSpec {
            count: 20,
            spatial_extent: 3_000.0,
            temporal_extent: 86_400.0,
            dist: QueryDistribution::Data,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let queries = range_workload(&db, &spec, &mut rng);
        (db, queries, cfg)
    }

    #[test]
    fn untrained_model_meets_budget_exactly() {
        let (db, queries, cfg) = setup();
        let model = Rl4Qdts::untrained(cfg, 1);
        let budget = db.total_points() / 20;
        let simp = model.simplify(&db, budget, &queries, 7);
        assert_eq!(simp.total_points(), budget.max(2 * db.len()));
    }

    #[test]
    fn endpoints_always_present() {
        let (db, queries, cfg) = setup();
        let model = Rl4Qdts::untrained(cfg, 2);
        let simp = model.simplify(&db, db.total_points() / 30, &queries, 3);
        for (id, t) in db.iter() {
            assert!(simp.contains(id, 0));
            assert!(simp.contains(id, t.len() as u32 - 1));
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let (db, queries, cfg) = setup();
        let model = Rl4Qdts::untrained(cfg, 3);
        let budget = db.total_points() / 25;
        let a = model.simplify(&db, budget, &queries, 11);
        let b = model.simplify(&db, budget, &queries, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn budget_above_total_keeps_everything() {
        let (db, queries, cfg) = setup();
        let model = Rl4Qdts::untrained(cfg, 4);
        let simp = model.simplify(&db, usize::MAX, &queries, 1);
        assert_eq!(simp.total_points(), db.total_points());
    }

    #[test]
    fn all_ablation_variants_run() {
        let (db, queries, cfg) = setup();
        let model = Rl4Qdts::untrained(cfg, 5);
        let budget = db.total_points() / 20;
        for v in [
            PolicyVariant::FULL,
            PolicyVariant::NO_CUBE,
            PolicyVariant::NO_POINT,
            PolicyVariant::NEITHER,
        ] {
            let simp = model.simplify_variant(&db, budget, &queries, 9, v);
            assert_eq!(
                simp.total_points(),
                budget.max(2 * db.len()),
                "{}",
                v.label()
            );
        }
    }

    #[test]
    fn fill_remaining_completes_budgets() {
        let (db, _, _) = setup();
        let store = db.to_store();
        let mut simp = Simplification::most_simplified_store(&store);
        let budget = simp.total_points() + 17;
        fill_remaining(&store, &mut simp, budget);
        assert_eq!(simp.total_points(), budget);
    }

    #[test]
    fn median_kdtree_index_works_end_to_end() {
        let (db, queries, cfg) = setup();
        let cfg = cfg.with_index(IndexKind::MedianKdTree);
        let model = Rl4Qdts::untrained(cfg, 7);
        let budget = db.total_points() / 20;
        let simp = model.simplify(&db, budget, &queries, 3);
        assert_eq!(simp.total_points(), budget.max(2 * db.len()));
        // Determinism holds for the alternative index too.
        assert_eq!(simp, model.simplify(&db, budget, &queries, 3));
    }

    #[test]
    fn octree_and_kdtree_make_different_choices() {
        let (db, queries, cfg) = setup();
        let model_oct = Rl4Qdts::untrained(cfg, 7);
        let model_kd = Rl4Qdts::untrained(cfg.with_index(IndexKind::MedianKdTree), 7);
        let budget = db.total_points() / 20;
        let a = model_oct.simplify(&db, budget, &queries, 3);
        let b = model_kd.simplify(&db, budget, &queries, 3);
        assert_eq!(a.total_points(), b.total_points());
        assert_ne!(
            a, b,
            "different partitionings should select different points"
        );
    }

    #[test]
    fn empty_workload_still_works() {
        let (db, _, cfg) = setup();
        let model = Rl4Qdts::untrained(cfg, 6);
        let budget = db.total_points() / 25;
        let simp = model.simplify(&db, budget, &[], 2);
        assert_eq!(simp.total_points(), budget.max(2 * db.len()));
    }
}
