//! Agent-Point: the MDP for choosing a point inside a cube (§IV-B).
//!
//! Given the cube Agent-Cube chose, each trajectory crossing the cube
//! nominates its not-yet-inserted point with the largest *spatial* value
//! `v_s` (Eq. 6–7: the SED of the point w.r.t. its current anchor
//! segment). The state is the `K` largest nominations' `(v_s, v_t)` pairs
//! (Eq. 8); action `k` inserts the `k`-th nomination into `D'`.

use crate::config::Rl4QdtsConfig;
use traj_index::{CubeIndex, NodeId, PointRef};
use trajectory::{error::sed, geom, AsColumns, Simplification};

/// One nominated insertion candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The point to insert.
    pub point: PointRef,
    /// Spatial feature `v_s`: SED w.r.t. the current anchor segment.
    pub vs: f64,
    /// Temporal feature `v_t`: |t − t(closest point on the anchor)|.
    pub vt: f64,
}

/// The constructed Agent-Point state: `K` interleaved `(v_s, v_t)` pairs
/// (zero-padded) plus the concrete candidates backing each action.
#[derive(Debug, Clone)]
pub struct PointState {
    /// Feature vector of length `2K`.
    pub state: Vec<f64>,
    /// Valid-action mask of length `K`.
    pub mask: Vec<bool>,
    /// The candidates (≤ K, ordered by descending `v_s`).
    pub candidates: Vec<Candidate>,
}

/// Computes `(v_s, v_t)` (Eq. 6) of point `r` w.r.t. its *current* anchor
/// segment in the simplified database. Returns `None` when the point is
/// already inserted (kept points are excluded from the state definition).
/// Point lookups are column reads on the store's zero-copy view.
pub fn point_value<S: AsColumns + ?Sized>(
    store: &S,
    simp: &Simplification,
    r: PointRef,
) -> Option<(f64, f64)> {
    let (s, e) = simp.anchor(r.traj, r.idx);
    if s == e {
        return None; // already in D'
    }
    let v = store.view(r.traj);
    let ps = v.point(s as usize);
    let pe = v.point(e as usize);
    let p = v.point(r.idx as usize);
    let vs = sed(&ps, &pe, &p);
    let vt = (p.t - geom::closest_point_time(&ps, &pe, &p)).abs();
    Some((vs, vt))
}

/// Builds the Agent-Point state for `cube` (Eq. 6–8).
///
/// Per trajectory crossing the cube, only the maximum-`v_s` point is
/// nominated (Eq. 7); the global state takes the `K` nominations with the
/// largest `v_s` (Eq. 8). Returns `None` when the cube holds no insertable
/// point at all.
pub fn point_state<S: AsColumns + ?Sized, I: CubeIndex + ?Sized>(
    store: &S,
    simp: &Simplification,
    tree: &I,
    cube: NodeId,
    config: &Rl4QdtsConfig,
) -> Option<PointState> {
    let k = config.k;
    let mut nominations: Vec<Candidate> = Vec::new();
    for (traj, idxs) in tree.points_by_trajectory(cube) {
        let mut best: Option<Candidate> = None;
        for idx in idxs {
            let r = PointRef { traj, idx };
            if let Some((vs, vt)) = point_value(store, simp, r) {
                if best.is_none_or(|b| vs > b.vs) {
                    best = Some(Candidate { point: r, vs, vt });
                }
            }
        }
        if let Some(c) = best {
            nominations.push(c);
        }
    }
    if nominations.is_empty() {
        return None;
    }
    nominations.sort_by(|a, b| {
        b.vs.partial_cmp(&a.vs)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.point.traj.cmp(&b.point.traj))
    });
    nominations.truncate(k);

    let mut state = Vec::with_capacity(2 * k);
    let mut mask = vec![false; k];
    for (i, c) in nominations.iter().enumerate() {
        state.push(c.vs);
        state.push(c.vt);
        mask[i] = true;
    }
    state.resize(2 * k, 0.0);
    Some(PointState {
        state,
        mask,
        candidates: nominations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_index::{Octree, OctreeConfig};
    use trajectory::{Point, PointStore, Trajectory, TrajectoryDb};

    /// Two trajectories; t1 has a large detour at index 2, t2 a small one.
    fn setup() -> (PointStore, Octree, Simplification) {
        let t1 = Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(10.0, 0.0, 10.0),
            Point::new(20.0, 90.0, 20.0),
            Point::new(30.0, 0.0, 30.0),
            Point::new(40.0, 0.0, 40.0),
        ])
        .unwrap();
        let t2 = Trajectory::new(vec![
            Point::new(0.0, 50.0, 0.0),
            Point::new(10.0, 58.0, 10.0),
            Point::new(20.0, 50.0, 20.0),
        ])
        .unwrap();
        let store = TrajectoryDb::new(vec![t1, t2]).to_store();
        let tree = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 3,
                leaf_capacity: 100,
            },
        );
        let simp = Simplification::most_simplified_store(&store);
        (store, tree, simp)
    }

    #[test]
    fn point_value_measures_sed_to_anchor() {
        let (db, _, simp) = setup();
        // t1 point 2: anchor (0, 4); sync at t=20 is (20, 0); actual (20, 90).
        let (vs, vt) = point_value(&db, &simp, PointRef { traj: 0, idx: 2 }).unwrap();
        assert!((vs - 90.0).abs() < 1e-9);
        assert!(vt >= 0.0);
        // Kept endpoints yield no value.
        assert!(point_value(&db, &simp, PointRef { traj: 0, idx: 0 }).is_none());
    }

    #[test]
    fn state_ranks_candidates_by_vs() {
        let (db, tree, simp) = setup();
        let cfg = Rl4QdtsConfig::paper().with_k(2);
        let ps = point_state(&db, &simp, &tree, tree.root(), &cfg).unwrap();
        assert_eq!(ps.candidates.len(), 2);
        // t1's detour (vs = 90) must rank above t2's bump (vs = 8).
        assert_eq!(ps.candidates[0].point, PointRef { traj: 0, idx: 2 });
        assert!(ps.candidates[0].vs > ps.candidates[1].vs);
        assert_eq!(ps.state.len(), 4);
        assert_eq!(ps.mask, vec![true, true]);
    }

    #[test]
    fn one_nomination_per_trajectory() {
        let (db, tree, simp) = setup();
        let cfg = Rl4QdtsConfig::paper().with_k(4);
        let ps = point_state(&db, &simp, &tree, tree.root(), &cfg).unwrap();
        // Even with K=4 there are only 2 trajectories => 2 candidates.
        assert_eq!(ps.candidates.len(), 2);
        assert_eq!(ps.mask, vec![true, true, false, false]);
        assert_eq!(ps.state[3 * 2..], [0.0, 0.0][..]);
    }

    #[test]
    fn inserted_points_leave_the_state() {
        let (db, tree, mut simp) = setup();
        let cfg = Rl4QdtsConfig::paper().with_k(2);
        simp.insert(0, 2);
        let ps = point_state(&db, &simp, &tree, tree.root(), &cfg).unwrap();
        assert!(
            ps.candidates
                .iter()
                .all(|c| c.point != PointRef { traj: 0, idx: 2 }),
            "inserted point must not be re-nominated"
        );
    }

    #[test]
    fn exhausted_cube_returns_none() {
        let (db, tree, _) = setup();
        let cfg = Rl4QdtsConfig::paper();
        let full = Simplification::full_store(&db);
        assert!(point_state(&db, &full, &tree, tree.root(), &cfg).is_none());
    }

    #[test]
    fn anchor_updates_change_values() {
        let (db, _, mut simp) = setup();
        let r = PointRef { traj: 0, idx: 1 };
        let (vs_before, _) = point_value(&db, &simp, r).unwrap();
        // Inserting the detour point re-anchors point 1 to (0, 2):
        // sync at t=10 moves to (10, 45), so v_s jumps.
        simp.insert(0, 2);
        let (vs_after, _) = point_value(&db, &simp, r).unwrap();
        assert!(vs_after > vs_before);
    }
}
