//! RL4QDTS hyperparameters.

use tiny_rl::DqnConfig;
use trajectory::TrajectoryDb;

/// Which components act with learned policies — the knobs of the paper's
/// ablation study (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyVariant {
    /// When false, Agent-Cube degenerates to returning the randomly sampled
    /// start cube directly ("w/o Agent-Cube" in Table II).
    pub use_cube_agent: bool,
    /// When false, Agent-Point degenerates to always inserting the
    /// maximum-`v_s` candidate ("w/o Agent-Point").
    pub use_point_agent: bool,
}

impl PolicyVariant {
    /// The full method.
    pub const FULL: Self = Self {
        use_cube_agent: true,
        use_point_agent: true,
    };
    /// Table II row "w/o Agent-Cube".
    pub const NO_CUBE: Self = Self {
        use_cube_agent: false,
        use_point_agent: true,
    };
    /// Table II row "w/o Agent-Point".
    pub const NO_POINT: Self = Self {
        use_cube_agent: true,
        use_point_agent: false,
    };
    /// Table II row "w/o Agent-Cube and Agent-Point".
    pub const NEITHER: Self = Self {
        use_cube_agent: false,
        use_point_agent: false,
    };

    /// Display label matching Table II.
    pub fn label(&self) -> &'static str {
        match (self.use_cube_agent, self.use_point_agent) {
            (true, true) => "RL4QDTS",
            (false, true) => "w/o Agent-Cube",
            (true, false) => "w/o Agent-Point",
            (false, false) => "w/o Agent-Cube and Agent-Point",
        }
    }
}

/// Which spatio-temporal index backs the cube hierarchy.
///
/// The paper adopts the octree "for its simplicity" and leaves other
/// indexes (kd-tree) as future work (§I); both are implemented and the
/// `index_ablation` experiment compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// Geometric halving per dimension (the paper's choice).
    #[default]
    Octree,
    /// kd-tree-style median splits bundled 8-ary (balanced on skew).
    MedianKdTree,
}

impl IndexKind {
    /// Display label for experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IndexKind::Octree => "octree",
            IndexKind::MedianKdTree => "median-kd",
        }
    }

    /// The query-engine backend corresponding to this index kind. RL4QDTS
    /// always runs indexed (the agents need a cube hierarchy), so there is
    /// no mapping to [`traj_query::BackendKind::Scan`].
    #[must_use]
    pub fn backend(self) -> traj_query::BackendKind {
        match self {
            IndexKind::Octree => traj_query::BackendKind::Octree,
            IndexKind::MedianKdTree => traj_query::BackendKind::MedianKd,
        }
    }
}

/// Hyperparameters of RL4QDTS (§IV-D and §V-A).
#[derive(Debug, Clone, Copy)]
pub struct Rl4QdtsConfig {
    /// Start level `S`: Agent-Cube begins from a cube sampled at this
    /// octree level following the query distribution (paper: 9).
    pub start_level: u32,
    /// Maximum traversal depth `E` (paper: 12).
    pub max_depth: u32,
    /// `K`: number of candidate points Agent-Point chooses among (paper: 2).
    pub k: usize,
    /// `Δ`: rewards are computed every `delta` insertions (paper: 50).
    pub delta: usize,
    /// Octree leaf capacity (split threshold).
    pub leaf_capacity: usize,
    /// DQN hyperparameters shared by both agents.
    pub dqn: DqnConfig,
    /// The index structure backing the cube hierarchy.
    pub index: IndexKind,
}

impl Rl4QdtsConfig {
    /// The paper's configuration (server-scale data: millions of points).
    pub fn paper() -> Self {
        Self {
            start_level: 9,
            max_depth: 12,
            k: 2,
            delta: 50,
            leaf_capacity: 64,
            dqn: DqnConfig::default(),
            index: IndexKind::Octree,
        }
    }

    /// A configuration scaled to the given database: `E ≈ log₈(N)` so
    /// leaves stay usefully small, and `S = E − 1`. The paper's S=9/E=12
    /// gap of 3 suits databases of millions of points; at laptop scale a
    /// gap of 1 keeps the cube agent's decision space learnable with the
    /// few thousand transitions a quick training run produces (the
    /// param_study binary sweeps both).
    pub fn scaled_to(db: &TrajectoryDb) -> Self {
        let n = db.total_points().max(1) as f64;
        let depth = (n.log2() / 3.0).ceil() as u32 + 1; // log8(N) + 1
        let max_depth = depth.clamp(3, 12);
        let start_level = max_depth.saturating_sub(1).max(1);
        Self {
            start_level,
            max_depth,
            k: 2,
            delta: 50,
            leaf_capacity: 64,
            dqn: DqnConfig::default(),
            index: IndexKind::Octree,
        }
    }

    /// Overrides the index structure.
    pub fn with_index(mut self, index: IndexKind) -> Self {
        self.index = index;
        self
    }

    /// Overrides the start level `S`.
    pub fn with_start_level(mut self, s: u32) -> Self {
        self.start_level = s;
        self
    }

    /// Overrides the maximum depth `E`.
    pub fn with_max_depth(mut self, e: u32) -> Self {
        self.max_depth = e;
        self
    }

    /// Overrides `K`.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.k = k;
        self
    }

    /// Overrides `Δ`.
    pub fn with_delta(mut self, delta: usize) -> Self {
        assert!(delta >= 1);
        self.delta = delta;
        self
    }

    /// The [`traj_query::QueryEngine`] configuration matching this config:
    /// same index kind, same tree shape. Using one engine for both query
    /// execution and Agent-Cube's traversal shares a single index build.
    #[must_use]
    pub fn engine_config(&self) -> traj_query::EngineConfig {
        traj_query::EngineConfig {
            backend: self.index.backend(),
            max_depth: self.max_depth,
            leaf_capacity: self.leaf_capacity,
        }
    }

    /// Agent-Cube's state dimension: 8 children × 2 features (Eq. 4).
    pub const CUBE_STATE_DIM: usize = 16;
    /// Agent-Cube's action dimension: 8 children + stop (Eq. 5).
    pub const CUBE_ACTION_DIM: usize = 9;

    /// Agent-Point's state dimension: `K` pairs `(v_s, v_t)` (Eq. 8).
    pub fn point_state_dim(&self) -> usize {
        2 * self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::gen::{generate, DatasetSpec, Scale};

    #[test]
    fn paper_config_matches_section_5() {
        let c = Rl4QdtsConfig::paper();
        assert_eq!(c.start_level, 9);
        assert_eq!(c.max_depth, 12);
        assert_eq!(c.k, 2);
        assert_eq!(c.delta, 50);
        assert_eq!(c.dqn.gamma, 0.99);
        assert_eq!(c.dqn.lr, 0.01);
        assert_eq!(c.dqn.replay_capacity, 2000);
        assert_eq!(c.dqn.epsilon_min, 0.1);
    }

    #[test]
    fn scaled_config_shrinks_with_data() {
        let small = generate(&DatasetSpec::geolife(Scale::Smoke), 1);
        let c = Rl4QdtsConfig::scaled_to(&small);
        assert!(c.max_depth < 12);
        assert!(c.start_level >= 1);
        assert!(c.start_level < c.max_depth);
    }

    #[test]
    fn builders_override_fields() {
        let c = Rl4QdtsConfig::paper()
            .with_k(4)
            .with_delta(10)
            .with_start_level(2)
            .with_max_depth(5);
        assert_eq!(c.k, 4);
        assert_eq!(c.delta, 10);
        assert_eq!(c.start_level, 2);
        assert_eq!(c.max_depth, 5);
        assert_eq!(c.point_state_dim(), 8);
    }

    #[test]
    fn variant_labels_match_table_2() {
        assert_eq!(PolicyVariant::FULL.label(), "RL4QDTS");
        assert_eq!(PolicyVariant::NO_CUBE.label(), "w/o Agent-Cube");
        assert_eq!(PolicyVariant::NO_POINT.label(), "w/o Agent-Point");
        assert_eq!(
            PolicyVariant::NEITHER.label(),
            "w/o Agent-Cube and Agent-Point"
        );
    }
}
