//! Training loop for RL4QDTS (§IV-C, §V-A "Model Training").
//!
//! The paper prepares several training databases sampled from a training
//! trajectory pool, runs a few episodes over each, and rewards both agents
//! every `Δ` insertions with the improvement in range-query accuracy
//! (Eq. 10), sharing each window's reward across *all* transitions both
//! agents produced inside that window.

use crate::algorithm::Rl4Qdts;
use crate::config::Rl4QdtsConfig;
use crate::cube_agent::{cube_mask, cube_state, forced_stop, STOP_ACTION};
use crate::point_agent::point_state;
use crate::reward::RewardTracker;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tiny_rl::{Dqn, Transition};
use traj_query::{range_workload_store, QueryEngine, RangeWorkloadSpec};
use trajectory::{AsColumns, PointStore, Simplification, TrajectoryDb};

/// Training-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Number of training databases sampled from the pool (paper: 12).
    pub num_dbs: usize,
    /// Trajectories per training database (paper: 500 / 4000).
    pub trajs_per_db: usize,
    /// Episodes per database (paper: 5).
    pub episodes_per_db: usize,
    /// Budget ratio used during training episodes.
    pub ratio: f64,
    /// Range-query workload spec for states and rewards (paper: 100
    /// queries of 2 km × 2 km × 7 days per window).
    pub workload: RangeWorkloadSpec,
}

impl TrainerConfig {
    /// A laptop-scale default: smaller pool, same structure.
    pub fn small(workload: RangeWorkloadSpec) -> Self {
        Self {
            num_dbs: 4,
            trajs_per_db: 40,
            episodes_per_db: 2,
            ratio: 0.02,
            workload,
        }
    }
}

/// Summary statistics of one training run (consumed by the training-time
/// experiment).
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// Episodes completed.
    pub episodes: usize,
    /// Total insertion steps taken.
    pub insertions: usize,
    /// Total transitions stored across both agents.
    pub transitions: usize,
    /// Mean reward per closed window.
    pub mean_window_reward: f64,
    /// Wall-clock training time in seconds.
    pub wall_seconds: f64,
}

/// Buffers an agent's decisions until their window's shared reward is
/// known (§IV-B: "the reward R is shared by all transitions ... involved
/// when traversing from s_i to s_{i+Δ}").
///
/// Every decision is stored as a *terminal* transition carrying the
/// window's reward. Chaining decisions through Bellman targets would
/// systematically inflate long cube traversals: with a shared positive
/// reward R, a chained target gives `Q(descend) ≈ R + γ·Q(child)` — the
/// same R counted once per level — so "descend" would dominate "stop"
/// regardless of the data. The terminal treatment regresses
/// `Q(s, a) → E[R | s, a]`, which ranks actions by the accuracy
/// improvement they actually participate in, and keeps the Eq. 11
/// telescoping objective: each window's reward is exactly the diff
/// reduction it produced.
struct WindowBuffer {
    /// Decisions of the current window, awaiting its reward.
    window: Vec<(Vec<f64>, usize)>,
}

impl WindowBuffer {
    fn new() -> Self {
        Self { window: Vec::new() }
    }

    /// Registers a decision of the current window.
    fn on_decision(&mut self, state: Vec<f64>, action: usize) {
        self.window.push((state, action));
    }

    /// Closes a window: every parked decision becomes a terminal
    /// transition with the shared `reward`.
    fn close_window(&mut self, agent: &mut Dqn, reward: f64) {
        for (s, a) in self.window.drain(..) {
            agent.remember(Transition {
                state: s,
                action: a,
                reward,
                next_state: None,
                next_mask: vec![],
            });
        }
    }

    /// Ends the episode: flush the final (possibly partial) window.
    fn finish(&mut self, agent: &mut Dqn, reward: f64) {
        self.close_window(agent, reward);
    }
}

/// Trains RL4QDTS on databases sampled from `pool`. Returns the trained
/// model and training statistics. Deterministic for a given seed.
pub fn train(
    pool: &TrajectoryDb,
    config: Rl4QdtsConfig,
    trainer: &TrainerConfig,
    seed: u64,
) -> (Rl4Qdts, TrainStats) {
    let started = std::time::Instant::now();
    let mut model = Rl4Qdts::untrained(config, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(1));
    let mut stats = TrainStats::default();
    let mut reward_sum = 0.0;
    let mut windows = 0usize;

    // One columnar conversion of the pool; per-round training databases
    // are gathers over its columns, not `Vec<Point>` clones.
    let pool_store = pool.to_store();
    for db_round in 0..trainer.num_dbs {
        let db = sample_db(&pool_store, trainer.trajs_per_db, &mut rng);
        if db.is_empty() || db.total_points() < 8 {
            continue;
        }
        // One engine per training database: the index is built once and
        // shared between query execution (rewards) and Agent-Cube's
        // traversal across all of the database's episodes.
        let mut engine = QueryEngine::from_store(db, config.engine_config());
        for episode in 0..trainer.episodes_per_db {
            let ep_seed = seed
                .wrapping_add(db_round as u64 * 7919)
                .wrapping_add(episode as u64 * 104_729);
            let mut wl_rng = StdRng::seed_from_u64(ep_seed);
            let queries = range_workload_store(engine.store(), &trainer.workload, &mut wl_rng);
            engine.assign_queries(&queries);
            let (r, w, ins, trans) = run_episode(&mut model, &engine, trainer, queries, &mut rng);
            reward_sum += r;
            windows += w;
            stats.insertions += ins;
            stats.transitions += trans;
            stats.episodes += 1;
        }
    }
    stats.mean_window_reward = if windows > 0 {
        reward_sum / windows as f64
    } else {
        0.0
    };
    stats.wall_seconds = started.elapsed().as_secs_f64();
    model.cube_agent.freeze();
    model.point_agent.freeze();
    (model, stats)
}

/// Samples a training database of `m` trajectories without replacement —
/// a columnar gather over the pool store (the points are copied once into
/// fresh columns; no per-trajectory allocations).
fn sample_db(pool: &PointStore, m: usize, rng: &mut StdRng) -> PointStore {
    let mut ids: Vec<usize> = (0..pool.len()).collect();
    ids.shuffle(rng);
    ids.truncate(m.max(1));
    pool.gather_trajs(&ids)
}

/// One training episode against a built, query-assigned engine. Returns
/// `(window_reward_sum, windows, insertions, transitions)`.
fn run_episode(
    model: &mut Rl4Qdts,
    engine: &QueryEngine<'_>,
    trainer: &TrainerConfig,
    queries: Vec<trajectory::Cube>,
    rng: &mut StdRng,
) -> (f64, usize, usize, usize) {
    let config = model.config;
    let store = engine.store();
    let tree = engine
        .cube_index()
        .expect("rl4qdts engines are always indexed");

    let mut simp = Simplification::most_simplified_store(store);
    let floor = simp.total_points();
    let budget = ((store.total_points() as f64 * trainer.ratio) as usize)
        .max(floor + 2 * config.delta)
        .min(store.total_points());
    let mut tracker = RewardTracker::new(engine, queries, &simp);

    let mut cube_buf = WindowBuffer::new();
    let mut point_buf = WindowBuffer::new();
    let mut since_window = 0usize;
    let mut reward_sum = 0.0;
    let mut windows = 0usize;
    let mut insertions = 0usize;
    let mut transitions = 0usize;
    let mut misses = 0usize;

    while simp.total_points() < budget {
        // --- Agent-Cube: ε-greedy traversal (Algorithm 2). ---
        let mut node = tree.sample_start(config.start_level, rng);
        loop {
            if forced_stop(tree, node, config.max_depth) {
                break;
            }
            let Some(raw) = cube_state(tree, node) else {
                break;
            };
            let state = model.cube_agent.whiten(&raw, true);
            let mask = cube_mask(tree, node);
            let action = model.cube_agent.select_action(&state, &mask);
            cube_buf.on_decision(state, action);
            transitions += 1;
            if action == STOP_ACTION {
                break;
            }
            node = tree.children(node).expect("non-leaf")[action];
        }

        // --- Agent-Point: choose and insert a point (Algorithm 3). ---
        match point_state(store, &simp, tree, node, &config) {
            Some(ps) => {
                let state = model.point_agent.whiten(&ps.state, true);
                let action = model.point_agent.select_action(&state, &ps.mask);
                point_buf.on_decision(state, action);
                transitions += 1;
                let c = ps.candidates[action.min(ps.candidates.len() - 1)];
                if simp.insert(c.point.traj, c.point.idx) {
                    let p = store.view(c.point.traj).point(c.point.idx as usize);
                    tracker.on_insert(c.point.traj, &p);
                    insertions += 1;
                    since_window += 1;
                    misses = 0;
                }
            }
            None => {
                misses += 1;
                if misses >= 64 {
                    break; // region exhausted; end the episode
                }
            }
        }

        // --- Window close: shared reward + a burst of training. ---
        if since_window >= config.delta {
            let r = tracker.window_reward();
            reward_sum += r;
            windows += 1;
            since_window = 0;
            cube_buf.close_window(&mut model.cube_agent, r);
            point_buf.close_window(&mut model.point_agent, r);
            for _ in 0..8 {
                model.cube_agent.train_step();
                model.point_agent.train_step();
            }
        }
    }

    // Final (possibly partial) window.
    let r = tracker.window_reward();
    if since_window > 0 {
        reward_sum += r;
        windows += 1;
    }
    cube_buf.finish(&mut model.cube_agent, r);
    point_buf.finish(&mut model.point_agent, r);
    for _ in 0..8 {
        model.cube_agent.train_step();
        model.point_agent.train_step();
    }
    (reward_sum, windows, insertions, transitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_query::{range_workload, QueryDistribution};
    use trajectory::gen::{generate, DatasetSpec, Scale};

    fn quick_trainer() -> TrainerConfig {
        TrainerConfig {
            num_dbs: 2,
            trajs_per_db: 10,
            episodes_per_db: 1,
            ratio: 0.05,
            workload: RangeWorkloadSpec {
                count: 15,
                spatial_extent: 3_000.0,
                temporal_extent: 2.0 * 86_400.0,
                dist: QueryDistribution::Data,
            },
        }
    }

    #[test]
    fn training_runs_and_produces_a_usable_model() {
        let pool = generate(&DatasetSpec::geolife(Scale::Smoke), 23);
        let config = Rl4QdtsConfig::scaled_to(&pool).with_delta(15);
        let (model, stats) = train(&pool, config, &quick_trainer(), 99);
        assert_eq!(stats.episodes, 2);
        assert!(stats.insertions > 0);
        assert!(stats.transitions > 0);
        assert!(stats.wall_seconds > 0.0);
        // The trained model must still honor budgets.
        let mut rng = StdRng::seed_from_u64(1);
        let spec = quick_trainer().workload;
        let queries = range_workload(&pool, &spec, &mut rng);
        let budget = pool.total_points() / 20;
        let simp = model.simplify(&pool, budget, &queries, 4);
        assert_eq!(simp.total_points(), budget.max(2 * pool.len()));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let pool = generate(&DatasetSpec::geolife(Scale::Smoke), 29);
        let config = Rl4QdtsConfig::scaled_to(&pool).with_delta(10);
        let (m1, s1) = train(&pool, config, &quick_trainer(), 7);
        let (m2, s2) = train(&pool, config, &quick_trainer(), 7);
        assert_eq!(s1.insertions, s2.insertions);
        assert_eq!(s1.transitions, s2.transitions);
        // Identical training ⇒ identical behaviour.
        let mut rng = StdRng::seed_from_u64(3);
        let queries = range_workload(&pool, &quick_trainer().workload, &mut rng);
        let budget = pool.total_points() / 30;
        assert_eq!(
            m1.simplify(&pool, budget, &queries, 5),
            m2.simplify(&pool, budget, &queries, 5)
        );
    }

    #[test]
    fn rewards_flow_into_replay() {
        let pool = generate(&DatasetSpec::geolife(Scale::Smoke), 31);
        let config = Rl4QdtsConfig::scaled_to(&pool).with_delta(10);
        let (model, _) = train(&pool, config, &quick_trainer(), 13);
        let (cube, point) = model.agents();
        assert!(cube.replay_len() > 0, "cube agent stored no transitions");
        assert!(point.replay_len() > 0, "point agent stored no transitions");
    }

    #[test]
    fn window_buffer_reward_assignment() {
        // Decisions park until their window's reward is known, then flush
        // as terminal transitions sharing that reward.
        let mut agent = Dqn::new(&[2, 4, 2], tiny_rl::DqnConfig::default(), 1);
        let mut buf = WindowBuffer::new();
        buf.on_decision(vec![0.0, 0.0], 0);
        buf.on_decision(vec![0.1, 0.1], 1);
        assert_eq!(agent.replay_len(), 0, "parked until the window closes");
        buf.close_window(&mut agent, 0.5);
        assert_eq!(agent.replay_len(), 2, "both decisions flushed with R=0.5");
        buf.on_decision(vec![0.2, 0.2], 0);
        buf.finish(&mut agent, -1.0);
        assert_eq!(agent.replay_len(), 3, "final partial window flushed too");
    }
}
