//! RL4QDTS: multi-agent reinforcement learning for query-accuracy-driven
//! collective trajectory database simplification.
//!
//! Reproduction of Wang, Long, Cong & Jensen, *"Collectively Simplifying
//! Trajectories in a Database: A Query Accuracy Driven Approach"* (ICDE
//! 2024). Given a trajectory database and a storage budget, RL4QDTS
//! produces a simplified database whose query results (range, kNN,
//! similarity, clustering) stay as close as possible to the original's.
//!
//! The method starts from the most-simplified database (endpoints only)
//! and re-introduces points one at a time: [`cube_agent`] walks a
//! spatio-temporal octree to pick a cube, [`point_agent`] picks a point
//! inside it, and both are trained as DQNs sharing a delayed [`reward`] —
//! the improvement in range-query F1 every Δ insertions (Eq. 10), which
//! telescopes to the QDTS objective (Eq. 11).
//!
//! Typical use:
//!
//! ```
//! use rl4qdts::{train, Rl4QdtsConfig, TrainerConfig};
//! use trajectory::gen::{generate, DatasetSpec, Scale};
//! use traj_query::{range_workload, QueryDistribution, RangeWorkloadSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let pool = generate(&DatasetSpec::geolife(Scale::Smoke), 1);
//! let config = Rl4QdtsConfig::scaled_to(&pool).with_delta(20);
//! let workload = RangeWorkloadSpec {
//!     count: 10, spatial_extent: 2_000.0, temporal_extent: 86_400.0,
//!     dist: QueryDistribution::Data,
//! };
//! let mut trainer = TrainerConfig::small(workload);
//! trainer.num_dbs = 1;
//! trainer.episodes_per_db = 1;
//! let (model, _stats) = train(&pool, config, &trainer, 7);
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let queries = range_workload(&pool, &workload, &mut rng);
//! let simplified = model.simplify(&pool, pool.total_points() / 10, &queries, 1);
//! assert!(simplified.total_points() <= pool.total_points() / 10);
//! ```

#![warn(missing_docs)]

pub mod algorithm;
pub mod config;
pub mod cube_agent;
pub mod model_io;
pub mod point_agent;
pub mod reward;
pub mod trainer;

pub use algorithm::Rl4Qdts;
pub use config::{IndexKind, PolicyVariant, Rl4QdtsConfig};
pub use reward::{range_query_simplified, RewardTracker};
pub use trainer::{train, TrainStats, TrainerConfig};
