//! The shared delayed reward (§IV-B, Eq. 10).
//!
//! Every `Δ` insertions the training loop measures
//! `R = diff(Q(D), Q(D'_before)) − diff(Q(D), Q(D'_after))` over a range-
//! query workload, where `diff` is `1 − mean F1` (results on the original
//! database are the ground truth). The telescoping argument of Eq. 11 makes
//! maximizing ΣR equivalent to minimizing the final query-result
//! difference — the QDTS objective itself.
//!
//! Execution goes through [`traj_query::QueryEngine`]: the ground truth
//! `Q(D)` is computed once with index pruning, and the simplification's
//! results are *maintained* as points are inserted
//! ([`traj_query::MaintainedWorkload`]) — closing a reward window is O(W)
//! counter reads instead of a full workload rescan.

use traj_query::QueryEngine;
use trajectory::{Cube, Point, Simplification, TrajId, TrajectoryDb};

/// Evaluates range queries against a simplification *without*
/// materializing the simplified database: a trajectory matches when one of
/// its kept points falls inside the query cube.
///
/// This is the linear-scan reference semantic; the engine's
/// [`QueryEngine::range_simplified`] executes the same query with index
/// pruning.
#[must_use]
pub fn range_query_simplified(db: &TrajectoryDb, simp: &Simplification, q: &Cube) -> Vec<TrajId> {
    db.iter()
        .filter(|(id, t)| {
            simp.kept(*id)
                .iter()
                .any(|&idx| q.contains(t.point(idx as usize)))
        })
        .map(|(id, _)| id)
        .collect()
}

/// Tracks `diff(Q(D), Q(D'))` across training and emits window rewards.
///
/// The tracker is fed every insertion through [`RewardTracker::on_insert`],
/// so the current difference is always available in O(W) from maintained
/// counters; [`RewardTracker::window_reward`] never touches the database.
#[derive(Debug, Clone)]
pub struct RewardTracker {
    workload: traj_query::MaintainedWorkload,
    last_diff: f64,
}

impl RewardTracker {
    /// Computes the ground truth `Q(D)` for the workload through `engine`
    /// and initializes the running difference against `simp` (usually the
    /// most simplified database, making the first window's baseline the
    /// constant `C` of Eq. 11).
    #[must_use]
    pub fn new(engine: &QueryEngine<'_>, queries: Vec<Cube>, simp: &Simplification) -> Self {
        let workload = engine.maintained_workload(queries, simp);
        let last_diff = workload.diff();
        Self {
            workload,
            last_diff,
        }
    }

    /// Number of workload queries.
    #[must_use]
    pub fn num_queries(&self) -> usize {
        self.workload.len()
    }

    /// Records that point `idx` of trajectory `traj`, located at `p`, was
    /// inserted into the simplification.
    pub fn on_insert(&mut self, traj: TrajId, p: &Point) {
        self.workload.insert(traj, p);
    }

    /// The current `diff(Q(D), Q(D'))` of the tracked simplification, from
    /// maintained counters (no database access).
    #[must_use]
    pub fn diff(&self) -> f64 {
        self.workload.diff()
    }

    /// `diff(Q(D), Q(D'))` for an *arbitrary* simplification of the same
    /// database, recomputed from scratch through the engine. Useful for
    /// scoring unrelated simplifications against the tracker's ground
    /// truth.
    #[must_use]
    pub fn diff_of(&self, engine: &QueryEngine<'_>, simp: &Simplification) -> f64 {
        self.workload.diff_of(engine, simp)
    }

    /// Closes a reward window (Eq. 10): returns
    /// `R = diff_before − diff_now` and makes `diff_now` the new baseline.
    /// Positive when the window's insertions improved query accuracy.
    pub fn window_reward(&mut self) -> f64 {
        let now = self.workload.diff();
        let r = self.last_diff - now;
        self.last_diff = now;
        r
    }

    /// The current baseline difference.
    #[must_use]
    pub fn last_diff(&self) -> f64 {
        self.last_diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_query::EngineConfig;
    use trajectory::{Point, Trajectory};

    /// A trajectory passing through the query box only at its midpoint.
    fn db() -> TrajectoryDb {
        let t = Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(50.0, 0.0, 50.0),
            Point::new(100.0, 0.0, 100.0),
        ])
        .unwrap();
        let far = Trajectory::new(vec![
            Point::new(1000.0, 1000.0, 0.0),
            Point::new(1000.0, 1000.0, 100.0),
        ])
        .unwrap();
        TrajectoryDb::new(vec![t, far])
    }

    fn mid_query() -> Cube {
        Cube::centered(50.0, 0.0, 50.0, 5.0, 5.0, 5.0)
    }

    /// Inserts into both the simplification and the tracker.
    fn insert(
        tracker: &mut RewardTracker,
        db: &TrajectoryDb,
        simp: &mut Simplification,
        id: usize,
        idx: u32,
    ) {
        if simp.insert(id, idx) {
            tracker.on_insert(id, db.get(id).point(idx as usize));
        }
    }

    #[test]
    fn simplified_query_sees_only_kept_points() {
        let db = db();
        let simp = Simplification::most_simplified(&db);
        // Endpoints only: the midpoint hit is lost.
        assert!(range_query_simplified(&db, &simp, &mid_query()).is_empty());
        let mut richer = simp.clone();
        richer.insert(0, 1);
        assert_eq!(range_query_simplified(&db, &richer, &mid_query()), vec![0]);
        // The engine's pruned execution agrees.
        let engine = QueryEngine::over(&db, EngineConfig::octree());
        assert_eq!(engine.range_simplified(&richer, &mid_query()), vec![0]);
        assert!(engine.range_simplified(&simp, &mid_query()).is_empty());
    }

    #[test]
    fn reward_is_positive_when_accuracy_improves() {
        let db = db();
        let engine = QueryEngine::over(&db, EngineConfig::octree());
        let mut simp = Simplification::most_simplified(&db);
        let mut tracker = RewardTracker::new(&engine, vec![mid_query()], &simp);
        assert!(tracker.last_diff() > 0.99, "endpoints miss the query");
        insert(&mut tracker, &db, &mut simp, 0, 1);
        let r = tracker.window_reward();
        assert!(r > 0.99, "restoring the hit should earn ~1.0, got {r}");
        assert!(tracker.last_diff() < 1e-9);
    }

    #[test]
    fn useless_insertions_earn_zero() {
        let db = db();
        let engine = QueryEngine::over(&db, EngineConfig::octree());
        let mut simp = Simplification::most_simplified(&db);
        let mut tracker = RewardTracker::new(&engine, vec![mid_query()], &simp);
        let before = tracker.last_diff();
        // Inserting a point of the far trajectory changes nothing.
        insert(&mut tracker, &db, &mut simp, 1, 0);
        let r = tracker.window_reward();
        assert_eq!(r, 0.0);
        assert_eq!(tracker.last_diff(), before);
    }

    #[test]
    fn rewards_telescope_to_total_improvement() {
        // Eq. 11: the sum of window rewards equals initial minus final diff.
        let db = db();
        let engine = QueryEngine::over(&db, EngineConfig::octree());
        let mut simp = Simplification::most_simplified(&db);
        let mut tracker = RewardTracker::new(&engine, vec![mid_query()], &simp);
        let initial = tracker.last_diff();
        let mut total = 0.0;
        insert(&mut tracker, &db, &mut simp, 1, 0);
        total += tracker.window_reward();
        insert(&mut tracker, &db, &mut simp, 0, 1);
        total += tracker.window_reward();
        let final_diff = tracker.last_diff();
        assert!((total - (initial - final_diff)).abs() < 1e-12);
    }

    #[test]
    fn maintained_diff_equals_scratch_recomputation() {
        let db = db();
        let engine = QueryEngine::over(&db, EngineConfig::octree());
        let mut simp = Simplification::most_simplified(&db);
        let mut tracker = RewardTracker::new(&engine, vec![mid_query(), db.bounding_cube()], &simp);
        assert!((tracker.diff() - tracker.diff_of(&engine, &simp)).abs() < 1e-12);
        insert(&mut tracker, &db, &mut simp, 0, 1);
        assert!((tracker.diff() - tracker.diff_of(&engine, &simp)).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_is_neutral() {
        let db = db();
        let engine = QueryEngine::over(&db, EngineConfig::octree());
        let simp = Simplification::most_simplified(&db);
        let mut tracker = RewardTracker::new(&engine, vec![], &simp);
        assert_eq!(tracker.last_diff(), 0.0);
        assert_eq!(tracker.window_reward(), 0.0);
    }
}
