//! The shared delayed reward (§IV-B, Eq. 10).
//!
//! Every `Δ` insertions the training loop measures
//! `R = diff(Q(D), Q(D'_before)) − diff(Q(D), Q(D'_after))` over a range-
//! query workload, where `diff` is `1 − mean F1` (results on the original
//! database are the ground truth). The telescoping argument of Eq. 11 makes
//! maximizing ΣR equivalent to minimizing the final query-result
//! difference — the QDTS objective itself.

use traj_query::metrics::{f1_sets, F1Score};
use trajectory::{Cube, Simplification, TrajId, TrajectoryDb};

/// Evaluates range queries against a simplification *without*
/// materializing the simplified database: a trajectory matches when one of
/// its kept points falls inside the query cube.
pub fn range_query_simplified(
    db: &TrajectoryDb,
    simp: &Simplification,
    q: &Cube,
) -> Vec<TrajId> {
    db.iter()
        .filter(|(id, t)| {
            simp.kept(*id).iter().any(|&idx| q.contains(t.point(idx as usize)))
        })
        .map(|(id, _)| id)
        .collect()
}

/// Tracks `diff(Q(D), Q(D'))` across training and emits window rewards.
#[derive(Debug, Clone)]
pub struct RewardTracker {
    queries: Vec<Cube>,
    truth: Vec<Vec<TrajId>>,
    last_diff: f64,
}

impl RewardTracker {
    /// Computes the ground truth `Q(D)` for the workload and initializes
    /// the running difference against `simp` (usually the most simplified
    /// database, making the first window's baseline the constant `C` of
    /// Eq. 11).
    pub fn new(db: &TrajectoryDb, queries: Vec<Cube>, simp: &Simplification) -> Self {
        let truth: Vec<Vec<TrajId>> =
            queries.iter().map(|q| traj_query::range_query(db, q)).collect();
        let mut tracker = Self { queries, truth, last_diff: 0.0 };
        tracker.last_diff = tracker.diff(db, simp);
        tracker
    }

    /// Number of workload queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// `diff(Q(D), Q(D'))`: one minus the mean F1 of the workload on the
    /// simplification.
    pub fn diff(&self, db: &TrajectoryDb, simp: &Simplification) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let scores: Vec<F1Score> = self
            .queries
            .iter()
            .zip(&self.truth)
            .map(|(q, truth)| {
                let result = range_query_simplified(db, simp, q);
                f1_sets(truth, &result)
            })
            .collect();
        traj_query::query_diff(&scores)
    }

    /// Closes a reward window (Eq. 10): returns
    /// `R = diff_before − diff_now` and makes `diff_now` the new baseline.
    /// Positive when the window's insertions improved query accuracy.
    pub fn window_reward(&mut self, db: &TrajectoryDb, simp: &Simplification) -> f64 {
        let now = self.diff(db, simp);
        let r = self.last_diff - now;
        self.last_diff = now;
        r
    }

    /// The current baseline difference.
    pub fn last_diff(&self) -> f64 {
        self.last_diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::{Point, Trajectory};

    /// A trajectory passing through the query box only at its midpoint.
    fn db() -> TrajectoryDb {
        let t = Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(50.0, 0.0, 50.0),
            Point::new(100.0, 0.0, 100.0),
        ])
        .unwrap();
        let far = Trajectory::new(vec![
            Point::new(1000.0, 1000.0, 0.0),
            Point::new(1000.0, 1000.0, 100.0),
        ])
        .unwrap();
        TrajectoryDb::new(vec![t, far])
    }

    fn mid_query() -> Cube {
        Cube::centered(50.0, 0.0, 50.0, 5.0, 5.0, 5.0)
    }

    #[test]
    fn simplified_query_sees_only_kept_points() {
        let db = db();
        let simp = Simplification::most_simplified(&db);
        // Endpoints only: the midpoint hit is lost.
        assert!(range_query_simplified(&db, &simp, &mid_query()).is_empty());
        let mut richer = simp.clone();
        richer.insert(0, 1);
        assert_eq!(range_query_simplified(&db, &richer, &mid_query()), vec![0]);
    }

    #[test]
    fn reward_is_positive_when_accuracy_improves() {
        let db = db();
        let mut simp = Simplification::most_simplified(&db);
        let mut tracker = RewardTracker::new(&db, vec![mid_query()], &simp);
        assert!(tracker.last_diff() > 0.99, "endpoints miss the query");
        simp.insert(0, 1);
        let r = tracker.window_reward(&db, &simp);
        assert!(r > 0.99, "restoring the hit should earn ~1.0, got {r}");
        assert!(tracker.last_diff() < 1e-9);
    }

    #[test]
    fn useless_insertions_earn_zero() {
        let db = db();
        let mut simp = Simplification::most_simplified(&db);
        let mut tracker = RewardTracker::new(&db, vec![mid_query()], &simp);
        let before = tracker.last_diff();
        // Inserting a point of the far trajectory changes nothing.
        simp.insert(1, 0);
        let r = tracker.window_reward(&db, &simp);
        assert_eq!(r, 0.0);
        assert_eq!(tracker.last_diff(), before);
    }

    #[test]
    fn rewards_telescope_to_total_improvement() {
        // Eq. 11: the sum of window rewards equals initial minus final diff.
        let db = db();
        let mut simp = Simplification::most_simplified(&db);
        let mut tracker = RewardTracker::new(&db, vec![mid_query()], &simp);
        let initial = tracker.last_diff();
        let mut total = 0.0;
        simp.insert(1, 0);
        total += tracker.window_reward(&db, &simp);
        simp.insert(0, 1);
        total += tracker.window_reward(&db, &simp);
        let final_diff = tracker.last_diff();
        assert!((total - (initial - final_diff)).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_is_neutral() {
        let db = db();
        let simp = Simplification::most_simplified(&db);
        let mut tracker = RewardTracker::new(&db, vec![], &simp);
        assert_eq!(tracker.last_diff(), 0.0);
        assert_eq!(tracker.window_reward(&db, &simp), 0.0);
    }
}
