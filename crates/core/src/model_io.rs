//! Checkpointing trained RL4QDTS models.
//!
//! A checkpoint is a directory of four text files (cube/point network and
//! whitener) in `tiny-rl`'s versioned format, so models can be trained
//! once and reused across the experiment binaries.

use crate::algorithm::Rl4Qdts;
use crate::config::Rl4QdtsConfig;
use std::io;
use std::path::Path;
use tiny_rl::nn::serialize::{mlp_from_str, mlp_to_string, whitener_from_str, whitener_to_string};
use tiny_rl::Dqn;

/// Error loading or saving a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed model file.
    Parse(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Parse(m) => write!(f, "checkpoint parse error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes the model's four artifacts into `dir` (created if missing).
pub fn save(model: &Rl4Qdts, dir: &Path) -> Result<(), CheckpointError> {
    std::fs::create_dir_all(dir)?;
    let (cube, point) = model.agents();
    std::fs::write(dir.join("cube.mlp"), mlp_to_string(cube.online()))?;
    std::fs::write(
        dir.join("cube.whitener"),
        whitener_to_string(cube.whitener()),
    )?;
    std::fs::write(dir.join("point.mlp"), mlp_to_string(point.online()))?;
    std::fs::write(
        dir.join("point.whitener"),
        whitener_to_string(point.whitener()),
    )?;
    Ok(())
}

/// Loads a model saved by [`save`]. The caller supplies the config, which
/// must match the checkpoint's network shapes (`K` in particular).
pub fn load(config: Rl4QdtsConfig, dir: &Path) -> Result<Rl4Qdts, CheckpointError> {
    let read = |name: &str| -> Result<String, CheckpointError> {
        Ok(std::fs::read_to_string(dir.join(name))?)
    };
    let parse_err = |e: tiny_rl::nn::serialize::ParseError| CheckpointError::Parse(e.message);
    let cube_mlp = mlp_from_str(&read("cube.mlp")?).map_err(parse_err)?;
    let cube_whit = whitener_from_str(&read("cube.whitener")?).map_err(parse_err)?;
    let point_mlp = mlp_from_str(&read("point.mlp")?).map_err(parse_err)?;
    let point_whit = whitener_from_str(&read("point.whitener")?).map_err(parse_err)?;
    if point_mlp.input_dim() != config.point_state_dim() {
        return Err(CheckpointError::Parse(format!(
            "checkpoint was trained with K={}, config has K={}",
            point_mlp.input_dim() / 2,
            config.k
        )));
    }
    let cube = Dqn::from_parts(cube_mlp, cube_whit, config.dqn, 0);
    let point = Dqn::from_parts(point_mlp, point_whit, config.dqn, 1);
    Ok(Rl4Qdts::from_agents(config, cube, point))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traj_query::{range_workload, QueryDistribution, RangeWorkloadSpec};
    use trajectory::gen::{generate, DatasetSpec, Scale};

    #[test]
    fn checkpoint_round_trips_behaviour() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 41);
        let config = Rl4QdtsConfig::scaled_to(&db);
        let model = Rl4Qdts::untrained(config, 77);

        let dir = std::env::temp_dir().join("rl4qdts_ckpt_test");
        save(&model, &dir).unwrap();
        let loaded = load(config, &dir).unwrap();

        let spec = RangeWorkloadSpec {
            count: 10,
            spatial_extent: 2_000.0,
            temporal_extent: 86_400.0,
            dist: QueryDistribution::Data,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let queries = range_workload(&db, &spec, &mut rng);
        let budget = db.total_points() / 20;
        assert_eq!(
            model.simplify(&db, budget, &queries, 9),
            loaded.simplify(&db, budget, &queries, 9),
            "loaded model must act identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn k_mismatch_is_rejected() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 43);
        let config = Rl4QdtsConfig::scaled_to(&db).with_k(2);
        let model = Rl4Qdts::untrained(config, 1);
        let dir = std::env::temp_dir().join("rl4qdts_ckpt_k_test");
        save(&model, &dir).unwrap();
        let wrong = Rl4QdtsConfig::scaled_to(&db).with_k(5);
        assert!(matches!(load(wrong, &dir), Err(CheckpointError::Parse(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_are_io_errors() {
        let dir = std::env::temp_dir().join("rl4qdts_ckpt_missing");
        std::fs::remove_dir_all(&dir).ok();
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 47);
        let config = Rl4QdtsConfig::scaled_to(&db);
        assert!(matches!(load(config, &dir), Err(CheckpointError::Io(_))));
    }
}
