//! End-to-end learning checks: a trained RL4QDTS model must preserve
//! range-query accuracy at least as well as query-oblivious baselines on
//! held-out data — the paper's core claim, at smoke scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rl4qdts::{train, RewardTracker, Rl4QdtsConfig, TrainerConfig};
use traj_query::{range_workload, EngineConfig, QueryDistribution, QueryEngine, RangeWorkloadSpec};
use traj_simp::{Simplifier, Uniform};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::Simplification;

fn workload_spec(count: usize) -> RangeWorkloadSpec {
    RangeWorkloadSpec {
        count,
        spatial_extent: 2_500.0,
        temporal_extent: 2.0 * 86_400.0,
        dist: QueryDistribution::Data,
    }
}

#[test]
fn trained_model_beats_uniform_sampling_on_query_accuracy() {
    let pool = generate(&DatasetSpec::geolife(Scale::Smoke), 1234);
    let (train_pool, test_db) = pool.split_at(8);

    let config = Rl4QdtsConfig::scaled_to(&train_pool).with_delta(25);
    let trainer = TrainerConfig {
        num_dbs: 3,
        trajs_per_db: 6,
        episodes_per_db: 2,
        ratio: 0.03,
        workload: workload_spec(30),
    };
    let (model, stats) = train(&train_pool, config, &trainer, 2024);
    assert!(stats.insertions > 0);

    // Held-out evaluation: same query distribution, fresh queries.
    let mut rng = StdRng::seed_from_u64(555);
    let state_queries = range_workload(&test_db, &workload_spec(30), &mut rng);
    let eval_queries = range_workload(&test_db, &workload_spec(50), &mut rng);
    let budget = (test_db.total_points() / 50).max(2 * test_db.len() + 50);

    let ours = model.simplify(&test_db, budget, &state_queries, 9);
    let uniform = Uniform.simplify(&test_db, budget);

    let base = Simplification::most_simplified(&test_db);
    let engine = QueryEngine::over(&test_db, EngineConfig::octree());
    let tracker = RewardTracker::new(&engine, eval_queries, &base);
    let diff_ours = tracker.diff_of(&engine, &ours);
    let diff_uniform = tracker.diff_of(&engine, &uniform);

    // The RL model may not win every smoke-scale configuration, but it must
    // be clearly competitive (the paper's wins are 5-40% at full scale).
    assert!(
        diff_ours <= diff_uniform + 0.10,
        "RL4QDTS diff {diff_ours:.3} should not trail uniform {diff_uniform:.3} by >0.10"
    );
}

#[test]
fn more_budget_never_hurts_much() {
    let pool = generate(&DatasetSpec::geolife(Scale::Smoke), 99);
    let config = Rl4QdtsConfig::scaled_to(&pool).with_delta(20);
    let trainer = TrainerConfig {
        num_dbs: 2,
        trajs_per_db: 6,
        episodes_per_db: 1,
        ratio: 0.03,
        workload: workload_spec(20),
    };
    let (model, _) = train(&pool, config, &trainer, 3);

    let mut rng = StdRng::seed_from_u64(4);
    let state_queries = range_workload(&pool, &workload_spec(20), &mut rng);
    let eval_queries = range_workload(&pool, &workload_spec(40), &mut rng);
    let base = Simplification::most_simplified(&pool);
    let engine = QueryEngine::over(&pool, EngineConfig::octree());
    let tracker = RewardTracker::new(&engine, eval_queries, &base);

    let small = model.simplify(&pool, pool.total_points() / 40, &state_queries, 5);
    let large = model.simplify(&pool, pool.total_points() / 5, &state_queries, 5);
    let d_small = tracker.diff_of(&engine, &small);
    let d_large = tracker.diff_of(&engine, &large);
    assert!(
        d_large <= d_small + 0.05,
        "8x budget should not be noticeably worse: small {d_small:.3} vs large {d_large:.3}"
    );
}

#[test]
fn compression_ratios_are_nonuniform_across_trajectories() {
    // The motivating claim: collective simplification spends budget
    // unevenly (complex/queried trajectories keep more points).
    let pool = generate(&DatasetSpec::geolife(Scale::Smoke), 777);
    let config = Rl4QdtsConfig::scaled_to(&pool).with_delta(20);
    let trainer = TrainerConfig {
        num_dbs: 2,
        trajs_per_db: 6,
        episodes_per_db: 1,
        ratio: 0.05,
        workload: workload_spec(20),
    };
    let (model, _) = train(&pool, config, &trainer, 6);
    let mut rng = StdRng::seed_from_u64(8);
    let queries = range_workload(&pool, &workload_spec(20), &mut rng);
    let simp = model.simplify(&pool, pool.total_points() / 10, &queries, 2);

    let ratios = simp.compression_ratios(&pool);
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max > min * 1.2,
        "expected non-uniform ratios, got min {min:.4} max {max:.4}"
    );
}
