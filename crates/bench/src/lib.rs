//! Criterion benchmark crate for the RL4QDTS reproduction; see `benches/`.
