//! Simplifier benchmarks: the cost of each baseline family at a fixed
//! budget — the per-method component behind Fig. 8's curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_simp::rlts::{RltsPlus, RltsTrainConfig};
use traj_simp::{Adaptation, BottomUp, Simplifier, SpanSearch, TopDown, Uniform};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::ErrorMeasure;

fn bench_simplifiers(c: &mut Criterion) {
    let db = generate(&DatasetSpec::geolife(Scale::Smoke).with_trajectories(12), 1);
    let budget = db.total_points() / 10;
    let rlts = RltsPlus::train(
        ErrorMeasure::Sed,
        Adaptation::Each,
        3,
        &db,
        &RltsTrainConfig {
            episodes: 5,
            ..RltsTrainConfig::default()
        },
        7,
    );

    let methods: Vec<Box<dyn Simplifier>> = vec![
        Box::new(Uniform),
        Box::new(TopDown::new(ErrorMeasure::Sed, Adaptation::Each)),
        Box::new(TopDown::new(ErrorMeasure::Sed, Adaptation::Whole)),
        Box::new(BottomUp::new(ErrorMeasure::Sed, Adaptation::Each)),
        Box::new(BottomUp::new(ErrorMeasure::Sed, Adaptation::Whole)),
        Box::new(SpanSearch),
        Box::new(rlts),
    ];

    let mut group = c.benchmark_group("simplify_10pct");
    group.sample_size(10);
    for m in &methods {
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), m, |b, m| {
            b.iter(|| m.simplify(std::hint::black_box(&db), budget))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplifiers);
criterion_main!(benches);
