//! DQN benchmarks: per-decision and per-training-step costs of the
//! paper-shaped networks (16→25→9 cube agent; 4→25→2 point agent).

use criterion::{criterion_group, criterion_main, Criterion};
use tiny_rl::{Dqn, DqnConfig, Transition};

fn bench_dqn(c: &mut Criterion) {
    let mut agent = Dqn::new(&[16, 25, 9], DqnConfig::default(), 1);
    let state: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
    let mask = vec![true; 9];

    c.bench_function("dqn_q_values_16x25x9", |b| {
        b.iter(|| agent.q_values(std::hint::black_box(&state)))
    });

    c.bench_function("dqn_greedy_action", |b| {
        b.iter(|| agent.greedy_action(std::hint::black_box(&state), &mask))
    });

    // Fill the replay so train_step actually trains.
    for i in 0..64 {
        agent.remember(Transition {
            state: state.clone(),
            action: i % 9,
            reward: (i % 3) as f64 * 0.1,
            next_state: Some(state.clone()),
            next_mask: mask.clone(),
        });
    }
    let mut group = c.benchmark_group("dqn_train");
    group.sample_size(20);
    group.bench_function("train_step_batch32", |b| b.iter(|| agent.train_step()));
    group.finish();

    c.bench_function("dqn_whiten", |b| {
        b.iter(|| agent.whiten(std::hint::black_box(&state), false))
    });
}

criterion_group!(benches, bench_dqn);
criterion_main!(benches);
