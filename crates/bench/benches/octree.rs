//! Octree benchmarks: build cost (the O(N) term of the paper's complexity
//! analysis), query assignment, start-cube sampling, and per-cube point
//! enumeration (Agent-Point's state construction input).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_index::{Octree, OctreeConfig};
use traj_query::{range_workload, QueryDistribution, RangeWorkloadSpec};
use trajectory::gen::{generate, DatasetSpec, Scale};

fn bench_octree(c: &mut Criterion) {
    let mut group = c.benchmark_group("octree_build");
    group.sample_size(10);
    for m in [8usize, 16, 32] {
        let store =
            generate(&DatasetSpec::geolife(Scale::Smoke).with_trajectories(m), 1).to_store();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("N={}", store.total_points())),
            &store,
            |b, store| b.iter(|| Octree::build(store, OctreeConfig::default())),
        );
    }
    group.finish();

    let db = generate(&DatasetSpec::geolife(Scale::Smoke).with_trajectories(16), 1);
    let mut tree = Octree::build(&db.to_store(), OctreeConfig::default());
    let spec = RangeWorkloadSpec::paper_default(100, QueryDistribution::Data);
    let mut rng = StdRng::seed_from_u64(2);
    let queries = range_workload(&db, &spec, &mut rng);

    c.bench_function("octree_assign_100_queries", |b| {
        b.iter(|| tree.assign_queries(std::hint::black_box(&queries)))
    });

    tree.assign_queries(&queries);
    c.bench_function("octree_sample_start", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| tree.sample_start(3, &mut rng))
    });

    c.bench_function("octree_points_by_trajectory_root", |b| {
        b.iter(|| tree.points_by_trajectory(tree.root()))
    });
}

criterion_group!(benches, bench_octree);
criterion_main!(benches);
