//! Wire-format codec benchmark: how fast does a frame carrying a mixed
//! query batch (or its response) encode and decode?
//!
//! The framing cost bounds the per-request overhead the serving layer
//! adds on top of the engine pass, so it should stay microseconds-scale
//! even for large heterogeneous batches. The checksum (FNV-1a 64 over
//! header + payload) dominates for big frames; the decode side adds
//! bounds-checked parsing and trajectory revalidation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_query::{Dissimilarity, KnnQuery, Query, QueryBatch, QueryResult, SimilarityQuery};
use traj_serve::wire::{decode_message, encode_message, Message};
use trajectory::{Cube, Point, Trajectory};

/// A deterministic mixed batch: 80% range, 10% kNN, 10% similarity,
/// with `probe_len`-point query trajectories.
fn mixed_batch(queries: usize, probe_len: usize) -> QueryBatch {
    let probe = Trajectory::new(
        (0..probe_len)
            .map(|i| Point::new(i as f64 * 13.7, i as f64 * -4.2, i as f64 + 1.0))
            .collect(),
    )
    .expect("valid probe");
    let qs = (0..queries)
        .map(|i| {
            let f = i as f64;
            let cube = Cube::new(f, f + 1_000.0, -f, -f + 1_000.0, 0.0, 3_600.0);
            match i % 10 {
                8 => Query::Knn(KnnQuery {
                    query: probe.clone(),
                    ts: 0.0,
                    te: 3_600.0,
                    k: 3,
                    measure: Dissimilarity::Edr { eps: 2_000.0 },
                }),
                9 => Query::Similarity(SimilarityQuery {
                    query: probe.clone(),
                    ts: 0.0,
                    te: 3_600.0,
                    delta: 5_000.0,
                    step: 600.0,
                }),
                _ => Query::Range(cube),
            }
        })
        .collect();
    QueryBatch::from_queries(qs)
}

fn mixed_response(queries: usize, ids_per_result: usize) -> Vec<QueryResult> {
    (0..queries)
        .map(|i| QueryResult::Range((0..ids_per_result).map(|j| i * 1_000 + j).collect()))
        .collect()
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    for &queries in &[16usize, 256] {
        let request = Message::Request(mixed_batch(queries, 32));
        let request_frame = encode_message(&request);
        let response = Message::Response(mixed_response(queries, 20));
        let response_frame = encode_message(&response);

        group.bench_with_input(
            BenchmarkId::new("encode_request", queries),
            &request,
            |b, msg| b.iter(|| encode_message(msg)),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_request", queries),
            &request_frame,
            |b, frame| b.iter(|| decode_message(frame).expect("valid frame")),
        );
        group.bench_with_input(
            BenchmarkId::new("encode_response", queries),
            &response,
            |b, msg| b.iter(|| encode_message(msg)),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_response", queries),
            &response_frame,
            |b, frame| b.iter(|| decode_message(frame).expect("valid frame")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
