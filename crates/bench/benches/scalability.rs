//! Fig. 8(a) as a criterion bench: RL4QDTS + representative baselines'
//! simplification time as the data size grows (OSM-like data, fixed
//! ratio). The shape — near-linear growth, Top-Down fastest, Bottom-Up
//! slowest — is the reproduced claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdts_eval::suite::{state_workload, train_rl4qdts, Rl4QdtsSimplifier};
use rl4qdts::PolicyVariant;
use traj_query::QueryDistribution;
use traj_simp::{Adaptation, BottomUp, Simplifier, TopDown};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::ErrorMeasure;

fn bench_scalability(c: &mut Criterion) {
    let spec = DatasetSpec::osm(Scale::Smoke);
    let train_db = generate(&spec.clone().with_trajectories(4), 11);
    let model = train_rl4qdts(&train_db, QueryDistribution::Data, 8, 11);

    let mut group = c.benchmark_group("fig8a_time_vs_datasize");
    group.sample_size(10);
    for m in [4usize, 8, 16] {
        let db = generate(&spec.clone().with_trajectories(m), 12);
        let budget = ((db.total_points() as f64 * 0.05) as usize).max(traj_simp::min_points(&db));
        let n = db.total_points();

        let td = TopDown::new(ErrorMeasure::Ped, Adaptation::Each);
        group.bench_with_input(BenchmarkId::new("TopDown(E,PED)", n), &db, |b, db| {
            b.iter(|| td.simplify(db, budget))
        });
        let bu = BottomUp::new(ErrorMeasure::Sed, Adaptation::Each);
        group.bench_with_input(BenchmarkId::new("BottomUp(E,SED)", n), &db, |b, db| {
            b.iter(|| bu.simplify(db, budget))
        });
        let rl = Rl4QdtsSimplifier {
            model: model.clone(),
            state_queries: state_workload(&db, QueryDistribution::Data, 8, 13),
            seed: 13,
            variant: PolicyVariant::FULL,
        };
        group.bench_with_input(BenchmarkId::new("RL4QDTS", n), &db, |b, db| {
            b.iter(|| rl.simplify(db, budget))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
