//! Fig. 8(b) as a criterion bench: simplification time as the budget `W`
//! grows at fixed data size. Top-Down's cost *grows* with W (more
//! insertions) while Bottom-Up's *shrinks* (fewer drops) — the crossover
//! the paper reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdts_eval::suite::{state_workload, train_rl4qdts, Rl4QdtsSimplifier};
use rl4qdts::PolicyVariant;
use traj_query::QueryDistribution;
use traj_simp::{Adaptation, BottomUp, Simplifier, TopDown};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::ErrorMeasure;

fn bench_budget_sweep(c: &mut Criterion) {
    let spec = DatasetSpec::osm(Scale::Smoke);
    let db = generate(&spec.clone().with_trajectories(8), 21);
    let train_db = generate(&spec.with_trajectories(4), 22);
    let model = train_rl4qdts(&train_db, QueryDistribution::Data, 8, 23);

    let mut group = c.benchmark_group("fig8b_time_vs_budget");
    group.sample_size(10);
    for ratio in [0.05f64, 0.15, 0.4] {
        let budget = ((db.total_points() as f64 * ratio) as usize).max(traj_simp::min_points(&db));
        let label = format!("{:.0}%", ratio * 100.0);

        let td = TopDown::new(ErrorMeasure::Ped, Adaptation::Each);
        group.bench_with_input(
            BenchmarkId::new("TopDown(E,PED)", &label),
            &budget,
            |b, &w| b.iter(|| td.simplify(&db, w)),
        );
        let bu = BottomUp::new(ErrorMeasure::Sed, Adaptation::Each);
        group.bench_with_input(
            BenchmarkId::new("BottomUp(E,SED)", &label),
            &budget,
            |b, &w| b.iter(|| bu.simplify(&db, w)),
        );
        let rl = Rl4QdtsSimplifier {
            model: model.clone(),
            state_queries: state_workload(&db, QueryDistribution::Data, 8, 24),
            seed: 24,
            variant: PolicyVariant::FULL,
        };
        group.bench_with_input(BenchmarkId::new("RL4QDTS", &label), &budget, |b, &w| {
            b.iter(|| rl.simplify(&db, w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_budget_sweep);
criterion_main!(benches);
