//! Table II's time column as a criterion bench: the cost of the four
//! RL4QDTS policy variants. The full method pays for both learned
//! decisions; dropping agents trades accuracy for speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdts_eval::suite::{state_workload, train_rl4qdts, Rl4QdtsSimplifier};
use rl4qdts::PolicyVariant;
use traj_query::QueryDistribution;
use traj_simp::Simplifier;
use trajectory::gen::{generate, DatasetSpec, Scale};

fn bench_ablation(c: &mut Criterion) {
    let db = generate(
        &DatasetSpec::geolife(Scale::Smoke).with_trajectories(12),
        31,
    );
    let train_db = generate(&DatasetSpec::geolife(Scale::Smoke), 32);
    let model = train_rl4qdts(&train_db, QueryDistribution::Data, 8, 33);
    let budget = ((db.total_points() as f64 * 0.05) as usize).max(traj_simp::min_points(&db));

    let mut group = c.benchmark_group("table2_variant_time");
    group.sample_size(10);
    for variant in [
        PolicyVariant::FULL,
        PolicyVariant::NO_CUBE,
        PolicyVariant::NO_POINT,
        PolicyVariant::NEITHER,
    ] {
        let rl = Rl4QdtsSimplifier {
            model: model.clone(),
            state_queries: state_workload(&db, QueryDistribution::Data, 8, 34),
            seed: 34,
            variant,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &rl,
            |b, rl| b.iter(|| rl.simplify(&db, budget)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
