//! Live-ingestion benchmarks: the WAL-backed write path and the cost
//! the merged base+delta view adds to reads.
//!
//! Three numbers bound the ingestion layer's story:
//!
//! - `wal_append_sync`: one acked 8-trajectory ingest batch — the
//!   append through the online simplifier plus the single `fsync` that
//!   makes it durable. This is the floor for write latency over the
//!   wire.
//! - `range_base_only` vs `range_merged`: the same range query over
//!   the immutable base engine alone and over the merged view with a
//!   resident delta — the read-side tax of serving un-compacted
//!   writes.
//! - `ingest_then_compact`: an ingest batch immediately folded into a
//!   new snapshot generation — the full write amplification of the
//!   smallest possible compaction cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use traj_query::{DbOptions, GenerationalDb, QueryEngine, QueryExecutor, SimpFactory};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::{KeepAll, Trajectory, TrajectoryDb};

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("qdts_bench_ingest");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn keep_all() -> SimpFactory {
    Box::new(|| Box::new(KeepAll))
}

fn trajs_of(db: &TrajectoryDb) -> Vec<Trajectory> {
    db.iter().map(|(_, t)| t.clone()).collect()
}

fn bench_ingest(c: &mut Criterion) {
    let base = generate(&DatasetSpec::tdrive(Scale::Smoke).with_trajectories(64), 9);
    let store = base.to_store();
    let chunk = trajs_of(&generate(
        &DatasetSpec::tdrive(Scale::Smoke).with_trajectories(8),
        42,
    ));

    let mut group = c.benchmark_group("live_ingest");
    // Every iteration hits the disk (WAL append + fsync, and for the
    // compaction case a whole snapshot rewrite); keep sampling small.
    group.sample_size(10);

    // Write path: one acked batch = append + single fsync.
    {
        let dir = unique_dir("wal");
        let db = GenerationalDb::create(&dir, &store, DbOptions::new(), keep_all())
            .expect("create live db");
        group.bench_function("wal_append_sync_8trajs", |b| {
            b.iter(|| db.ingest(&chunk).expect("ingest"))
        });
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Read path: base-only engine vs merged view with a resident delta
    // of the same extra trajectories.
    let cube = {
        let b = base.bounding_cube();
        trajectory::Cube::new(
            b.x_min,
            (b.x_min + b.x_max) / 2.0,
            b.y_min,
            (b.y_min + b.y_max) / 2.0,
            b.t_min,
            (b.t_min + b.t_max) / 2.0,
        )
    };
    {
        let engine = QueryEngine::over_store(&store, traj_query::EngineConfig::octree());
        group.bench_function("range_base_only", |b| b.iter(|| engine.range(&cube)));
    }
    {
        let dir = unique_dir("merged");
        let db = GenerationalDb::create(&dir, &store, DbOptions::new(), keep_all())
            .expect("create live db");
        db.ingest(&chunk).expect("seed delta");
        group.bench_function("range_merged", |b| b.iter(|| db.range(&cube)));
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Full cycle: ingest a batch, fold it into a fresh generation.
    {
        let dir = unique_dir("compact");
        let db = GenerationalDb::create(&dir, &store, DbOptions::new(), keep_all())
            .expect("create live db");
        group.bench_function("ingest_then_compact", |b| {
            b.iter(|| {
                db.ingest(&chunk).expect("ingest");
                db.compact().expect("compact")
            })
        });
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
