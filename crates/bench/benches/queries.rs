//! Query-operator benchmarks: the evaluation pipeline's building blocks
//! (range scan, EDR dynamic program, t2vec embedding, similarity check,
//! TRACLUS clustering), plus the headline comparison of this crate —
//! the indexed, parallel `QueryEngine` versus the naive linear scan on a
//! T-Drive-scale batch range workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_query::knn::{Dissimilarity, KnnQuery};
use traj_query::similarity::SimilarityQuery;
use traj_query::t2vec::T2vecEmbedder;
use traj_query::traclus::{traclus, TraclusParams};
use traj_query::{
    edr, range_workload, range_workload_store, BackendKind, DbOptions, EngineConfig, QueryBatch,
    QueryDistribution, QueryEngine, QueryExecutor, RangeWorkloadSpec, TrajDb,
};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::shard::PartitionStrategy;

fn bench_queries(c: &mut Criterion) {
    let db = generate(&DatasetSpec::geolife(Scale::Smoke).with_trajectories(16), 1);
    let spec = RangeWorkloadSpec::paper_default(20, QueryDistribution::Data);
    let mut rng = StdRng::seed_from_u64(1);
    let queries = range_workload(&db, &spec, &mut rng);

    c.bench_function("range_query_batch_20", |b| {
        b.iter(|| traj_query::range_query_batch(std::hint::black_box(&db), &queries))
    });

    let a = db.get(0);
    let bt = db.get(1);
    c.bench_function("edr_full_trajectories", |b| {
        b.iter(|| edr::edr(std::hint::black_box(a), std::hint::black_box(bt), 2_000.0))
    });

    let embedder = T2vecEmbedder::default();
    c.bench_function("t2vec_embed", |b| {
        b.iter(|| embedder.embed(std::hint::black_box(a)))
    });

    let (t0, t1) = db.time_span();
    let knn = KnnQuery {
        query: a.clone(),
        ts: t0,
        te: t1,
        k: 3,
        measure: Dissimilarity::Edr { eps: 2_000.0 },
    };
    c.bench_function("knn_edr_whole_db", |b| {
        b.iter(|| knn.execute(std::hint::black_box(&db)))
    });

    let sim = SimilarityQuery {
        query: a.clone(),
        ts: a.time_span().0,
        te: a.time_span().1,
        delta: 5_000.0,
        step: 600.0,
    };
    c.bench_function("similarity_whole_db", |b| {
        b.iter(|| sim.execute(std::hint::black_box(&db)))
    });

    let small: trajectory::TrajectoryDb = db.trajectories().iter().take(8).cloned().collect();
    let mut group = c.benchmark_group("traclus");
    group.sample_size(10);
    group.bench_function("traclus_8_trajectories", |b| {
        b.iter(|| traclus(std::hint::black_box(&small), &TraclusParams::default()))
    });
    group.finish();
}

/// The tentpole number: one batch range workload (paper query shape,
/// 2 km × 2 km × 7 days, data-distributed) over a T-Drive-shaped database,
/// executed by the naive per-query linear scan versus the `QueryEngine`
/// with each index backend. The acceptance bar is octree ≥ 5× over scan.
fn bench_batch_workload_indexed_vs_scan(c: &mut Criterion) {
    let db = generate(&DatasetSpec::tdrive(Scale::Small).with_trajectories(400), 7);
    let spec = RangeWorkloadSpec::paper_default(100, QueryDistribution::Data);
    let mut rng = StdRng::seed_from_u64(11);
    let queries = range_workload(&db, &spec, &mut rng);

    let mut group = c.benchmark_group("batch_range_workload");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("linear_scan", db.total_points()), |b| {
        b.iter(|| traj_query::range_query_batch(std::hint::black_box(&db), &queries))
    });
    for backend in [
        BackendKind::Scan,
        BackendKind::Octree,
        BackendKind::MedianKd,
    ] {
        let engine = QueryEngine::over(&db, EngineConfig::default().with_backend(backend));
        group.bench_function(BenchmarkId::new(backend.label(), db.total_points()), |b| {
            b.iter(|| std::hint::black_box(&engine).range_batch(&queries))
        });
    }
    // Index construction cost, for the amortization story.
    group.bench_function(BenchmarkId::new("octree_build", db.total_points()), |b| {
        b.iter(|| QueryEngine::over(std::hint::black_box(&db), EngineConfig::octree()))
    });
    group.finish();
}

/// The API-redesign number: one *mixed* workload — ranges, kNNs, and
/// similarities, the shape of the paper's Eq. 10 evaluation — executed
/// the pre-façade way (three homogeneous `*_batch` calls, serial per
/// kind, a synchronization barrier between kinds) versus as one
/// heterogeneous `QueryBatch` in a single work-stealing pass, on both
/// the single-store and the sharded executor.
fn bench_heterogeneous_batch(c: &mut Criterion) {
    let store = generate(&DatasetSpec::tdrive(Scale::Small).with_trajectories(200), 7).to_store();
    let db_aos = store.to_db();
    let mut rng = StdRng::seed_from_u64(23);
    let spec = RangeWorkloadSpec::paper_default(60, QueryDistribution::Data);
    let cubes = range_workload_store(&store, &spec, &mut rng);
    let (t0, t1) = store.time_span();
    let knns: Vec<KnnQuery> = (0..12)
        .map(|i| KnnQuery {
            query: db_aos.get(i * db_aos.len() / 12).clone(),
            ts: t0,
            te: t1,
            k: 3,
            measure: Dissimilarity::Edr { eps: 2_000.0 },
        })
        .collect();
    let sims: Vec<SimilarityQuery> = (0..12)
        .map(|i| {
            let q = db_aos.get(i * db_aos.len() / 12).clone();
            let (ts, te) = q.time_span();
            SimilarityQuery {
                query: q,
                ts,
                te,
                delta: 5_000.0,
                step: 600.0,
            }
        })
        .collect();
    // Interleave kinds so the heterogeneous plan cannot win by accident
    // of ordering.
    let mut batch = QueryBatch::new();
    for (i, q) in cubes.iter().enumerate() {
        batch.push_range(*q);
        if i % 5 == 0 && i / 5 < knns.len() {
            batch.push_knn(knns[i / 5].clone());
            batch.push_similarity(sims[i / 5].clone());
        }
    }

    let single = TrajDb::from_store(store.clone(), DbOptions::new());
    let sharded = TrajDb::from_store(
        store,
        DbOptions::new().partition(PartitionStrategy::Hash { parts: 4 }),
    );
    let mut group = c.benchmark_group("mixed_workload");
    group.sample_size(10);
    for (label, db) in [("single", &single), ("sharded", &sharded)] {
        group.bench_function(BenchmarkId::new("per_kind_batches", label), |b| {
            b.iter(|| {
                let db = std::hint::black_box(db);
                (
                    db.range_batch(&cubes),
                    db.knn_batch(&knns),
                    db.similarity_batch(&sims),
                )
            })
        });
        group.bench_function(BenchmarkId::new("heterogeneous_batch", label), |b| {
            b.iter(|| std::hint::black_box(db).execute_batch(&batch))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_queries,
    bench_batch_workload_indexed_vs_scan,
    bench_heterogeneous_batch
);
criterion_main!(benches);
