//! Query-operator benchmarks: the evaluation pipeline's building blocks
//! (range scan, EDR dynamic program, t2vec embedding, similarity check,
//! TRACLUS clustering).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_query::knn::{Dissimilarity, KnnQuery};
use traj_query::similarity::SimilarityQuery;
use traj_query::t2vec::T2vecEmbedder;
use traj_query::traclus::{traclus, TraclusParams};
use traj_query::{edr, range_workload, QueryDistribution, RangeWorkloadSpec};
use trajectory::gen::{generate, DatasetSpec, Scale};

fn bench_queries(c: &mut Criterion) {
    let db = generate(&DatasetSpec::geolife(Scale::Smoke).with_trajectories(16), 1);
    let spec = RangeWorkloadSpec::paper_default(20, QueryDistribution::Data);
    let mut rng = StdRng::seed_from_u64(1);
    let queries = range_workload(&db, &spec, &mut rng);

    c.bench_function("range_query_batch_20", |b| {
        b.iter(|| traj_query::range_query_batch(std::hint::black_box(&db), &queries))
    });

    let a = db.get(0);
    let bt = db.get(1);
    c.bench_function("edr_full_trajectories", |b| {
        b.iter(|| edr::edr(std::hint::black_box(a), std::hint::black_box(bt), 2_000.0))
    });

    let embedder = T2vecEmbedder::default();
    c.bench_function("t2vec_embed", |b| {
        b.iter(|| embedder.embed(std::hint::black_box(a)))
    });

    let (t0, t1) = db.time_span();
    let knn = KnnQuery {
        query: a.clone(),
        ts: t0,
        te: t1,
        k: 3,
        measure: Dissimilarity::Edr { eps: 2_000.0 },
    };
    c.bench_function("knn_edr_whole_db", |b| {
        b.iter(|| knn.execute(std::hint::black_box(&db)))
    });

    let sim = SimilarityQuery {
        query: a.clone(),
        ts: a.time_span().0,
        te: a.time_span().1,
        delta: 5_000.0,
        step: 600.0,
    };
    c.bench_function("similarity_whole_db", |b| {
        b.iter(|| sim.execute(std::hint::black_box(&db)))
    });

    let small: trajectory::TrajectoryDb =
        db.trajectories().iter().take(8).cloned().collect();
    let mut group = c.benchmark_group("traclus");
    group.sample_size(10);
    group.bench_function("traclus_8_trajectories", |b| {
        b.iter(|| traclus(std::hint::black_box(&small), &TraclusParams::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
