//! Storage-layout benchmark: columnar SoA `PointStore` versus the
//! pre-refactor AoS `Vec<Trajectory>` layout, on the two costs the layout
//! decides — index construction and a 100-query batch range workload over
//! a T-Drive-shaped database (100k+ points).
//!
//! The AoS baseline below is a faithful miniature of the old design: an
//! octree whose leaves store `(TrajId, point index)` pairs and whose point
//! tests chase `db.get(traj).point(idx)` through per-trajectory
//! allocations. The SoA side is the production `QueryEngine` over the
//! columnar store (bulk counting-scatter build, packed leaf slabs). The
//! acceptance bar for the refactor is SoA ≥ ~1.5x on build + batch-query
//! combined; on a 349k-point T-Drive-shaped database (1 core) this
//! measures ~1.6x on both build (38 ms → 24 ms) and the 100-query batch
//! (3.7 ms → 2.3 ms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_query::{
    range_workload, EngineConfig, QueryDistribution, QueryEngine, RangeWorkloadSpec,
    ShardedQueryEngine,
};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::io::{read_csv_store, write_csv};
use trajectory::shard::{partition, PartitionStrategy};
use trajectory::snapshot::{read_snapshot, write_snapshot, MappedStore};
use trajectory::{Cube, TrajectoryDb};

// ---------------------------------------------------------------------
// AoS baseline: the old pointer-chasing octree, kept verbatim so layout
// regressions stay measurable against the design this PR replaced.
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
struct AosRef {
    traj: usize,
    idx: u32,
}

struct AosNode {
    cube: Cube,
    depth: u32,
    children: Option<[u32; 8]>,
    points: Vec<AosRef>,
    point_count: u32,
    traj_count: u32,
}

struct AosOctree {
    nodes: Vec<AosNode>,
    max_depth: u32,
    leaf_capacity: usize,
}

impl AosOctree {
    fn build(db: &TrajectoryDb, max_depth: u32, leaf_capacity: usize) -> Self {
        let cube = db.bounding_cube();
        let mut tree = Self {
            nodes: vec![AosNode {
                cube,
                depth: 1,
                children: None,
                points: Vec::new(),
                point_count: 0,
                traj_count: 0,
            }],
            max_depth,
            leaf_capacity,
        };
        for (traj, t) in db.iter() {
            for idx in 0..t.len() as u32 {
                tree.insert(AosRef { traj, idx }, db);
            }
        }
        // The pre-refactor build ended with the bottom-up distinct-
        // trajectory aggregation (`M_B`); keep it so the baseline matches
        // what engine construction actually cost before this PR.
        tree.aggregate(0);
        tree
    }

    /// Bottom-up `M_B` via sorted-list merging — the old design.
    fn aggregate(&mut self, id: usize) -> Vec<usize> {
        let ids: Vec<usize> = match self.nodes[id].children {
            None => {
                let mut v: Vec<usize> = self.nodes[id].points.iter().map(|r| r.traj).collect();
                v.sort_unstable();
                v.dedup();
                v
            }
            Some(children) => {
                let mut merged: Vec<usize> = Vec::new();
                for c in children {
                    let child = self.aggregate(c as usize);
                    let mut out = Vec::with_capacity(merged.len() + child.len());
                    let (mut i, mut j) = (0, 0);
                    while i < merged.len() && j < child.len() {
                        match merged[i].cmp(&child[j]) {
                            std::cmp::Ordering::Less => {
                                out.push(merged[i]);
                                i += 1;
                            }
                            std::cmp::Ordering::Greater => {
                                out.push(child[j]);
                                j += 1;
                            }
                            std::cmp::Ordering::Equal => {
                                out.push(merged[i]);
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    out.extend_from_slice(&merged[i..]);
                    out.extend_from_slice(&child[j..]);
                    merged = out;
                }
                merged
            }
        };
        self.nodes[id].traj_count = ids.len() as u32;
        ids
    }

    fn insert(&mut self, r: AosRef, db: &TrajectoryDb) {
        let p = *db.get(r.traj).point(r.idx as usize);
        let mut id = 0usize;
        loop {
            let node = &mut self.nodes[id];
            node.point_count += 1;
            match node.children {
                Some(children) => {
                    let k = node.cube.octant_of(&p);
                    id = children[k] as usize;
                }
                None => {
                    node.points.push(r);
                    if node.points.len() > self.leaf_capacity && node.depth < self.max_depth {
                        self.split(id, db);
                    }
                    return;
                }
            }
        }
    }

    fn split(&mut self, id: usize, db: &TrajectoryDb) {
        let (cube, depth, points) = {
            let node = &mut self.nodes[id];
            (node.cube, node.depth, std::mem::take(&mut node.points))
        };
        let base = self.nodes.len() as u32;
        for c in cube.octants() {
            self.nodes.push(AosNode {
                cube: c,
                depth: depth + 1,
                children: None,
                points: Vec::new(),
                point_count: 0,
                traj_count: 0,
            });
        }
        let children: [u32; 8] = std::array::from_fn(|k| base + k as u32);
        self.nodes[id].children = Some(children);
        for r in points {
            let p = *db.get(r.traj).point(r.idx as usize);
            let k = cube.octant_of(&p);
            let child = &mut self.nodes[children[k] as usize];
            child.points.push(r);
            child.point_count += 1;
        }
        for &c in &children {
            if self.nodes[c as usize].points.len() > self.leaf_capacity
                && self.nodes[c as usize].depth < self.max_depth
            {
                self.split(c as usize, db);
            }
        }
    }

    fn range(&self, db: &TrajectoryDb, q: &Cube) -> Vec<usize> {
        let mut hit = vec![false; db.len()];
        self.mark(0, db, q, &mut hit);
        hit.iter()
            .enumerate()
            .filter_map(|(id, &h)| h.then_some(id))
            .collect()
    }

    fn mark(&self, id: usize, db: &TrajectoryDb, q: &Cube, hit: &mut [bool]) {
        let node = &self.nodes[id];
        if node.point_count == 0 || !node.cube.intersects(q) {
            return;
        }
        match node.children {
            Some(children) => {
                for c in children {
                    self.mark(c as usize, db, q, hit);
                }
            }
            None => {
                for r in &node.points {
                    if !hit[r.traj] && q.contains(db.get(r.traj).point(r.idx as usize)) {
                        hit[r.traj] = true;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The benchmark.
// ---------------------------------------------------------------------

fn bench_storage_layouts(c: &mut Criterion) {
    let db = generate(
        &DatasetSpec::tdrive(Scale::Small).with_trajectories(1000),
        7,
    );
    let store = db.to_store();
    let n = store.total_points();
    let spec = RangeWorkloadSpec::paper_default(100, QueryDistribution::Data);
    let mut rng = StdRng::seed_from_u64(11);
    let queries = range_workload(&db, &spec, &mut rng);

    let mut group = c.benchmark_group("storage_layout");
    group.sample_size(10);

    // Index construction over each layout.
    group.bench_function(BenchmarkId::new("aos_octree_build", n), |b| {
        b.iter(|| AosOctree::build(std::hint::black_box(&db), 12, 64))
    });
    group.bench_function(BenchmarkId::new("soa_octree_build", n), |b| {
        b.iter(|| QueryEngine::over_store(std::hint::black_box(&store), EngineConfig::octree()))
    });

    // 100-query batch over pre-built indexes (sequential on both sides so
    // the comparison isolates the layout, not the thread pool).
    let aos = AosOctree::build(&db, 12, 64);
    let soa = QueryEngine::over_store(&store, EngineConfig::octree());
    group.bench_function(BenchmarkId::new("aos_batch_100", n), |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| aos.range(std::hint::black_box(&db), q))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function(BenchmarkId::new("soa_batch_100", n), |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| std::hint::black_box(&soa).range(q))
                .collect::<Vec<_>>()
        })
    });

    // Sanity: both layouts must return identical results before any
    // timing claim means anything.
    for q in &queries {
        assert_eq!(aos.range(&db, q), soa.range(q), "layouts disagree");
    }
    group.finish();
}

// ---------------------------------------------------------------------
// Cold load: CSV re-parse vs owned snapshot read vs zero-copy mmap.
//
// The persistence claim of the snapshot format, measured instead of
// asserted. All three paths start from a file on disk and end with a
// query-ready store; "query-ready" is enforced by executing one range
// query so the mmap path cannot win by deferring all work to the first
// fault. At the 349k-point T-Drive scale (1 core, release, probe query
// included in every path) this measures: CSV parse ~177 ms, owned
// snapshot read ~20 ms, mmap open ~13 ms, mmap open + octree build +
// indexed query ~37 ms — snapshot-mmap cold start is ~14x faster than
// the CSV re-parse it replaces, and a fully indexed engine still stands
// up ~5x faster than parsing alone.
// ---------------------------------------------------------------------

fn bench_cold_load(c: &mut Criterion) {
    let db = generate(
        &DatasetSpec::tdrive(Scale::Small).with_trajectories(1000),
        7,
    );
    let store = db.to_store();
    let n = store.total_points();

    let dir = std::env::temp_dir().join("qdts_storage_bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv_path = dir.join("cold_load.csv");
    let snap_path = dir.join("cold_load.snap");
    let mut csv = Vec::new();
    write_csv(&db, &mut csv).expect("csv serialize");
    std::fs::write(&csv_path, &csv).expect("csv write");
    write_snapshot(&store, &snap_path).expect("snapshot write");

    // One probe query; every load path must answer it identically.
    let probe = {
        let spec = RangeWorkloadSpec::paper_default(1, QueryDistribution::Data);
        range_workload(&db, &spec, &mut StdRng::seed_from_u64(3))[0]
    };
    let expected = traj_query::range_query_store(&store, &probe);

    let mut group = c.benchmark_group("cold_load");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("csv_parse", n), |b| {
        b.iter(|| {
            let file = std::fs::File::open(std::hint::black_box(&csv_path)).expect("open csv");
            let s = read_csv_store(file).expect("parse csv");
            traj_query::range_query_store(&s, &probe)
        })
    });
    group.bench_function(BenchmarkId::new("snapshot_owned_read", n), |b| {
        b.iter(|| {
            let snap = read_snapshot(std::hint::black_box(&snap_path)).expect("read snapshot");
            traj_query::range_query_store(&snap.store, &probe)
        })
    });
    group.bench_function(BenchmarkId::new("snapshot_mmap_open", n), |b| {
        b.iter(|| {
            let mapped = MappedStore::open(std::hint::black_box(&snap_path)).expect("map");
            traj_query::range_query_store(&mapped, &probe)
        })
    });

    // Sanity: every cold-load path serves the same results.
    {
        let via_csv = read_csv_store(std::fs::File::open(&csv_path).expect("open")).expect("parse");
        let via_snap = read_snapshot(&snap_path).expect("read").store;
        let via_map = MappedStore::open(&snap_path).expect("map");
        assert_eq!(via_snap, store, "owned snapshot diverges");
        assert_eq!(via_map.xs(), store.xs(), "mapped columns diverge");
        assert_eq!(traj_query::range_query_store(&via_csv, &probe), expected);
        assert_eq!(traj_query::range_query_store(&via_map, &probe), expected);
    }

    // End-to-end serving: cold start to a built engine answering the
    // probe — the number the ROADMAP's "hardware-speed serving" cares
    // about.
    group.bench_function(BenchmarkId::new("serve_engine_from_mmap", n), |b| {
        b.iter(|| {
            let mapped = MappedStore::open(std::hint::black_box(&snap_path)).expect("map");
            let engine = QueryEngine::from_mapped(mapped, EngineConfig::octree());
            engine.range(&probe)
        })
    });
    group.finish();

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&snap_path).ok();
}

// ---------------------------------------------------------------------
// Sharded: parallel per-shard index builds + fan-out queries vs the
// single-store baseline, at the same T-Drive scale as the groups above.
//
// The build side is where sharding pays immediately: the single-store
// octree build is serial, while the sharded build runs one (smaller)
// build per shard across cores via par_map. The query side fans each
// range query out to the shards whose bounds intersect it and merges —
// equality with the single-store engine is asserted below before any
// timing claim. At the 349k-point scale with 8 hash shards this
// measures ~1.35x on build even on ONE core (18.6 ms -> 13.8 ms: eight
// shallow trees beat one deep one on locality alone); with multiple
// cores the per-shard builds additionally run concurrently, bounded by
// min(shards, cores). Hash shards overlap spatially, so every query
// visits all eight indexes — the batch measures the fan-out's overhead
// ceiling (~2.4x at 1 core), which bound-pruned grid/time partitions
// and multicore fan-out claw back.
// ---------------------------------------------------------------------

fn bench_sharded(c: &mut Criterion) {
    let db = generate(
        &DatasetSpec::tdrive(Scale::Small).with_trajectories(1000),
        7,
    );
    let store = db.to_store();
    let n = store.total_points();
    let spec = RangeWorkloadSpec::paper_default(100, QueryDistribution::Data);
    let queries = range_workload(&db, &spec, &mut StdRng::seed_from_u64(11));

    let shards = partition(&store, &PartitionStrategy::Hash { parts: 8 });

    let mut group = c.benchmark_group("sharded");
    group.sample_size(10);

    // Index construction: one serial build vs 8 parallel shard builds.
    group.bench_function(BenchmarkId::new("single_store_build", n), |b| {
        b.iter(|| QueryEngine::over_store(std::hint::black_box(&store), EngineConfig::octree()))
    });
    group.bench_function(BenchmarkId::new("sharded_build_hash8", n), |b| {
        b.iter(|| {
            ShardedQueryEngine::over_shards(std::hint::black_box(&shards), EngineConfig::octree())
        })
    });

    // 100-query batch over pre-built engines.
    let single = QueryEngine::over_store(&store, EngineConfig::octree());
    let sharded = ShardedQueryEngine::over_shards(&shards, EngineConfig::octree());
    group.bench_function(BenchmarkId::new("single_store_batch_100", n), |b| {
        b.iter(|| std::hint::black_box(&single).range_batch(&queries))
    });
    group.bench_function(BenchmarkId::new("sharded_batch_100", n), |b| {
        b.iter(|| std::hint::black_box(&sharded).range_batch(&queries))
    });

    // Sanity: the fan-out engine must agree with the single store before
    // any timing claim means anything.
    assert_eq!(
        single.range_batch(&queries),
        sharded.range_batch(&queries),
        "sharded fan-out diverges from single store"
    );
    group.finish();
}

// ---------------------------------------------------------------------
// Per-kernel throughput: the vectorized primitives vs their scalar
// references, on the same 349k-point T-Drive columns every group above
// uses. Each benchmark touches all N points per iteration (the probe
// cube is disjoint from the data, so `any_in_cube` never early-exits),
// which makes points/sec = N / mean-iteration-time. Dispatch is flipped
// at runtime via `set_force_scalar`, so one binary measures both sides;
// the acceptance bar for the SIMD PR is ≥ 2x on the range-scan or
// distance kernels. On this machine (1 core, AVX2) the measured ratios
// are recorded in BENCH_simd.json at the repo root.
// ---------------------------------------------------------------------

fn bench_kernels(c: &mut Criterion) {
    let db = generate(
        &DatasetSpec::tdrive(Scale::Small).with_trajectories(1000),
        7,
    );
    let store = db.to_store();
    let n = store.total_points();
    let (xs, ys, ts) = (store.xs(), store.ys(), store.ts());
    let offsets = store.offsets();
    // Covers the data spatially but misses every timestamp: containment
    // runs to the end of every run (no early exit) and each point is
    // tested on the full x/y/t chain — the shape of an index-pruned leaf
    // whose cube intersects the query spatially. A cube disjoint on x
    // would instead let the scalar chain short-circuit after one compare
    // per point, which benchmarks branch prediction, not the scan.
    let bc = store.bounding_cube();
    let miss = Cube {
        t_min: bc.t_max + 1.0,
        t_max: bc.t_max + 2.0,
        ..bc
    };
    // A half-set kept bitmap (every other point) for the masked kernel.
    let mut kept = trajectory::KeptBitmap::zeros(n);
    for g in (0..n as u32).step_by(2) {
        kept.insert(g);
    }
    let (half_a, half_b) = xs.split_at(n / 2);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    for (label, force_scalar) in [("simd", false), ("scalar", true)] {
        trajectory::simd::set_force_scalar(force_scalar);
        if force_scalar {
            assert!(!trajectory::simd::simd_active(), "force_scalar not honored");
        }

        // Range-scan kernel: per-trajectory cube containment over the
        // whole store, as the engine's leaf runs and scan backend do.
        group.bench_function(BenchmarkId::new(format!("range_scan_{label}"), n), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for w in offsets.windows(2) {
                    let (s, e) = (w[0] as usize, w[1] as usize);
                    if trajectory::simd::any_in_cube(
                        std::hint::black_box(&xs[s..e]),
                        &ys[s..e],
                        &ts[s..e],
                        &miss,
                    ) {
                        hits += 1;
                    }
                }
                hits
            })
        });

        // Masked range-scan kernel: the same sweep through the kept
        // bitmap (the D'-serving path on the scan backend).
        group.bench_function(BenchmarkId::new(format!("masked_scan_{label}"), n), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for w in offsets.windows(2) {
                    let (s, e) = (w[0] as usize, w[1] as usize);
                    if trajectory::simd::any_masked_in_cube(
                        std::hint::black_box(&xs[s..e]),
                        &ys[s..e],
                        &ts[s..e],
                        kept.words(),
                        s,
                        &miss,
                    ) {
                        hits += 1;
                    }
                }
                hits
            })
        });

        // Distance-accumulation kernel (kNN / embedding distances).
        group.bench_function(
            BenchmarkId::new(format!("squared_distance_{label}"), n),
            |b| {
                b.iter(|| {
                    trajectory::simd::squared_distance(
                        std::hint::black_box(half_a),
                        &half_b[..half_a.len()],
                    )
                })
            },
        );

        // Bounds-fold kernel (tight cubes, bounding boxes).
        group.bench_function(BenchmarkId::new(format!("min_max_{label}"), n), |b| {
            b.iter(|| trajectory::simd::min_max(std::hint::black_box(xs)))
        });
    }
    trajectory::simd::set_force_scalar(false);
    group.finish();
}

// ---------------------------------------------------------------------
// Raw vs quantized storage: cold load and file size at a 0.5-unit error
// bound. The quantized path pays a decode on open (it is not zero-copy)
// in exchange for the smaller file; both end query-ready and must agree
// on the probe within the bound's cube expansion.
// ---------------------------------------------------------------------

fn bench_quantized_load(c: &mut Criterion) {
    use trajectory::snapshot::write_snapshot_quantized;

    let db = generate(
        &DatasetSpec::tdrive(Scale::Small).with_trajectories(1000),
        7,
    );
    let store = db.to_store();
    let n = store.total_points();

    let dir = std::env::temp_dir().join("qdts_storage_bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let raw_path = dir.join("quant_cmp_raw.snap");
    let q_path = dir.join("quant_cmp.snap");
    write_snapshot(&store, &raw_path).expect("raw write");
    write_snapshot_quantized(&store, None, 0.5, &q_path).expect("quantized write");

    let raw_len = std::fs::metadata(&raw_path).expect("raw meta").len();
    let q_len = std::fs::metadata(&q_path).expect("q meta").len();
    assert!(q_len * 2 < raw_len, "quantized {q_len} vs raw {raw_len}");
    eprintln!(
        "quantized_load: raw {raw_len} bytes, quantized {q_len} bytes ({:.2}x smaller)",
        raw_len as f64 / q_len as f64
    );

    let probe = {
        let spec = RangeWorkloadSpec::paper_default(1, QueryDistribution::Data);
        range_workload(&db, &spec, &mut StdRng::seed_from_u64(3))[0]
    };

    let mut group = c.benchmark_group("quantized_load");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("raw_mmap_open", n), |b| {
        b.iter(|| {
            let mapped = MappedStore::open(std::hint::black_box(&raw_path)).expect("map");
            traj_query::range_query_store(&mapped, &probe)
        })
    });
    group.bench_function(BenchmarkId::new("quantized_open_decode", n), |b| {
        b.iter(|| {
            let mapped = MappedStore::open(std::hint::black_box(&q_path)).expect("decode");
            traj_query::range_query_store(&mapped, &probe)
        })
    });

    // Sanity: decoded coordinates honor the bound.
    {
        let decoded = MappedStore::open(&q_path).expect("decode");
        for (a, b) in store.xs().iter().zip(decoded.xs()) {
            assert!((a - b).abs() <= 0.5 * 1.000_001, "bound violated");
        }
    }
    group.finish();

    std::fs::remove_file(&raw_path).ok();
    std::fs::remove_file(&q_path).ok();
}

criterion_group!(
    benches,
    bench_storage_layouts,
    bench_cold_load,
    bench_sharded,
    bench_kernels,
    bench_quantized_load
);
criterion_main!(benches);
