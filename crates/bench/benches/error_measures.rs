//! Micro-benchmarks of the four error measures (Eq. 1–2): the innermost
//! kernel of every simplifier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::ErrorMeasure;

fn bench_error_measures(c: &mut Criterion) {
    let db = generate(&DatasetSpec::geolife(Scale::Smoke), 1);
    let traj = db.get(0).clone();
    let n = traj.len();

    let mut group = c.benchmark_group("point_error");
    group.sample_size(20);
    for m in ErrorMeasure::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, &m| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 1..n - 1 {
                    acc += m.point_error(std::hint::black_box(&traj), 0, n - 1, i);
                }
                acc
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("trajectory_error");
    group.sample_size(20);
    let kept: Vec<u32> = (0..n as u32).step_by(8).chain([n as u32 - 1]).collect();
    for m in ErrorMeasure::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, &m| {
            b.iter(|| m.trajectory_error(std::hint::black_box(&traj), &kept))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_error_measures);
criterion_main!(benches);
