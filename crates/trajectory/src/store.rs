//! Columnar (struct-of-arrays) trajectory storage.
//!
//! The simplified database is what gets queried at scale, and every hot
//! path — octree construction, range/kNN scans, Eq. 10 workload
//! maintenance, materializing `D'` — walks *points*, not trajectories. The
//! classic `Vec<Trajectory>` of `Vec<Point>` layout makes each of those
//! walks chase a pointer per trajectory and interleave x/y/t in memory.
//!
//! [`PointStore`] instead keeps the whole database as three contiguous
//! `f64` columns (`xs`, `ys`, `ts`) plus a per-trajectory offset table:
//!
//! ```text
//!  xs: [ x0 x1 x2 | x3 x4 | x5 x6 x7 x8 | ... ]
//!  ys: [ y0 y1 y2 | y3 y4 | y5 y6 y7 y8 | ... ]
//!  ts: [ t0 t1 t2 | t3 t4 | t5 t6 t7 t8 | ... ]
//!           traj 0 | traj 1 |    traj 2  | ...
//!  offsets: [0, 3, 5, 9, ...]
//! ```
//!
//! A point's *global id* ([`PointId`]) is simply its column index, so an
//! index leaf can store bare `u32`s instead of `(TrajId, u32)` pairs, and a
//! query engine tests containment with three contiguous loads. Trajectories
//! are exposed as zero-copy [`TrajView`]s (three sub-slices), which
//! implement the whole read-side API of [`Trajectory`].
//!
//! The store is **append-only**: whole trajectories via
//! [`PointStore::push_traj`] / [`PointStore::push_points`], or point-at-a-
//! time streaming ingestion via [`PointStore::begin_traj`] /
//! [`PointStore::push_point`] / [`PointStore::end_traj`] (the access
//! pattern of one-pass error-bounded streaming simplifiers). This layout is
//! also the stepping stone to mmap persistence and sharded stores: the
//! columns are plain `f64` runs with no interior pointers.

use crate::bbox::Cube;
use crate::db::{Simplification, TrajId, TrajectoryDb};
use crate::point::Point;
use crate::snapshot::MappedStore;
use crate::traj::Trajectory;

/// Global identifier of a point inside a [`PointStore`]: its column index.
pub type PointId = u32;

/// A trajectory database stored as struct-of-arrays columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointStore {
    xs: Vec<f64>,
    ys: Vec<f64>,
    ts: Vec<f64>,
    /// `offsets[id]..offsets[id + 1]` is trajectory `id`'s column range.
    /// Always ends with the committed point count; points past the last
    /// sentinel belong to a still-open streaming trajectory.
    offsets: Vec<u32>,
    /// True between [`PointStore::begin_traj`] and
    /// [`PointStore::end_traj`].
    open: bool,
}

impl PointStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self {
            xs: Vec::new(),
            ys: Vec::new(),
            ts: Vec::new(),
            offsets: vec![0],
            open: false,
        }
    }

    /// An empty store with room for `trajs` trajectories of `points` total
    /// points.
    #[must_use]
    pub fn with_capacity(trajs: usize, points: usize) -> Self {
        let mut offsets = Vec::with_capacity(trajs + 1);
        offsets.push(0);
        Self {
            xs: Vec::with_capacity(points),
            ys: Vec::with_capacity(points),
            ts: Vec::with_capacity(points),
            offsets,
            open: false,
        }
    }

    /// Assembles a store directly from already-validated columns (the
    /// snapshot loader's path). The caller guarantees the usual invariants:
    /// equal column lengths, `offsets` monotone starting at 0 and ending at
    /// the point count, per-trajectory time order.
    pub(crate) fn from_raw_columns(
        xs: Vec<f64>,
        ys: Vec<f64>,
        ts: Vec<f64>,
        offsets: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(xs.len(), ys.len());
        debug_assert_eq!(xs.len(), ts.len());
        debug_assert_eq!(*offsets.last().expect("sentinel") as usize, xs.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            xs,
            ys,
            ts,
            offsets,
            open: false,
        }
    }

    /// Converts an AoS database into columns (the compat path for `io`,
    /// generators, and existing call sites).
    #[must_use]
    pub fn from_db(db: &TrajectoryDb) -> Self {
        let mut store = Self::with_capacity(db.len(), db.total_points());
        for (_, t) in db.iter() {
            store.push_traj(t);
        }
        store
    }

    /// Materializes the columns back into an AoS [`TrajectoryDb`].
    #[must_use]
    pub fn to_db(&self) -> TrajectoryDb {
        self.views()
            .map(|v| Trajectory::from_sorted_unchecked(v.collect_points()))
            .collect()
    }

    // ------------------------------------------------------------------
    // Append-only ingestion.
    // ------------------------------------------------------------------

    /// Appends an already-validated trajectory, returning its id.
    pub fn push_traj(&mut self, t: &Trajectory) -> TrajId {
        assert!(!self.open, "finish the open trajectory first");
        for p in t.points() {
            self.xs.push(p.x);
            self.ys.push(p.y);
            self.ts.push(p.t);
        }
        self.commit_traj()
    }

    /// Seals the points appended since the last sentinel as one
    /// trajectory, enforcing the u32 global-id capacity loudly instead of
    /// letting offsets wrap.
    fn commit_traj(&mut self) -> TrajId {
        assert!(
            self.xs.len() < u32::MAX as usize,
            "PointStore exceeds u32 point capacity; shard the store"
        );
        self.offsets.push(self.xs.len() as u32);
        self.offsets.len() - 2
    }

    /// Appends a trajectory from raw points with the same validation as
    /// [`Trajectory::new`] (non-empty, finite, time-ordered). On invalid
    /// input nothing is appended and `None` is returned.
    pub fn push_points(&mut self, pts: &[Point]) -> Option<TrajId> {
        assert!(!self.open, "finish the open trajectory first");
        if pts.is_empty()
            || !pts.iter().all(Point::is_finite)
            || pts.windows(2).any(|w| w[1].t < w[0].t)
        {
            return None;
        }
        for p in pts {
            self.xs.push(p.x);
            self.ys.push(p.y);
            self.ts.push(p.t);
        }
        Some(self.commit_traj())
    }

    /// Appends a (possibly foreign) view as a new trajectory. Empty views
    /// append nothing and return `None` — a zero-length trajectory would
    /// break every store invariant. Debug builds also assert the view's
    /// time order (views of a valid store always satisfy it).
    pub fn push_view(&mut self, v: TrajView<'_>) -> Option<TrajId> {
        assert!(!self.open, "finish the open trajectory first");
        if v.is_empty() {
            return None;
        }
        debug_assert!(v.ts.windows(2).all(|w| w[1] >= w[0]));
        self.xs.extend_from_slice(v.xs);
        self.ys.extend_from_slice(v.ys);
        self.ts.extend_from_slice(v.ts);
        Some(self.commit_traj())
    }

    /// Opens a new trajectory for streaming ingestion.
    ///
    /// # Panics
    /// When a trajectory is already open.
    pub fn begin_traj(&mut self) {
        assert!(!self.open, "a trajectory is already open");
        self.open = true;
    }

    /// Streams one point into the open trajectory. Returns `false` (and
    /// appends nothing) when the point is non-finite or regresses in time
    /// relative to the previous streamed point.
    ///
    /// # Panics
    /// When no trajectory is open.
    pub fn push_point(&mut self, p: Point) -> bool {
        assert!(self.open, "begin_traj before push_point");
        if !p.is_finite() {
            return false;
        }
        if let Some(&last_t) = self.ts.last() {
            // Only constrain against points of the *open* trajectory.
            if self.xs.len() as u32 > *self.offsets.last().expect("sentinel") && p.t < last_t {
                return false;
            }
        }
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.ts.push(p.t);
        true
    }

    /// Closes the open trajectory, returning its id — or `None` (and
    /// discarding nothing, as nothing was buffered) when no point was
    /// streamed since [`PointStore::begin_traj`].
    pub fn end_traj(&mut self) -> Option<TrajId> {
        assert!(self.open, "no open trajectory");
        self.open = false;
        let committed = *self.offsets.last().expect("sentinel") as usize;
        if self.xs.len() == committed {
            return None;
        }
        Some(self.commit_traj())
    }

    // ------------------------------------------------------------------
    // Shape.
    // ------------------------------------------------------------------

    /// Number of (committed) trajectories `M`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the store holds no committed trajectory.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total number of committed points `N`.
    #[inline]
    #[must_use]
    pub fn total_points(&self) -> usize {
        *self.offsets.last().expect("sentinel") as usize
    }

    /// The per-trajectory offset table (length `M + 1`, starts at 0).
    #[inline]
    #[must_use]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The x column (committed points).
    #[inline]
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs[..self.total_points()]
    }

    /// The y column (committed points).
    #[inline]
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys[..self.total_points()]
    }

    /// The t column (committed points).
    #[inline]
    #[must_use]
    pub fn ts(&self) -> &[f64] {
        &self.ts[..self.total_points()]
    }

    // ------------------------------------------------------------------
    // Access.
    // ------------------------------------------------------------------

    /// Zero-copy view of trajectory `id`.
    #[inline]
    #[must_use]
    pub fn view(&self, id: TrajId) -> TrajView<'_> {
        let lo = self.offsets[id] as usize;
        let hi = self.offsets[id + 1] as usize;
        TrajView {
            xs: &self.xs[lo..hi],
            ys: &self.ys[lo..hi],
            ts: &self.ts[lo..hi],
        }
    }

    /// Iterator over all trajectory views in id order.
    pub fn views(&self) -> impl Iterator<Item = TrajView<'_>> {
        (0..self.len()).map(move |id| self.view(id))
    }

    /// Iterator over `(id, view)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TrajId, TrajView<'_>)> {
        (0..self.len()).map(move |id| (id, self.view(id)))
    }

    /// The point with global id `gid`.
    #[inline]
    #[must_use]
    pub fn point(&self, gid: PointId) -> Point {
        let i = gid as usize;
        Point::new(self.xs[i], self.ys[i], self.ts[i])
    }

    /// Global column range of trajectory `id`.
    #[inline]
    #[must_use]
    pub fn global_range(&self, id: TrajId) -> std::ops::Range<usize> {
        self.offsets[id] as usize..self.offsets[id + 1] as usize
    }

    /// Global id of point `idx` of trajectory `id`.
    #[inline]
    #[must_use]
    pub fn global_id(&self, id: TrajId, idx: u32) -> PointId {
        self.offsets[id] + idx
    }

    /// The trajectory owning global point `gid` (binary search over the
    /// offset table). For O(1) lookups in hot loops, materialize
    /// [`PointStore::owner_column`] once instead.
    #[must_use]
    pub fn traj_of(&self, gid: PointId) -> TrajId {
        debug_assert!((gid as usize) < self.total_points());
        self.offsets.partition_point(|&o| o <= gid) - 1
    }

    /// Splits a global id into `(trajectory, local point index)`.
    #[must_use]
    pub fn locate(&self, gid: PointId) -> (TrajId, u32) {
        let id = self.traj_of(gid);
        (id, gid - self.offsets[id])
    }

    /// Materializes the owner column: `owners[gid]` = owning trajectory.
    /// O(N) once, then O(1) per lookup — what the query engine uses to mark
    /// result trajectories while scanning index leaves.
    #[must_use]
    pub fn owner_column(&self) -> Vec<u32> {
        let mut owners = Vec::with_capacity(self.total_points());
        for id in 0..self.len() {
            owners.resize(self.offsets[id + 1] as usize, id as u32);
        }
        owners
    }

    /// Smallest cube covering every committed point: three straight-line
    /// column scans instead of a pointer chase per trajectory (the fold
    /// lives in [`TrajView::bounding_cube`], applied to the whole store).
    #[must_use]
    pub fn bounding_cube(&self) -> Cube {
        TrajView {
            xs: self.xs(),
            ys: self.ys(),
            ts: self.ts(),
        }
        .bounding_cube()
    }

    /// Time span covered by the whole store.
    #[must_use]
    pub fn time_span(&self) -> (f64, f64) {
        let c = self.bounding_cube();
        (c.t_min, c.t_max)
    }

    // ------------------------------------------------------------------
    // Gathers.
    // ------------------------------------------------------------------

    /// Gathers the listed trajectories (in the given order) into a new
    /// store — how training samples sub-databases without cloning
    /// `Vec<Point>`s.
    #[must_use]
    pub fn gather_trajs(&self, ids: &[TrajId]) -> PointStore {
        let points = ids.iter().map(|&id| self.view(id).len()).sum();
        let mut out = PointStore::with_capacity(ids.len(), points);
        for &id in ids {
            // Views of a valid store are never empty.
            let _ = out.push_view(self.view(id));
        }
        out
    }

    /// Gathers the kept points of `simp` into a new store (the columnar
    /// `materialize`): one pass over the kept lists, no re-validation.
    #[must_use]
    pub fn gather(&self, simp: &Simplification) -> PointStore {
        debug_assert_eq!(simp.len(), self.len());
        if simp.total_points() == self.total_points() {
            // Fully-kept fast path: the gather is the identity.
            return self.clone();
        }
        let mut out = PointStore::with_capacity(self.len(), simp.total_points());
        for id in 0..self.len() {
            let base = self.offsets[id] as usize;
            for &idx in simp.kept(id) {
                let i = base + idx as usize;
                out.xs.push(self.xs[i]);
                out.ys.push(self.ys[i]);
                out.ts.push(self.ts[i]);
            }
            out.offsets.push(out.xs.len() as u32);
        }
        out
    }
}

impl From<&TrajectoryDb> for PointStore {
    fn from(db: &TrajectoryDb) -> Self {
        PointStore::from_db(db)
    }
}

impl From<&PointStore> for TrajectoryDb {
    fn from(store: &PointStore) -> Self {
        store.to_db()
    }
}

impl FromIterator<Trajectory> for PointStore {
    fn from_iter<I: IntoIterator<Item = Trajectory>>(iter: I) -> Self {
        let mut store = PointStore::new();
        for t in iter {
            store.push_traj(&t);
        }
        store
    }
}

/// A zero-copy view of one trajectory inside a [`PointStore`]: three column
/// sub-slices. `Copy`, 48 bytes, no allocation — this is what read paths
/// take instead of `&Trajectory`.
#[derive(Debug, Clone, Copy)]
pub struct TrajView<'a> {
    /// x coordinates.
    pub xs: &'a [f64],
    /// y coordinates.
    pub ys: &'a [f64],
    /// Timestamps (non-decreasing).
    pub ts: &'a [f64],
}

impl<'a> TrajView<'a> {
    /// Number of points.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the view covers no points.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The `i`-th point, assembled from the columns.
    #[inline]
    #[must_use]
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i], self.ts[i])
    }

    /// First point.
    #[inline]
    #[must_use]
    pub fn first(&self) -> Point {
        self.point(0)
    }

    /// Last point.
    #[inline]
    #[must_use]
    pub fn last(&self) -> Point {
        self.point(self.len() - 1)
    }

    /// Time span `[t1, tn]`.
    #[must_use]
    pub fn time_span(&self) -> (f64, f64) {
        (self.ts[0], self.ts[self.len() - 1])
    }

    /// Iterator over the points in time order.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.len()).map(move |i| self.point(i))
    }

    /// Materializes the view's points.
    #[must_use]
    pub fn collect_points(&self) -> Vec<Point> {
        self.points().collect()
    }

    /// Materializes the view as an owned [`Trajectory`].
    #[must_use]
    pub fn to_trajectory(&self) -> Trajectory {
        Trajectory::from_sorted_unchecked(self.collect_points())
    }

    /// Indices `[lo, hi]` (inclusive) of points with timestamps in
    /// `[ts, te]`, or `None` when the window misses the view. The search
    /// runs on the contiguous `ts` column.
    #[must_use]
    pub fn window_indices(&self, ts: f64, te: f64) -> Option<(usize, usize)> {
        if ts > te {
            return None;
        }
        let lo = self.ts.partition_point(|&t| t < ts);
        let hi = self.ts.partition_point(|&t| t <= te);
        if lo >= hi {
            None
        } else {
            Some((lo, hi - 1))
        }
    }

    /// The zero-copy sub-view restricted to the time window `[ts, te]`
    /// (`T[ts, te]`); `None` when no sampled point falls inside.
    #[must_use]
    pub fn window(&self, ts: f64, te: f64) -> Option<TrajView<'a>> {
        let (lo, hi) = self.window_indices(ts, te)?;
        Some(self.slice(lo, hi + 1))
    }

    /// The sub-view over point indices `lo..hi`.
    #[must_use]
    pub fn slice(&self, lo: usize, hi: usize) -> TrajView<'a> {
        TrajView {
            xs: &self.xs[lo..hi],
            ys: &self.ys[lo..hi],
            ts: &self.ts[lo..hi],
        }
    }

    /// Synchronized position at time `t` (linear interpolation, clamped to
    /// the endpoints) — the view-side twin of
    /// [`Trajectory::position_at`](crate::Trajectory::position_at),
    /// delegating to the shared [`PointSeq`](crate::PointSeq)
    /// implementation so both layouts interpolate identically.
    #[must_use]
    pub fn position_at(&self, t: f64) -> Point {
        crate::seq::PointSeq::seq_position_at(self, t)
    }

    /// Smallest cube covering the view's points — three lane-wide
    /// [`min_max`](crate::simd::min_max) column reductions.
    #[must_use]
    pub fn bounding_cube(&self) -> Cube {
        let (x_min, x_max) = crate::simd::min_max(self.xs);
        let (y_min, y_max) = crate::simd::min_max(self.ys);
        let (t_min, t_max) = crate::simd::min_max(self.ts);
        Cube {
            x_min,
            x_max,
            y_min,
            y_max,
            t_min,
            t_max,
        }
    }
}

/// A bitmap of kept points over a [`PointStore`]'s global ids — the
/// query-time face of a [`Simplification`]: `contains(gid)` is one shift
/// and mask instead of a per-trajectory binary search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeptBitmap {
    words: Vec<u64>,
    len: usize,
}

impl KeptBitmap {
    /// An all-zero bitmap over `n` points.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
            len: n,
        }
    }

    /// Number of point slots.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers no points.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks global point `gid` as kept.
    #[inline]
    pub fn insert(&mut self, gid: PointId) {
        self.words[gid as usize / 64] |= 1u64 << (gid % 64);
    }

    /// Clears global point `gid`.
    #[inline]
    pub fn remove(&mut self, gid: PointId) {
        self.words[gid as usize / 64] &= !(1u64 << (gid % 64));
    }

    /// True when global point `gid` is kept.
    #[inline]
    #[must_use]
    pub fn contains(&self, gid: PointId) -> bool {
        self.words[gid as usize / 64] & (1u64 << (gid % 64)) != 0
    }

    /// Number of kept points.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The raw 64-bit words backing the bitmap (bit `gid % 64` of word
    /// `gid / 64` is point `gid`). This is the exact run the snapshot
    /// format persists.
    #[inline]
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reassembles a bitmap from its raw words (the snapshot loader's
    /// path).
    ///
    /// # Panics
    /// When `words` is not exactly `n.div_ceil(64)` long, or a bit above
    /// `n` is set — either would silently corrupt membership tests.
    #[must_use]
    pub fn from_words(words: Vec<u64>, n: usize) -> Self {
        assert_eq!(words.len(), n.div_ceil(64), "word count mismatch for {n}");
        if !n.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                assert_eq!(last >> (n % 64), 0, "bits set past the point count");
            }
        }
        Self { words, len: n }
    }
}

// ---------------------------------------------------------------------
// Layout-agnostic column access.
// ---------------------------------------------------------------------

/// Read-side access to columnar trajectory storage: the four plain runs
/// (`xs`/`ys`/`ts`/`offsets`) plus every derived read operation the index
/// builders and the query engine consume.
///
/// [`PointStore`] (heap-owned columns) and [`MappedStore`] (columns
/// backed by a read-only file mapping) both implement it, so one index build and one
/// query path serve either backend — a snapshot on disk is queryable with
/// zero deserialization. [`StoreRef`] is the enum that lets a struct hold
/// "some store" without going generic.
///
/// All provided methods mirror the semantics of [`PointStore`]'s inherent
/// methods of the same name; implementors only supply the four column
/// accessors.
pub trait AsColumns {
    /// The x column (committed points).
    fn xs(&self) -> &[f64];

    /// The y column (committed points).
    fn ys(&self) -> &[f64];

    /// The t column (committed points, non-decreasing per trajectory).
    fn ts(&self) -> &[f64];

    /// The per-trajectory offset table (length `M + 1`, starts at 0, ends
    /// at the total point count).
    fn offsets(&self) -> &[u32];

    /// Number of trajectories `M`.
    #[inline]
    fn len(&self) -> usize {
        self.offsets().len() - 1
    }

    /// True when the store holds no trajectory.
    #[inline]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of points `N`.
    #[inline]
    fn total_points(&self) -> usize {
        *self.offsets().last().expect("sentinel") as usize
    }

    /// Zero-copy view of trajectory `id`.
    #[inline]
    fn view(&self, id: TrajId) -> TrajView<'_> {
        let lo = self.offsets()[id] as usize;
        let hi = self.offsets()[id + 1] as usize;
        TrajView {
            xs: &self.xs()[lo..hi],
            ys: &self.ys()[lo..hi],
            ts: &self.ts()[lo..hi],
        }
    }

    /// Iterator over all trajectory views in id order.
    fn views(&self) -> impl Iterator<Item = TrajView<'_>> {
        (0..self.len()).map(move |id| self.view(id))
    }

    /// Iterator over `(id, view)` pairs.
    fn iter(&self) -> impl Iterator<Item = (TrajId, TrajView<'_>)> {
        (0..self.len()).map(move |id| (id, self.view(id)))
    }

    /// The point with global id `gid`.
    #[inline]
    fn point(&self, gid: PointId) -> Point {
        let i = gid as usize;
        Point::new(self.xs()[i], self.ys()[i], self.ts()[i])
    }

    /// Global column range of trajectory `id`.
    #[inline]
    fn global_range(&self, id: TrajId) -> std::ops::Range<usize> {
        self.offsets()[id] as usize..self.offsets()[id + 1] as usize
    }

    /// Global id of point `idx` of trajectory `id`.
    #[inline]
    fn global_id(&self, id: TrajId, idx: u32) -> PointId {
        self.offsets()[id] + idx
    }

    /// The trajectory owning global point `gid` (binary search over the
    /// offset table).
    fn traj_of(&self, gid: PointId) -> TrajId {
        debug_assert!((gid as usize) < self.total_points());
        self.offsets().partition_point(|&o| o <= gid) - 1
    }

    /// Splits a global id into `(trajectory, local point index)`.
    fn locate(&self, gid: PointId) -> (TrajId, u32) {
        let id = self.traj_of(gid);
        (id, gid - self.offsets()[id])
    }

    /// Materializes the owner column: `owners[gid]` = owning trajectory.
    fn owner_column(&self) -> Vec<u32> {
        let offsets = self.offsets();
        let mut owners = Vec::with_capacity(self.total_points());
        for id in 0..self.len() {
            owners.resize(offsets[id + 1] as usize, id as u32);
        }
        owners
    }

    /// Smallest cube covering every point.
    fn bounding_cube(&self) -> Cube {
        TrajView {
            xs: self.xs(),
            ys: self.ys(),
            ts: self.ts(),
        }
        .bounding_cube()
    }

    /// Time span covered by the whole store.
    fn time_span(&self) -> (f64, f64) {
        let c = self.bounding_cube();
        (c.t_min, c.t_max)
    }

    /// Materializes an owned, heap-backed copy of the columns. For an
    /// already-owned [`PointStore`] this is a full clone — it exists so a
    /// mapped store can be detached from its file.
    fn to_point_store(&self) -> PointStore {
        PointStore::from_raw_columns(
            self.xs().to_vec(),
            self.ys().to_vec(),
            self.ts().to_vec(),
            self.offsets().to_vec(),
        )
    }

    /// Materializes the columns into an AoS [`TrajectoryDb`].
    fn to_db(&self) -> TrajectoryDb {
        self.views()
            .map(|v| Trajectory::from_sorted_unchecked(v.collect_points()))
            .collect()
    }
}

impl AsColumns for PointStore {
    #[inline]
    fn xs(&self) -> &[f64] {
        PointStore::xs(self)
    }

    #[inline]
    fn ys(&self) -> &[f64] {
        PointStore::ys(self)
    }

    #[inline]
    fn ts(&self) -> &[f64] {
        PointStore::ts(self)
    }

    #[inline]
    fn offsets(&self) -> &[u32] {
        PointStore::offsets(self)
    }
}

/// A query engine's handle on "some columnar store": owned or borrowed,
/// heap-backed or mmap-backed, behind one non-generic type.
///
/// This is the seam that lets `traj_query::QueryEngine` (and anything else
/// holding a store long-term) serve queries straight off a
/// [`MappedStore`] without a generic parameter rippling through every
/// consumer. All read access goes through
/// the [`AsColumns`] impl.
#[derive(Debug)]
pub enum StoreRef<'a> {
    /// An owned heap-backed store.
    Owned(PointStore),
    /// A borrowed heap-backed store.
    Borrowed(&'a PointStore),
    /// An owned read-only file mapping.
    Mapped(MappedStore),
    /// A borrowed read-only file mapping.
    MappedRef(&'a MappedStore),
}

impl StoreRef<'_> {
    /// The heap-backed [`PointStore`] behind this handle, when there is
    /// one (`None` for mapped stores — use
    /// [`AsColumns::to_point_store`] to materialize a copy).
    #[must_use]
    pub fn as_point_store(&self) -> Option<&PointStore> {
        match self {
            StoreRef::Owned(s) => Some(s),
            StoreRef::Borrowed(s) => Some(s),
            StoreRef::Mapped(_) | StoreRef::MappedRef(_) => None,
        }
    }

    /// The file mapping behind this handle, when there is one.
    #[must_use]
    pub fn as_mapped(&self) -> Option<&MappedStore> {
        match self {
            StoreRef::Mapped(m) => Some(m),
            StoreRef::MappedRef(m) => Some(m),
            StoreRef::Owned(_) | StoreRef::Borrowed(_) => None,
        }
    }
}

impl AsColumns for StoreRef<'_> {
    #[inline]
    fn xs(&self) -> &[f64] {
        match self {
            StoreRef::Owned(s) => PointStore::xs(s),
            StoreRef::Borrowed(s) => PointStore::xs(s),
            StoreRef::Mapped(m) => m.xs(),
            StoreRef::MappedRef(m) => m.xs(),
        }
    }

    #[inline]
    fn ys(&self) -> &[f64] {
        match self {
            StoreRef::Owned(s) => PointStore::ys(s),
            StoreRef::Borrowed(s) => PointStore::ys(s),
            StoreRef::Mapped(m) => m.ys(),
            StoreRef::MappedRef(m) => m.ys(),
        }
    }

    #[inline]
    fn ts(&self) -> &[f64] {
        match self {
            StoreRef::Owned(s) => PointStore::ts(s),
            StoreRef::Borrowed(s) => PointStore::ts(s),
            StoreRef::Mapped(m) => m.ts(),
            StoreRef::MappedRef(m) => m.ts(),
        }
    }

    #[inline]
    fn offsets(&self) -> &[u32] {
        match self {
            StoreRef::Owned(s) => PointStore::offsets(s),
            StoreRef::Borrowed(s) => PointStore::offsets(s),
            StoreRef::Mapped(m) => m.offsets(),
            StoreRef::MappedRef(m) => m.offsets(),
        }
    }
}

impl From<PointStore> for StoreRef<'static> {
    fn from(s: PointStore) -> Self {
        StoreRef::Owned(s)
    }
}

impl<'a> From<&'a PointStore> for StoreRef<'a> {
    fn from(s: &'a PointStore) -> Self {
        StoreRef::Borrowed(s)
    }
}

impl From<MappedStore> for StoreRef<'static> {
    fn from(m: MappedStore) -> Self {
        StoreRef::Mapped(m)
    }
}

impl<'a> From<&'a MappedStore> for StoreRef<'a> {
    fn from(m: &'a MappedStore) -> Self {
        StoreRef::MappedRef(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DatasetSpec, Scale};

    fn sample_db() -> TrajectoryDb {
        generate(&DatasetSpec::geolife(Scale::Smoke), 42)
    }

    #[test]
    fn round_trips_through_columns() {
        let db = sample_db();
        let store = PointStore::from_db(&db);
        assert_eq!(store.len(), db.len());
        assert_eq!(store.total_points(), db.total_points());
        let back = store.to_db();
        for (id, t) in db.iter() {
            assert_eq!(back.get(id).points(), t.points());
        }
    }

    #[test]
    fn views_match_trajectories() {
        let db = sample_db();
        let store = PointStore::from_db(&db);
        for (id, t) in db.iter() {
            let v = store.view(id);
            assert_eq!(v.len(), t.len());
            assert_eq!(v.first(), *t.first());
            assert_eq!(v.last(), *t.last());
            for i in 0..t.len() {
                assert_eq!(v.point(i), *t.point(i));
            }
        }
    }

    #[test]
    fn global_ids_locate_and_round_trip() {
        let db = sample_db();
        let store = PointStore::from_db(&db);
        let owners = store.owner_column();
        for gid in 0..store.total_points() as u32 {
            let (traj, idx) = store.locate(gid);
            assert_eq!(owners[gid as usize] as usize, traj);
            assert_eq!(store.global_id(traj, idx), gid);
            assert_eq!(store.point(gid), *db.get(traj).point(idx as usize));
        }
    }

    #[test]
    fn bounding_cube_matches_aos() {
        let db = sample_db();
        let store = PointStore::from_db(&db);
        assert_eq!(store.bounding_cube(), db.bounding_cube());
        assert_eq!(store.time_span(), db.time_span());
    }

    #[test]
    fn streaming_ingestion_builds_trajectories() {
        let mut store = PointStore::new();
        store.begin_traj();
        assert!(store.push_point(Point::new(0.0, 0.0, 0.0)));
        assert!(store.push_point(Point::new(1.0, 1.0, 1.0)));
        assert!(!store.push_point(Point::new(2.0, 2.0, 0.5)), "time regress");
        assert!(!store.push_point(Point::new(f64::NAN, 0.0, 2.0)));
        assert_eq!(store.end_traj(), Some(0));
        assert_eq!(store.view(0).len(), 2);

        // A fresh trajectory may restart time from zero.
        store.begin_traj();
        assert!(store.push_point(Point::new(5.0, 5.0, 0.0)));
        assert_eq!(store.end_traj(), Some(1));
        assert_eq!(store.len(), 2);

        // Empty open trajectory commits nothing.
        store.begin_traj();
        assert_eq!(store.end_traj(), None);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn push_points_validates_like_trajectory_new() {
        let mut store = PointStore::new();
        assert_eq!(store.push_points(&[]), None);
        assert_eq!(
            store.push_points(&[Point::new(0.0, 0.0, 5.0), Point::new(1.0, 1.0, 4.0)]),
            None
        );
        assert_eq!(store.total_points(), 0, "failed pushes append nothing");
        assert_eq!(
            store.push_points(&[Point::new(0.0, 0.0, 5.0), Point::new(1.0, 1.0, 5.0)]),
            Some(0)
        );
    }

    #[test]
    fn window_and_position_match_trajectory_semantics() {
        let db = sample_db();
        let store = PointStore::from_db(&db);
        for (id, t) in db.iter().take(4) {
            let v = store.view(id);
            let (t0, t1) = t.time_span();
            let mid = 0.5 * (t0 + t1);
            assert_eq!(v.window_indices(t0, mid), t.window_indices(t0, mid));
            assert_eq!(v.window_indices(t1 + 1.0, t1 + 2.0), None);
            for probe in [t0 - 10.0, t0, mid, t1, t1 + 10.0] {
                assert_eq!(v.position_at(probe), t.position_at(probe));
            }
            if let Some(w) = v.window(t0, mid) {
                let tw = t.window(t0, mid).unwrap();
                assert_eq!(w.collect_points(), tw.points());
            }
        }
    }

    #[test]
    fn gather_trajs_subsets_without_cloning_points() {
        let db = sample_db();
        let store = PointStore::from_db(&db);
        let ids = vec![2usize, 0];
        let sub = store.gather_trajs(&ids);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.view(0).collect_points(), store.view(2).collect_points());
        assert_eq!(sub.view(1).collect_points(), store.view(0).collect_points());
    }

    #[test]
    fn gather_simplification_matches_materialize() {
        let db = sample_db();
        let store = PointStore::from_db(&db);
        let mut simp = Simplification::most_simplified(&db);
        for (id, t) in db.iter() {
            for idx in (0..t.len() as u32).step_by(3) {
                simp.insert(id, idx);
            }
        }
        let gathered = store.gather(&simp);
        let materialized = simp.materialize(&db);
        assert_eq!(gathered.len(), materialized.len());
        for (id, t) in materialized.iter() {
            assert_eq!(gathered.view(id).collect_points(), t.points());
        }
    }

    #[test]
    fn gather_full_simplification_is_identity() {
        let db = sample_db();
        let store = PointStore::from_db(&db);
        let full = Simplification::full(&db);
        assert_eq!(store.gather(&full), store);
    }

    #[test]
    fn bitmap_sets_and_clears() {
        let mut b = KeptBitmap::zeros(130);
        assert_eq!(b.len(), 130);
        assert!(!b.contains(129));
        b.insert(129);
        b.insert(0);
        b.insert(64);
        assert!(b.contains(129) && b.contains(0) && b.contains(64));
        assert_eq!(b.count(), 3);
        b.remove(64);
        assert!(!b.contains(64));
        assert_eq!(b.count(), 2);
    }
}
