//! Mutable delta store with a checksummed write-ahead log.
//!
//! Everything else in this crate is build-once-serve-forever: a
//! [`PointStore`](crate::PointStore) is parsed or mapped once and never
//! mutated. This module adds the write side of the system — the small,
//! bounded, *mutable* tier that live ingestion appends to while the big
//! immutable base snapshot keeps serving reads:
//!
//! - [`DeltaStore`] accepts the same streaming `begin_traj` /
//!   `push_point` / `end_traj` protocol as [`PointStore`]
//!   (crate::PointStore), but every accepted raw point is first recorded
//!   in a **write-ahead log** so a crash mid-ingest replays cleanly;
//! - the WAL reuses the snapshot format's conventions — little-endian
//!   fields via [`snapshot::put_f64`](crate::snapshot::put_f64) and
//!   friends, FNV-1a 64 checksums via
//!   [`snapshot::fnv1a64`](crate::snapshot::fnv1a64) — so corruption
//!   (bit flips, torn tails) is detected and replay stops at the last
//!   intact record, never ingesting garbage;
//! - an [`OnlineSimplifier`] is applied **at admission**: raw points go
//!   to the WAL, simplified points go to the in-memory columns. Replay
//!   re-feeds the raw log through a fresh simplifier, so the simplifier
//!   must be deterministic — the recovered store is then byte-identical
//!   to the pre-crash one.
//!
//! Only *complete* trajectories (a `begin..end` record group) are
//! recovered; an interrupted group at the tail of the log is truncated
//! on reopen. That is exactly the acknowledgement contract: callers ack
//! a write after [`DeltaStore::sync`], and a synced `end` record is by
//! definition part of a complete group.
//!
//! # WAL layout
//!
//! ```text
//! header   "QDTSWAL\0"  u32 version (=1)  u32 reserved (=0)      16 B
//! begin    [0x01] [fnv1a64 of kind byte]                          9 B
//! point    [0x02] [x f64le] [y f64le] [t f64le] [fnv1a64]        33 B
//! end      [0x03] [fnv1a64 of kind byte]                          9 B
//! ```
//!
//! The checksum of each record covers the kind byte plus the payload.
//!
//! # Example: crash replay
//!
//! ```
//! use trajectory::delta::{DeltaStore, KeepAll};
//! use trajectory::Point;
//!
//! let dir = std::env::temp_dir().join("delta_doc_example");
//! std::fs::create_dir_all(&dir).unwrap();
//! let wal = dir.join("wal-000000.log");
//! # std::fs::remove_file(&wal).ok();
//!
//! let mut d = DeltaStore::create(&wal, Box::new(KeepAll)).unwrap();
//! d.begin_traj().unwrap();
//! d.push_point(Point::new(1.0, 2.0, 0.0)).unwrap();
//! d.push_point(Point::new(3.0, 4.0, 1.0)).unwrap();
//! d.end_traj().unwrap();
//! d.sync().unwrap();
//! drop(d); // "crash"
//!
//! let d = DeltaStore::open(&wal, Box::new(KeepAll)).unwrap();
//! assert_eq!(d.store().len(), 1);
//! assert_eq!(d.store().total_points(), 2);
//! # std::fs::remove_file(&wal).ok();
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::db::TrajId;
use crate::point::Point;
use crate::snapshot::{fnv1a64, get_f64, get_u32, put_f64, put_u32, put_u64};
use crate::store::PointStore;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"QDTSWAL\0";
/// The current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Size of the fixed WAL header in bytes.
pub const WAL_HEADER_LEN: usize = 16;

const REC_BEGIN: u8 = 1;
const REC_POINT: u8 = 2;
const REC_END: u8 = 3;

const BEGIN_LEN: usize = 9; // kind + checksum
const POINT_LEN: usize = 33; // kind + 3 f64 + checksum
const END_LEN: usize = 9; // kind + checksum

// ---------------------------------------------------------------------
// Online simplification.
// ---------------------------------------------------------------------

/// A deterministic, one-pass, per-trajectory simplifier applied at
/// ingest admission.
///
/// The contract mirrors the streaming store protocol: `begin` once per
/// trajectory, `push` per raw point (emitting zero or more *kept*
/// points into `out`), `finish` to flush whatever the window still
/// holds. Implementations **must be deterministic**: crash recovery
/// replays the raw WAL through a fresh instance and expects to rebuild
/// the exact same columns.
pub trait OnlineSimplifier {
    /// Resets per-trajectory state; called before the first point of
    /// every trajectory.
    fn begin(&mut self);
    /// Feeds one raw point; kept points are appended to `out`.
    fn push(&mut self, p: Point, out: &mut Vec<Point>);
    /// Flushes buffered state at end-of-trajectory into `out`.
    fn finish(&mut self, out: &mut Vec<Point>);
}

/// The boxed simplifier form the WAL-backed stores hold. `Send + Sync`
/// because a [`DeltaStore`] is served behind shared locks: the
/// simplifier is only ever *mutated* through `&mut DeltaStore`, but the
/// type must be shareable for read-side access to the store.
pub type BoxedSimplifier = Box<dyn OnlineSimplifier + Send + Sync>;

/// The identity simplifier: every raw point is kept. Useful for tests
/// and for workloads that want lossless ingestion.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeepAll;

impl OnlineSimplifier for KeepAll {
    fn begin(&mut self) {}
    fn push(&mut self, p: Point, out: &mut Vec<Point>) {
        out.push(p);
    }
    fn finish(&mut self, _out: &mut Vec<Point>) {}
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Errors opening or replaying a delta WAL.
#[derive(Debug)]
pub enum DeltaError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`WAL_MAGIC`].
    BadMagic,
    /// The header names a version this build cannot read.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Io(e) => write!(f, "delta WAL I/O error: {e}"),
            DeltaError::BadMagic => write!(f, "not a delta WAL (bad magic)"),
            DeltaError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported delta WAL version {v} (expected {WAL_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DeltaError {
    fn from(e: std::io::Error) -> Self {
        DeltaError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Record encoding.
// ---------------------------------------------------------------------

fn encode_marker(kind: u8) -> [u8; BEGIN_LEN] {
    let mut rec = [0u8; BEGIN_LEN];
    rec[0] = kind;
    let sum = fnv1a64(&rec[..1]);
    put_u64(&mut rec, 1, sum);
    rec
}

fn encode_point(p: Point) -> [u8; POINT_LEN] {
    let mut rec = [0u8; POINT_LEN];
    rec[0] = REC_POINT;
    put_f64(&mut rec, 1, p.x);
    put_f64(&mut rec, 9, p.y);
    put_f64(&mut rec, 17, p.t);
    let sum = fnv1a64(&rec[..25]);
    put_u64(&mut rec, 25, sum);
    rec
}

fn checksum_ok(rec: &[u8]) -> bool {
    let body = rec.len() - 8;
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&rec[body..]);
    fnv1a64(&rec[..body]) == u64::from_le_bytes(stored)
}

/// One decoded replay of a WAL file: the recovered store plus the byte
/// offset one past the last *complete* trajectory group (everything
/// after it is a torn tail to truncate on reopen).
struct Replay {
    store: PointStore,
    /// File offset just past the last complete `begin..end` group.
    durable_end: u64,
    /// Raw (pre-simplification) points recovered, for observability.
    raw_points: u64,
}

fn replay_bytes(bytes: &[u8], simp: &mut dyn OnlineSimplifier) -> Result<Replay, DeltaError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(DeltaError::BadMagic);
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(DeltaError::BadMagic);
    }
    let version = get_u32(bytes, 8);
    if version != WAL_VERSION {
        return Err(DeltaError::UnsupportedVersion(version));
    }

    let mut store = PointStore::new();
    let mut pos = WAL_HEADER_LEN;
    let mut durable_end = WAL_HEADER_LEN as u64;
    let mut raw_points = 0u64;
    let mut group: Option<Vec<Point>> = None;

    while let Some(&kind) = bytes.get(pos) {
        let len = match kind {
            REC_BEGIN => BEGIN_LEN,
            REC_POINT => POINT_LEN,
            REC_END => END_LEN,
            _ => break, // unknown kind: torn/corrupt tail
        };
        if pos + len > bytes.len() {
            break; // truncated record
        }
        let rec = &bytes[pos..pos + len];
        if !checksum_ok(rec) {
            break; // bit flip: stop at last intact prefix
        }
        match (kind, &mut group) {
            (REC_BEGIN, None) => group = Some(Vec::new()),
            (REC_POINT, Some(pts)) => {
                let p = Point::new(get_f64(rec, 1), get_f64(rec, 9), get_f64(rec, 17));
                pts.push(p);
            }
            (REC_END, Some(pts)) => {
                raw_points += pts.len() as u64;
                simp.begin();
                let mut kept = Vec::new();
                for &p in pts.iter() {
                    simp.push(p, &mut kept);
                }
                simp.finish(&mut kept);
                store.push_points(&kept);
                group = None;
                durable_end = (pos + len) as u64;
            }
            // begin-inside-group / point-or-end outside a group: the
            // writer never produces these, so treat as a corrupt tail.
            _ => break,
        }
        pos += len;
    }

    Ok(Replay {
        store,
        durable_end,
        raw_points,
    })
}

/// Replays a WAL file read-only (no truncation, no lock), returning
/// the recovered store. Torn or corrupt tails are silently dropped —
/// only complete, checksummed `begin..end` groups are recovered.
///
/// This is how sealed (no-longer-written) WALs are loaded at database
/// open without mutating them.
pub fn replay_wal(
    path: impl AsRef<Path>,
    simp: &mut dyn OnlineSimplifier,
) -> Result<PointStore, DeltaError> {
    let mut bytes = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut bytes)?;
    Ok(replay_bytes(&bytes, simp)?.store)
}

// ---------------------------------------------------------------------
// DeltaStore.
// ---------------------------------------------------------------------

/// A mutable, WAL-guarded columnar store for live ingestion.
///
/// Writes stream in through the `begin_traj` / `push_point` /
/// `end_traj` protocol. Each accepted **raw** point is appended to the
/// WAL before anything else happens; the configured
/// [`OnlineSimplifier`] decides which points reach the in-memory
/// [`PointStore`] that queries read. Call [`DeltaStore::sync`] to make
/// everything written so far durable — that is the acknowledgement
/// point.
///
/// Dropping (or crashing) mid-trajectory loses only the unfinished
/// trajectory: [`DeltaStore::open`] truncates the torn tail and
/// recovers every complete group.
pub struct DeltaStore {
    store: PointStore,
    wal: BufWriter<File>,
    path: PathBuf,
    simp: BoxedSimplifier,
    /// Simplified points of the open trajectory, buffered until `end`.
    pending: Vec<Point>,
    /// Last *raw* timestamp of the open trajectory (admission gate; the
    /// store's own gate sees only simplified points).
    last_raw_t: Option<f64>,
    open: bool,
    raw_points: u64,
    /// Bytes of complete groups on disk (file truncation point on a
    /// torn-tail reopen).
    durable_end: u64,
}

impl std::fmt::Debug for DeltaStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaStore")
            .field("path", &self.path)
            .field("trajs", &self.store.len())
            .field("points", &self.store.total_points())
            .field("raw_points", &self.raw_points)
            .field("open", &self.open)
            .finish()
    }
}

impl DeltaStore {
    /// Creates a fresh delta store with an empty WAL at `path`
    /// (truncating any existing file).
    pub fn create(path: impl AsRef<Path>, simp: BoxedSimplifier) -> Result<Self, DeltaError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut wal = BufWriter::new(file);
        let mut header = [0u8; WAL_HEADER_LEN];
        header[..8].copy_from_slice(WAL_MAGIC);
        put_u32(&mut header, 8, WAL_VERSION);
        wal.write_all(&header)?;
        wal.flush()?;
        Ok(DeltaStore {
            store: PointStore::new(),
            wal,
            path,
            simp,
            pending: Vec::new(),
            last_raw_t: None,
            open: false,
            raw_points: 0,
            durable_end: WAL_HEADER_LEN as u64,
        })
    }

    /// Opens an existing WAL (creating it when absent), replaying every
    /// complete trajectory group and truncating any torn tail so the
    /// file is ready for appends.
    pub fn open(path: impl AsRef<Path>, mut simp: BoxedSimplifier) -> Result<Self, DeltaError> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            return Self::create(path, simp);
        }
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let replay = replay_bytes(&bytes, simp.as_mut())?;
        let file = OpenOptions::new().write(true).open(&path)?;
        if replay.durable_end < bytes.len() as u64 {
            file.set_len(replay.durable_end)?;
            file.sync_data()?;
        }
        use std::io::{Seek, SeekFrom};
        let mut file = file;
        file.seek(SeekFrom::Start(replay.durable_end))?;
        Ok(DeltaStore {
            store: replay.store,
            wal: BufWriter::new(file),
            path,
            simp,
            pending: Vec::new(),
            last_raw_t: None,
            open: false,
            raw_points: replay.raw_points,
            durable_end: replay.durable_end,
        })
    }

    /// Starts a new trajectory.
    ///
    /// # Panics
    /// When a trajectory is already open.
    pub fn begin_traj(&mut self) -> std::io::Result<()> {
        assert!(!self.open, "a trajectory is already open");
        self.wal.write_all(&encode_marker(REC_BEGIN))?;
        self.open = true;
        self.last_raw_t = None;
        self.pending.clear();
        self.simp.begin();
        Ok(())
    }

    /// Streams one raw point into the open trajectory. Returns
    /// `Ok(false)` (and logs nothing) when the point is non-finite or
    /// regresses in time relative to the previous **raw** point of this
    /// trajectory — the same admission rule as
    /// [`PointStore::push_point`].
    ///
    /// # Panics
    /// When no trajectory is open.
    pub fn push_point(&mut self, p: Point) -> std::io::Result<bool> {
        assert!(self.open, "begin_traj before push_point");
        if !p.is_finite() {
            return Ok(false);
        }
        if let Some(last) = self.last_raw_t {
            if p.t < last {
                return Ok(false);
            }
        }
        self.wal.write_all(&encode_point(p))?;
        self.last_raw_t = Some(p.t);
        self.raw_points += 1;
        self.simp.push(p, &mut self.pending);
        Ok(true)
    }

    /// Closes the open trajectory: logs the `end` record, flushes the
    /// WAL (buffered — call [`DeltaStore::sync`] for durability), runs
    /// the simplifier's flush, and commits the simplified points to the
    /// in-memory store. Returns `None` when no point survived (empty or
    /// fully rejected trajectory).
    ///
    /// # Panics
    /// When no trajectory is open.
    pub fn end_traj(&mut self) -> std::io::Result<Option<TrajId>> {
        assert!(self.open, "no open trajectory");
        self.wal.write_all(&encode_marker(REC_END))?;
        self.wal.flush()?;
        self.open = false;
        self.simp.finish(&mut self.pending);
        let id = self.store.push_points(&self.pending);
        self.pending.clear();
        self.last_raw_t = None;
        self.durable_end = self.wal.get_ref().metadata()?.len();
        Ok(id)
    }

    /// Convenience: ingests one whole trajectory (begin + points + end).
    pub fn push_traj(&mut self, pts: &[Point]) -> std::io::Result<Option<TrajId>> {
        self.begin_traj()?;
        for &p in pts {
            self.push_point(p)?;
        }
        self.end_traj()
    }

    /// Forces everything logged so far to stable storage. Acknowledge
    /// writes only after this returns.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.wal.flush()?;
        self.wal.get_ref().sync_data()
    }

    /// Flushes the WAL buffer to the OS and returns an independent
    /// handle to the WAL file, so the caller can run the durability
    /// `fsync` (`sync_data`) *without* holding whatever lock guards
    /// this store — the acknowledgement point is then
    /// `handle.sync_data()` returning. Anything already flushed when a
    /// later writer swaps or seals the WAL stays covered: sealing
    /// paths sync the old file before replacing it.
    pub fn sync_handle(&mut self) -> std::io::Result<File> {
        self.wal.flush()?;
        self.wal.get_ref().try_clone()
    }

    /// The simplified, committed columns queries read.
    #[must_use]
    pub fn store(&self) -> &PointStore {
        &self.store
    }

    /// Number of committed trajectories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no trajectory has been committed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Total committed (simplified) points.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.store.total_points()
    }

    /// Total raw points accepted (before simplification).
    #[must_use]
    pub fn raw_points(&self) -> u64 {
        self.raw_points
    }

    /// True while a trajectory is open.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Path of the WAL file backing this store.
    #[must_use]
    pub fn wal_path(&self) -> &Path {
        &self.path
    }

    /// Consumes the delta store, returning the committed columns.
    #[must_use]
    pub fn into_store(self) -> PointStore {
        self.store
    }
}

/// A [`DeltaStore`] is a [`PointSink`](crate::io::PointSink), so CSV
/// replay ([`crate::io::read_csv_into`]) and live network writes drive
/// the identical WAL-guarded ingest path.
impl crate::io::PointSink for DeltaStore {
    fn begin_traj(&mut self) -> std::io::Result<()> {
        DeltaStore::begin_traj(self)
    }
    fn push_point(&mut self, p: Point) -> std::io::Result<bool> {
        DeltaStore::push_point(self, p)
    }
    fn end_traj(&mut self) -> std::io::Result<Option<TrajId>> {
        DeltaStore::end_traj(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("qdts_delta_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        p
    }

    fn pts(n: usize, base: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(base + i as f64, base - i as f64, i as f64))
            .collect()
    }

    #[test]
    fn create_ingest_reopen_roundtrip() {
        let path = tmp("roundtrip.log");
        let mut d = DeltaStore::create(&path, Box::new(KeepAll)).unwrap();
        d.push_traj(&pts(3, 0.0)).unwrap().unwrap();
        d.push_traj(&pts(5, 10.0)).unwrap().unwrap();
        d.sync().unwrap();
        let (xs, ys, ts, offs) = (
            d.store().xs().to_vec(),
            d.store().ys().to_vec(),
            d.store().ts().to_vec(),
            d.store().offsets().to_vec(),
        );
        drop(d);

        let d = DeltaStore::open(&path, Box::new(KeepAll)).unwrap();
        assert_eq!(d.store().xs(), &xs[..]);
        assert_eq!(d.store().ys(), &ys[..]);
        assert_eq!(d.store().ts(), &ts[..]);
        assert_eq!(d.store().offsets(), &offs[..]);
        assert_eq!(d.raw_points(), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_nonfinite_and_time_regress() {
        let path = tmp("reject.log");
        let mut d = DeltaStore::create(&path, Box::new(KeepAll)).unwrap();
        d.begin_traj().unwrap();
        assert!(d.push_point(Point::new(0.0, 0.0, 0.0)).unwrap());
        assert!(!d.push_point(Point::new(f64::NAN, 0.0, 1.0)).unwrap());
        assert!(
            !d.push_point(Point::new(1.0, 1.0, -1.0)).unwrap(),
            "time regress"
        );
        assert!(d.push_point(Point::new(1.0, 1.0, 2.0)).unwrap());
        assert_eq!(d.end_traj().unwrap(), Some(0));
        assert_eq!(d.total_points(), 2);

        // Rejected points never hit the WAL: replay sees the same store.
        d.sync().unwrap();
        drop(d);
        let d = DeltaStore::open(&path, Box::new(KeepAll)).unwrap();
        assert_eq!(d.total_points(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trajectory_commits_nothing() {
        let path = tmp("empty.log");
        let mut d = DeltaStore::create(&path, Box::new(KeepAll)).unwrap();
        d.begin_traj().unwrap();
        assert_eq!(d.end_traj().unwrap(), None);
        d.push_traj(&pts(2, 0.0)).unwrap().unwrap();
        d.sync().unwrap();
        drop(d);
        let d = DeltaStore::open(&path, Box::new(KeepAll)).unwrap();
        assert_eq!((d.len(), d.total_points()), (1, 2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = tmp("torn.log");
        let mut d = DeltaStore::create(&path, Box::new(KeepAll)).unwrap();
        d.push_traj(&pts(3, 0.0)).unwrap().unwrap();
        // Unfinished second trajectory: begin + one point, no end.
        d.begin_traj().unwrap();
        d.push_point(Point::new(9.0, 9.0, 0.0)).unwrap();
        d.sync().unwrap();
        drop(d);

        let mut d = DeltaStore::open(&path, Box::new(KeepAll)).unwrap();
        assert_eq!((d.len(), d.total_points()), (1, 3), "torn group dropped");
        // The truncated log accepts new appends cleanly.
        d.push_traj(&pts(2, 50.0)).unwrap().unwrap();
        d.sync().unwrap();
        drop(d);
        let d = DeltaStore::open(&path, Box::new(KeepAll)).unwrap();
        assert_eq!((d.len(), d.total_points()), (2, 5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn any_bit_flip_truncates_to_prefix() {
        let path = tmp("bitflip.log");
        let mut d = DeltaStore::create(&path, Box::new(KeepAll)).unwrap();
        d.push_traj(&pts(2, 0.0)).unwrap().unwrap();
        d.push_traj(&pts(2, 10.0)).unwrap().unwrap();
        d.sync().unwrap();
        drop(d);

        let clean = std::fs::read(&path).unwrap();
        let group1_end = WAL_HEADER_LEN + BEGIN_LEN + 2 * POINT_LEN + END_LEN;
        // Flip one bit inside the *second* group: replay keeps group 1.
        for bit in [0usize, 3, 7] {
            let mut bytes = clean.clone();
            bytes[group1_end + 5] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();
            let d = DeltaStore::open(&path, Box::new(KeepAll)).unwrap();
            assert_eq!((d.len(), d.total_points()), (1, 2), "bit {bit}");
            drop(d);
            std::fs::write(&path, &clean).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let path = tmp("magic.log");
        std::fs::write(&path, b"NOTAWAL\0junkjunk").unwrap();
        assert!(matches!(
            DeltaStore::open(&path, Box::new(KeepAll)),
            Err(DeltaError::BadMagic)
        ));
        let mut hdr = [0u8; WAL_HEADER_LEN];
        hdr[..8].copy_from_slice(WAL_MAGIC);
        put_u32(&mut hdr, 8, 99);
        std::fs::write(&path, hdr).unwrap();
        assert!(matches!(
            DeltaStore::open(&path, Box::new(KeepAll)),
            Err(DeltaError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_wal_is_read_only() {
        let path = tmp("readonly.log");
        let mut d = DeltaStore::create(&path, Box::new(KeepAll)).unwrap();
        d.push_traj(&pts(2, 0.0)).unwrap().unwrap();
        d.begin_traj().unwrap();
        d.push_point(Point::new(1.0, 1.0, 0.0)).unwrap();
        d.sync().unwrap();
        drop(d);

        let before = std::fs::read(&path).unwrap();
        let mut keep = KeepAll;
        let store = replay_wal(&path, &mut keep).unwrap();
        assert_eq!((store.len(), store.total_points()), (1, 2));
        assert_eq!(std::fs::read(&path).unwrap(), before, "file untouched");
        std::fs::remove_file(&path).ok();
    }

    /// A deterministic thinning simplifier (keeps every other point plus
    /// the last): replay must reproduce the same simplified columns.
    struct EveryOther {
        i: usize,
        last: Option<Point>,
        emitted_last: bool,
    }
    impl OnlineSimplifier for EveryOther {
        fn begin(&mut self) {
            self.i = 0;
            self.last = None;
            self.emitted_last = false;
        }
        fn push(&mut self, p: Point, out: &mut Vec<Point>) {
            self.emitted_last = self.i.is_multiple_of(2);
            if self.emitted_last {
                out.push(p);
            }
            self.last = Some(p);
            self.i += 1;
        }
        fn finish(&mut self, out: &mut Vec<Point>) {
            if let (Some(p), false) = (self.last, self.emitted_last) {
                out.push(p);
            }
        }
    }

    #[test]
    fn simplifier_applies_at_admission_and_replay() {
        let path = tmp("simp.log");
        let fresh = || {
            Box::new(EveryOther {
                i: 0,
                last: None,
                emitted_last: false,
            })
        };
        let mut d = DeltaStore::create(&path, fresh()).unwrap();
        d.push_traj(&pts(5, 0.0)).unwrap().unwrap(); // keeps 0,2,4 → 3 pts
        d.push_traj(&pts(4, 10.0)).unwrap().unwrap(); // keeps 0,2 + last(3) → 3 pts
        assert_eq!(d.total_points(), 6);
        assert_eq!(d.raw_points(), 9, "WAL logs raw points");
        d.sync().unwrap();
        let ts = d.store().ts().to_vec();
        drop(d);

        let d = DeltaStore::open(&path, fresh()).unwrap();
        assert_eq!(d.total_points(), 6);
        assert_eq!(d.store().ts(), &ts[..], "deterministic replay");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_without_sync_mid_group_loses_only_open_traj() {
        let path = tmp("nosync.log");
        let mut d = DeltaStore::create(&path, Box::new(KeepAll)).unwrap();
        d.push_traj(&pts(3, 0.0)).unwrap().unwrap();
        // end_traj flushes the BufWriter, so complete groups reach the
        // OS even without sync(); only durability across power loss
        // needs sync. Simulate process death:
        d.begin_traj().unwrap();
        d.push_point(Point::new(0.0, 0.0, 0.0)).unwrap();
        drop(d);
        let d = DeltaStore::open(&path, Box::new(KeepAll)).unwrap();
        assert_eq!(d.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
