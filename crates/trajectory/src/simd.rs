//! Runtime-dispatched SIMD kernels for the columnar hot loops.
//!
//! The storage layer is columnar end-to-end precisely so the hot loops
//! can vectorize: a range query is six lane-wide compares over
//! contiguous `xs`/`ys`/`ts` runs, a distance is a lane-wide
//! multiply-accumulate, a kept-bitmap scan is a word-skip over `u64`
//! words. This module provides those primitives once, with three
//! backends behind one dispatching API:
//!
//! - **AVX2** on `x86_64` (runtime-detected with
//!   [`is_x86_feature_detected!`]), 4 × `f64` lanes;
//! - **NEON** on `aarch64` (runtime-detected), 2 × `f64` lanes;
//! - **scalar** everywhere else — and always available as the
//!   [`scalar`] submodule, so property tests can pin `scalar == SIMD`
//!   without toggling global state.
//!
//! Dispatch is decided once per process (cached feature detection) and
//! can be overridden two ways, both of which force the scalar backend:
//! the `QDTS_FORCE_SCALAR=1` environment variable (read once at first
//! kernel call — how CI's scalar-only job runs the whole suite through
//! the fallback) and [`set_force_scalar`] (runtime toggle for tests and
//! benchmarks). Compiling the `trajectory` crate with
//! `--no-default-features` removes the vector backends entirely; the
//! API is unchanged and everything runs scalar.
//!
//! # Semantics
//!
//! Every kernel is defined by its scalar reference implementation, and
//! the vector backends match it exactly on the comparisons that decide
//! query results:
//!
//! - Containment tests use *ordered* compares: a NaN coordinate is
//!   never inside a cube, exactly like [`Cube::contains_xyz`].
//! - [`min_max`] ignores NaN values the way [`f64::min`] /
//!   [`f64::max`] do (an all-NaN or empty slice yields the identity
//!   `(∞, −∞)`).
//! - Accumulating kernels ([`squared_distance`], [`sum_squares`]) use
//!   per-lane partial sums, so their results may differ from the
//!   scalar sum in the last ulps (floating-point addition is not
//!   associative). Tests compare them with a relative tolerance;
//!   boolean and index-set kernels are bit-exact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::bbox::Cube;

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

/// Runtime override: when set, every kernel call takes the scalar path.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// `QDTS_FORCE_SCALAR=1` in the environment pins the scalar backend for
/// the whole process (checked once).
fn env_forced() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("QDTS_FORCE_SCALAR").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

/// Forces (or releases) the scalar backend at runtime. Affects every
/// subsequent kernel call in the process — benchmarks use it to measure
/// scalar vs. SIMD on identical inputs.
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::SeqCst);
}

/// True when kernel calls currently dispatch to a vector backend.
#[must_use]
pub fn simd_active() -> bool {
    !(env_forced() || FORCE_SCALAR.load(Ordering::Relaxed)) && vector_available()
}

/// The backend the next kernel call will use: `"avx2"`, `"neon"`, or
/// `"scalar"` — benchmark reports record it.
#[must_use]
pub fn active_backend() -> &'static str {
    if !simd_active() {
        return "scalar";
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        return "avx2";
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        return "neon";
    }
    #[allow(unreachable_code)]
    "scalar"
}

/// Cached CPU feature detection (one `cpuid` per process, then an
/// atomic load).
fn vector_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        static AVX2: OnceLock<bool> = OnceLock::new();
        return *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"));
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        static NEON: OnceLock<bool> = OnceLock::new();
        return *NEON.get_or_init(|| std::arch::is_aarch64_feature_detected!("neon"));
    }
    #[allow(unreachable_code)]
    false
}

// ---------------------------------------------------------------------
// Public kernels (dispatching).
// ---------------------------------------------------------------------

/// True when any point `(xs[i], ys[i], ts[i])` lies inside `cube`
/// (inclusive bounds, NaN never contained) — the range-scan kernel.
/// All three slices must have equal length.
#[must_use]
pub fn any_in_cube(xs: &[f64], ys: &[f64], ts: &[f64], cube: &Cube) -> bool {
    debug_assert!(xs.len() == ys.len() && ys.len() == ts.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { avx2::any_in_cube(xs, ys, ts, cube) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees NEON is available.
        return unsafe { neon::any_in_cube(xs, ys, ts, cube) };
    }
    scalar::any_in_cube(xs, ys, ts, cube)
}

/// `(min, max)` of a slice, ignoring NaNs; `(∞, −∞)` when empty — the
/// bounds-precompute kernel behind per-leaf tight cubes and
/// [`bounding cube`](crate::store::AsColumns::bounding_cube) folds.
#[must_use]
pub fn min_max(values: &[f64]) -> (f64, f64) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { avx2::min_max(values) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees NEON is available.
        return unsafe { neon::min_max(values) };
    }
    scalar::min_max(values)
}

/// Sum of squared differences `Σ (a[i] − b[i])²` over two equal-length
/// slices — the Euclidean / embedding distance kernel.
#[must_use]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { avx2::squared_distance(a, b) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees NEON is available.
        return unsafe { neon::squared_distance(a, b) };
    }
    scalar::squared_distance(a, b)
}

/// Sum of squares `Σ v[i]²` — the normalization kernel.
#[must_use]
pub fn sum_squares(values: &[f64]) -> f64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { avx2::sum_squares(values) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees NEON is available.
        return unsafe { neon::sum_squares(values) };
    }
    scalar::sum_squares(values)
}

/// Squared planar distance accumulation `Σ (ax[i]−bx[i])² + (ay[i]−by[i])²`
/// — the SED-style accumulation over matched x/y runs.
#[must_use]
pub fn squared_distance_2d(ax: &[f64], ay: &[f64], bx: &[f64], by: &[f64]) -> f64 {
    debug_assert!(ax.len() == ay.len() && ax.len() == bx.len() && ax.len() == by.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { avx2::squared_distance(ax, bx) + avx2::squared_distance(ay, by) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees NEON is available.
        return unsafe { neon::squared_distance(ax, bx) + neon::squared_distance(ay, by) };
    }
    scalar::squared_distance(ax, bx) + scalar::squared_distance(ay, by)
}

/// Containment over a span of at most 64 points restricted to the set
/// bits of `select` (bit `i` selects index `i`; bits at or above
/// `xs.len()` are ignored): true when any selected point lies inside
/// `cube`. This is the partial-bitmap-word kernel behind
/// [`any_masked_in_cube`] — the vector backends compare whole lanes and
/// AND the movemask-style containment bits against the selection bits,
/// instead of falling back to per-bit scalar tests.
#[must_use]
pub fn any_selected_in_cube(xs: &[f64], ys: &[f64], ts: &[f64], select: u64, cube: &Cube) -> bool {
    debug_assert!(xs.len() == ys.len() && ys.len() == ts.len());
    debug_assert!(xs.len() <= 64);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { avx2::any_selected_in_cube(xs, ys, ts, select, cube) };
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if simd_active() {
        // SAFETY: dispatch guarantees NEON is available.
        return unsafe { neon::any_selected_in_cube(xs, ys, ts, select, cube) };
    }
    scalar::any_selected_in_cube(xs, ys, ts, select, cube)
}

/// Bitmap-masked containment: true when any point whose bit is set in
/// `words` lies inside `cube`. Bit `base + i` of the bitmap (word
/// `(base+i)/64`, bit `(base+i)%64`) corresponds to slice index `i` —
/// the layout of a trajectory's run inside a store-wide
/// [`KeptBitmap`](crate::store::KeptBitmap). Zero words are skipped
/// 64 points at a time; fully-set words run the vector containment
/// kernel; partial words run the lane-masked containment kernel
/// ([`any_selected_in_cube`]), so no word shape degrades to per-bit
/// scalar probing on the vector backends.
#[must_use]
pub fn any_masked_in_cube(
    xs: &[f64],
    ys: &[f64],
    ts: &[f64],
    words: &[u64],
    base: usize,
    cube: &Cube,
) -> bool {
    debug_assert!(xs.len() == ys.len() && ys.len() == ts.len());
    let n = xs.len();
    let mut i = 0usize;
    while i < n {
        let bit = base + i;
        let word = words[bit / 64];
        // Bits of this word that are still ahead of us.
        let remaining = word >> (bit % 64);
        let span = (64 - bit % 64).min(n - i);
        if remaining == 0 {
            i += span;
            continue;
        }
        let span_mask = if span == 64 {
            !0u64
        } else {
            (1u64 << span) - 1
        };
        let masked = remaining & span_mask;
        if masked == span_mask {
            // Every point in the span is kept: lane-wide containment.
            if any_in_cube(&xs[i..i + span], &ys[i..i + span], &ts[i..i + span], cube) {
                return true;
            }
        } else if any_selected_in_cube(
            &xs[i..i + span],
            &ys[i..i + span],
            &ts[i..i + span],
            masked,
            cube,
        ) {
            // Partial word: lane-wide containment AND the selection bits.
            return true;
        }
        i += span;
    }
    false
}

/// Bitmap-masked gather: appends to `out` every `src[i]` whose bit
/// `base + i` is set in `words`, in index order. Zero words skip 64
/// elements at a time, fully-set words copy their whole span; returns
/// the number of values appended.
pub fn gather_masked(src: &[f64], words: &[u64], base: usize, out: &mut Vec<f64>) -> usize {
    let n = src.len();
    let before = out.len();
    let mut i = 0usize;
    while i < n {
        let bit = base + i;
        let word = words[bit / 64];
        let remaining = word >> (bit % 64);
        let span = (64 - bit % 64).min(n - i);
        if remaining == 0 {
            i += span;
            continue;
        }
        let span_mask = if span == 64 {
            !0u64
        } else {
            (1u64 << span) - 1
        };
        let masked = remaining & span_mask;
        if masked == span_mask {
            out.extend_from_slice(&src[i..i + span]);
        } else {
            let mut bits = masked;
            while bits != 0 {
                out.push(src[i + bits.trailing_zeros() as usize]);
                bits &= bits - 1;
            }
        }
        i += span;
    }
    out.len() - before
}

// ---------------------------------------------------------------------
// Scalar reference backend.
// ---------------------------------------------------------------------

/// The scalar reference implementations the vector backends are defined
/// against. Public so equality tests can compare `scalar::k(..)` with
/// the dispatching `k(..)` directly, without mutating global dispatch
/// state from concurrently running tests.
pub mod scalar {
    use crate::bbox::Cube;

    /// Scalar [`any_in_cube`](super::any_in_cube).
    #[must_use]
    pub fn any_in_cube(xs: &[f64], ys: &[f64], ts: &[f64], cube: &Cube) -> bool {
        xs.iter()
            .zip(ys)
            .zip(ts)
            .any(|((&x, &y), &t)| cube.contains_xyz(x, y, t))
    }

    /// Scalar [`any_selected_in_cube`](super::any_selected_in_cube):
    /// probe exactly the set bits, lowest first.
    #[must_use]
    pub fn any_selected_in_cube(
        xs: &[f64],
        ys: &[f64],
        ts: &[f64],
        select: u64,
        cube: &Cube,
    ) -> bool {
        let n = xs.len();
        let mut bits = if n < 64 {
            select & ((1u64 << n) - 1)
        } else {
            select
        };
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            if cube.contains_xyz(xs[j], ys[j], ts[j]) {
                return true;
            }
            bits &= bits - 1;
        }
        false
    }

    /// Scalar [`min_max`](super::min_max).
    #[must_use]
    pub fn min_max(values: &[f64]) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Scalar [`squared_distance`](super::squared_distance).
    #[must_use]
    pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    /// Scalar [`sum_squares`](super::sum_squares).
    #[must_use]
    pub fn sum_squares(values: &[f64]) -> f64 {
        values.iter().map(|&v| v * v).sum()
    }
}

// ---------------------------------------------------------------------
// AVX2 backend (x86_64, 4 × f64 lanes).
// ---------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use crate::bbox::Cube;
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn any_in_cube(xs: &[f64], ys: &[f64], ts: &[f64], cube: &Cube) -> bool {
        let n = xs.len();
        let x_min = _mm256_set1_pd(cube.x_min);
        let x_max = _mm256_set1_pd(cube.x_max);
        let y_min = _mm256_set1_pd(cube.y_min);
        let y_max = _mm256_set1_pd(cube.y_max);
        let t_min = _mm256_set1_pd(cube.t_min);
        let t_max = _mm256_set1_pd(cube.t_max);
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_pd(xs.as_ptr().add(i));
            let y = _mm256_loadu_pd(ys.as_ptr().add(i));
            let t = _mm256_loadu_pd(ts.as_ptr().add(i));
            // Ordered compares: any NaN lane yields false, like the
            // scalar chain in `Cube::contains_xyz`.
            let m = _mm256_and_pd(
                _mm256_and_pd(
                    _mm256_and_pd(
                        _mm256_cmp_pd::<_CMP_GE_OQ>(x, x_min),
                        _mm256_cmp_pd::<_CMP_LE_OQ>(x, x_max),
                    ),
                    _mm256_and_pd(
                        _mm256_cmp_pd::<_CMP_GE_OQ>(y, y_min),
                        _mm256_cmp_pd::<_CMP_LE_OQ>(y, y_max),
                    ),
                ),
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_GE_OQ>(t, t_min),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(t, t_max),
                ),
            );
            if _mm256_movemask_pd(m) != 0 {
                return true;
            }
            i += 4;
        }
        super::scalar::any_in_cube(&xs[i..], &ys[i..], &ts[i..], cube)
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn any_selected_in_cube(
        xs: &[f64],
        ys: &[f64],
        ts: &[f64],
        select: u64,
        cube: &Cube,
    ) -> bool {
        let n = xs.len();
        let x_min = _mm256_set1_pd(cube.x_min);
        let x_max = _mm256_set1_pd(cube.x_max);
        let y_min = _mm256_set1_pd(cube.y_min);
        let y_max = _mm256_set1_pd(cube.y_max);
        let t_min = _mm256_set1_pd(cube.t_min);
        let t_max = _mm256_set1_pd(cube.t_max);
        let mut i = 0usize;
        while i + 4 <= n {
            // Four selection bits for these lanes; skip wholly cleared
            // groups without touching the columns at all.
            let lane_sel = ((select >> i) & 0xF) as i32;
            if lane_sel != 0 {
                let x = _mm256_loadu_pd(xs.as_ptr().add(i));
                let y = _mm256_loadu_pd(ys.as_ptr().add(i));
                let t = _mm256_loadu_pd(ts.as_ptr().add(i));
                let m = _mm256_and_pd(
                    _mm256_and_pd(
                        _mm256_and_pd(
                            _mm256_cmp_pd::<_CMP_GE_OQ>(x, x_min),
                            _mm256_cmp_pd::<_CMP_LE_OQ>(x, x_max),
                        ),
                        _mm256_and_pd(
                            _mm256_cmp_pd::<_CMP_GE_OQ>(y, y_min),
                            _mm256_cmp_pd::<_CMP_LE_OQ>(y, y_max),
                        ),
                    ),
                    _mm256_and_pd(
                        _mm256_cmp_pd::<_CMP_GE_OQ>(t, t_min),
                        _mm256_cmp_pd::<_CMP_LE_OQ>(t, t_max),
                    ),
                );
                // Movemask turns per-lane containment into bits aligned
                // with the selection bits: a hit is their intersection.
                if _mm256_movemask_pd(m) & lane_sel != 0 {
                    return true;
                }
            }
            i += 4;
        }
        if i == n {
            // No tail — and `select >> 64` would overflow when n == 64.
            return false;
        }
        super::scalar::any_selected_in_cube(&xs[i..], &ys[i..], &ts[i..], select >> i, cube)
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn min_max(values: &[f64]) -> (f64, f64) {
        let n = values.len();
        if n < 8 {
            return super::scalar::min_max(values);
        }
        let mut lo = _mm256_set1_pd(f64::INFINITY);
        let mut hi = _mm256_set1_pd(f64::NEG_INFINITY);
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(values.as_ptr().add(i));
            // Operand order makes a NaN lane in `v` yield the
            // accumulator (min_pd returns the second operand when
            // either is NaN) — matching `f64::min`'s NaN-ignoring fold.
            lo = _mm256_min_pd(v, lo);
            hi = _mm256_max_pd(v, hi);
            i += 4;
        }
        let mut lo4 = [0.0f64; 4];
        let mut hi4 = [0.0f64; 4];
        _mm256_storeu_pd(lo4.as_mut_ptr(), lo);
        _mm256_storeu_pd(hi4.as_mut_ptr(), hi);
        let (mut l, mut h) = super::scalar::min_max(&values[i..]);
        for k in 0..4 {
            l = l.min(lo4[k]);
            h = h.max(hi4[k]);
        }
        (l, h)
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 4 <= n {
            let d = _mm256_sub_pd(
                _mm256_loadu_pd(a.as_ptr().add(i)),
                _mm256_loadu_pd(b.as_ptr().add(i)),
            );
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            i += 4;
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        lanes.iter().sum::<f64>() + super::scalar::squared_distance(&a[i..], &b[i..])
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_squares(values: &[f64]) -> f64 {
        let n = values.len();
        let mut acc = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(values.as_ptr().add(i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
            i += 4;
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        lanes.iter().sum::<f64>() + super::scalar::sum_squares(&values[i..])
    }
}

// ---------------------------------------------------------------------
// NEON backend (aarch64, 2 × f64 lanes).
// ---------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon {
    use crate::bbox::Cube;
    use std::arch::aarch64::*;

    /// # Safety
    /// Caller must ensure NEON is available.
    #[target_feature(enable = "neon")]
    pub unsafe fn any_in_cube(xs: &[f64], ys: &[f64], ts: &[f64], cube: &Cube) -> bool {
        let n = xs.len();
        let x_min = vdupq_n_f64(cube.x_min);
        let x_max = vdupq_n_f64(cube.x_max);
        let y_min = vdupq_n_f64(cube.y_min);
        let y_max = vdupq_n_f64(cube.y_max);
        let t_min = vdupq_n_f64(cube.t_min);
        let t_max = vdupq_n_f64(cube.t_max);
        let mut i = 0usize;
        while i + 2 <= n {
            let x = vld1q_f64(xs.as_ptr().add(i));
            let y = vld1q_f64(ys.as_ptr().add(i));
            let t = vld1q_f64(ts.as_ptr().add(i));
            let m = vandq_u64(
                vandq_u64(
                    vandq_u64(vcgeq_f64(x, x_min), vcleq_f64(x, x_max)),
                    vandq_u64(vcgeq_f64(y, y_min), vcleq_f64(y, y_max)),
                ),
                vandq_u64(vcgeq_f64(t, t_min), vcleq_f64(t, t_max)),
            );
            if vgetq_lane_u64::<0>(m) != 0 || vgetq_lane_u64::<1>(m) != 0 {
                return true;
            }
            i += 2;
        }
        super::scalar::any_in_cube(&xs[i..], &ys[i..], &ts[i..], cube)
    }

    /// # Safety
    /// Caller must ensure NEON is available.
    #[target_feature(enable = "neon")]
    pub unsafe fn any_selected_in_cube(
        xs: &[f64],
        ys: &[f64],
        ts: &[f64],
        select: u64,
        cube: &Cube,
    ) -> bool {
        let n = xs.len();
        let x_min = vdupq_n_f64(cube.x_min);
        let x_max = vdupq_n_f64(cube.x_max);
        let y_min = vdupq_n_f64(cube.y_min);
        let y_max = vdupq_n_f64(cube.y_max);
        let t_min = vdupq_n_f64(cube.t_min);
        let t_max = vdupq_n_f64(cube.t_max);
        let mut i = 0usize;
        while i + 2 <= n {
            // Two selection bits for these lanes; skip cleared pairs.
            let lane_sel = (select >> i) & 0x3;
            if lane_sel != 0 {
                let x = vld1q_f64(xs.as_ptr().add(i));
                let y = vld1q_f64(ys.as_ptr().add(i));
                let t = vld1q_f64(ts.as_ptr().add(i));
                let m = vandq_u64(
                    vandq_u64(
                        vandq_u64(vcgeq_f64(x, x_min), vcleq_f64(x, x_max)),
                        vandq_u64(vcgeq_f64(y, y_min), vcleq_f64(y, y_max)),
                    ),
                    vandq_u64(vcgeq_f64(t, t_min), vcleq_f64(t, t_max)),
                );
                // Each lane's containment mask ANDs against its
                // selection bit (movemask-style intersection).
                if (lane_sel & 1 != 0 && vgetq_lane_u64::<0>(m) != 0)
                    || (lane_sel & 2 != 0 && vgetq_lane_u64::<1>(m) != 0)
                {
                    return true;
                }
            }
            i += 2;
        }
        if i == n {
            // No tail — and `select >> 64` would overflow when n == 64.
            return false;
        }
        super::scalar::any_selected_in_cube(&xs[i..], &ys[i..], &ts[i..], select >> i, cube)
    }

    /// # Safety
    /// Caller must ensure NEON is available.
    #[target_feature(enable = "neon")]
    pub unsafe fn min_max(values: &[f64]) -> (f64, f64) {
        let n = values.len();
        if n < 4 {
            return super::scalar::min_max(values);
        }
        let mut lo = vdupq_n_f64(f64::INFINITY);
        let mut hi = vdupq_n_f64(f64::NEG_INFINITY);
        let mut i = 0usize;
        while i + 2 <= n {
            let v = vld1q_f64(values.as_ptr().add(i));
            // vminnmq/vmaxnmq ignore NaN, matching `f64::min`/`max`.
            lo = vminnmq_f64(lo, v);
            hi = vmaxnmq_f64(hi, v);
            i += 2;
        }
        let (mut l, mut h) = super::scalar::min_max(&values[i..]);
        l = l.min(vminnmvq_f64(lo));
        h = h.max(vmaxnmvq_f64(hi));
        (l, h)
    }

    /// # Safety
    /// Caller must ensure NEON is available.
    #[target_feature(enable = "neon")]
    pub unsafe fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let mut acc = vdupq_n_f64(0.0);
        let mut i = 0usize;
        while i + 2 <= n {
            let d = vsubq_f64(vld1q_f64(a.as_ptr().add(i)), vld1q_f64(b.as_ptr().add(i)));
            acc = vfmaq_f64(acc, d, d);
            i += 2;
        }
        vaddvq_f64(acc) + super::scalar::squared_distance(&a[i..], &b[i..])
    }

    /// # Safety
    /// Caller must ensure NEON is available.
    #[target_feature(enable = "neon")]
    pub unsafe fn sum_squares(values: &[f64]) -> f64 {
        let n = values.len();
        let mut acc = vdupq_n_f64(0.0);
        let mut i = 0usize;
        while i + 2 <= n {
            let v = vld1q_f64(values.as_ptr().add(i));
            acc = vfmaq_f64(acc, v, v);
            i += 2;
        }
        vaddvq_f64(acc) + super::scalar::sum_squares(&values[i..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> Cube {
        Cube::new(-1.0, 1.0, -2.0, 2.0, 0.0, 10.0)
    }

    fn columns(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // Simple deterministic pseudo-random columns spanning the cube
        // boundary on every axis.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 8.0 - 4.0
        };
        let xs: Vec<f64> = (0..n).map(|_| next()).collect();
        let ys: Vec<f64> = (0..n).map(|_| next()).collect();
        let ts: Vec<f64> = (0..n).map(|_| next() + 5.0).collect();
        (xs, ys, ts)
    }

    #[test]
    fn dispatch_matches_scalar_on_containment() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 64, 129, 1000] {
            for seed in 1..6u64 {
                let (xs, ys, ts) = columns(n, seed);
                let q = cube();
                assert_eq!(
                    any_in_cube(&xs, &ys, &ts, &q),
                    scalar::any_in_cube(&xs, &ys, &ts, &q),
                    "n={n} seed={seed} backend={}",
                    active_backend()
                );
            }
        }
    }

    #[test]
    fn containment_treats_nan_as_outside() {
        let q = cube();
        let nan = f64::NAN;
        assert!(!any_in_cube(&[nan; 8], &[0.0; 8], &[5.0; 8], &q));
        assert!(!any_in_cube(&[0.0; 8], &[nan; 8], &[5.0; 8], &q));
        assert!(!any_in_cube(&[0.0; 8], &[0.0; 8], &[nan; 8], &q));
        // One valid lane among NaNs is still found.
        let mut xs = [nan; 8];
        xs[5] = 0.5;
        assert!(any_in_cube(&xs, &[0.0; 8], &[5.0; 8], &q));
    }

    #[test]
    fn containment_bounds_are_inclusive() {
        let q = cube();
        // Exactly on every face, padded so the vector path runs.
        let xs = [1.0, -1.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0];
        let ys = [2.0, -2.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0];
        let ts = [10.0, 0.0, 99.0, 99.0, 99.0, 99.0, 99.0, 99.0];
        assert!(any_in_cube(&xs, &ys, &ts, &q));
        assert!(any_in_cube(&xs[1..], &ys[1..], &ts[1..], &q));
    }

    #[test]
    fn min_max_matches_scalar() {
        for n in [0usize, 1, 5, 8, 9, 31, 256] {
            let (xs, _, _) = columns(n, 3);
            assert_eq!(min_max(&xs), scalar::min_max(&xs), "n={n}");
        }
        assert_eq!(min_max(&[]), (f64::INFINITY, f64::NEG_INFINITY));
    }

    #[test]
    fn min_max_ignores_nan() {
        let mut v = vec![f64::NAN; 16];
        v[3] = -7.0;
        v[12] = 9.0;
        assert_eq!(min_max(&v), (-7.0, 9.0));
    }

    #[test]
    fn distances_match_scalar_within_tolerance() {
        for n in [0usize, 1, 4, 7, 8, 100, 1001] {
            let (a, b, c) = columns(n, 9);
            let fast = squared_distance(&a, &b);
            let slow = scalar::squared_distance(&a, &b);
            assert!((fast - slow).abs() <= 1e-9 * slow.abs().max(1.0), "n={n}");
            let fast = sum_squares(&c);
            let slow = scalar::sum_squares(&c);
            assert!((fast - slow).abs() <= 1e-9 * slow.abs().max(1.0), "n={n}");
            let fast2 = squared_distance_2d(&a, &b, &c, &a);
            let slow2 = scalar::squared_distance(&a, &c) + scalar::squared_distance(&b, &a);
            assert!(
                (fast2 - slow2).abs() <= 1e-9 * slow2.abs().max(1.0),
                "n={n}"
            );
        }
    }

    #[test]
    fn masked_containment_honours_the_bitmap() {
        let n = 200usize;
        let (xs, ys, ts) = columns(n, 4);
        let q = cube();
        // Reference: scalar scan over set bits only.
        let reference = |words: &[u64], base: usize| {
            (0..n).any(|i| {
                let bit = base + i;
                (words[bit / 64] >> (bit % 64)) & 1 == 1 && q.contains_xyz(xs[i], ys[i], ts[i])
            })
        };
        for base in [0usize, 1, 63, 64, 100] {
            let total_bits = base + n;
            let mut all = vec![!0u64; total_bits.div_ceil(64)];
            assert_eq!(
                any_masked_in_cube(&xs, &ys, &ts, &all, base, &q),
                reference(&all, base),
                "all-set base={base}"
            );
            for w in all.iter_mut() {
                *w = 0;
            }
            assert!(!any_masked_in_cube(&xs, &ys, &ts, &all, base, &q));
            // Sparse pattern.
            let mut sparse = vec![0u64; total_bits.div_ceil(64)];
            for i in (0..n).step_by(7) {
                let bit = base + i;
                sparse[bit / 64] |= 1 << (bit % 64);
            }
            assert_eq!(
                any_masked_in_cube(&xs, &ys, &ts, &sparse, base, &q),
                reference(&sparse, base),
                "sparse base={base}"
            );
        }
    }

    #[test]
    fn masked_containment_finds_only_kept_hits() {
        // One in-cube point whose bit is cleared must not match.
        let xs = vec![100.0, 0.0, 100.0];
        let ys = vec![0.0, 0.0, 0.0];
        let ts = vec![5.0, 5.0, 5.0];
        let q = cube();
        let kept_out = vec![0b101u64]; // only the two out-of-cube points
        assert!(!any_masked_in_cube(&xs, &ys, &ts, &kept_out, 0, &q));
        let kept_in = vec![0b010u64];
        assert!(any_masked_in_cube(&xs, &ys, &ts, &kept_in, 0, &q));
    }

    #[test]
    fn selected_containment_matches_scalar() {
        let q = cube();
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 31, 32, 33, 63, 64] {
            let (xs, ys, ts) = columns(n, 11);
            for select in [
                0u64,
                !0u64,
                0xAAAA_AAAA_AAAA_AAAA,
                0x5555_5555_5555_5555,
                1,
                1u64 << 63,
                0x00FF_00FF_00FF_00FF,
            ] {
                assert_eq!(
                    any_selected_in_cube(&xs, &ys, &ts, select, &q),
                    scalar::any_selected_in_cube(&xs, &ys, &ts, select, &q),
                    "n={n} select={select:#x} backend={}",
                    active_backend()
                );
            }
        }
    }

    #[test]
    fn selected_containment_ignores_bits_past_len() {
        let q = cube();
        // Three out-of-cube points; the only set bits are past the slice
        // end and must be ignored.
        let xs = vec![100.0, 100.0, 100.0];
        let ys = vec![0.0, 0.0, 0.0];
        let ts = vec![5.0, 5.0, 5.0];
        assert!(!any_selected_in_cube(&xs, &ys, &ts, !0u64 << 3, &q));
        // A set bit on an in-cube lane still matches.
        let xs_in = vec![100.0, 0.5, 100.0];
        assert!(any_selected_in_cube(&xs_in, &ys, &ts, 0b010, &q));
        assert!(!any_selected_in_cube(&xs_in, &ys, &ts, 0b101, &q));
    }

    #[test]
    fn gather_masked_selects_set_bits_in_order() {
        let src: Vec<f64> = (0..150).map(|i| i as f64).collect();
        for base in [0usize, 5, 64, 70] {
            let total_bits = base + src.len();
            let mut words = vec![0u64; total_bits.div_ceil(64)];
            for i in (0..src.len()).step_by(3) {
                let bit = base + i;
                words[bit / 64] |= 1 << (bit % 64);
            }
            let mut out = Vec::new();
            let appended = gather_masked(&src, &words, base, &mut out);
            let expected: Vec<f64> = (0..src.len()).step_by(3).map(|i| i as f64).collect();
            assert_eq!(out, expected, "base={base}");
            assert_eq!(appended, expected.len());
            // Full and empty masks.
            let full = vec![!0u64; total_bits.div_ceil(64)];
            out.clear();
            gather_masked(&src, &full, base, &mut out);
            assert_eq!(out, src);
            let empty = vec![0u64; total_bits.div_ceil(64)];
            out.clear();
            assert_eq!(gather_masked(&src, &empty, base, &mut out), 0);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn force_scalar_switches_the_backend() {
        // `simd_active` honours the runtime toggle; with the toggle on,
        // the backend label is always "scalar".
        set_force_scalar(true);
        assert!(!simd_active());
        assert_eq!(active_backend(), "scalar");
        set_force_scalar(false);
        // Whatever the hardware, kernels still answer correctly.
        let (xs, ys, ts) = columns(64, 11);
        let q = cube();
        assert_eq!(
            any_in_cube(&xs, &ys, &ts, &q),
            scalar::any_in_cube(&xs, &ys, &ts, &q)
        );
    }
}
