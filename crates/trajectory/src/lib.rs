//! Trajectory data substrate for the RL4QDTS reproduction.
//!
//! This crate provides everything the simplification algorithms and query
//! engine consume:
//!
//! - the data model: [`Point`], [`Trajectory`], [`TrajectoryDb`],
//!   [`Simplification`] (a database-level set of kept point indices);
//! - columnar storage ([`store`]): the struct-of-arrays [`PointStore`]
//!   with zero-copy [`TrajView`]s and the [`KeptBitmap`] face of a
//!   simplification — what the index and query engine iterate;
//! - the layout-agnostic sequence abstraction ([`seq`]): [`PointSeq`]
//!   lets one query kernel serve AoS trajectories and SoA views;
//! - the geometry kernel ([`geom`]): synchronized interpolation, segment
//!   projections, headings, speeds;
//! - the four error measures of the paper ([`error`]): SED, PED, DAD, SAD
//!   with the Eq. 1/Eq. 2 aggregations;
//! - synthetic dataset generators ([`gen`]) reproducing the statistical
//!   shape of Geolife / T-Drive / Chengdu / OSM (Table I);
//! - CSV I/O and dataset statistics ([`io`], [`stats`]);
//! - zero-copy persistence ([`snapshot`]): a versioned little-endian
//!   file format whose sections *are* the columns, with an owned loader
//!   and an mmap-backed [`MappedStore`] served through the same
//!   [`AsColumns`] abstraction as the in-memory store;
//! - sharding ([`shard`]): grid / time / hash partitioners that split a
//!   store into whole-trajectory shards, and the [`ShardSet`] manifest
//!   that persists a sharded database as a directory of snapshot files
//!   and reopens it owned or mmap-backed;
//! - live ingestion ([`delta`]): the WAL-guarded mutable [`DeltaStore`]
//!   accepting streaming `begin_traj`/`push_point` appends through a
//!   deterministic [`OnlineSimplifier`], crash-replayable via the same
//!   checksummed little-endian conventions as the snapshot format.
//!
//! The architecture across crates is documented in
//! `docs/ARCHITECTURE.md`; the snapshot format is specified byte-by-byte
//! in `docs/SNAPSHOT_FORMAT.md` (doc-tested, see [`snapshot::format_spec`]).
//!
//! # Example: ingest, snapshot, serve
//!
//! ```
//! use trajectory::io::read_csv_store;
//! use trajectory::snapshot::{write_snapshot, MappedStore};
//! use trajectory::AsColumns;
//!
//! // Streaming CSV ingestion straight into columns.
//! let csv = "traj_id,x,y,t\na,0.0,0.0,0.0\na,10.0,5.0,60.0\nb,3.0,4.0,0.0\n";
//! let store = read_csv_store(csv.as_bytes()).unwrap();
//! assert_eq!((store.len(), store.total_points()), (2, 3));
//!
//! // Persist once; serve forever with zero deserialization.
//! let path = std::env::temp_dir().join("trajectory_crate_doc.snap");
//! write_snapshot(&store, &path).unwrap();
//! let mapped = MappedStore::open(&path).unwrap();
//! assert_eq!(mapped.xs(), store.xs());
//! assert_eq!(AsColumns::view(&mapped, 0).last().t, 60.0);
//! # std::fs::remove_file(&path).ok();
//! ```

#![warn(missing_docs)]

pub mod bbox;
pub mod db;
pub mod delta;
pub mod error;
pub mod gen;
pub mod geom;
pub mod io;
pub mod parallel;
pub mod point;
pub mod resample;
pub mod seq;
pub mod shard;
pub mod simd;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod traj;

pub use bbox::Cube;
pub use db::{Simplification, TrajId, TrajectoryDb};
pub use delta::{replay_wal, BoxedSimplifier, DeltaError, DeltaStore, KeepAll, OnlineSimplifier};
pub use error::ErrorMeasure;
pub use io::PointSink;
pub use point::Point;
pub use seq::PointSeq;
pub use shard::{partition, OpenShard, PartitionStrategy, Shard, ShardSet, ShardSetError};
pub use snapshot::{
    is_snapshot_file, read_snapshot, write_snapshot, write_snapshot_quantized, write_snapshot_with,
    MappedStore, QuantInfo, Snapshot, SnapshotError,
};
pub use stats::DatasetStats;
pub use store::{AsColumns, KeptBitmap, PointId, PointStore, StoreRef, TrajView};
pub use traj::Trajectory;
