//! Trajectory data substrate for the RL4QDTS reproduction.
//!
//! This crate provides everything the simplification algorithms and query
//! engine consume:
//!
//! - the data model: [`Point`], [`Trajectory`], [`TrajectoryDb`],
//!   [`Simplification`] (a database-level set of kept point indices);
//! - columnar storage ([`store`]): the struct-of-arrays [`PointStore`]
//!   with zero-copy [`TrajView`]s and the [`KeptBitmap`] face of a
//!   simplification — what the index and query engine iterate;
//! - the layout-agnostic sequence abstraction ([`seq`]): [`PointSeq`]
//!   lets one query kernel serve AoS trajectories and SoA views;
//! - the geometry kernel ([`geom`]): synchronized interpolation, segment
//!   projections, headings, speeds;
//! - the four error measures of the paper ([`error`]): SED, PED, DAD, SAD
//!   with the Eq. 1/Eq. 2 aggregations;
//! - synthetic dataset generators ([`gen`]) reproducing the statistical
//!   shape of Geolife / T-Drive / Chengdu / OSM (Table I);
//! - CSV I/O and dataset statistics ([`io`], [`stats`]).

#![warn(missing_docs)]

pub mod bbox;
pub mod db;
pub mod error;
pub mod gen;
pub mod geom;
pub mod io;
pub mod point;
pub mod resample;
pub mod seq;
pub mod stats;
pub mod store;
pub mod traj;

pub use bbox::Cube;
pub use db::{Simplification, TrajId, TrajectoryDb};
pub use error::ErrorMeasure;
pub use point::Point;
pub use seq::PointSeq;
pub use stats::DatasetStats;
pub use store::{KeptBitmap, PointId, PointStore, TrajView};
pub use traj::Trajectory;
