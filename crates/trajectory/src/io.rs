//! Plain-text I/O for trajectory databases.
//!
//! Format: one point per line, `traj_id,x,y,t` (header optional). This keeps
//! the library dependency-free while staying trivially convertible from the
//! public datasets' CSV dumps.

use crate::db::{TrajId, TrajectoryDb};
use crate::point::Point;
use crate::store::PointStore;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The streaming-append protocol shared by every ingest destination:
/// the in-memory [`PointStore`], the WAL-guarded
/// [`DeltaStore`](crate::delta::DeltaStore), and whatever future tiers
/// accept live writes. File loads ([`read_csv_into`]) and network
/// ingest drive the same three calls, so a CSV is just a replay source
/// for the ingest path.
///
/// `push_point` returns `Ok(false)` when the sink rejects the point
/// (non-finite coordinates or a timestamp regressing within the open
/// trajectory); `end_traj` returns `None` when nothing was committed
/// (an empty or fully rejected trajectory). I/O failures are real
/// errors — only WAL-backed sinks produce them.
pub trait PointSink {
    /// Starts a new trajectory.
    fn begin_traj(&mut self) -> io::Result<()>;
    /// Streams one point into the open trajectory; `Ok(false)` = rejected.
    fn push_point(&mut self, p: Point) -> io::Result<bool>;
    /// Closes the open trajectory, returning its id if non-empty.
    fn end_traj(&mut self) -> io::Result<Option<TrajId>>;
}

impl PointSink for PointStore {
    fn begin_traj(&mut self) -> io::Result<()> {
        PointStore::begin_traj(self);
        Ok(())
    }
    fn push_point(&mut self, p: Point) -> io::Result<bool> {
        Ok(PointStore::push_point(self, p))
    }
    fn end_traj(&mut self) -> io::Result<Option<TrajId>> {
        Ok(PointStore::end_traj(self))
    }
}

/// Errors raised while reading a trajectory file.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what failed to parse.
        message: String,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Writes `db` in `traj_id,x,y,t` CSV form.
pub fn write_csv<W: Write>(db: &TrajectoryDb, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "traj_id,x,y,t")?;
    for (id, traj) in db.iter() {
        for p in traj.points() {
            writeln!(w, "{id},{},{},{}", p.x, p.y, p.t)?;
        }
    }
    w.flush()
}

/// Convenience wrapper writing to a file path.
pub fn write_csv_file<P: AsRef<Path>>(db: &TrajectoryDb, path: P) -> io::Result<()> {
    write_csv(db, std::fs::File::create(path)?)
}

/// One parsed CSV record: `(traj_id, point)`.
struct Record {
    id: String,
    p: Point,
}

/// Parses one non-empty, non-header line. Every failure mode yields a
/// typed [`ReadError::Parse`] carrying the 1-based line number — including
/// a missing or empty `traj_id` field, which older readers silently
/// collapsed into an anonymous `""` trajectory.
fn parse_line(trimmed: &str, line_1: usize) -> Result<Record, ReadError> {
    let mut parts = trimmed.split(',');
    let id = parts
        .next()
        .map(str::trim)
        .filter(|id| !id.is_empty())
        .ok_or(ReadError::Parse {
            line: line_1,
            message: "missing traj_id".into(),
        })?
        .to_string();
    let parse = |field: Option<&str>, name: &str| -> Result<f64, ReadError> {
        field
            .ok_or(ReadError::Parse {
                line: line_1,
                message: format!("missing {name}"),
            })?
            .trim()
            .parse::<f64>()
            .map_err(|e| ReadError::Parse {
                line: line_1,
                message: format!("{name}: {e}"),
            })
    };
    let x = parse(parts.next(), "x")?;
    let y = parse(parts.next(), "y")?;
    let t = parse(parts.next(), "t")?;
    Ok(Record {
        id,
        p: Point::new(x, y, t),
    })
}

/// How the CSV readers treat malformed lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MalformedLines {
    /// The first malformed line aborts the read with its parse error.
    Fail,
    /// Malformed lines are skipped and counted.
    Skip,
}

/// Shared reader core: streams records into any [`PointSink`], returning
/// the number of committed trajectories and the number of skipped lines
/// (always 0 in [`MalformedLines::Fail`] mode).
fn read_csv_sink<R: Read, S: PointSink + ?Sized>(
    input: R,
    sink: &mut S,
    mode: MalformedLines,
) -> Result<(usize, usize), ReadError> {
    let reader = BufReader::new(input);
    let mut current_id: Option<String> = None;
    let mut open = false;
    let mut committed = 0usize;
    let mut skipped = 0usize;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line_1 = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if lineno == 0 && trimmed.starts_with("traj_id") {
            continue;
        }
        let record = match parse_line(trimmed, line_1) {
            Ok(r) => r,
            Err(e) => match mode {
                MalformedLines::Fail => return Err(e),
                MalformedLines::Skip => {
                    skipped += 1;
                    continue;
                }
            },
        };
        if current_id.as_deref() != Some(record.id.as_str()) {
            if open {
                committed += usize::from(sink.end_traj()?.is_some());
            }
            sink.begin_traj()?;
            open = true;
            current_id = Some(record.id);
        }
        if !sink.push_point(record.p)? {
            match mode {
                MalformedLines::Fail => {
                    return Err(ReadError::Parse {
                        line: line_1,
                        message: "trajectory points are not time-ordered or not finite".into(),
                    })
                }
                MalformedLines::Skip => skipped += 1,
            }
        }
    }
    if open {
        committed += usize::from(sink.end_traj()?.is_some());
    }
    Ok((committed, skipped))
}

/// Streams a `traj_id,x,y,t` CSV through any [`PointSink`] — the same
/// `begin_traj`/`push_point`/`end_traj` path live network writes take —
/// returning the number of committed trajectories. The first malformed
/// line aborts with a [`ReadError::Parse`] carrying its 1-based line
/// number; everything already committed to the sink stays committed.
pub fn read_csv_into<R: Read, S: PointSink + ?Sized>(
    input: R,
    sink: &mut S,
) -> Result<usize, ReadError> {
    read_csv_sink(input, sink, MalformedLines::Fail).map(|(committed, _)| committed)
}

/// Shared reader core over an owned [`PointStore`] (the [`PointSink`]
/// generic drives it; this wrapper keeps the historical signature).
fn read_csv_core<R: Read>(
    input: R,
    mode: MalformedLines,
) -> Result<(PointStore, usize), ReadError> {
    let mut store = PointStore::new();
    let (_, skipped) = read_csv_sink(input, &mut store, mode)?;
    Ok((store, skipped))
}

/// Reads a `traj_id,x,y,t` CSV. Points of one trajectory must be contiguous
/// and time-ordered; trajectory ids are re-assigned densely in order of
/// first appearance. A single header line is skipped when present. Any
/// malformed line — including a missing or empty `traj_id` — aborts with a
/// [`ReadError::Parse`] carrying its 1-based line number.
pub fn read_csv<R: Read>(input: R) -> Result<TrajectoryDb, ReadError> {
    Ok(read_csv_store(input)?.to_db())
}

/// [`read_csv`] straight into columnar storage: records stream through the
/// [`PointStore`] append API without building per-trajectory `Vec<Point>`
/// intermediaries.
pub fn read_csv_store<R: Read>(input: R) -> Result<PointStore, ReadError> {
    read_csv_core(input, MalformedLines::Fail).map(|(store, _)| store)
}

/// Lenient variant of [`read_csv`]: malformed lines (unparsable fields,
/// missing ids, time regressions, non-finite coordinates) are skipped
/// instead of aborting. Returns the database plus the number of skipped
/// lines, so callers can surface data-quality problems instead of silently
/// absorbing them. I/O errors still abort.
pub fn read_csv_skip_malformed<R: Read>(input: R) -> Result<(TrajectoryDb, usize), ReadError> {
    let (store, skipped) = read_csv_core(input, MalformedLines::Skip)?;
    Ok((store.to_db(), skipped))
}

/// Convenience wrapper reading from a file path.
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<TrajectoryDb, ReadError> {
    read_csv(std::fs::File::open(path)?)
}

/// Projects WGS-84 latitude/longitude (degrees) to local planar meters with
/// an equirectangular projection around `(lat0, lon0)`. Adequate at city
/// scale, which is all the paper's datasets need.
pub fn project_equirectangular(lat: f64, lon: f64, lat0: f64, lon0: f64) -> (f64, f64) {
    const EARTH_RADIUS: f64 = 6_371_000.0;
    let x = (lon - lon0).to_radians() * lat0.to_radians().cos() * EARTH_RADIUS;
    let y = (lat - lat0).to_radians() * EARTH_RADIUS;
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DatasetSpec, Scale};

    #[test]
    fn csv_round_trips() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 3);
        let mut buf = Vec::new();
        write_csv(&db, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), db.len());
        assert_eq!(back.total_points(), db.total_points());
        for (id, t) in db.iter() {
            for (a, b) in t.points().iter().zip(back.get(id).points()) {
                assert!((a.x - b.x).abs() < 1e-9);
                assert!((a.y - b.y).abs() < 1e-9);
                assert!((a.t - b.t).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn read_skips_header_and_blank_lines() {
        let text = "traj_id,x,y,t\n\na,1.0,2.0,3.0\na,2.0,3.0,4.0\nb,0.0,0.0,0.0\nb,5,5,9\n";
        let db = read_csv(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(0).len(), 2);
        assert_eq!(db.get(1).last().t, 9.0);
    }

    #[test]
    fn read_rejects_garbage() {
        let text = "a,1.0,nope,3.0\n";
        match read_csv(text.as_bytes()) {
            Err(ReadError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn read_rejects_unordered_times() {
        let text = "a,1.0,1.0,5.0\na,2.0,2.0,4.0\n";
        assert!(matches!(
            read_csv(text.as_bytes()),
            Err(ReadError::Parse { .. })
        ));
    }

    #[test]
    fn read_rejects_missing_or_empty_id() {
        for text in [",1.0,2.0,3.0\n", "  ,1.0,2.0,3.0\n"] {
            match read_csv(text.as_bytes()) {
                Err(ReadError::Parse { line, message }) => {
                    assert_eq!(line, 1);
                    assert!(message.contains("traj_id"), "{message}");
                }
                other => panic!("expected id parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn read_reports_the_offending_line() {
        let text = "a,1.0,2.0,3.0\na,2.0,3.0,4.0\na,oops,3.0,5.0\n";
        match read_csv(text.as_bytes()) {
            Err(ReadError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn skip_malformed_counts_and_continues() {
        let text = "traj_id,x,y,t\n\
                    a,1.0,2.0,3.0\n\
                    a,bad,2.0,4.0\n\
                    a,2.0,3.0,5.0\n\
                    ,9.0,9.0,9.0\n\
                    b,0.0,0.0,0.0\n\
                    b,1.0,1.0,-5.0\n\
                    b,1.0,1.0,2.0\n";
        let (db, skipped) = read_csv_skip_malformed(text.as_bytes()).unwrap();
        assert_eq!(skipped, 3, "bad x, missing id, time regression");
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(0).len(), 2);
        assert_eq!(db.get(1).len(), 2);
    }

    #[test]
    fn csv_streams_into_columnar_storage() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 5);
        let mut buf = Vec::new();
        write_csv(&db, &mut buf).unwrap();
        let store = read_csv_store(&buf[..]).unwrap();
        assert_eq!(store.len(), db.len());
        assert_eq!(store.total_points(), db.total_points());
        for (id, t) in db.iter() {
            assert_eq!(store.view(id).len(), t.len());
        }
    }

    #[test]
    fn csv_replays_through_any_point_sink() {
        use crate::delta::{DeltaStore, KeepAll};

        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 11);
        let mut buf = Vec::new();
        write_csv(&db, &mut buf).unwrap();

        // The same bytes through the plain columnar path and through the
        // WAL-guarded delta path yield byte-identical columns.
        let store = read_csv_store(&buf[..]).unwrap();
        let dir = std::env::temp_dir().join("qdts_io_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("csv-replay.log");
        std::fs::remove_file(&wal).ok();
        let mut delta = DeltaStore::create(&wal, Box::new(KeepAll)).unwrap();
        let committed = read_csv_into(&buf[..], &mut delta).unwrap();
        assert_eq!(committed, store.len());
        assert_eq!(delta.store().xs(), store.xs());
        assert_eq!(delta.store().ys(), store.ys());
        assert_eq!(delta.store().ts(), store.ts());
        assert_eq!(delta.store().offsets(), store.offsets());

        // And the delta's WAL replays back to the same columns — a CSV
        // load really is just a replay source for the ingest path.
        delta.sync().unwrap();
        drop(delta);
        let reopened = DeltaStore::open(&wal, Box::new(KeepAll)).unwrap();
        assert_eq!(reopened.store().xs(), store.xs());
        assert_eq!(reopened.store().offsets(), store.offsets());
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn sink_parse_errors_carry_line_numbers() {
        use crate::delta::{DeltaStore, KeepAll};

        let dir = std::env::temp_dir().join("qdts_io_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("csv-err.log");
        std::fs::remove_file(&wal).ok();
        let mut delta = DeltaStore::create(&wal, Box::new(KeepAll)).unwrap();
        let text = "a,1.0,2.0,3.0\na,2.0,3.0,4.0\na,oops,3.0,5.0\n";
        match read_csv_into(text.as_bytes(), &mut delta) {
            Err(ReadError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn projection_is_locally_metric() {
        // One degree of latitude is ~111 km everywhere.
        let (_, y) = project_equirectangular(40.0, 116.0, 39.0, 116.0);
        assert!((y - 111_194.9).abs() < 100.0, "y = {y}");
        // At the reference point the projection is the origin.
        let (x0, y0) = project_equirectangular(39.0, 116.0, 39.0, 116.0);
        assert_eq!((x0, y0), (0.0, 0.0));
    }

    #[test]
    fn file_round_trip() {
        let db = generate(&DatasetSpec::chengdu(Scale::Smoke), 8);
        let dir = std::env::temp_dir().join("qdts_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.csv");
        write_csv_file(&db, &path).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(back.total_points(), db.total_points());
        std::fs::remove_file(&path).ok();
    }
}
