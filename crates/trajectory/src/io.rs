//! Plain-text I/O for trajectory databases.
//!
//! Format: one point per line, `traj_id,x,y,t` (header optional). This keeps
//! the library dependency-free while staying trivially convertible from the
//! public datasets' CSV dumps.

use crate::db::TrajectoryDb;
use crate::point::Point;
use crate::traj::Trajectory;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised while reading a trajectory file.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what failed to parse.
        message: String,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Writes `db` in `traj_id,x,y,t` CSV form.
pub fn write_csv<W: Write>(db: &TrajectoryDb, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "traj_id,x,y,t")?;
    for (id, traj) in db.iter() {
        for p in traj.points() {
            writeln!(w, "{id},{},{},{}", p.x, p.y, p.t)?;
        }
    }
    w.flush()
}

/// Convenience wrapper writing to a file path.
pub fn write_csv_file<P: AsRef<Path>>(db: &TrajectoryDb, path: P) -> io::Result<()> {
    write_csv(db, std::fs::File::create(path)?)
}

/// Reads a `traj_id,x,y,t` CSV. Points of one trajectory must be contiguous
/// and time-ordered; trajectory ids are re-assigned densely in order of
/// first appearance. A single header line is skipped when present.
pub fn read_csv<R: Read>(input: R) -> Result<TrajectoryDb, ReadError> {
    let reader = BufReader::new(input);
    let mut db = TrajectoryDb::default();
    let mut current_id: Option<String> = None;
    let mut points: Vec<Point> = Vec::new();

    let flush =
        |points: &mut Vec<Point>, db: &mut TrajectoryDb, line: usize| -> Result<(), ReadError> {
            if points.is_empty() {
                return Ok(());
            }
            let t = Trajectory::new(std::mem::take(points)).ok_or(ReadError::Parse {
                line,
                message: "trajectory points are not time-ordered or not finite".into(),
            })?;
            db.push(t);
            Ok(())
        };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line_1 = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if lineno == 0 && trimmed.starts_with("traj_id") {
            continue;
        }
        let mut parts = trimmed.split(',');
        let id = parts.next().unwrap_or("").to_string();
        let parse = |field: Option<&str>, name: &str| -> Result<f64, ReadError> {
            field
                .ok_or(ReadError::Parse {
                    line: line_1,
                    message: format!("missing {name}"),
                })?
                .trim()
                .parse::<f64>()
                .map_err(|e| ReadError::Parse {
                    line: line_1,
                    message: format!("{name}: {e}"),
                })
        };
        let x = parse(parts.next(), "x")?;
        let y = parse(parts.next(), "y")?;
        let t = parse(parts.next(), "t")?;

        if current_id.as_deref() != Some(id.as_str()) {
            flush(&mut points, &mut db, line_1)?;
            current_id = Some(id);
        }
        points.push(Point::new(x, y, t));
    }
    flush(&mut points, &mut db, usize::MAX)?;
    Ok(db)
}

/// Convenience wrapper reading from a file path.
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<TrajectoryDb, ReadError> {
    read_csv(std::fs::File::open(path)?)
}

/// Projects WGS-84 latitude/longitude (degrees) to local planar meters with
/// an equirectangular projection around `(lat0, lon0)`. Adequate at city
/// scale, which is all the paper's datasets need.
pub fn project_equirectangular(lat: f64, lon: f64, lat0: f64, lon0: f64) -> (f64, f64) {
    const EARTH_RADIUS: f64 = 6_371_000.0;
    let x = (lon - lon0).to_radians() * lat0.to_radians().cos() * EARTH_RADIUS;
    let y = (lat - lat0).to_radians() * EARTH_RADIUS;
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DatasetSpec, Scale};

    #[test]
    fn csv_round_trips() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 3);
        let mut buf = Vec::new();
        write_csv(&db, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), db.len());
        assert_eq!(back.total_points(), db.total_points());
        for (id, t) in db.iter() {
            for (a, b) in t.points().iter().zip(back.get(id).points()) {
                assert!((a.x - b.x).abs() < 1e-9);
                assert!((a.y - b.y).abs() < 1e-9);
                assert!((a.t - b.t).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn read_skips_header_and_blank_lines() {
        let text = "traj_id,x,y,t\n\na,1.0,2.0,3.0\na,2.0,3.0,4.0\nb,0.0,0.0,0.0\nb,5,5,9\n";
        let db = read_csv(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(0).len(), 2);
        assert_eq!(db.get(1).last().t, 9.0);
    }

    #[test]
    fn read_rejects_garbage() {
        let text = "a,1.0,nope,3.0\n";
        match read_csv(text.as_bytes()) {
            Err(ReadError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn read_rejects_unordered_times() {
        let text = "a,1.0,1.0,5.0\na,2.0,2.0,4.0\n";
        assert!(matches!(
            read_csv(text.as_bytes()),
            Err(ReadError::Parse { .. })
        ));
    }

    #[test]
    fn projection_is_locally_metric() {
        // One degree of latitude is ~111 km everywhere.
        let (_, y) = project_equirectangular(40.0, 116.0, 39.0, 116.0);
        assert!((y - 111_194.9).abs() < 100.0, "y = {y}");
        // At the reference point the projection is the origin.
        let (x0, y0) = project_equirectangular(39.0, 116.0, 39.0, 116.0);
        assert_eq!((x0, y0), (0.0, 0.0));
    }

    #[test]
    fn file_round_trip() {
        let db = generate(&DatasetSpec::chengdu(Scale::Smoke), 8);
        let dir = std::env::temp_dir().join("qdts_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.csv");
        write_csv_file(&db, &path).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(back.total_points(), db.total_points());
        std::fs::remove_file(&path).ok();
    }
}
