//! Correlated random-walk movement model.
//!
//! Produces GPS-like traces with heading persistence, smooth speed changes,
//! pauses (bursts of near-identical points — exactly the redundancy
//! simplification should exploit, per the paper's introduction), and
//! per-trajectory complexity differences (the heterogeneity that motivates
//! *collective* simplification).

use crate::point::Point;
use crate::traj::Trajectory;
use rand::rngs::StdRng;
use rand::Rng;
use std::f64::consts::TAU;

/// Parameters of one correlated random walk.
#[derive(Debug, Clone)]
pub struct WalkParams {
    /// Number of points to emit (≥ 2).
    pub len: usize,
    /// Start position (meters).
    pub start: (f64, f64),
    /// Start time (seconds).
    pub start_time: f64,
    /// Sampling interval range (seconds), drawn uniformly per step.
    pub interval: (f64, f64),
    /// Cruise speed (m/s); instantaneous speed wanders around it.
    pub speed: f64,
    /// Std-dev of per-step heading change (radians). Small => smooth
    /// highway-like movement; large => erratic pedestrian movement.
    pub turn_sigma: f64,
    /// Probability per step of entering a pause (speed ≈ 0 for a few fixes).
    pub pause_prob: f64,
    /// Mean pause duration in steps.
    pub pause_len: f64,
    /// GPS noise std-dev (meters) added to every emitted fix.
    pub gps_noise: f64,
}

/// Simulates the walk, returning a valid trajectory.
pub fn simulate(params: &WalkParams, rng: &mut StdRng) -> Trajectory {
    let n = params.len.max(2);
    let mut pts = Vec::with_capacity(n);
    let (mut x, mut y) = params.start;
    let mut t = params.start_time;
    let mut heading = rng.gen_range(0.0..TAU);
    let mut speed_factor: f64 = 1.0;
    let mut pause_remaining = 0usize;

    for _ in 0..n {
        let nx = x + params.gps_noise * sample_gaussian(rng);
        let ny = y + params.gps_noise * sample_gaussian(rng);
        pts.push(Point::new(nx, ny, t));

        let dt = rng.gen_range(params.interval.0..=params.interval.1);
        if pause_remaining > 0 {
            pause_remaining -= 1;
        } else if rng.gen_bool(params.pause_prob) {
            pause_remaining = 1 + (sample_exponential(rng) * params.pause_len) as usize;
        } else {
            heading += params.turn_sigma * sample_gaussian(rng);
            // Smooth speed modulation in [0.5, 1.5] of cruise speed.
            speed_factor = (speed_factor + 0.1 * sample_gaussian(rng)).clamp(0.5, 1.5);
            let v = params.speed * speed_factor;
            x += v * dt * heading.cos();
            y += v * dt * heading.sin();
        }
        t += dt;
    }
    Trajectory::from_sorted_unchecked(pts)
}

/// Standard normal sample via Box–Muller (avoids a distributions dependency).
pub(crate) fn sample_gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// Exponential(1) sample.
pub(crate) fn sample_exponential(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn params() -> WalkParams {
        WalkParams {
            len: 200,
            start: (0.0, 0.0),
            start_time: 100.0,
            interval: (1.0, 5.0),
            speed: 2.0,
            turn_sigma: 0.4,
            pause_prob: 0.05,
            pause_len: 5.0,
            gps_noise: 1.0,
        }
    }

    #[test]
    fn produces_requested_length_and_ordering() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = simulate(&params(), &mut rng);
        assert_eq!(t.len(), 200);
        assert!(t.points().windows(2).all(|w| w[1].t > w[0].t));
        assert_eq!(t.first().t, 100.0);
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let a = simulate(&params(), &mut StdRng::seed_from_u64(42));
        let b = simulate(&params(), &mut StdRng::seed_from_u64(42));
        assert_eq!(a.points(), b.points());
        let c = simulate(&params(), &mut StdRng::seed_from_u64(43));
        assert_ne!(a.points(), c.points());
    }

    #[test]
    fn mean_step_tracks_speed_times_interval() {
        let mut p = params();
        p.len = 3000;
        p.pause_prob = 0.0;
        p.gps_noise = 0.0;
        let mut rng = StdRng::seed_from_u64(1);
        let t = simulate(&p, &mut rng);
        let mean_step = t.path_length() / (t.len() - 1) as f64;
        // speed 2 m/s * mean interval 3 s = 6 m, with ±50% speed modulation.
        assert!(mean_step > 3.0 && mean_step < 9.0, "mean step {mean_step}");
    }

    #[test]
    fn pauses_create_redundant_fixes() {
        let mut p = params();
        p.pause_prob = 0.3;
        p.gps_noise = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        let t = simulate(&p, &mut rng);
        let stationary = t
            .points()
            .windows(2)
            .filter(|w| w[0].spatial_distance(&w[1]) < 1e-9)
            .count();
        assert!(stationary > 10, "expected pauses, got {stationary}");
    }

    #[test]
    fn gaussian_sampler_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
