//! Manhattan-grid movement model.
//!
//! Mimics road-network-constrained taxi traces (the Chengdu dataset): the
//! object moves along axis-aligned streets with a fixed block size, turning
//! only at intersections. Trajectories from this model are locally very
//! compressible (long straight runs) but turn sharply, which separates
//! direction-aware from position-aware error measures.

use crate::point::Point;
use crate::traj::Trajectory;
use rand::rngs::StdRng;
use rand::Rng;

use super::walk::sample_gaussian;

/// Parameters of one grid-constrained trip.
#[derive(Debug, Clone)]
pub struct GridParams {
    /// Number of points to emit (≥ 2).
    pub len: usize,
    /// Start position, snapped to the grid internally.
    pub start: (f64, f64),
    /// Start time (seconds).
    pub start_time: f64,
    /// Sampling interval range (seconds).
    pub interval: (f64, f64),
    /// Driving speed (m/s).
    pub speed: f64,
    /// Street block size (meters).
    pub block: f64,
    /// Probability of turning at an intersection.
    pub turn_prob: f64,
    /// GPS noise std-dev (meters).
    pub gps_noise: f64,
}

/// The four axis-aligned headings: +x, +y, −x, −y.
const DIRS: [(f64, f64); 4] = [(1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0)];

/// Simulates the grid trip, returning a valid trajectory.
pub fn simulate(params: &GridParams, rng: &mut StdRng) -> Trajectory {
    let n = params.len.max(2);
    let block = params.block.max(1.0);
    let mut pts = Vec::with_capacity(n);
    // Snap the start to an intersection so turns happen on the lattice.
    let mut x = (params.start.0 / block).round() * block;
    let mut y = (params.start.1 / block).round() * block;
    let mut t = params.start_time;
    let mut dir = rng.gen_range(0..4usize);
    // Distance remaining until the next intersection.
    let mut to_next = block;

    for _ in 0..n {
        let nx = x + params.gps_noise * sample_gaussian(rng);
        let ny = y + params.gps_noise * sample_gaussian(rng);
        pts.push(Point::new(nx, ny, t));

        let dt = rng.gen_range(params.interval.0..=params.interval.1);
        let mut dist = params.speed * dt;
        while dist > 0.0 {
            let step = dist.min(to_next);
            x += step * DIRS[dir].0;
            y += step * DIRS[dir].1;
            dist -= step;
            to_next -= step;
            if to_next <= 0.0 {
                to_next = block;
                if rng.gen_bool(params.turn_prob) {
                    // Turn left or right, never a U-turn.
                    dir = if rng.gen_bool(0.5) {
                        (dir + 1) % 4
                    } else {
                        (dir + 3) % 4
                    };
                }
            }
        }
        t += dt;
    }
    Trajectory::from_sorted_unchecked(pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn params() -> GridParams {
        GridParams {
            len: 150,
            start: (120.0, -75.0),
            start_time: 0.0,
            interval: (2.0, 4.0),
            speed: 8.0,
            block: 200.0,
            turn_prob: 0.4,
            gps_noise: 0.0,
        }
    }

    #[test]
    fn stays_on_the_lattice_without_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = simulate(&params(), &mut rng);
        // At every instant either x or y is a multiple of the block size
        // (the object is on a street).
        for p in t.points() {
            let on_x_street = (p.y / 200.0 - (p.y / 200.0).round()).abs() < 1e-6;
            let on_y_street = (p.x / 200.0 - (p.x / 200.0).round()).abs() < 1e-6;
            assert!(on_x_street || on_y_street, "off-street point {p}");
        }
    }

    #[test]
    fn moves_at_the_requested_speed() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = simulate(&params(), &mut rng);
        for w in t.points().windows(2) {
            let d = w[0].spatial_distance(&w[1]);
            let dt = w[1].t - w[0].t;
            // Manhattan distance travelled is exactly speed*dt; the
            // Euclidean displacement can only be shorter.
            assert!(d <= 8.0 * dt + 1e-6);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate(&params(), &mut StdRng::seed_from_u64(2));
        let b = simulate(&params(), &mut StdRng::seed_from_u64(2));
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn emits_requested_number_of_points() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(simulate(&params(), &mut rng).len(), 150);
    }
}
