//! Synthetic trajectory dataset generators.
//!
//! The paper evaluates on Geolife, T-Drive, Chengdu, and OSM (Table I).
//! Those datasets are public but not available offline, so this module
//! provides generators that reproduce their *statistical shape* — number of
//! trajectories, points per trajectory, sampling interval, mean step length
//! — and, crucially, the cross-trajectory heterogeneity in sampling rate and
//! movement complexity that motivates collective simplification. See
//! DESIGN.md §5 for the substitution argument.

pub mod grid;
pub mod walk;

use crate::db::TrajectoryDb;
use crate::point::Point;
use crate::traj::Trajectory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grid::GridParams;
use walk::{sample_gaussian, WalkParams};

/// How large a dataset to generate. The paper's sizes (Table I) are server
/// scale; these presets keep the same *ratios* between datasets while
/// staying laptop-friendly. Spatial regions shrink super-linearly
/// (factor^0.75) so the point density a query box sees stays comparable
/// to the paper's — otherwise distribution-shifted (Gaussian/Zipf)
/// workloads would mostly land in empty space and score a vacuous 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: unit/integration tests (seconds).
    Smoke,
    /// Small: experiment defaults (tens of seconds per experiment).
    Small,
    /// Paper-shaped: as close to Table I proportions as a laptop allows.
    Paper,
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Smoke => 0.02,
            Scale::Small => 0.2,
            Scale::Paper => 1.0,
        }
    }
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Ok(Scale::Smoke),
            "small" => Ok(Scale::Small),
            "paper" => Ok(Scale::Paper),
            other => Err(format!(
                "unknown scale: {other} (expected smoke|small|paper)"
            )),
        }
    }
}

/// The movement model a dataset draws its trajectories from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovementModel {
    /// Mixed-mode correlated random walk (pedestrian/bike/car), Geolife-like.
    MixedWalk,
    /// Sparse long-hop taxi movement, T-Drive-like.
    SparseTaxi,
    /// Road-grid-constrained short trips, Chengdu-like.
    GridTaxi,
    /// Long-haul smooth tracks, OSM-GPS-like.
    LongHaul,
}

/// Specification of one synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Human-readable name (matches the paper's dataset it imitates).
    pub name: &'static str,
    /// Number of trajectories `M`.
    pub num_trajectories: usize,
    /// Mean points per trajectory.
    pub mean_len: usize,
    /// Relative std-dev of trajectory length (length heterogeneity).
    pub len_jitter: f64,
    /// Sampling interval range in seconds (rate heterogeneity across the
    /// database comes from drawing a sub-range per trajectory).
    pub interval: (f64, f64),
    /// Cruise speed range (m/s) drawn per trajectory.
    pub speed: (f64, f64),
    /// Side length of the square spatial region (meters).
    pub region: f64,
    /// Temporal horizon over which trips start (seconds).
    pub horizon: f64,
    /// Movement model.
    pub model: MovementModel,
    /// Number of "hub" locations trips start/end near (taxi datasets);
    /// 0 means uniform starts.
    pub hubs: usize,
}

impl DatasetSpec {
    /// Geolife-like: dense 1–5 s sampling, small steps, long recordings,
    /// highly heterogeneous movement modes.
    pub fn geolife(scale: Scale) -> Self {
        let f = scale.factor();
        Self {
            name: "geolife",
            num_trajectories: (600.0 * f).max(8.0) as usize,
            mean_len: (1400.0 * f.max(0.1)) as usize,
            len_jitter: 0.5,
            interval: (1.0, 5.0),
            speed: (1.0, 15.0),
            region: 20_000.0 * f.powf(0.75),
            horizon: 7.0 * 86_400.0,
            model: MovementModel::MixedWalk,
            hubs: 0,
        }
    }

    /// T-Drive-like: sparse 177 s sampling, ~600 m hops, taxi hubs.
    pub fn tdrive(scale: Scale) -> Self {
        let f = scale.factor();
        Self {
            name: "tdrive",
            num_trajectories: (400.0 * f).max(8.0) as usize,
            mean_len: (1700.0 * f.max(0.1)) as usize,
            len_jitter: 0.3,
            interval: (120.0, 240.0),
            speed: (2.0, 6.0),
            region: 40_000.0 * f.powf(0.75),
            horizon: 7.0 * 86_400.0,
            model: MovementModel::SparseTaxi,
            hubs: 12,
        }
    }

    /// Chengdu-like: short grid-bound trips, 2–4 s sampling, ride-hailing
    /// pickup/dropoff hubs (used by the "real" query distribution).
    pub fn chengdu(scale: Scale) -> Self {
        let f = scale.factor();
        Self {
            name: "chengdu",
            num_trajectories: (4000.0 * f).max(24.0) as usize,
            mean_len: 178,
            len_jitter: 0.35,
            interval: (2.0, 4.0),
            speed: (5.0, 12.0),
            region: 15_000.0 * f.powf(0.75),
            horizon: 7.0 * 86_400.0,
            model: MovementModel::GridTaxi,
            hubs: 20,
        }
    }

    /// OSM-like: very long smooth tracks; used for the scalability study
    /// (Fig. 8), where only `N` matters.
    pub fn osm(scale: Scale) -> Self {
        let f = scale.factor();
        Self {
            name: "osm",
            num_trajectories: (800.0 * f).max(8.0) as usize,
            mean_len: (5600.0 * f.max(0.05)) as usize,
            len_jitter: 0.4,
            interval: (40.0, 70.0),
            speed: (10.0, 30.0),
            region: 200_000.0 * f.powf(0.75),
            horizon: 30.0 * 86_400.0,
            model: MovementModel::LongHaul,
            hubs: 0,
        }
    }

    /// All four presets at the given scale (Table I order).
    pub fn all(scale: Scale) -> [DatasetSpec; 4] {
        [
            Self::geolife(scale),
            Self::tdrive(scale),
            Self::chengdu(scale),
            Self::osm(scale),
        ]
    }

    /// Overrides the trajectory count (scalability sweeps).
    pub fn with_trajectories(mut self, m: usize) -> Self {
        self.num_trajectories = m;
        self
    }

    /// Overrides the mean trajectory length.
    pub fn with_mean_len(mut self, n: usize) -> Self {
        self.mean_len = n;
        self
    }
}

/// Generates the dataset described by `spec`, deterministically for a seed.
pub fn generate(spec: &DatasetSpec, seed: u64) -> TrajectoryDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let hubs = sample_hubs(spec, &mut rng);
    let mut trajectories = Vec::with_capacity(spec.num_trajectories);
    for _ in 0..spec.num_trajectories {
        trajectories.push(generate_one(spec, &hubs, &mut rng));
    }
    TrajectoryDb::new(trajectories)
}

/// Hub locations (e.g. taxi stands, popular pickup corners).
fn sample_hubs(spec: &DatasetSpec, rng: &mut StdRng) -> Vec<(f64, f64)> {
    (0..spec.hubs)
        .map(|_| {
            (
                rng.gen_range(0.0..spec.region),
                rng.gen_range(0.0..spec.region),
            )
        })
        .collect()
}

fn start_position(spec: &DatasetSpec, hubs: &[(f64, f64)], rng: &mut StdRng) -> (f64, f64) {
    if hubs.is_empty() || rng.gen_bool(0.25) {
        (
            rng.gen_range(0.0..spec.region),
            rng.gen_range(0.0..spec.region),
        )
    } else {
        // Near a hub, with ~400 m spread.
        let (hx, hy) = hubs[rng.gen_range(0..hubs.len())];
        (
            hx + 400.0 * sample_gaussian(rng),
            hy + 400.0 * sample_gaussian(rng),
        )
    }
}

fn generate_one(spec: &DatasetSpec, hubs: &[(f64, f64)], rng: &mut StdRng) -> Trajectory {
    let len = ((spec.mean_len as f64) * (1.0 + spec.len_jitter * sample_gaussian(rng)))
        .round()
        .max(8.0) as usize;
    let start = start_position(spec, hubs, rng);
    let start_time = rng.gen_range(0.0..spec.horizon);
    // Per-trajectory sampling-rate heterogeneity: a sub-range of the spec's
    // interval window.
    let base = rng.gen_range(spec.interval.0..=spec.interval.1);
    let interval = (base * 0.8, base * 1.2);
    let speed = rng.gen_range(spec.speed.0..=spec.speed.1);

    let traj = match spec.model {
        MovementModel::MixedWalk => {
            // Movement complexity varies per trajectory: walkers twist,
            // vehicles run straight.
            let turn_sigma = rng.gen_range(0.05..0.8);
            walk::simulate(
                &WalkParams {
                    len,
                    start,
                    start_time,
                    interval,
                    speed,
                    turn_sigma,
                    pause_prob: 0.04,
                    pause_len: 6.0,
                    gps_noise: 2.0,
                },
                rng,
            )
        }
        MovementModel::SparseTaxi => walk::simulate(
            &WalkParams {
                len,
                start,
                start_time,
                interval,
                speed,
                turn_sigma: rng.gen_range(0.2..0.6),
                pause_prob: 0.08,
                pause_len: 3.0,
                gps_noise: 10.0,
            },
            rng,
        ),
        MovementModel::GridTaxi => grid::simulate(
            &GridParams {
                len,
                start,
                start_time,
                interval,
                speed,
                block: 250.0,
                turn_prob: 0.35,
                gps_noise: 3.0,
            },
            rng,
        ),
        MovementModel::LongHaul => walk::simulate(
            &WalkParams {
                len,
                start,
                start_time,
                interval,
                speed,
                turn_sigma: rng.gen_range(0.02..0.15),
                pause_prob: 0.01,
                pause_len: 10.0,
                gps_noise: 5.0,
            },
            rng,
        ),
    };
    clamp_into_region(traj, spec.region)
}

/// Keeps coordinates inside a generous multiple of the region so octree
/// bounds stay sane; movement is reflected at the boundary.
fn clamp_into_region(traj: Trajectory, region: f64) -> Trajectory {
    let bound = 1.5 * region;
    let pts = traj
        .into_points()
        .into_iter()
        .map(|p| Point::new(reflect(p.x, bound), reflect(p.y, bound), p.t))
        .collect();
    Trajectory::from_sorted_unchecked(pts)
}

/// Reflects `v` into `[-bound, bound]` (triangle-wave folding).
fn reflect(v: f64, bound: f64) -> f64 {
    if v.abs() <= bound {
        return v;
    }
    let period = 4.0 * bound;
    let mut w = (v + bound).rem_euclid(period);
    if w > 2.0 * bound {
        w = period - w;
    }
    w - bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let spec = DatasetSpec::geolife(Scale::Smoke);
        let db = generate(&spec, 1);
        assert_eq!(db.len(), spec.num_trajectories);
        assert!(db.total_points() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = DatasetSpec::chengdu(Scale::Smoke);
        let a = generate(&spec, 9);
        let b = generate(&spec, 9);
        assert_eq!(a.total_points(), b.total_points());
        assert_eq!(a.get(0).points(), b.get(0).points());
        let c = generate(&spec, 10);
        assert_ne!(a.get(0).points(), c.get(0).points());
    }

    #[test]
    fn sampling_intervals_match_spec() {
        let spec = DatasetSpec::tdrive(Scale::Smoke);
        let db = generate(&spec, 4);
        for (_, t) in db.iter() {
            let mean = t.mean_sampling_interval();
            assert!(
                mean >= spec.interval.0 * 0.7 && mean <= spec.interval.1 * 1.3,
                "interval {mean} outside spec {:?}",
                spec.interval
            );
        }
    }

    #[test]
    fn trajectory_lengths_are_heterogeneous() {
        let spec = DatasetSpec::geolife(Scale::Small);
        let db = generate(&spec, 2);
        let lens: Vec<usize> = db.trajectories().iter().map(Trajectory::len).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(max > min + min / 2, "lengths too uniform: {min}..{max}");
    }

    #[test]
    fn all_presets_generate_valid_databases() {
        for spec in DatasetSpec::all(Scale::Smoke) {
            let db = generate(&spec, 3);
            assert!(!db.is_empty(), "{}", spec.name);
            for (_, t) in db.iter() {
                assert!(t.len() >= 2);
                assert!(t.points().iter().all(Point::is_finite));
                assert!(t.points().windows(2).all(|w| w[1].t >= w[0].t));
            }
        }
    }

    #[test]
    fn reflect_folds_into_bounds() {
        assert_eq!(reflect(5.0, 10.0), 5.0);
        assert_eq!(reflect(12.0, 10.0), 8.0);
        assert_eq!(reflect(-12.0, 10.0), -8.0);
        for v in [-100.0, -37.5, 0.0, 19.0, 55.0, 1234.5] {
            let r = reflect(v, 10.0);
            assert!((-10.0..=10.0).contains(&r), "{v} -> {r}");
        }
    }

    #[test]
    fn scale_parses() {
        assert_eq!("smoke".parse::<Scale>().unwrap(), Scale::Smoke);
        assert_eq!("Paper".parse::<Scale>().unwrap(), Scale::Paper);
        assert!("huge".parse::<Scale>().is_err());
    }
}
