//! Trajectories: time-ordered sequences of [`Point`]s.

use crate::bbox::Cube;
use crate::geom;
use crate::point::Point;

/// A trajectory `T = ⟨p1, …, pn⟩`: a strictly time-ordered sequence of
/// time-stamped points describing one object's movement.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    points: Vec<Point>,
}

impl Trajectory {
    /// Builds a trajectory, validating that points are finite and
    /// non-decreasing in time. Returns `None` on invalid input.
    pub fn new(points: Vec<Point>) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        if !points.iter().all(Point::is_finite) {
            return None;
        }
        if points.windows(2).any(|w| w[1].t < w[0].t) {
            return None;
        }
        Some(Self { points })
    }

    /// Builds a trajectory without validation. Intended for generators and
    /// I/O paths that already guarantee ordering; debug builds still assert.
    pub fn from_sorted_unchecked(points: Vec<Point>) -> Self {
        debug_assert!(points.windows(2).all(|w| w[1].t >= w[0].t));
        Self { points }
    }

    /// Number of points `n = |T|`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the trajectory has no points (never constructible through
    /// [`Trajectory::new`], but kept for API completeness).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Immutable view of the points.
    #[inline]
    #[must_use]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The `i`-th point.
    #[inline]
    #[must_use]
    pub fn point(&self, i: usize) -> &Point {
        &self.points[i]
    }

    /// First point.
    #[inline]
    #[must_use]
    pub fn first(&self) -> &Point {
        &self.points[0]
    }

    /// Last point.
    #[inline]
    #[must_use]
    pub fn last(&self) -> &Point {
        &self.points[self.points.len() - 1]
    }

    /// Time span `[t1, tn]` of the trajectory.
    #[must_use]
    pub fn time_span(&self) -> (f64, f64) {
        (self.first().t, self.last().t)
    }

    /// Total travelled spatial length (sum of segment lengths).
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].spatial_distance(&w[1]))
            .sum()
    }

    /// Mean sampling interval in seconds (0 for single-point trajectories).
    pub fn mean_sampling_interval(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let (t0, t1) = self.time_span();
        (t1 - t0) / (self.points.len() - 1) as f64
    }

    /// Smallest cube covering all points.
    pub fn bounding_cube(&self) -> Cube {
        let mut c = Cube::empty();
        for p in &self.points {
            c.extend(p);
        }
        c
    }

    /// Synchronized position at time `t`, linearly interpolated along the
    /// segment that spans `t`. Clamps to the endpoints outside the time span.
    pub fn position_at(&self, t: f64) -> Point {
        let pts = &self.points;
        if t <= pts[0].t {
            return Point::new(pts[0].x, pts[0].y, t);
        }
        let last = pts[pts.len() - 1];
        if t >= last.t {
            return Point::new(last.x, last.y, t);
        }
        // Binary search for the segment [i, i+1] with pts[i].t <= t < pts[i+1].t.
        let i = match pts.binary_search_by(|p| p.t.partial_cmp(&t).expect("finite times")) {
            Ok(i) => return Point::new(pts[i].x, pts[i].y, t),
            Err(i) => i - 1,
        };
        geom::interpolate_at(&pts[i], &pts[i + 1], t)
    }

    /// Indices `[lo, hi]` (inclusive) of points whose timestamps fall within
    /// `[ts, te]`, or `None` when the window misses the trajectory entirely.
    #[must_use]
    pub fn window_indices(&self, ts: f64, te: f64) -> Option<(usize, usize)> {
        if ts > te {
            return None;
        }
        let pts = &self.points;
        let lo = pts.partition_point(|p| p.t < ts);
        let hi = pts.partition_point(|p| p.t <= te);
        if lo >= hi {
            None
        } else {
            Some((lo, hi - 1))
        }
    }

    /// The sub-trajectory restricted to the time window `[ts, te]`
    /// (`T[ts, te]` in the paper's kNN/similarity definitions). Returns only
    /// sampled points inside the window; `None` when empty.
    pub fn window(&self, ts: f64, te: f64) -> Option<Trajectory> {
        let (lo, hi) = self.window_indices(ts, te)?;
        Some(Trajectory::from_sorted_unchecked(
            self.points[lo..=hi].to_vec(),
        ))
    }

    /// Consumes the trajectory, returning its points.
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk() -> Trajectory {
        Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(10.0, 0.0, 10.0),
            Point::new(10.0, 10.0, 20.0),
            Point::new(20.0, 10.0, 30.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty_and_unordered() {
        assert!(Trajectory::new(vec![]).is_none());
        assert!(
            Trajectory::new(vec![Point::new(0.0, 0.0, 5.0), Point::new(1.0, 1.0, 4.0),]).is_none()
        );
        assert!(Trajectory::new(vec![Point::new(f64::NAN, 0.0, 0.0)]).is_none());
    }

    #[test]
    fn accepts_duplicate_timestamps() {
        // Real GPS data contains duplicate timestamps; they must be allowed.
        assert!(
            Trajectory::new(vec![Point::new(0.0, 0.0, 5.0), Point::new(1.0, 1.0, 5.0),]).is_some()
        );
    }

    #[test]
    fn path_length_sums_segments() {
        assert_eq!(walk().path_length(), 30.0);
    }

    #[test]
    fn mean_sampling_interval_uses_span() {
        assert_eq!(walk().mean_sampling_interval(), 10.0);
        let single = Trajectory::new(vec![Point::new(0.0, 0.0, 0.0)]).unwrap();
        assert_eq!(single.mean_sampling_interval(), 0.0);
    }

    #[test]
    fn position_at_interpolates_and_clamps() {
        let t = walk();
        let mid = t.position_at(5.0);
        assert!((mid.x - 5.0).abs() < 1e-12);
        assert!((mid.y - 0.0).abs() < 1e-12);
        // Exact sample hit.
        let hit = t.position_at(20.0);
        assert_eq!((hit.x, hit.y), (10.0, 10.0));
        // Clamping outside the span.
        assert_eq!(t.position_at(-5.0).x, 0.0);
        assert_eq!(t.position_at(99.0).x, 20.0);
    }

    #[test]
    fn window_selects_inclusive_time_range() {
        let t = walk();
        let w = t.window(10.0, 20.0).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.first().t, 10.0);
        assert_eq!(w.last().t, 20.0);
        assert!(t.window(100.0, 200.0).is_none());
        assert!(t.window(20.0, 10.0).is_none());
    }

    #[test]
    fn bounding_cube_covers_all_points() {
        let t = walk();
        let c = t.bounding_cube();
        for p in t.points() {
            assert!(c.contains(p));
        }
        assert_eq!(c.x_max, 20.0);
        assert_eq!(c.t_max, 30.0);
    }
}
