//! Dataset statistics (the columns of Table I).

use crate::db::TrajectoryDb;

/// Summary statistics of a trajectory database, mirroring Table I of the
/// paper: trajectory count, total points, average points per trajectory,
/// mean sampling interval, and mean segment ("step") length.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of trajectories (`# of trajectories`).
    pub num_trajectories: usize,
    /// Total number of points (`Total # of points`).
    pub total_points: usize,
    /// Mean points per trajectory (`Ave. # of pts per traj`).
    pub mean_points_per_traj: f64,
    /// Mean sampling interval in seconds (`Sampling rate`).
    pub mean_sampling_interval: f64,
    /// Mean spatial segment length in meters (`Average length`).
    pub mean_segment_length: f64,
}

impl DatasetStats {
    /// Computes the statistics of `db`.
    pub fn compute(db: &TrajectoryDb) -> Self {
        let num_trajectories = db.len();
        let total_points = db.total_points();
        let mean_points_per_traj = if num_trajectories == 0 {
            0.0
        } else {
            total_points as f64 / num_trajectories as f64
        };

        let mut interval_sum = 0.0;
        let mut interval_n = 0usize;
        let mut seg_sum = 0.0;
        let mut seg_n = 0usize;
        for (_, t) in db.iter() {
            let pts = t.points();
            for w in pts.windows(2) {
                interval_sum += w[1].t - w[0].t;
                seg_sum += w[0].spatial_distance(&w[1]);
                interval_n += 1;
                seg_n += 1;
            }
        }
        Self {
            num_trajectories,
            total_points,
            mean_points_per_traj,
            mean_sampling_interval: if interval_n == 0 {
                0.0
            } else {
                interval_sum / interval_n as f64
            },
            mean_segment_length: if seg_n == 0 {
                0.0
            } else {
                seg_sum / seg_n as f64
            },
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "M={} N={} pts/traj={:.0} interval={:.1}s step={:.1}m",
            self.num_trajectories,
            self.total_points,
            self.mean_points_per_traj,
            self.mean_sampling_interval,
            self.mean_segment_length
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DatasetSpec, Scale};
    use crate::point::Point;
    use crate::traj::Trajectory;

    #[test]
    fn stats_of_known_database() {
        let t = Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(3.0, 4.0, 10.0),
            Point::new(6.0, 8.0, 20.0),
        ])
        .unwrap();
        let db = TrajectoryDb::new(vec![t]);
        let s = DatasetStats::compute(&db);
        assert_eq!(s.num_trajectories, 1);
        assert_eq!(s.total_points, 3);
        assert_eq!(s.mean_points_per_traj, 3.0);
        assert_eq!(s.mean_sampling_interval, 10.0);
        assert_eq!(s.mean_segment_length, 5.0);
    }

    #[test]
    fn empty_database_is_all_zero() {
        let s = DatasetStats::compute(&TrajectoryDb::default());
        assert_eq!(s.total_points, 0);
        assert_eq!(s.mean_points_per_traj, 0.0);
        assert_eq!(s.mean_sampling_interval, 0.0);
    }

    #[test]
    fn generated_datasets_match_their_spec_shape() {
        // T-Drive-like must be sparser (larger interval, longer steps) than
        // Geolife-like — the defining contrast in Table I.
        let geo = DatasetStats::compute(&generate(&DatasetSpec::geolife(Scale::Smoke), 1));
        let td = DatasetStats::compute(&generate(&DatasetSpec::tdrive(Scale::Smoke), 1));
        assert!(td.mean_sampling_interval > 10.0 * geo.mean_sampling_interval);
        assert!(td.mean_segment_length > 5.0 * geo.mean_segment_length);
    }
}
