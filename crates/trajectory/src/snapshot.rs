//! Zero-copy snapshot persistence for columnar trajectory databases.
//!
//! A *snapshot* is the on-disk twin of a [`PointStore`]: the four plain
//! column runs (`xs`/`ys`/`ts`/`offsets`) written little-endian into one
//! file behind a fixed 128-byte header, every section 64-byte aligned, an
//! optional [`KeptBitmap`] section for simplified databases, and a
//! trailing FNV-1a checksum. Because the in-memory layout already is
//! "plain `f64` runs, no interior pointers", the file needs no
//! deserialization step at all — three access paths share the format:
//!
//! - [`write_snapshot`] / [`write_snapshot_with`]: store → file;
//! - [`read_snapshot`]: file → owned [`Snapshot`] (heap copy, works
//!   everywhere);
//! - [`MappedStore::open`]: file → queryable store whose columns are
//!   backed by a **read-only `mmap`**. No bytes are copied or decoded;
//!   the only full-file pass at open is the checksum verification (one
//!   sequential read at memory bandwidth), after which the query engine
//!   reads pages on demand.
//!
//! The byte-level specification lives in `docs/SNAPSHOT_FORMAT.md`
//! (doc-tested against this implementation via
//! [`format_spec`]). All load paths reject malformed
//! input with a typed [`SnapshotError`] instead of panicking, mirroring
//! the CSV reader's [`ReadError`](crate::io::ReadError) style.
//!
//! ```
//! use trajectory::gen::{generate, DatasetSpec, Scale};
//! use trajectory::snapshot::{read_snapshot, write_snapshot, MappedStore};
//! use trajectory::AsColumns;
//!
//! let store = generate(&DatasetSpec::geolife(Scale::Smoke), 1).to_store();
//! let path = std::env::temp_dir().join("snapshot_doc_example.snap");
//! write_snapshot(&store, &path).unwrap();
//!
//! // Owned load: a heap copy, byte-identical columns.
//! let owned = read_snapshot(&path).unwrap();
//! assert_eq!(owned.store, store);
//!
//! // Zero-copy load: the same columns served straight from the mapping.
//! let mapped = MappedStore::open(&path).unwrap();
//! assert_eq!(mapped.xs(), store.xs());
//! assert_eq!(mapped.offsets(), store.offsets());
//! # std::fs::remove_file(&path).ok();
//! ```

use std::fs::File;
use std::io;
#[cfg(not(unix))]
use std::io::Read;
use std::path::Path;

use crate::store::{AsColumns, KeptBitmap, PointStore};

/// The byte-level format specification, doc-tested against this module.
///
/// The module exists so `docs/SNAPSHOT_FORMAT.md` — the human-readable
/// spec — compiles and runs as part of `cargo test`: its examples assert
/// the exact header bytes [`write_snapshot`] produces, so the book cannot
/// drift from the implementation.
#[doc = include_str!("../../../docs/SNAPSHOT_FORMAT.md")]
pub mod format_spec {}

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"QDTSNAP\0";

/// Current (and only) format version.
pub const VERSION: u32 = 1;

/// Header flag bit: the file carries a kept-point bitmap section.
pub const FLAG_KEPT_BITMAP: u32 = 1;

/// Header flag bit: the coordinate columns are stored **quantized**
/// (delta + uniform quantization with a stored max-error bound, PPQ
/// style) instead of as raw `f64` runs. Readers that predate this flag
/// reject such files with [`SnapshotError::UnknownFlags`] rather than
/// misreading the section geometry.
pub const FLAG_QUANTIZED: u32 = 2;

/// Fixed header length in bytes; the first section starts here.
pub const HEADER_LEN: usize = 128;

/// Alignment of every section start, in bytes. 64 keeps `f64` loads
/// aligned from any page-aligned mapping base and starts each column on
/// its own cache line.
pub const SECTION_ALIGN: usize = 64;

/// All flag bits this version understands; anything else is rejected.
const KNOWN_FLAGS: u32 = FLAG_KEPT_BITMAP | FLAG_QUANTIZED;

/// Byte length of the quantization-metadata section: `max_error` plus
/// `(min, step, width)` for each of the three coordinate columns.
const QMETA_LEN: usize = 8 + 3 * 24;

/// Largest quantized grid index the encoder accepts. Indices stay far
/// below 2^53 so `q as f64` is exact and the reconstruction error keeps
/// the stored bound; a range/error-bound combination that would exceed
/// this is rejected at encode time.
const MAX_Q: f64 = (1u64 << 51) as f64;

/// Rounds `n` up to the next multiple of [`SECTION_ALIGN`].
#[inline]
fn align_up(n: usize) -> usize {
    n.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Typed failure modes of the snapshot load paths.
///
/// Every corrupt-file condition maps to a distinct variant so callers can
/// distinguish "not a snapshot at all" from "a snapshot from the future"
/// from "bit rot" — the same philosophy as the CSV reader's line-numbered
/// [`ReadError`](crate::io::ReadError).
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure (open, read, map).
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The first 8 bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The header carries flag bits this version does not understand.
    UnknownFlags {
        /// The offending flag word.
        flags: u32,
    },
    /// The file is shorter than a structurally valid snapshot.
    Truncated {
        /// Actual file length in bytes.
        len: u64,
        /// Minimum length implied by the header (or the fixed header
        /// size, when even that is missing).
        needed: u64,
    },
    /// A section's offset/length lands outside the file or breaks the
    /// required [`SECTION_ALIGN`] alignment.
    SectionOutOfBounds {
        /// Which section ("xs", "ys", "ts", "offsets", "kept").
        section: &'static str,
        /// Byte offset stored in the header.
        offset: u64,
        /// Section length in bytes implied by the counts.
        len: u64,
        /// Actual file length.
        file_len: u64,
    },
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the file bytes.
        computed: u64,
    },
    /// The offset table violates a store invariant (not starting at 0,
    /// decreasing, empty trajectory, or not ending at the point count).
    InvalidOffsets {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// The kept-bitmap section has bits set at positions past the point
    /// count (the format requires tail padding bits to be zero).
    InvalidKeptBitmap {
        /// Number of points the bitmap should cover.
        points: u64,
    },
    /// Counts in the header exceed what a [`PointStore`] can address
    /// (`u32` global point ids) or what this platform can map.
    TooLarge {
        /// The offending point count.
        points: u64,
    },
    /// The quantization metadata or input is invalid: a non-finite or
    /// non-positive error bound/step, a width outside `{1, 2, 4, 8}`, a
    /// non-finite input coordinate, or a value range too wide for the
    /// requested error bound.
    InvalidQuantization {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (not a snapshot file)")
            }
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (supported: {supported})"
                )
            }
            SnapshotError::UnknownFlags { flags } => {
                write!(f, "unknown header flags {flags:#x}")
            }
            SnapshotError::Truncated { len, needed } => {
                write!(f, "truncated snapshot: {len} bytes, need {needed}")
            }
            SnapshotError::SectionOutOfBounds {
                section,
                offset,
                len,
                file_len,
            } => write!(
                f,
                "section {section} ({len} bytes at offset {offset}) exceeds or misaligns \
                 within the {file_len}-byte file"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            SnapshotError::InvalidOffsets { reason } => {
                write!(f, "invalid offset table: {reason}")
            }
            SnapshotError::InvalidKeptBitmap { points } => {
                write!(f, "kept bitmap has bits set past the point count {points}")
            }
            SnapshotError::TooLarge { points } => {
                write!(f, "snapshot too large: {points} points exceed u32 ids")
            }
            SnapshotError::InvalidQuantization { reason } => {
                write!(f, "invalid quantization: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Checksum.
// ---------------------------------------------------------------------

/// FNV-1a 64-bit over `bytes` — dependency-free, byte-order independent,
/// and fast enough to verify gigabyte snapshots at memory bandwidth
/// fractions that never dominate a cold start.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

// ---------------------------------------------------------------------
// Little-endian (de)serialization helpers.
// ---------------------------------------------------------------------

/// Writes `v` little-endian at `buf[off..off + 4]`. Shared by the
/// snapshot codec and the wire protocol (`traj-serve`), so both speak
/// the same byte order from the same primitives.
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Writes `v` little-endian at `buf[off..off + 8]` (see [`put_u32`]).
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` at `buf[off..off + 4]` (see [`put_u32`]).
/// Panics if out of bounds — callers length-check frames first.
#[must_use]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("bounds checked"))
}

/// Reads a little-endian `u64` at `buf[off..off + 8]` (see [`get_u32`]).
#[must_use]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("bounds checked"))
}

/// Copies `src` into `dst` as little-endian bytes. On little-endian
/// targets this is one `memcpy`; big-endian targets byte-swap per element.
fn copy_f64s_le(dst: &mut [u8], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len() * 8);
    if cfg!(target_endian = "little") {
        // SAFETY: f64 has no padding; reinterpreting its memory as bytes
        // is always valid, and on LE targets the bytes are already in
        // file order.
        let bytes = unsafe { std::slice::from_raw_parts(src.as_ptr().cast::<u8>(), src.len() * 8) };
        dst.copy_from_slice(bytes);
    } else {
        for (chunk, v) in dst.chunks_exact_mut(8).zip(src) {
            chunk.copy_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

/// [`copy_f64s_le`] for `u32` runs.
fn copy_u32s_le(dst: &mut [u8], src: &[u32]) {
    debug_assert_eq!(dst.len(), src.len() * 4);
    if cfg!(target_endian = "little") {
        // SAFETY: as in `copy_f64s_le`.
        let bytes = unsafe { std::slice::from_raw_parts(src.as_ptr().cast::<u8>(), src.len() * 4) };
        dst.copy_from_slice(bytes);
    } else {
        for (chunk, v) in dst.chunks_exact_mut(4).zip(src) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }
}

/// [`copy_f64s_le`] for `u64` runs.
fn copy_u64s_le(dst: &mut [u8], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len() * 8);
    if cfg!(target_endian = "little") {
        // SAFETY: as in `copy_f64s_le`.
        let bytes = unsafe { std::slice::from_raw_parts(src.as_ptr().cast::<u8>(), src.len() * 8) };
        dst.copy_from_slice(bytes);
    } else {
        for (chunk, v) in dst.chunks_exact_mut(8).zip(src) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }
}

fn read_f64s_le(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunked by 8"))))
        .collect()
}

fn read_u32s_le(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunked by 4")))
        .collect()
}

fn read_u64s_le(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunked by 8")))
        .collect()
}

/// Writes `v` as little-endian IEEE-754 bits at `buf[off..off + 8]` —
/// bit-exact round-trips, NaN payloads included (see [`put_u32`]).
pub fn put_f64(buf: &mut [u8], off: usize, v: f64) {
    put_u64(buf, off, v.to_bits());
}

/// Reads a little-endian IEEE-754 `f64` at `buf[off..off + 8]`.
#[must_use]
pub fn get_f64(buf: &[u8], off: usize) -> f64 {
    f64::from_bits(get_u64(buf, off))
}

// ---------------------------------------------------------------------
// Quantized column codec (delta + uniform quantization, PPQ style).
// ---------------------------------------------------------------------

/// Quantization parameters of one coordinate column: values are stored
/// as zigzag-encoded deltas of grid indices `q`, reconstructed as
/// `min + q * step`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ColQuant {
    min: f64,
    step: f64,
    /// Bytes per stored delta: 1, 2, 4, or 8.
    width: usize,
}

/// The decoded quantization-metadata section: the shared error bound
/// plus per-column parameters for xs, ys, ts.
#[derive(Debug, Clone, Copy, PartialEq)]
struct QuantMeta {
    max_error: f64,
    cols: [ColQuant; 3],
}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Quantizes one column onto the uniform grid `min + q * step` with
/// `step = 2 * max_error` (the widest grid whose nearest point is always
/// within `max_error`), returning the column parameters and the
/// zigzag-encoded index deltas in point order.
fn quantize_column(
    values: &[f64],
    max_error: f64,
    name: &'static str,
) -> Result<(ColQuant, Vec<u64>), SnapshotError> {
    let step = 2.0 * max_error;
    let mut min = f64::INFINITY;
    for &v in values {
        if !v.is_finite() {
            return Err(SnapshotError::InvalidQuantization {
                reason: format!("column {name} contains non-finite value {v}"),
            });
        }
        min = min.min(v);
    }
    if values.is_empty() {
        min = 0.0;
    }
    let mut deltas = Vec::with_capacity(values.len());
    let mut prev: i64 = 0;
    let mut max_z: u64 = 0;
    for &v in values {
        let raw = (v - min) / step;
        if raw > MAX_Q {
            return Err(SnapshotError::InvalidQuantization {
                reason: format!(
                    "column {name}: range {:.3e} needs more than 2^51 grid steps at \
                     max_error {max_error:.3e}",
                    v - min
                ),
            });
        }
        // Nearest grid index, then a one-step correction against the
        // actual f64 reconstruction so the stored bound survives the
        // division's rounding even near half-step boundaries.
        let mut q = raw.round() as i64;
        let mut best_err = (min + q as f64 * step - v).abs();
        for cand in [q - 1, q + 1] {
            if cand >= 0 {
                let e = (min + cand as f64 * step - v).abs();
                if e < best_err {
                    q = cand;
                    best_err = e;
                }
            }
        }
        let z = zigzag(q - prev);
        prev = q;
        max_z = max_z.max(z);
        deltas.push(z);
    }
    let width = match max_z {
        z if z <= 0xFF => 1,
        z if z <= 0xFFFF => 2,
        z if z <= 0xFFFF_FFFF => 4,
        _ => 8,
    };
    Ok((ColQuant { min, step, width }, deltas))
}

/// Writes zigzag deltas as fixed-width little-endian integers.
fn write_quantized(dst: &mut [u8], deltas: &[u64], width: usize) {
    debug_assert_eq!(dst.len(), deltas.len() * width);
    for (chunk, &z) in dst.chunks_exact_mut(width).zip(deltas) {
        chunk.copy_from_slice(&z.to_le_bytes()[..width]);
    }
}

/// Reconstructs one column from its fixed-width zigzag delta section.
/// The accumulator wraps instead of panicking so checksum-valid but
/// hand-crafted delta streams degrade to garbage values, never aborts.
fn dequantize_column(bytes: &[u8], n: usize, c: &ColQuant) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut acc: i64 = 0;
    for chunk in bytes.chunks_exact(c.width).take(n) {
        let mut raw = [0u8; 8];
        raw[..c.width].copy_from_slice(chunk);
        acc = acc.wrapping_add(unzigzag(u64::from_le_bytes(raw)));
        out.push(c.min + acc as f64 * c.step);
    }
    out
}

// ---------------------------------------------------------------------
// Layout resolution + validation.
// ---------------------------------------------------------------------

/// Resolved section geometry of a validated snapshot: element counts plus
/// byte offsets, everything bounds- and alignment-checked against the
/// actual file length.
#[derive(Debug, Clone, Copy)]
struct Layout {
    traj_count: usize,
    point_count: usize,
    xs_off: usize,
    ys_off: usize,
    ts_off: usize,
    offsets_off: usize,
    /// Byte offset of the kept-bitmap section, when present.
    kept_off: Option<usize>,
    /// Number of `u64` words in the kept section.
    kept_words: usize,
    checksum_off: usize,
    /// Quantization parameters, for files carrying [`FLAG_QUANTIZED`].
    /// The coordinate sections then hold fixed-width zigzag deltas
    /// instead of raw `f64` runs.
    quant: Option<QuantMeta>,
}

impl Layout {
    /// Computes the layout a store of `m` trajectories / `n` points (and
    /// optionally a kept bitmap) serializes to.
    fn plan(m: usize, n: usize, with_kept: bool) -> Layout {
        Layout::plan_impl(m, n, with_kept, None)
    }

    /// [`Layout::plan`] for quantized files: a qmeta section follows the
    /// header, and each coordinate section is `n * width` bytes.
    fn plan_quantized(m: usize, n: usize, with_kept: bool, quant: QuantMeta) -> Layout {
        Layout::plan_impl(m, n, with_kept, Some(quant))
    }

    fn plan_impl(m: usize, n: usize, with_kept: bool, quant: Option<QuantMeta>) -> Layout {
        let kept_words = if with_kept { n.div_ceil(64) } else { 0 };
        let col_bytes = |i: usize| match &quant {
            Some(q) => n * q.cols[i].width,
            None => n * 8,
        };
        let xs_off = match quant {
            Some(_) => align_up(HEADER_LEN + QMETA_LEN),
            None => HEADER_LEN,
        };
        let ys_off = align_up(xs_off + col_bytes(0));
        let ts_off = align_up(ys_off + col_bytes(1));
        let offsets_off = align_up(ts_off + col_bytes(2));
        let offsets_end = offsets_off + (m + 1) * 4;
        let (kept_off, kept_end) = if with_kept {
            let off = align_up(offsets_end);
            (Some(off), off + kept_words * 8)
        } else {
            (None, offsets_end)
        };
        // The checksum needs only 8-byte alignment, but aligning it like a
        // section keeps the rule uniform ("everything after the header
        // starts on a 64-byte boundary").
        let checksum_off = align_up(kept_end);
        Layout {
            traj_count: m,
            point_count: n,
            xs_off,
            ys_off,
            ts_off,
            offsets_off,
            kept_off,
            kept_words,
            checksum_off,
            quant,
        }
    }

    /// Total file size in bytes.
    fn file_len(&self) -> usize {
        self.checksum_off + 8
    }
}

/// Reads and sanity-checks the quantization-metadata section at
/// [`HEADER_LEN`].
fn read_qmeta(bytes: &[u8]) -> Result<QuantMeta, SnapshotError> {
    let max_error = get_f64(bytes, HEADER_LEN);
    if !(max_error.is_finite() && max_error > 0.0) {
        return Err(SnapshotError::InvalidQuantization {
            reason: format!("stored max_error {max_error} is not finite and positive"),
        });
    }
    let mut cols = [ColQuant {
        min: 0.0,
        step: 1.0,
        width: 1,
    }; 3];
    for (i, col) in cols.iter_mut().enumerate() {
        let base = HEADER_LEN + 8 + i * 24;
        let min = get_f64(bytes, base);
        let step = get_f64(bytes, base + 8);
        let width = get_u64(bytes, base + 16);
        if !(min.is_finite() && step.is_finite() && step > 0.0) {
            return Err(SnapshotError::InvalidQuantization {
                reason: format!("column {i}: min {min} / step {step} out of domain"),
            });
        }
        if !matches!(width, 1 | 2 | 4 | 8) {
            return Err(SnapshotError::InvalidQuantization {
                reason: format!("column {i}: width {width} not in {{1, 2, 4, 8}}"),
            });
        }
        *col = ColQuant {
            min,
            step,
            width: width as usize,
        };
    }
    Ok(QuantMeta { max_error, cols })
}

/// Validates the full byte image of a snapshot: magic, version, flags,
/// section geometry, checksum, and offset-table invariants. Returns the
/// resolved [`Layout`] on success.
fn validate(bytes: &[u8]) -> Result<Layout, SnapshotError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(SnapshotError::Truncated {
            len: bytes.len() as u64,
            needed: (HEADER_LEN + 8) as u64,
        });
    }
    let mut found = [0u8; 8];
    found.copy_from_slice(&bytes[0..8]);
    if found != MAGIC {
        return Err(SnapshotError::BadMagic { found });
    }
    let version = get_u32(bytes, 8);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let flags = get_u32(bytes, 12);
    if flags & !KNOWN_FLAGS != 0 {
        return Err(SnapshotError::UnknownFlags { flags });
    }
    let traj_count = get_u64(bytes, 16);
    let point_count = get_u64(bytes, 24);
    if point_count >= u64::from(u32::MAX) || traj_count >= u64::from(u32::MAX) {
        return Err(SnapshotError::TooLarge {
            points: point_count,
        });
    }
    let m = traj_count as usize;
    let n = point_count as usize;
    let with_kept = flags & FLAG_KEPT_BITMAP != 0;
    let with_quant = flags & FLAG_QUANTIZED != 0;

    // The header's stored offsets must agree with the canonical layout
    // for these counts — the format admits exactly one geometry per
    // (m, n, flags, quantization widths), which is what makes blind
    // mapping safe.
    let layout = if with_quant {
        let needed = (HEADER_LEN + QMETA_LEN + 8) as u64;
        if (bytes.len() as u64) < needed {
            return Err(SnapshotError::Truncated {
                len: bytes.len() as u64,
                needed,
            });
        }
        let qmeta_off = get_u64(bytes, 80);
        if qmeta_off != HEADER_LEN as u64 {
            return Err(SnapshotError::InvalidQuantization {
                reason: format!("qmeta_off {qmeta_off}, expected {HEADER_LEN}"),
            });
        }
        Layout::plan_quantized(m, n, with_kept, read_qmeta(bytes)?)
    } else {
        Layout::plan(m, n, with_kept)
    };
    let col_len = |i: usize| match &layout.quant {
        Some(q) => n as u64 * q.cols[i].width as u64,
        None => n as u64 * 8,
    };
    let file_len = bytes.len() as u64;
    let stored = [
        ("xs", get_u64(bytes, 32), layout.xs_off, col_len(0)),
        ("ys", get_u64(bytes, 40), layout.ys_off, col_len(1)),
        ("ts", get_u64(bytes, 48), layout.ts_off, col_len(2)),
        (
            "offsets",
            get_u64(bytes, 56),
            layout.offsets_off,
            (m as u64 + 1) * 4,
        ),
        (
            "kept",
            get_u64(bytes, 64),
            layout.kept_off.unwrap_or(0),
            layout.kept_words as u64 * 8,
        ),
    ];
    for (section, got, expect, sec_len) in stored {
        if got != expect as u64
            || got % SECTION_ALIGN as u64 != 0
            || got.checked_add(sec_len).is_none_or(|end| end > file_len)
        {
            return Err(SnapshotError::SectionOutOfBounds {
                section,
                offset: got,
                len: sec_len,
                file_len,
            });
        }
    }
    let checksum_off = get_u64(bytes, 72);
    if checksum_off != layout.checksum_off as u64 || layout.file_len() as u64 != file_len {
        return Err(SnapshotError::Truncated {
            len: file_len,
            needed: layout.file_len() as u64,
        });
    }

    let stored_sum = get_u64(bytes, layout.checksum_off);
    let computed = fnv1a64(&bytes[..layout.checksum_off]);
    if stored_sum != computed {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored_sum,
            computed,
        });
    }

    // Offset-table invariants: starts at 0, monotone, ends at N. These
    // are what every downstream `view()` slice relies on.
    let offs = &bytes[layout.offsets_off..layout.offsets_off + (m + 1) * 4];
    let mut prev = 0u32;
    for (i, c) in offs.chunks_exact(4).enumerate() {
        let o = u32::from_le_bytes(c.try_into().expect("chunked by 4"));
        if i == 0 && o != 0 {
            return Err(SnapshotError::InvalidOffsets {
                reason: format!("offsets[0] = {o}, expected 0"),
            });
        }
        if o < prev {
            return Err(SnapshotError::InvalidOffsets {
                reason: format!("offsets[{i}] = {o} decreases below {prev}"),
            });
        }
        if i > 0 && o == prev {
            // Every store API (push_points, push_view, end_traj, gather)
            // refuses zero-length trajectories; a file containing one
            // would panic kNN windowing and mis-anchor kept bitmaps.
            return Err(SnapshotError::InvalidOffsets {
                reason: format!(
                    "trajectory {} is empty (offsets[{i}] == offsets[{}])",
                    i - 1,
                    i - 1
                ),
            });
        }
        prev = o;
    }
    if prev as usize != n {
        return Err(SnapshotError::InvalidOffsets {
            reason: format!("offsets end at {prev}, expected point count {n}"),
        });
    }
    // Kept-bitmap tail padding must be zero, so KeptBitmap::from_words
    // can never panic downstream — corrupt bitmaps are a typed error
    // here, not an abort during serving.
    if let Some(off) = layout.kept_off {
        if !n.is_multiple_of(64) && layout.kept_words > 0 {
            let last_off = off + (layout.kept_words - 1) * 8;
            let last = get_u64(bytes, last_off);
            if last >> (n % 64) != 0 {
                return Err(SnapshotError::InvalidKeptBitmap { points: n as u64 });
            }
        }
    }
    Ok(layout)
}

// ---------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------

/// Serializes the full byte image of a snapshot (header, padded sections,
/// trailing checksum) — the single source of truth both file writers and
/// the in-memory round-trip tests use.
#[must_use]
pub fn snapshot_bytes<S: AsColumns + ?Sized>(store: &S, kept: Option<&KeptBitmap>) -> Vec<u8> {
    let m = store.len();
    let n = store.total_points();
    if let Some(k) = kept {
        assert_eq!(
            k.len(),
            n,
            "kept bitmap covers {} points, store has {n}",
            k.len()
        );
    }
    let layout = Layout::plan(m, n, kept.is_some());
    let mut buf = vec![0u8; layout.file_len()];

    buf[0..8].copy_from_slice(&MAGIC);
    put_u32(&mut buf, 8, VERSION);
    put_u32(
        &mut buf,
        12,
        if kept.is_some() { FLAG_KEPT_BITMAP } else { 0 },
    );
    put_u64(&mut buf, 16, m as u64);
    put_u64(&mut buf, 24, n as u64);
    put_u64(&mut buf, 32, layout.xs_off as u64);
    put_u64(&mut buf, 40, layout.ys_off as u64);
    put_u64(&mut buf, 48, layout.ts_off as u64);
    put_u64(&mut buf, 56, layout.offsets_off as u64);
    put_u64(&mut buf, 64, layout.kept_off.unwrap_or(0) as u64);
    put_u64(&mut buf, 72, layout.checksum_off as u64);
    // Bytes 80..128 stay reserved (zero).

    copy_f64s_le(&mut buf[layout.xs_off..layout.xs_off + n * 8], store.xs());
    copy_f64s_le(&mut buf[layout.ys_off..layout.ys_off + n * 8], store.ys());
    copy_f64s_le(&mut buf[layout.ts_off..layout.ts_off + n * 8], store.ts());
    copy_u32s_le(
        &mut buf[layout.offsets_off..layout.offsets_off + (m + 1) * 4],
        store.offsets(),
    );
    if let (Some(off), Some(k)) = (layout.kept_off, kept) {
        copy_u64s_le(&mut buf[off..off + layout.kept_words * 8], k.words());
    }

    let sum = fnv1a64(&buf[..layout.checksum_off]);
    put_u64(&mut buf, layout.checksum_off, sum);
    buf
}

/// Writes `store` as a snapshot file at `path` (no kept bitmap).
pub fn write_snapshot<S, P>(store: &S, path: P) -> Result<(), SnapshotError>
where
    S: AsColumns + ?Sized,
    P: AsRef<Path>,
{
    write_snapshot_with(store, None, path)
}

/// Writes `store` plus an optional kept-point bitmap — the persisted form
/// of a simplified database: the full columns stay addressable (so error
/// measures and re-simplification still see `D`), while query serving
/// reads `D'` straight off the bitmap.
///
/// # Panics
/// When `kept` covers a different number of points than `store` holds.
pub fn write_snapshot_with<S, P>(
    store: &S,
    kept: Option<&KeptBitmap>,
    path: P,
) -> Result<(), SnapshotError>
where
    S: AsColumns + ?Sized,
    P: AsRef<Path>,
{
    let bytes = snapshot_bytes(store, kept);
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Serializes the full byte image of a **quantized** snapshot: each
/// coordinate column is delta-plus-uniform-quantized onto a grid of
/// spacing `2 * max_error` (so the nearest grid point is always within
/// `max_error`), and the grid-index deltas are zigzag-encoded at the
/// narrowest fixed width (1/2/4/8 bytes) that fits the column. The file
/// carries [`FLAG_QUANTIZED`] plus a qmeta section holding the error
/// bound and per-column parameters; readers that predate the flag
/// reject it instead of misreading.
///
/// Fails with [`SnapshotError::InvalidQuantization`] when `max_error`
/// is not finite and positive, a coordinate is non-finite, or the value
/// range needs more than 2^51 grid steps at this bound.
///
/// # Panics
/// When `kept` covers a different number of points than `store` holds.
pub fn quantized_snapshot_bytes<S: AsColumns + ?Sized>(
    store: &S,
    kept: Option<&KeptBitmap>,
    max_error: f64,
) -> Result<Vec<u8>, SnapshotError> {
    if !(max_error.is_finite() && max_error > 0.0) {
        return Err(SnapshotError::InvalidQuantization {
            reason: format!("max_error {max_error} is not finite and positive"),
        });
    }
    let m = store.len();
    let n = store.total_points();
    if let Some(k) = kept {
        assert_eq!(
            k.len(),
            n,
            "kept bitmap covers {} points, store has {n}",
            k.len()
        );
    }
    let (qx, zx) = quantize_column(store.xs(), max_error, "xs")?;
    let (qy, zy) = quantize_column(store.ys(), max_error, "ys")?;
    let (qt, zt) = quantize_column(store.ts(), max_error, "ts")?;
    let quant = QuantMeta {
        max_error,
        cols: [qx, qy, qt],
    };
    let layout = Layout::plan_quantized(m, n, kept.is_some(), quant);
    let mut buf = vec![0u8; layout.file_len()];

    buf[0..8].copy_from_slice(&MAGIC);
    put_u32(&mut buf, 8, VERSION);
    let flags = FLAG_QUANTIZED | if kept.is_some() { FLAG_KEPT_BITMAP } else { 0 };
    put_u32(&mut buf, 12, flags);
    put_u64(&mut buf, 16, m as u64);
    put_u64(&mut buf, 24, n as u64);
    put_u64(&mut buf, 32, layout.xs_off as u64);
    put_u64(&mut buf, 40, layout.ys_off as u64);
    put_u64(&mut buf, 48, layout.ts_off as u64);
    put_u64(&mut buf, 56, layout.offsets_off as u64);
    put_u64(&mut buf, 64, layout.kept_off.unwrap_or(0) as u64);
    put_u64(&mut buf, 72, layout.checksum_off as u64);
    put_u64(&mut buf, 80, HEADER_LEN as u64); // qmeta_off
                                              // Bytes 88..128 stay reserved (zero).

    put_f64(&mut buf, HEADER_LEN, max_error);
    for (i, col) in quant.cols.iter().enumerate() {
        let base = HEADER_LEN + 8 + i * 24;
        put_f64(&mut buf, base, col.min);
        put_f64(&mut buf, base + 8, col.step);
        put_u64(&mut buf, base + 16, col.width as u64);
    }

    write_quantized(
        &mut buf[layout.xs_off..layout.xs_off + n * qx.width],
        &zx,
        qx.width,
    );
    write_quantized(
        &mut buf[layout.ys_off..layout.ys_off + n * qy.width],
        &zy,
        qy.width,
    );
    write_quantized(
        &mut buf[layout.ts_off..layout.ts_off + n * qt.width],
        &zt,
        qt.width,
    );
    copy_u32s_le(
        &mut buf[layout.offsets_off..layout.offsets_off + (m + 1) * 4],
        store.offsets(),
    );
    if let (Some(off), Some(k)) = (layout.kept_off, kept) {
        copy_u64s_le(&mut buf[off..off + layout.kept_words * 8], k.words());
    }

    let sum = fnv1a64(&buf[..layout.checksum_off]);
    put_u64(&mut buf, layout.checksum_off, sum);
    Ok(buf)
}

/// Writes `store` as a **quantized** snapshot file at `path` — the
/// compressed sibling of [`write_snapshot_with`]. Both load paths
/// ([`read_snapshot`] and [`MappedStore::open`]) decode it back to
/// plain `f64` columns transparently, each coordinate within
/// `max_error` of its original value.
pub fn write_snapshot_quantized<S, P>(
    store: &S,
    kept: Option<&KeptBitmap>,
    max_error: f64,
    path: P,
) -> Result<(), SnapshotError>
where
    S: AsColumns + ?Sized,
    P: AsRef<Path>,
{
    let bytes = quantized_snapshot_bytes(store, kept, max_error)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Owned reading.
// ---------------------------------------------------------------------

/// Quantization facts of a snapshot load: present when the file stored
/// quantized columns, reporting the error bound the decoded coordinates
/// honor and the per-column delta widths the encoder chose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantInfo {
    /// Every decoded coordinate is within this distance of the value the
    /// snapshot was written from (per axis).
    pub max_error: f64,
    /// Bytes per stored delta for xs, ys, ts (each 1, 2, 4, or 8).
    pub widths: [u8; 3],
}

/// An owned, heap-backed snapshot load: the store plus the kept bitmap
/// when the file carries one.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The reconstructed columnar database.
    pub store: PointStore,
    /// The kept-point bitmap, for files written by
    /// [`write_snapshot_with`].
    pub kept: Option<KeptBitmap>,
    /// Quantization parameters, for files written by
    /// [`write_snapshot_quantized`]; `None` for raw snapshots.
    pub quant: Option<QuantInfo>,
}

/// Decodes a validated byte image into owned columns.
fn decode(bytes: &[u8], layout: &Layout) -> Snapshot {
    let n = layout.point_count;
    let m = layout.traj_count;
    let (xs, ys, ts) = match &layout.quant {
        Some(q) => (
            dequantize_column(
                &bytes[layout.xs_off..layout.xs_off + n * q.cols[0].width],
                n,
                &q.cols[0],
            ),
            dequantize_column(
                &bytes[layout.ys_off..layout.ys_off + n * q.cols[1].width],
                n,
                &q.cols[1],
            ),
            dequantize_column(
                &bytes[layout.ts_off..layout.ts_off + n * q.cols[2].width],
                n,
                &q.cols[2],
            ),
        ),
        None => (
            read_f64s_le(&bytes[layout.xs_off..layout.xs_off + n * 8]),
            read_f64s_le(&bytes[layout.ys_off..layout.ys_off + n * 8]),
            read_f64s_le(&bytes[layout.ts_off..layout.ts_off + n * 8]),
        ),
    };
    let offsets = read_u32s_le(&bytes[layout.offsets_off..layout.offsets_off + (m + 1) * 4]);
    let kept = layout.kept_off.map(|off| {
        KeptBitmap::from_words(read_u64s_le(&bytes[off..off + layout.kept_words * 8]), n)
    });
    Snapshot {
        store: PointStore::from_raw_columns(xs, ys, ts, offsets),
        kept,
        quant: layout.quant.map(|q| QuantInfo {
            max_error: q.max_error,
            widths: [
                q.cols[0].width as u8,
                q.cols[1].width as u8,
                q.cols[2].width as u8,
            ],
        }),
    }
}

/// Reads a snapshot file into owned memory, validating magic, version,
/// section geometry, checksum, and offset-table invariants. Use
/// [`MappedStore::open`] instead when the file should be served in place.
pub fn read_snapshot<P: AsRef<Path>>(path: P) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    let layout = validate(&bytes)?;
    Ok(decode(&bytes, &layout))
}

/// [`read_snapshot`] over an in-memory byte image (the writer's
/// round-trip twin; useful for tests and network transports).
pub fn read_snapshot_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    let layout = validate(bytes)?;
    Ok(decode(bytes, &layout))
}

/// True when the file at `path` starts with the snapshot [`MAGIC`] — the
/// cheap format sniff database-open auto-detection uses to distinguish a
/// snapshot file from a CSV before committing to a full parse. A positive
/// answer does **not** validate the file; the subsequent
/// [`read_snapshot`] / [`MappedStore::open`] still runs every check.
pub fn is_snapshot_file<P: AsRef<Path>>(path: P) -> std::io::Result<bool> {
    use std::io::Read;
    let mut head = [0u8; 8];
    let mut file = std::fs::File::open(path)?;
    match file.read_exact(&mut head) {
        Ok(()) => Ok(head == MAGIC),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------
// Zero-copy mapping.
// ---------------------------------------------------------------------

/// The bytes behind a [`MappedStore`]: a real `mmap` on unix targets, an
/// 8-byte-aligned heap copy elsewhere (same API, one extra read).
#[derive(Debug)]
enum Backing {
    #[cfg(unix)]
    Map(Mmap),
    #[allow(dead_code)] // the only variant on non-unix targets
    Heap(AlignedBytes),
}

impl Backing {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Map(m) => m.bytes(),
            Backing::Heap(h) => h.bytes(),
        }
    }
}

/// A read-only `mmap` of a whole file, unmapped on drop. Declared against
/// raw libc symbols — this workspace builds offline, so no `libc`/
/// `memmap2` crates.
#[cfg(unix)]
#[derive(Debug)]
struct Mmap {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

#[cfg(unix)]
impl Mmap {
    fn map(file: &File, len: usize) -> Result<Self, SnapshotError> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: a fresh private read-only mapping of `len` bytes over an
        // open fd; the pointer is checked against MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(SnapshotError::Io(io::Error::last_os_error()));
        }
        Ok(Self { ptr, len })
    }

    #[inline]
    fn bytes(&self) -> &[u8] {
        // SAFETY: the mapping is valid for `len` bytes for the lifetime of
        // `self` (munmap happens only in Drop), and PROT_READ makes it
        // immutable through this pointer.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful mmap and are
        // unmapped exactly once.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

// SAFETY: the mapping is read-only (PROT_READ, private) for its whole
// lifetime; shared references to immutable memory are Send + Sync. The
// usual mmap caveat applies and is documented on `MappedStore`: external
// truncation of the underlying file turns reads into SIGBUS, as with any
// memory-mapped I/O.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

/// A heap buffer guaranteed 8-byte aligned (backed by `Vec<u64>`), so the
/// same zero-copy column casts work where `mmap` is unavailable.
#[derive(Debug)]
struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    #[cfg(not(unix))]
    fn from_file(file: &mut File, len: usize) -> Result<Self, SnapshotError> {
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec<u64> allocation is valid for words.len() * 8
        // bytes and u64 has no invalid bit patterns, so filling it through
        // a &mut [u8] view is sound.
        let buf = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8)
        };
        file.read_exact(&mut buf[..len])?;
        Ok(Self { words, len })
    }

    #[inline]
    fn bytes(&self) -> &[u8] {
        // SAFETY: the Vec<u64> allocation is valid for at least `len`
        // bytes (len <= words.len() * 8 by construction).
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

/// A [`PointStore`]-shaped database whose columns live in a **read-only
/// file mapping** instead of the heap. Opening copies and decodes
/// nothing; the one full-file pass is the mandatory checksum
/// verification (a sequential read at memory bandwidth — at the 349k-
/// point bench scale the whole open is ~25x faster than a CSV parse),
/// after which pages are faulted in as queries touch them.
///
/// `MappedStore` implements [`AsColumns`], so everything generic over
/// columns — `TrajView`s, octree/kd-tree construction, the whole
/// `QueryEngine` — runs over it unchanged, and a simplified database
/// written with [`write_snapshot_with`] serves queries with zero
/// deserialization. [`StoreRef`](crate::store::StoreRef) is the
/// non-generic handle for code that must own "either kind of store".
///
/// On non-unix targets the "mapping" degrades to one aligned heap read of
/// the file; the API and validation are identical. On big-endian targets
/// the columns are decoded (the format is little-endian), again behind
/// the same API.
///
/// # File stability
/// As with all memory-mapped I/O, the file must not be truncated while
/// the store is open — the OS would deliver `SIGBUS` on a fault into the
/// removed range. Writing snapshots to a temp path and `rename(2)`-ing
/// them into place (what [`write_snapshot`] callers should do for live
/// republishing) avoids the hazard.
#[derive(Debug)]
pub struct MappedStore {
    backing: Backing,
    xs_off: usize,
    ys_off: usize,
    ts_off: usize,
    offsets_off: usize,
    kept_off: Option<usize>,
    kept_words: usize,
    traj_count: usize,
    point_count: usize,
}

impl MappedStore {
    /// Opens and validates a snapshot file, backing the columns by a
    /// read-only mapping. All of [`read_snapshot`]'s rejection cases
    /// apply (bad magic, version mismatch, truncation, section bounds,
    /// checksum, offset invariants) — corruption is caught here, once,
    /// not during query execution.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < (HEADER_LEN + 8) as u64 {
            return Err(SnapshotError::Truncated {
                len: file_len,
                needed: (HEADER_LEN + 8) as u64,
            });
        }
        let len = usize::try_from(file_len).map_err(|_| SnapshotError::TooLarge {
            points: file_len / 24,
        })?;

        #[cfg(unix)]
        let backing = Backing::Map(Mmap::map(&file, len)?);
        #[cfg(not(unix))]
        let backing = {
            let mut file = file;
            Backing::Heap(AlignedBytes::from_file(&mut file, len)?)
        };

        let layout = validate(backing.bytes())?;

        if layout.quant.is_some() || cfg!(target_endian = "big") {
            // Quantized files (and any file on a big-endian host) cannot
            // be served in place: decode once into a native-order aligned
            // heap image with the canonical *raw* section layout, so the
            // zero-copy accessors stay correct and every caller sees
            // plain f64 columns regardless of the on-disk codec.
            let snap = decode(backing.bytes(), &layout);
            let raw = Layout::plan(
                layout.traj_count,
                layout.point_count,
                layout.kept_off.is_some(),
            );
            let native = snapshot_bytes_native(&snap.store, snap.kept.as_ref(), &raw);
            return Ok(Self::from_parts(Backing::Heap(native), &raw));
        }
        Ok(Self::from_parts(backing, &layout))
    }

    fn from_parts(backing: Backing, layout: &Layout) -> Self {
        Self {
            backing,
            xs_off: layout.xs_off,
            ys_off: layout.ys_off,
            ts_off: layout.ts_off,
            offsets_off: layout.offsets_off,
            kept_off: layout.kept_off,
            kept_words: layout.kept_words,
            traj_count: layout.traj_count,
            point_count: layout.point_count,
        }
    }

    /// Casts the mapped byte range at `off` into a typed column slice.
    #[inline]
    fn typed<T>(&self, off: usize, count: usize) -> &[T] {
        let bytes = &self.backing.bytes()[off..off + count * std::mem::size_of::<T>()];
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
        // SAFETY: `validate` proved the range lies inside the file and
        // starts 64-byte aligned; the mapping base is page aligned (and
        // the heap fallback 8-byte aligned), so the cast pointer is
        // aligned for T ∈ {f64, u32, u64}, all of which accept any bit
        // pattern. The slice borrows `self`, which owns the mapping.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), count) }
    }

    /// The x column, served from the mapping.
    #[inline]
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        self.typed(self.xs_off, self.point_count)
    }

    /// The y column, served from the mapping.
    #[inline]
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        self.typed(self.ys_off, self.point_count)
    }

    /// The t column, served from the mapping.
    #[inline]
    #[must_use]
    pub fn ts(&self) -> &[f64] {
        self.typed(self.ts_off, self.point_count)
    }

    /// The offset table, served from the mapping.
    #[inline]
    #[must_use]
    pub fn offsets(&self) -> &[u32] {
        self.typed(self.offsets_off, self.traj_count + 1)
    }

    /// The kept-bitmap words, served from the mapping — `None` when the
    /// snapshot was written without one.
    #[must_use]
    pub fn kept_words(&self) -> Option<&[u64]> {
        self.kept_off.map(|off| self.typed(off, self.kept_words))
    }

    /// An owned [`KeptBitmap`] copy of the kept section, for APIs that
    /// need one (`QueryEngine::range_kept`). O(N/64) words copied — tiny
    /// next to the columns, which stay mapped.
    #[must_use]
    pub fn kept_bitmap(&self) -> Option<KeptBitmap> {
        self.kept_words()
            .map(|w| KeptBitmap::from_words(w.to_vec(), self.point_count))
    }
}

impl AsColumns for MappedStore {
    #[inline]
    fn xs(&self) -> &[f64] {
        MappedStore::xs(self)
    }

    #[inline]
    fn ys(&self) -> &[f64] {
        MappedStore::ys(self)
    }

    #[inline]
    fn ts(&self) -> &[f64] {
        MappedStore::ts(self)
    }

    #[inline]
    fn offsets(&self) -> &[u32] {
        MappedStore::offsets(self)
    }
}

/// Re-encodes a decoded snapshot into a native-endian aligned heap image
/// with the given layout — the big-endian fallback for [`MappedStore`].
fn snapshot_bytes_native(
    store: &PointStore,
    kept: Option<&KeptBitmap>,
    layout: &Layout,
) -> AlignedBytes {
    let len = layout.file_len();
    let mut words = vec![0u64; len.div_ceil(8)];
    // SAFETY: as in `AlignedBytes::from_file` — a u64 allocation viewed
    // as bytes.
    let buf =
        unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8) };
    let n = layout.point_count;
    let m = layout.traj_count;
    let copy_native = |dst: &mut [u8], src: *const u8, bytes: usize| {
        // SAFETY: caller passes a live slice pointer with `bytes` valid.
        dst.copy_from_slice(unsafe { std::slice::from_raw_parts(src, bytes) });
    };
    copy_native(
        &mut buf[layout.xs_off..layout.xs_off + n * 8],
        store.xs().as_ptr().cast(),
        n * 8,
    );
    copy_native(
        &mut buf[layout.ys_off..layout.ys_off + n * 8],
        store.ys().as_ptr().cast(),
        n * 8,
    );
    copy_native(
        &mut buf[layout.ts_off..layout.ts_off + n * 8],
        store.ts().as_ptr().cast(),
        n * 8,
    );
    copy_native(
        &mut buf[layout.offsets_off..layout.offsets_off + (m + 1) * 4],
        store.offsets().as_ptr().cast(),
        (m + 1) * 4,
    );
    if let (Some(off), Some(k)) = (layout.kept_off, kept) {
        copy_native(
            &mut buf[off..off + layout.kept_words * 8],
            k.words().as_ptr().cast(),
            layout.kept_words * 8,
        );
    }
    AlignedBytes { words, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Simplification;
    use crate::gen::{generate, DatasetSpec, Scale};

    fn sample_store() -> PointStore {
        generate(&DatasetSpec::geolife(Scale::Smoke), 99).to_store()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qdts_snapshot_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn owned_round_trip_is_identity() {
        let store = sample_store();
        let path = temp_path("owned_round_trip.snap");
        write_snapshot(&store, &path).unwrap();
        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.store, store);
        assert_eq!(snap.kept, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_round_trip_matches_columns_and_views() {
        let store = sample_store();
        let path = temp_path("mapped_round_trip.snap");
        write_snapshot(&store, &path).unwrap();
        let mapped = MappedStore::open(&path).unwrap();
        assert_eq!(mapped.xs(), store.xs());
        assert_eq!(mapped.ys(), store.ys());
        assert_eq!(mapped.ts(), store.ts());
        assert_eq!(mapped.offsets(), store.offsets());
        assert_eq!(AsColumns::len(&mapped), store.len());
        assert_eq!(AsColumns::total_points(&mapped), store.total_points());
        for id in 0..store.len() {
            let (a, b) = (AsColumns::view(&mapped, id), store.view(id));
            assert_eq!(a.xs, b.xs);
            assert_eq!(a.ys, b.ys);
            assert_eq!(a.ts, b.ts);
        }
        assert_eq!(mapped.kept_words(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kept_bitmap_round_trips() {
        let store = sample_store();
        let db = store.to_db();
        let mut simp = Simplification::most_simplified(&db);
        for (id, t) in db.iter() {
            for idx in (0..t.len() as u32).step_by(4) {
                simp.insert(id, idx);
            }
        }
        let bitmap = simp.to_bitmap(&store);
        let path = temp_path("kept_round_trip.snap");
        write_snapshot_with(&store, Some(&bitmap), &path).unwrap();

        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.kept.as_ref(), Some(&bitmap));

        let mapped = MappedStore::open(&path).unwrap();
        assert_eq!(mapped.kept_bitmap().as_ref(), Some(&bitmap));
        assert_eq!(mapped.kept_words(), Some(bitmap.words()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_round_trips() {
        let store = PointStore::new();
        let bytes = snapshot_bytes(&store, None);
        let snap = read_snapshot_bytes(&bytes).unwrap();
        assert_eq!(snap.store, store);

        let path = temp_path("empty.snap");
        write_snapshot(&store, &path).unwrap();
        let mapped = MappedStore::open(&path).unwrap();
        assert_eq!(AsColumns::len(&mapped), 0);
        assert_eq!(AsColumns::total_points(&mapped), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sections_are_aligned_and_header_is_exact() {
        let store = sample_store();
        let bytes = snapshot_bytes(&store, None);
        assert_eq!(&bytes[0..8], &MAGIC);
        assert_eq!(get_u32(&bytes, 8), VERSION);
        assert_eq!(get_u32(&bytes, 12), 0);
        assert_eq!(get_u64(&bytes, 16), store.len() as u64);
        assert_eq!(get_u64(&bytes, 24), store.total_points() as u64);
        for field in [32, 40, 48, 56] {
            assert_eq!(get_u64(&bytes, field) % SECTION_ALIGN as u64, 0);
        }
        assert_eq!(get_u64(&bytes, 32), HEADER_LEN as u64);
        // Reserved region stays zero.
        assert!(bytes[80..128].iter().all(|&b| b == 0));
        // Trailing checksum self-verifies.
        let sum_off = get_u64(&bytes, 72) as usize;
        assert_eq!(get_u64(&bytes, sum_off), fnv1a64(&bytes[..sum_off]));
        assert_eq!(bytes.len(), sum_off + 8);
    }

    #[test]
    fn rejects_bad_magic() {
        let store = sample_store();
        let mut bytes = snapshot_bytes(&store, None);
        bytes[0] = b'X';
        assert!(matches!(
            read_snapshot_bytes(&bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn rejects_future_version() {
        let store = sample_store();
        let mut bytes = snapshot_bytes(&store, None);
        put_u32(&mut bytes, 8, VERSION + 1);
        assert!(matches!(
            read_snapshot_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found, supported })
                if found == VERSION + 1 && supported == VERSION
        ));
    }

    #[test]
    fn rejects_unknown_flags() {
        let store = sample_store();
        let mut bytes = snapshot_bytes(&store, None);
        put_u32(&mut bytes, 12, 0x80);
        assert!(matches!(
            read_snapshot_bytes(&bytes),
            Err(SnapshotError::UnknownFlags { flags: 0x80 })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let store = sample_store();
        let bytes = snapshot_bytes(&store, None);
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN + 8, bytes.len() - 1] {
            let err = read_snapshot_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::SectionOutOfBounds { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn rejects_out_of_bounds_section() {
        let store = sample_store();
        let mut bytes = snapshot_bytes(&store, None);
        let huge = (bytes.len() as u64) * 2;
        put_u64(&mut bytes, 48, huge); // ts offset past EOF
        assert!(matches!(
            read_snapshot_bytes(&bytes),
            Err(SnapshotError::SectionOutOfBounds { section: "ts", .. })
        ));
    }

    #[test]
    fn rejects_flipped_payload_bits() {
        let store = sample_store();
        let mut bytes = snapshot_bytes(&store, None);
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            read_snapshot_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_invalid_offset_table() {
        // Hand-build a store whose offsets we then corrupt (fixing up the
        // checksum so only the offset invariant can fail).
        let store = sample_store();
        let mut bytes = snapshot_bytes(&store, None);
        let offsets_off = get_u64(&bytes, 56) as usize;
        // offsets[1] := offsets[2] + 1 breaks monotonicity for any store
        // with at least 2 trajectories.
        let o2 = get_u32(&bytes, offsets_off + 8);
        put_u32(&mut bytes, offsets_off + 4, o2 + 1);
        let sum_off = get_u64(&bytes, 72) as usize;
        let sum = fnv1a64(&bytes[..sum_off]);
        put_u64(&mut bytes, sum_off, sum);
        assert!(matches!(
            read_snapshot_bytes(&bytes),
            Err(SnapshotError::InvalidOffsets { .. })
        ));
    }

    #[test]
    fn rejects_empty_trajectories_in_offset_table() {
        // No store API can produce a zero-length trajectory, so a file
        // claiming one is corrupt — and must not reach kNN windowing
        // (first()/last() on an empty view) or bitmap anchoring.
        let store = sample_store();
        let mut bytes = snapshot_bytes(&store, None);
        let offsets_off = get_u64(&bytes, 56) as usize;
        // offsets[1] := offsets[0] (= 0) empties trajectory 0 while
        // keeping the table monotone.
        put_u32(&mut bytes, offsets_off + 4, 0);
        let sum_off = get_u64(&bytes, 72) as usize;
        let sum = fnv1a64(&bytes[..sum_off]);
        put_u64(&mut bytes, sum_off, sum);
        assert!(matches!(
            read_snapshot_bytes(&bytes),
            Err(SnapshotError::InvalidOffsets { .. })
        ));
    }

    #[test]
    fn rejects_kept_bitmap_tail_bits_without_panicking() {
        // A checksum-valid file whose kept bitmap sets a bit past N must
        // come back as a typed error from BOTH load paths — never the
        // KeptBitmap::from_words panic.
        let store = sample_store();
        let n = store.total_points();
        assert_ne!(n % 64, 0, "sample store must leave tail padding bits");
        let kept = KeptBitmap::zeros(n);
        let mut bytes = snapshot_bytes(&store, Some(&kept));
        let kept_off = get_u64(&bytes, 64) as usize;
        let words = n.div_ceil(64);
        let last_off = kept_off + (words - 1) * 8;
        put_u64(&mut bytes, last_off, 1u64 << 63); // bit 63 of last word > n
        let sum_off = get_u64(&bytes, 72) as usize;
        let sum = fnv1a64(&bytes[..sum_off]);
        put_u64(&mut bytes, sum_off, sum);

        assert!(matches!(
            read_snapshot_bytes(&bytes),
            Err(SnapshotError::InvalidKeptBitmap { .. })
        ));
        let path = temp_path("tail_bits.snap");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MappedStore::open(&path),
            Err(SnapshotError::InvalidKeptBitmap { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_open_rejects_corrupt_files_with_typed_errors() {
        let store = sample_store();
        let ok = snapshot_bytes(&store, None);

        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("empty", Vec::new()),
            ("short", ok[..64].to_vec()),
            ("bad_magic", {
                let mut b = ok.clone();
                b[3] = 0;
                b
            }),
            ("bit_rot", {
                let mut b = ok.clone();
                let last = b.len() - 9; // inside checksummed range
                b[last] ^= 1;
                b
            }),
        ];
        for (name, data) in cases {
            let path = temp_path(&format!("corrupt_{name}.snap"));
            std::fs::write(&path, &data).unwrap();
            let err = MappedStore::open(&path).unwrap_err();
            assert!(
                !matches!(err, SnapshotError::Io(_)),
                "{name}: expected typed rejection, got {err}"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn store_ref_serves_all_four_backends_identically() {
        use crate::store::StoreRef;
        let store = sample_store();
        let path = temp_path("store_ref.snap");
        write_snapshot(&store, &path).unwrap();
        let mapped = MappedStore::open(&path).unwrap();
        let mapped2 = MappedStore::open(&path).unwrap();
        let refs = [
            StoreRef::Owned(store.clone()),
            StoreRef::Borrowed(&store),
            StoreRef::Mapped(mapped),
            StoreRef::MappedRef(&mapped2),
        ];
        for r in &refs {
            assert_eq!(r.xs(), store.xs());
            assert_eq!(r.offsets(), store.offsets());
            assert_eq!(r.bounding_cube(), PointStore::bounding_cube(&store));
        }
        assert!(refs[0].as_point_store().is_some());
        assert!(refs[2].as_mapped().is_some());
        assert!(refs[2].as_point_store().is_none());
        std::fs::remove_file(&path).ok();
    }

    /// Max per-axis deviation between two stores' columns.
    fn max_axis_error(a: &PointStore, b: &PointStore) -> f64 {
        let pairs = a
            .xs()
            .iter()
            .zip(b.xs())
            .chain(a.ys().iter().zip(b.ys()))
            .chain(a.ts().iter().zip(b.ts()));
        pairs.map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn quantized_round_trip_is_within_bound() {
        let store = sample_store();
        let max_error = 1e-3;
        let raw = snapshot_bytes(&store, None);
        let q = quantized_snapshot_bytes(&store, None, max_error).unwrap();
        assert!(q.len() < raw.len());

        let snap = read_snapshot_bytes(&q).unwrap();
        assert_eq!(snap.store.offsets(), store.offsets());
        assert_eq!(snap.kept, None);
        let info = snap.quant.expect("quantized load reports QuantInfo");
        assert_eq!(info.max_error, max_error);
        assert!(info.widths.iter().all(|w| matches!(w, 1 | 2 | 4 | 8)));
        let err = max_axis_error(&snap.store, &store);
        assert!(
            err <= max_error * 1.000_001,
            "decoded error {err} exceeds bound {max_error}"
        );
    }

    #[test]
    fn quantized_snapshot_is_measurably_smaller_at_meter_bound() {
        // Half-meter accuracy (GPS noise scale) narrows the coordinate
        // deltas below the raw 8-byte lanes by a wide margin.
        let store = sample_store();
        let raw = snapshot_bytes(&store, None);
        let q = quantized_snapshot_bytes(&store, None, 0.5).unwrap();
        assert!(
            q.len() * 2 < raw.len(),
            "quantized {} bytes vs raw {} — expected at least 2x smaller",
            q.len(),
            raw.len()
        );
        let snap = read_snapshot_bytes(&q).unwrap();
        assert!(max_axis_error(&snap.store, &store) <= 0.5 * 1.000_001);
    }

    #[test]
    fn quantized_decode_preserves_time_order() {
        let store = sample_store();
        let q = quantized_snapshot_bytes(&store, None, 0.5).unwrap();
        let snap = read_snapshot_bytes(&q).unwrap();
        for id in 0..snap.store.len() {
            let ts = snap.store.view(id).ts;
            assert!(
                ts.windows(2).all(|w| w[0] <= w[1]),
                "trajectory {id} decoded out of time order"
            );
        }
    }

    #[test]
    fn quantized_mapped_open_decodes_transparently() {
        let store = sample_store();
        let db = store.to_db();
        let mut simp = Simplification::most_simplified(&db);
        for (id, t) in db.iter() {
            for idx in (0..t.len() as u32).step_by(3) {
                simp.insert(id, idx);
            }
        }
        let bitmap = simp.to_bitmap(&store);
        let path = temp_path("quantized_mapped.snap");
        write_snapshot_quantized(&store, Some(&bitmap), 1e-3, &path).unwrap();

        let snap = read_snapshot(&path).unwrap();
        let mapped = MappedStore::open(&path).unwrap();
        // The mapped view serves the same decoded columns as the owned
        // load — downstream consumers never see the codec.
        assert_eq!(mapped.xs(), snap.store.xs());
        assert_eq!(mapped.ys(), snap.store.ys());
        assert_eq!(mapped.ts(), snap.store.ts());
        assert_eq!(mapped.offsets(), store.offsets());
        assert_eq!(mapped.kept_bitmap().as_ref(), Some(&bitmap));
        assert!(max_axis_error(&snap.store, &store) <= 1e-3 * 1.000_001);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantized_empty_store_round_trips() {
        let store = PointStore::new();
        let q = quantized_snapshot_bytes(&store, None, 1.0).unwrap();
        let snap = read_snapshot_bytes(&q).unwrap();
        assert_eq!(snap.store, store);
        assert!(snap.quant.is_some());
    }

    #[test]
    fn quantized_rejects_bad_bounds_and_nonfinite_input() {
        let store = sample_store();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                quantized_snapshot_bytes(&store, None, bad),
                Err(SnapshotError::InvalidQuantization { .. })
            ));
        }
        let nan_store = PointStore::from_raw_columns(
            vec![0.0, f64::NAN],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![0, 2],
        );
        assert!(matches!(
            quantized_snapshot_bytes(&nan_store, None, 0.1),
            Err(SnapshotError::InvalidQuantization { .. })
        ));
        // A range needing more than 2^51 grid steps at the bound.
        let wide = PointStore::from_raw_columns(
            vec![0.0, 1e18],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![0, 2],
        );
        assert!(matches!(
            quantized_snapshot_bytes(&wide, None, 1e-6),
            Err(SnapshotError::InvalidQuantization { .. })
        ));
    }

    #[test]
    fn quantized_header_carries_flag_and_qmeta_offset() {
        let store = sample_store();
        let bytes = quantized_snapshot_bytes(&store, None, 1e-3).unwrap();
        assert_eq!(get_u32(&bytes, 12) & FLAG_QUANTIZED, FLAG_QUANTIZED);
        assert_eq!(get_u64(&bytes, 80), HEADER_LEN as u64);
        // Remaining reserved region stays zero.
        assert!(bytes[88..128].iter().all(|&b| b == 0));
        // Stored max_error opens the qmeta section.
        assert_eq!(get_f64(&bytes, HEADER_LEN), 1e-3);
    }

    #[test]
    fn quantized_corruption_is_rejected_with_typed_errors() {
        let store = sample_store();
        let good = quantized_snapshot_bytes(&store, None, 1e-3).unwrap();

        // Bit rot in the delta stream.
        let mut rot = good.clone();
        let mid = 256 + (good.len() - 256) / 2;
        rot[mid] ^= 0x10;
        assert!(matches!(
            read_snapshot_bytes(&rot),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Truncation.
        assert!(matches!(
            read_snapshot_bytes(&good[..good.len() - 1]),
            Err(SnapshotError::Truncated { .. } | SnapshotError::SectionOutOfBounds { .. })
        ));

        // A width outside {1, 2, 4, 8} with a fixed-up checksum.
        let mut bad_width = good.clone();
        put_u64(&mut bad_width, HEADER_LEN + 8 + 16, 3);
        let sum_off = get_u64(&bad_width, 72) as usize;
        let sum = fnv1a64(&bad_width[..sum_off]);
        put_u64(&mut bad_width, sum_off, sum);
        assert!(matches!(
            read_snapshot_bytes(&bad_width),
            Err(SnapshotError::InvalidQuantization { .. })
                | Err(SnapshotError::SectionOutOfBounds { .. })
        ));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
