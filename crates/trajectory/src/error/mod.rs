//! Trajectory simplification error measures (§III-A, Eq. 1–2).
//!
//! Four instantiations of the per-point error `ϵ(p_s p_e | p_i)` are
//! provided — SED, PED, DAD, SAD — together with the two aggregation levels
//! the paper defines: the *segment error* (Eq. 1, max over anchored points)
//! and the *trajectory error* (Eq. 2, max over simplified segments).

pub mod dad;
pub mod ped;
pub mod sad;
pub mod sed;

use crate::db::{Simplification, TrajectoryDb};
use crate::seq::PointSeq;
use crate::traj::Trajectory;

pub use dad::dad;
pub use ped::ped;
pub use sad::sad;
pub use sed::sed;

/// The error measure used to instantiate `ϵ(p_s p_e | p_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorMeasure {
    /// Synchronized Euclidean Distance (meters).
    Sed,
    /// Perpendicular Euclidean Distance (meters).
    Ped,
    /// Direction-Aware Distance (radians).
    Dad,
    /// Speed-Aware Distance (meters/second).
    Sad,
}

impl ErrorMeasure {
    /// All four measures, in the order the paper lists them.
    pub const ALL: [ErrorMeasure; 4] = [
        ErrorMeasure::Sed,
        ErrorMeasure::Ped,
        ErrorMeasure::Dad,
        ErrorMeasure::Sad,
    ];

    /// Short uppercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ErrorMeasure::Sed => "SED",
            ErrorMeasure::Ped => "PED",
            ErrorMeasure::Dad => "DAD",
            ErrorMeasure::Sad => "SAD",
        }
    }

    /// `ϵ(p_s p_e | p_i)` for anchor segment `(s, e)` (point indices into
    /// `traj`) and anchored point `i`, with `s ≤ i < e` (Eq. 1's range).
    ///
    /// For SED/PED this is the deviation of point `i` itself; for DAD/SAD it
    /// is the deviation of the original segment `i → i+1` that the anchor
    /// replaces.
    pub fn point_error(self, traj: &Trajectory, s: usize, e: usize, i: usize) -> f64 {
        self.point_error_seq(traj, s, e, i)
    }

    /// [`ErrorMeasure::point_error`] over any layout ([`PointSeq`]): the
    /// same Eq. 1 semantics computed from assembled points, so native
    /// columnar simplifiers (walking zero-copy
    /// [`TrajView`](crate::TrajView)s) and the AoS path score identically.
    pub fn point_error_seq<S: PointSeq + ?Sized>(
        self,
        seq: &S,
        s: usize,
        e: usize,
        i: usize,
    ) -> f64 {
        debug_assert!(s <= i && i < e && e < seq.n_points());
        let ps = seq.point_at(s);
        let pe = seq.point_at(e);
        match self {
            ErrorMeasure::Sed => sed(&ps, &pe, &seq.point_at(i)),
            ErrorMeasure::Ped => ped(&ps, &pe, &seq.point_at(i)),
            ErrorMeasure::Dad => dad(&ps, &pe, &seq.point_at(i), &seq.point_at(i + 1)),
            ErrorMeasure::Sad => sad(&ps, &pe, &seq.point_at(i), &seq.point_at(i + 1)),
        }
    }

    /// Segment error `ϵ(p_s p_e)` (Eq. 1): the maximum point error over all
    /// points anchored by segment `(s, e)`. Zero when the anchor spans a
    /// single original segment.
    pub fn segment_error(self, traj: &Trajectory, s: usize, e: usize) -> f64 {
        self.segment_error_seq(traj, s, e)
    }

    /// [`ErrorMeasure::segment_error`] over any layout ([`PointSeq`]): the
    /// max runs over the same index range in the same order, so a columnar
    /// simplifier's drop/insert costs are bitwise identical to the AoS
    /// path's.
    pub fn segment_error_seq<S: PointSeq + ?Sized>(self, seq: &S, s: usize, e: usize) -> f64 {
        debug_assert!(s < e && e < seq.n_points());
        let mut worst = 0.0f64;
        for i in s..e {
            worst = worst.max(self.point_error_seq(seq, s, e, i));
        }
        worst
    }

    /// Trajectory error `ϵ(T')` (Eq. 2): the maximum segment error over the
    /// simplified segments induced by `kept` (sorted kept indices).
    pub fn trajectory_error(self, traj: &Trajectory, kept: &[u32]) -> f64 {
        let mut worst = 0.0f64;
        for w in kept.windows(2) {
            worst = worst.max(self.segment_error(traj, w[0] as usize, w[1] as usize));
        }
        worst
    }

    /// Maximum trajectory error over the whole simplified database.
    pub fn db_error(self, db: &TrajectoryDb, simp: &Simplification) -> f64 {
        let mut worst = 0.0f64;
        for (id, traj) in db.iter() {
            worst = worst.max(self.trajectory_error(traj, simp.kept(id)));
        }
        worst
    }

    /// Mean trajectory error over the database (used by the deformation
    /// study, Fig. 7, which averages SED over query-returned trajectories).
    pub fn mean_db_error(self, db: &TrajectoryDb, simp: &Simplification) -> f64 {
        if db.is_empty() {
            return 0.0;
        }
        let sum: f64 = db
            .iter()
            .map(|(id, t)| self.trajectory_error(t, simp.kept(id)))
            .sum();
        sum / db.len() as f64
    }
}

impl std::fmt::Display for ErrorMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ErrorMeasure {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "SED" => Ok(ErrorMeasure::Sed),
            "PED" => Ok(ErrorMeasure::Ped),
            "DAD" => Ok(ErrorMeasure::Dad),
            "SAD" => Ok(ErrorMeasure::Sad),
            other => Err(format!("unknown error measure: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    /// A zig-zag trajectory with an obvious outlier at index 2.
    fn zigzag() -> Trajectory {
        Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(10.0, 0.0, 10.0),
            Point::new(20.0, 30.0, 20.0), // detour
            Point::new(30.0, 0.0, 30.0),
            Point::new(40.0, 0.0, 40.0),
        ])
        .unwrap()
    }

    #[test]
    fn segment_error_takes_the_max_point() {
        let t = zigzag();
        let e = ErrorMeasure::Sed.segment_error(&t, 0, 4);
        // The detour point dominates: sync at t=20 is (20, 0), actual (20, 30).
        assert!((e - 30.0).abs() < 1e-9);
    }

    #[test]
    fn single_segment_anchor_has_zero_error_for_spatial_measures() {
        let t = zigzag();
        for m in [ErrorMeasure::Sed, ErrorMeasure::Ped] {
            assert!(m.segment_error(&t, 1, 2) < 1e-12, "{m}");
        }
    }

    #[test]
    fn trajectory_error_zero_when_everything_kept() {
        let t = zigzag();
        let all: Vec<u32> = (0..t.len() as u32).collect();
        for m in ErrorMeasure::ALL {
            assert!(m.trajectory_error(&t, &all) < 1e-12, "{m}");
        }
    }

    #[test]
    fn keeping_the_outlier_reduces_sed_error() {
        let t = zigzag();
        let coarse = ErrorMeasure::Sed.trajectory_error(&t, &[0, 4]);
        let finer = ErrorMeasure::Sed.trajectory_error(&t, &[0, 2, 4]);
        assert!(finer < coarse);
    }

    #[test]
    fn db_error_is_max_over_trajectories() {
        let db = TrajectoryDb::new(vec![zigzag(), zigzag()]);
        let simp = Simplification::most_simplified(&db);
        let per = ErrorMeasure::Sed.trajectory_error(db.get(0), simp.kept(0));
        assert_eq!(ErrorMeasure::Sed.db_error(&db, &simp), per);
        assert!((ErrorMeasure::Sed.mean_db_error(&db, &simp) - per).abs() < 1e-12);
    }

    #[test]
    fn parse_round_trips() {
        for m in ErrorMeasure::ALL {
            let parsed: ErrorMeasure = m.name().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("XYZ".parse::<ErrorMeasure>().is_err());
    }

    #[test]
    fn dad_flags_direction_changes_even_on_short_detours() {
        // Spatially tiny but directionally violent wiggle.
        let t = Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(1.0, 0.1, 1.0),
            Point::new(2.0, -0.1, 2.0),
            Point::new(3.0, 0.0, 3.0),
        ])
        .unwrap();
        let sed_err = ErrorMeasure::Sed.trajectory_error(&t, &[0, 3]);
        let dad_err = ErrorMeasure::Dad.trajectory_error(&t, &[0, 3]);
        assert!(sed_err < 0.2, "spatially small");
        assert!(dad_err > 0.05, "directionally noticeable");
    }
}
