//! Synchronized Euclidean Distance (SED).

use crate::geom;
use crate::point::Point;

/// `ϵ_SED(p_s p_e | p)`: spatial distance between the original point `p` and
/// its synchronized position on the anchor segment `(s, e)` — the location
/// the simplified trajectory would report at time `p.t`.
#[inline]
pub fn sed(s: &Point, e: &Point, p: &Point) -> f64 {
    p.spatial_distance(&geom::sync_point(s, e, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sed_zero_when_point_lies_on_schedule() {
        let s = Point::new(0.0, 0.0, 0.0);
        let e = Point::new(10.0, 0.0, 10.0);
        let on = Point::new(3.0, 0.0, 3.0);
        assert!(sed(&s, &e, &on) < 1e-12);
    }

    #[test]
    fn sed_measures_synchronized_deviation() {
        let s = Point::new(0.0, 0.0, 0.0);
        let e = Point::new(10.0, 0.0, 10.0);
        // At t=5 the anchor says (5,0); the object was at (5,4) => SED 4,
        // even though the *spatial* distance to the segment is also 4 here.
        assert_eq!(sed(&s, &e, &Point::new(5.0, 4.0, 5.0)), 4.0);
        // Same location but at t=0: anchor says (0,0) => SED is 41^0.5 ~ 6.4.
        let lagged = sed(&s, &e, &Point::new(5.0, 4.0, 0.0));
        assert!((lagged - (41.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sed_endpoint_errors_are_zero() {
        let s = Point::new(2.0, 3.0, 1.0);
        let e = Point::new(8.0, -1.0, 9.0);
        assert!(sed(&s, &e, &s) < 1e-12);
        assert!(sed(&s, &e, &e) < 1e-12);
    }
}
