//! Direction-Aware Distance (DAD).

use crate::geom;
use crate::point::Point;

/// `ϵ_DAD(p_s p_e | p_i)`: angular difference (radians, in `[0, π]`) between
/// the heading of the original movement `p_i → p_{i+1}` and the heading of
/// the anchor segment `(s, e)`.
///
/// Following Eq. (1), point `p_i` with `s_j ≤ i < s_{j+1}` represents the
/// original segment leaving it, so the caller passes that segment's
/// endpoints as `(pi, pi_next)`.
#[inline]
pub fn dad(s: &Point, e: &Point, pi: &Point, pi_next: &Point) -> f64 {
    geom::angle_diff(geom::direction(pi, pi_next), geom::direction(s, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn dad_zero_for_collinear_movement() {
        let s = Point::new(0.0, 0.0, 0.0);
        let e = Point::new(10.0, 0.0, 10.0);
        let a = Point::new(2.0, 0.0, 2.0);
        let b = Point::new(7.0, 0.0, 7.0);
        assert!(dad(&s, &e, &a, &b) < 1e-12);
    }

    #[test]
    fn dad_detects_detours() {
        let s = Point::new(0.0, 0.0, 0.0);
        let e = Point::new(10.0, 0.0, 10.0);
        // The object actually headed straight north for a while.
        let a = Point::new(5.0, 0.0, 5.0);
        let b = Point::new(5.0, 3.0, 6.0);
        assert!((dad(&s, &e, &a, &b) - FRAC_PI_2).abs() < 1e-12);
        // Diagonal movement differs by 45 degrees.
        let c = Point::new(8.0, 6.0, 8.0);
        assert!((dad(&s, &e, &b, &c) - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn dad_is_bounded_by_pi() {
        let s = Point::new(0.0, 0.0, 0.0);
        let e = Point::new(10.0, 0.0, 10.0);
        let a = Point::new(5.0, 0.0, 5.0);
        let back = Point::new(0.0, 0.0, 6.0); // full reversal
        assert!((dad(&s, &e, &a, &back) - PI).abs() < 1e-12);
    }
}
