//! Speed-Aware Distance (SAD).

use crate::geom;
use crate::point::Point;

/// `ϵ_SAD(p_s p_e | p_i)`: absolute difference (m/s) between the average
/// speed of the original movement `p_i → p_{i+1}` and the average speed the
/// anchor segment `(s, e)` implies.
///
/// As with DAD, point `p_i` represents the original segment leaving it.
#[inline]
pub fn sad(s: &Point, e: &Point, pi: &Point, pi_next: &Point) -> f64 {
    (geom::speed(pi, pi_next) - geom::speed(s, e)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sad_zero_for_constant_speed() {
        let s = Point::new(0.0, 0.0, 0.0);
        let e = Point::new(10.0, 0.0, 10.0); // 1 m/s
        let a = Point::new(3.0, 0.0, 3.0);
        let b = Point::new(6.0, 0.0, 6.0); // also 1 m/s
        assert!(sad(&s, &e, &a, &b) < 1e-12);
    }

    #[test]
    fn sad_detects_speed_changes() {
        let s = Point::new(0.0, 0.0, 0.0);
        let e = Point::new(10.0, 0.0, 10.0); // anchor speed 1 m/s
        let a = Point::new(2.0, 0.0, 2.0);
        let sprint = Point::new(8.0, 0.0, 4.0); // 3 m/s
        assert_eq!(sad(&s, &e, &a, &sprint), 2.0);
    }

    #[test]
    fn sad_degenerate_durations_report_zero_speed() {
        let s = Point::new(0.0, 0.0, 5.0);
        let e = Point::new(10.0, 0.0, 5.0); // zero duration => speed 0
        let a = Point::new(0.0, 0.0, 5.0);
        let b = Point::new(5.0, 0.0, 5.0);
        assert_eq!(sad(&s, &e, &a, &b), 0.0);
    }
}
