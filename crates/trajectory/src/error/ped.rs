//! Perpendicular Euclidean Distance (PED).

use crate::geom;
use crate::point::Point;

/// `ϵ_PED(p_s p_e | p)`: spatial distance from `p` to the closest point of
/// the anchor segment `(s, e)` (time is ignored). The projection is clamped
/// to the segment, the convention used by the Douglas–Peucker family.
#[inline]
pub fn ped(s: &Point, e: &Point, p: &Point) -> f64 {
    geom::point_segment_distance(s, e, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ped_is_time_invariant() {
        let s = Point::new(0.0, 0.0, 0.0);
        let e = Point::new(10.0, 0.0, 10.0);
        let a = ped(&s, &e, &Point::new(5.0, 4.0, 5.0));
        let b = ped(&s, &e, &Point::new(5.0, 4.0, 0.0));
        assert_eq!(a, 4.0);
        assert_eq!(a, b, "PED must not depend on the timestamp");
    }

    #[test]
    fn ped_at_most_sed() {
        // PED projects to the *closest* point, SED to the synchronized one,
        // so PED ≤ SED pointwise.
        let s = Point::new(0.0, 0.0, 0.0);
        let e = Point::new(10.0, 0.0, 10.0);
        for p in [
            Point::new(5.0, 4.0, 2.0),
            Point::new(1.0, -3.0, 9.0),
            Point::new(12.0, 1.0, 5.0),
        ] {
            assert!(ped(&s, &e, &p) <= super::super::sed::sed(&s, &e, &p) + 1e-12);
        }
    }
}
