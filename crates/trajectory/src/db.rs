//! Trajectory databases and their simplified counterparts.

use crate::bbox::Cube;
use crate::point::Point;
use crate::store::{AsColumns, KeptBitmap, PointStore};
use crate::traj::Trajectory;

/// Identifier of a trajectory inside a [`TrajectoryDb`] (its index).
pub type TrajId = usize;

/// A database `D` of trajectories. `N` in the paper is
/// [`TrajectoryDb::total_points`], `M` is [`TrajectoryDb::len`].
#[derive(Debug, Clone, Default)]
pub struct TrajectoryDb {
    trajectories: Vec<Trajectory>,
}

impl TrajectoryDb {
    /// Creates a database from trajectories.
    pub fn new(trajectories: Vec<Trajectory>) -> Self {
        Self { trajectories }
    }

    /// Number of trajectories `M`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// True when the database holds no trajectories.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Total number of points `N` across all trajectories.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.trajectories.iter().map(Trajectory::len).sum()
    }

    /// Immutable access to all trajectories.
    #[inline]
    #[must_use]
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// The trajectory with the given id.
    #[inline]
    #[must_use]
    pub fn get(&self, id: TrajId) -> &Trajectory {
        &self.trajectories[id]
    }

    /// Adds a trajectory, returning its id.
    pub fn push(&mut self, t: Trajectory) -> TrajId {
        self.trajectories.push(t);
        self.trajectories.len() - 1
    }

    /// Iterator over `(id, trajectory)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TrajId, &Trajectory)> {
        self.trajectories.iter().enumerate()
    }

    /// Smallest cube covering every point of every trajectory.
    #[must_use]
    pub fn bounding_cube(&self) -> Cube {
        let mut c = Cube::empty();
        for t in &self.trajectories {
            for p in t.points() {
                c.extend(p);
            }
        }
        c
    }

    /// Time span covered by the whole database.
    #[must_use]
    pub fn time_span(&self) -> (f64, f64) {
        let c = self.bounding_cube();
        (c.t_min, c.t_max)
    }

    /// Converts the database into columnar storage (see
    /// [`PointStore`]) — the layout the index and query engine operate on.
    #[must_use]
    pub fn to_store(&self) -> PointStore {
        PointStore::from_db(self)
    }

    /// Materializes an AoS database from columnar storage.
    #[must_use]
    pub fn from_store(store: &PointStore) -> TrajectoryDb {
        store.to_db()
    }

    /// Splits the database into `(head, tail)` where `head` keeps the first
    /// `n` trajectories. Used to carve train/test splits.
    pub fn split_at(mut self, n: usize) -> (TrajectoryDb, TrajectoryDb) {
        let n = n.min(self.trajectories.len());
        let tail = self.trajectories.split_off(n);
        (self, TrajectoryDb::new(tail))
    }
}

impl FromIterator<Trajectory> for TrajectoryDb {
    fn from_iter<I: IntoIterator<Item = Trajectory>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

/// A simplification of a [`TrajectoryDb`]: for every trajectory, the sorted
/// set of *kept* point indices. The first and last index of every trajectory
/// are always kept (the paper's "most simplified database" keeps exactly
/// those two).
///
/// This representation is what all simplification algorithms produce; it can
/// be materialized into a standalone [`TrajectoryDb`] with
/// [`Simplification::materialize`].
#[derive(Debug, Clone, PartialEq)]
pub struct Simplification {
    /// `kept[id]` = sorted indices of retained points of trajectory `id`.
    kept: Vec<Vec<u32>>,
}

impl Simplification {
    /// The most simplified database: every trajectory reduced to its first
    /// and last point (single-point trajectories keep their one point).
    pub fn most_simplified(db: &TrajectoryDb) -> Self {
        let kept = db
            .trajectories()
            .iter()
            .map(|t| {
                if t.len() <= 1 {
                    vec![0]
                } else {
                    vec![0, (t.len() - 1) as u32]
                }
            })
            .collect();
        Self { kept }
    }

    /// A simplification that keeps everything (identity).
    pub fn full(db: &TrajectoryDb) -> Self {
        let kept = db
            .trajectories()
            .iter()
            .map(|t| (0..t.len() as u32).collect())
            .collect();
        Self { kept }
    }

    /// [`Simplification::most_simplified`] over columnar storage (owned
    /// or mapped — anything [`AsColumns`]).
    pub fn most_simplified_store<S: AsColumns + ?Sized>(store: &S) -> Self {
        let kept = store
            .views()
            .map(|v| {
                if v.len() <= 1 {
                    vec![0]
                } else {
                    vec![0, (v.len() - 1) as u32]
                }
            })
            .collect();
        Self { kept }
    }

    /// [`Simplification::full`] over columnar storage.
    pub fn full_store<S: AsColumns + ?Sized>(store: &S) -> Self {
        let kept = store
            .views()
            .map(|v| (0..v.len() as u32).collect())
            .collect();
        Self { kept }
    }

    /// Builds from per-trajectory kept-index lists. Lists must be sorted,
    /// deduplicated, and contain the endpoints; debug builds assert this.
    pub fn from_kept(db: &TrajectoryDb, kept: Vec<Vec<u32>>) -> Self {
        debug_assert_eq!(kept.len(), db.len());
        #[cfg(debug_assertions)]
        for (id, ks) in kept.iter().enumerate() {
            Self::assert_kept_list(id, ks, db.get(id).len() as u32);
        }
        Self { kept }
    }

    /// [`Simplification::from_kept`] validated against a columnar store's
    /// per-trajectory lengths.
    pub fn from_kept_store<S: AsColumns + ?Sized>(store: &S, kept: Vec<Vec<u32>>) -> Self {
        debug_assert_eq!(kept.len(), store.len());
        #[cfg(debug_assertions)]
        for (id, ks) in kept.iter().enumerate() {
            Self::assert_kept_list(id, ks, store.view(id).len() as u32);
        }
        Self { kept }
    }

    #[cfg(debug_assertions)]
    fn assert_kept_list(id: usize, ks: &[u32], n: u32) {
        assert!(!ks.is_empty());
        assert_eq!(ks[0], 0, "trajectory {id} must keep its first point");
        assert_eq!(
            *ks.last().unwrap(),
            n - 1,
            "trajectory {id} must keep its last point"
        );
        assert!(
            ks.windows(2).all(|w| w[0] < w[1]),
            "kept indices must be strictly sorted"
        );
    }

    /// Number of trajectories.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// True when the simplification covers no trajectories.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// Kept indices of one trajectory.
    #[inline]
    #[must_use]
    pub fn kept(&self, id: TrajId) -> &[u32] {
        &self.kept[id]
    }

    /// Total number of retained points (the quantity bounded by the storage
    /// budget `W`).
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.kept.iter().map(Vec::len).sum()
    }

    /// True when point `idx` of trajectory `id` is retained.
    #[must_use]
    pub fn contains(&self, id: TrajId, idx: u32) -> bool {
        self.kept[id].binary_search(&idx).is_ok()
    }

    /// Inserts point `idx` of trajectory `id` into the simplification.
    /// Returns `false` when it was already present.
    pub fn insert(&mut self, id: TrajId, idx: u32) -> bool {
        match self.kept[id].binary_search(&idx) {
            Ok(_) => false,
            Err(pos) => {
                self.kept[id].insert(pos, idx);
                true
            }
        }
    }

    /// Removes point `idx` of trajectory `id`. Endpoints cannot be removed.
    /// Returns `false` when the point was not present or is an endpoint.
    pub fn remove(&mut self, id: TrajId, idx: u32) -> bool {
        let ks = &mut self.kept[id];
        if ks.len() <= 2 {
            return false;
        }
        match ks.binary_search(&idx) {
            Ok(pos) if pos != 0 && pos != ks.len() - 1 => {
                ks.remove(pos);
                true
            }
            _ => false,
        }
    }

    /// The *anchor segment* of original point `idx` in trajectory `id`: the
    /// pair of kept indices `(s_j, s_{j+1})` with `s_j ≤ idx ≤ s_{j+1}`.
    /// For a kept interior point the anchor brackets it as `(prev, next)`
    /// of its own position only when `idx` itself is *not* kept; for kept
    /// points the anchor is `(idx, idx)` conceptually — callers that need
    /// the bracketing kept neighbours of a *kept* point should use
    /// [`Simplification::kept_neighbors`].
    #[must_use]
    pub fn anchor(&self, id: TrajId, idx: u32) -> (u32, u32) {
        let ks = &self.kept[id];
        match ks.binary_search(&idx) {
            Ok(pos) => (ks[pos], ks[pos]),
            Err(pos) => {
                debug_assert!(pos > 0 && pos < ks.len(), "endpoints are always kept");
                (ks[pos - 1], ks[pos])
            }
        }
    }

    /// For a *kept* point at `idx`, the kept indices immediately before and
    /// after it (used by Bottom-Up to evaluate the error of dropping it).
    /// Returns `None` for endpoints or non-kept points.
    #[must_use]
    pub fn kept_neighbors(&self, id: TrajId, idx: u32) -> Option<(u32, u32)> {
        let ks = &self.kept[id];
        match ks.binary_search(&idx) {
            Ok(pos) if pos > 0 && pos + 1 < ks.len() => Some((ks[pos - 1], ks[pos + 1])),
            _ => None,
        }
    }

    /// True when the simplification keeps every point of `db` (cheap
    /// total-count check: kept lists are sorted subsets, so count equality
    /// implies identity).
    #[must_use]
    pub fn is_full(&self, total_points: usize) -> bool {
        self.total_points() == total_points
    }

    /// Materializes the simplified database `D'` as standalone trajectories.
    /// When everything is kept, this is a plain clone of `db`.
    #[must_use]
    pub fn materialize(&self, db: &TrajectoryDb) -> TrajectoryDb {
        if self.is_full(db.total_points()) {
            return db.clone();
        }
        let trajectories = self
            .kept
            .iter()
            .enumerate()
            .map(|(id, ks)| {
                let src = db.get(id).points();
                let pts: Vec<Point> = ks.iter().map(|&i| src[i as usize]).collect();
                Trajectory::from_sorted_unchecked(pts)
            })
            .collect();
        TrajectoryDb::new(trajectories)
    }

    /// Materializes `D'` in columnar form: a straight gather over the
    /// store's columns (no per-trajectory re-validation, no `Vec<Point>`
    /// intermediaries). The identity simplification short-circuits to a
    /// column clone.
    #[must_use]
    pub fn materialize_store(&self, store: &PointStore) -> PointStore {
        store.gather(self)
    }

    /// The simplification as a bitmap over the store's global point ids —
    /// the representation query execution consumes (`contains` becomes one
    /// mask test instead of a per-trajectory binary search).
    #[must_use]
    pub fn to_bitmap<S: AsColumns + ?Sized>(&self, store: &S) -> KeptBitmap {
        debug_assert_eq!(self.kept.len(), store.len());
        let mut bitmap = KeptBitmap::zeros(store.total_points());
        for (id, ks) in self.kept.iter().enumerate() {
            let base = store.offsets()[id];
            for &idx in ks {
                bitmap.insert(base + idx);
            }
        }
        bitmap
    }

    /// Per-trajectory compression ratios `|T'| / |T|` (diagnostics for the
    /// paper's "uniform compression ratio" discussion). The fully-kept
    /// case short-circuits to all-ones.
    #[must_use]
    pub fn compression_ratios(&self, db: &TrajectoryDb) -> Vec<f64> {
        if self.is_full(db.total_points()) {
            return vec![1.0; self.kept.len()];
        }
        self.kept
            .iter()
            .enumerate()
            .map(|(id, ks)| ks.len() as f64 / db.get(id).len() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TrajectoryDb {
        let t1 = Trajectory::new(
            (0..5)
                .map(|i| Point::new(i as f64, 0.0, i as f64))
                .collect(),
        )
        .unwrap();
        let t2 = Trajectory::new(
            (0..3)
                .map(|i| Point::new(0.0, i as f64, i as f64))
                .collect(),
        )
        .unwrap();
        TrajectoryDb::new(vec![t1, t2])
    }

    #[test]
    fn counts_match() {
        let db = db();
        assert_eq!(db.len(), 2);
        assert_eq!(db.total_points(), 8);
    }

    #[test]
    fn most_simplified_keeps_endpoints() {
        let db = db();
        let s = Simplification::most_simplified(&db);
        assert_eq!(s.total_points(), 4);
        assert_eq!(s.kept(0), &[0, 4]);
        assert_eq!(s.kept(1), &[0, 2]);
    }

    #[test]
    fn insert_and_contains() {
        let db = db();
        let mut s = Simplification::most_simplified(&db);
        assert!(s.insert(0, 2));
        assert!(!s.insert(0, 2), "double insert must be rejected");
        assert!(s.contains(0, 2));
        assert!(!s.contains(0, 3));
        assert_eq!(s.kept(0), &[0, 2, 4]);
    }

    #[test]
    fn anchor_brackets_missing_points() {
        let db = db();
        let mut s = Simplification::most_simplified(&db);
        assert_eq!(s.anchor(0, 2), (0, 4));
        s.insert(0, 2);
        assert_eq!(s.anchor(0, 1), (0, 2));
        assert_eq!(s.anchor(0, 3), (2, 4));
        // Kept point anchors to itself.
        assert_eq!(s.anchor(0, 2), (2, 2));
    }

    #[test]
    fn kept_neighbors_only_for_interior_kept_points() {
        let db = db();
        let mut s = Simplification::most_simplified(&db);
        s.insert(0, 2);
        assert_eq!(s.kept_neighbors(0, 2), Some((0, 4)));
        assert_eq!(s.kept_neighbors(0, 0), None);
        assert_eq!(s.kept_neighbors(0, 4), None);
        assert_eq!(s.kept_neighbors(0, 3), None);
    }

    #[test]
    fn remove_protects_endpoints() {
        let db = db();
        let mut s = Simplification::most_simplified(&db);
        s.insert(0, 2);
        assert!(!s.remove(0, 0));
        assert!(!s.remove(0, 4));
        assert!(s.remove(0, 2));
        assert_eq!(s.kept(0), &[0, 4]);
        assert!(!s.remove(0, 2), "already gone");
    }

    #[test]
    fn materialize_builds_sub_trajectories() {
        let db = db();
        let mut s = Simplification::most_simplified(&db);
        s.insert(0, 2);
        let simplified = s.materialize(&db);
        assert_eq!(simplified.get(0).len(), 3);
        assert_eq!(simplified.get(0).point(1).x, 2.0);
        assert_eq!(simplified.get(1).len(), 2);
    }

    #[test]
    fn full_simplification_is_identity() {
        let db = db();
        let s = Simplification::full(&db);
        assert_eq!(s.total_points(), db.total_points());
        let m = s.materialize(&db);
        assert_eq!(m.get(0).points(), db.get(0).points());
    }

    #[test]
    fn compression_ratios_per_trajectory() {
        let db = db();
        let s = Simplification::most_simplified(&db);
        let r = s.compression_ratios(&db);
        assert_eq!(r, vec![2.0 / 5.0, 2.0 / 3.0]);
    }

    #[test]
    fn store_constructors_match_aos_constructors() {
        let db = db();
        let store = db.to_store();
        assert_eq!(
            Simplification::most_simplified_store(&store),
            Simplification::most_simplified(&db)
        );
        assert_eq!(
            Simplification::full_store(&store),
            Simplification::full(&db)
        );
    }

    #[test]
    fn bitmap_agrees_with_contains() {
        let db = db();
        let store = db.to_store();
        let mut s = Simplification::most_simplified(&db);
        s.insert(0, 2);
        let bitmap = s.to_bitmap(&store);
        for (id, t) in db.iter() {
            for idx in 0..t.len() as u32 {
                assert_eq!(
                    bitmap.contains(store.global_id(id, idx)),
                    s.contains(id, idx),
                    "traj {id} idx {idx}"
                );
            }
        }
        assert_eq!(bitmap.count(), s.total_points());
    }

    #[test]
    fn materialize_store_is_a_gather() {
        let db = db();
        let store = db.to_store();
        let mut s = Simplification::most_simplified(&db);
        s.insert(0, 2);
        let gathered = s.materialize_store(&store);
        let materialized = s.materialize(&db);
        assert_eq!(
            gathered.to_db().get(0).points(),
            materialized.get(0).points()
        );
        // Fully-kept fast path is the identity.
        assert_eq!(Simplification::full(&db).materialize_store(&store), store);
    }

    #[test]
    fn split_at_partitions() {
        let (a, b) = db().split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a.get(0).len(), 5);
        assert_eq!(b.get(0).len(), 3);
    }
}
