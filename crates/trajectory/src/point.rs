//! Time-stamped trajectory points.

use std::fmt;

/// A time-stamped location: the moving object is at planar position
/// `(x, y)` (meters) at time `t` (seconds).
///
/// The paper's datasets are GPS traces; this library works in a projected
/// planar frame (see [`crate::io::project_equirectangular`] for converting
/// latitude/longitude input).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// East-west coordinate in meters.
    pub x: f64,
    /// North-south coordinate in meters.
    pub y: f64,
    /// Timestamp in seconds.
    pub t: f64,
}

impl Point {
    /// Creates a point from coordinates and a timestamp.
    #[inline]
    pub const fn new(x: f64, y: f64, t: f64) -> Self {
        Self { x, y, t }
    }

    /// Euclidean distance in the spatial plane (ignores time).
    #[inline]
    pub fn spatial_distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared spatial distance; cheaper when only comparisons are needed.
    #[inline]
    pub fn spatial_distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Absolute difference between the two timestamps.
    #[inline]
    pub fn temporal_distance(&self, other: &Point) -> f64 {
        (self.t - other.t).abs()
    }

    /// True when every coordinate is finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.t.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3} @ {:.3}s)", self.x, self.y, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(3.0, 4.0, 10.0);
        assert_eq!(a.spatial_distance(&b), 5.0);
        assert_eq!(a.spatial_distance_sq(&b), 25.0);
    }

    #[test]
    fn temporal_distance_is_symmetric() {
        let a = Point::new(0.0, 0.0, 5.0);
        let b = Point::new(0.0, 0.0, 12.0);
        assert_eq!(a.temporal_distance(&b), 7.0);
        assert_eq!(b.temporal_distance(&a), 7.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(-2.5, 7.0, 3.0);
        assert_eq!(a.spatial_distance(&a), 0.0);
        assert_eq!(a.temporal_distance(&a), 0.0);
    }

    #[test]
    fn finite_check_catches_nan() {
        assert!(Point::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0, 3.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY, 3.0).is_finite());
    }

    #[test]
    fn display_is_compact() {
        let p = Point::new(1.0, 2.0, 3.0);
        assert_eq!(format!("{p}"), "(1.000, 2.000 @ 3.000s)");
    }
}
