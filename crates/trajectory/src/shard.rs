//! Partitioning a database into shards, and persisting the result.
//!
//! A *shard* is an ordinary [`PointStore`] holding a subset of the
//! database's trajectories — whole trajectories, never split — together
//! with the sorted list of *global* trajectory ids its local ids map back
//! to. Because a shard is just a store, everything downstream (snapshot
//! files, mmap serving, index builds, query engines) works on it
//! unchanged; the sharding layer only adds the partitioning policy, the
//! manifest that ties a directory of snapshot files back into one
//! database, and the id translation.
//!
//! Three [`PartitionStrategy`] families cover the classic axes:
//!
//! - **Grid**: an `nx × ny` spatial grid over the database's bounding
//!   box; a trajectory goes to the cell containing its bounding-box
//!   center. Spatially selective queries then touch few shards.
//! - **Time**: equal-width ranges over the database's time span; a
//!   trajectory goes to the range containing its start time. Recent-data
//!   queries prune old shards.
//! - **Hash**: FNV-1a of the trajectory id. No pruning, but perfectly
//!   balanced — the right default for parallel index builds.
//!
//! Persistence ([`ShardSet`]) writes one snapshot file per shard
//! (spec-compatible with `docs/SNAPSHOT_FORMAT.md`, including optional
//! per-shard kept bitmaps for simplified databases) plus a small text
//! manifest recording each shard's global ids. All load paths validate
//! the manifest with typed [`ShardSetError`]s — missing or duplicate
//! shard files, overlapping or non-covering trajectory ids — instead of
//! panicking, mirroring [`SnapshotError`].

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::bbox::Cube;
use crate::db::TrajId;
use crate::snapshot::{
    fnv1a64, read_snapshot, write_snapshot_quantized, write_snapshot_with, MappedStore,
    SnapshotError,
};
use crate::store::{AsColumns, KeptBitmap, PointStore};

/// First line of every shard-set manifest.
pub const MANIFEST_MAGIC: &str = "QDTSHARDSET v1";

/// File name of the manifest inside a shard-set directory.
pub const MANIFEST_FILE: &str = "shardset.manifest";

// ---------------------------------------------------------------------
// Partitioning.
// ---------------------------------------------------------------------

/// How a database is split into shards. Every strategy assigns each
/// trajectory to exactly one shard (trajectories are never split across
/// shards — a split trajectory would break kNN windowing and kept-bitmap
/// anchoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Spatial `nx × ny` grid over the store's bounding box; assignment
    /// by the trajectory's bounding-box center.
    Grid {
        /// Grid columns (x axis).
        nx: usize,
        /// Grid rows (y axis).
        ny: usize,
    },
    /// `parts` equal-width temporal ranges over the store's time span;
    /// assignment by the trajectory's start time.
    Time {
        /// Number of temporal ranges.
        parts: usize,
    },
    /// FNV-1a hash of the trajectory id modulo `parts`.
    Hash {
        /// Number of hash buckets.
        parts: usize,
    },
}

impl PartitionStrategy {
    /// A grid strategy producing roughly `shards` cells (`nx = ⌈√shards⌉`,
    /// `ny = ⌈shards / nx⌉`).
    #[must_use]
    pub fn grid_for(shards: usize) -> Self {
        let shards = shards.max(1);
        let nx = (shards as f64).sqrt().ceil() as usize;
        PartitionStrategy::Grid {
            nx,
            ny: shards.div_ceil(nx),
        }
    }

    /// Display label for tables and benchmark ids.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PartitionStrategy::Grid { .. } => "grid",
            PartitionStrategy::Time { .. } => "time",
            PartitionStrategy::Hash { .. } => "hash",
        }
    }
}

/// One shard of a partitioned database: a self-contained [`PointStore`]
/// plus the mapping from shard-local trajectory ids back to global ones.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// The shard's trajectories, re-packed as a dense store (local ids
    /// `0..store.len()`).
    pub store: PointStore,
    /// `global_ids[local]` = the trajectory's id in the unsharded
    /// database. Strictly ascending, so local id order equals global id
    /// order within a shard.
    pub global_ids: Vec<TrajId>,
}

impl Shard {
    /// Smallest cube covering the shard's points — the bound the fan-out
    /// router prunes with.
    #[must_use]
    pub fn bounds(&self) -> Cube {
        self.store.bounding_cube()
    }
}

/// Splits `store` into shards according to `strategy`. Whole trajectories
/// stay intact; every trajectory lands in exactly one shard; shards that
/// would be empty are dropped, so every returned shard is non-empty and
/// the union of all `global_ids` is exactly `0..store.len()` in order.
#[must_use]
pub fn partition(store: &PointStore, strategy: &PartitionStrategy) -> Vec<Shard> {
    if store.is_empty() {
        return Vec::new();
    }
    let parts = match *strategy {
        PartitionStrategy::Grid { nx, ny } => nx.max(1) * ny.max(1),
        PartitionStrategy::Time { parts } | PartitionStrategy::Hash { parts } => parts.max(1),
    };
    let bc = store.bounding_cube();
    let mut buckets: Vec<Vec<TrajId>> = vec![Vec::new(); parts];
    for (id, view) in store.iter() {
        let bucket = match *strategy {
            PartitionStrategy::Grid { nx, ny } => {
                let (nx, ny) = (nx.max(1), ny.max(1));
                let vb = view.bounding_cube();
                let cx = 0.5 * (vb.x_min + vb.x_max);
                let cy = 0.5 * (vb.y_min + vb.y_max);
                let ix = cell_of(cx, bc.x_min, bc.x_max, nx);
                let iy = cell_of(cy, bc.y_min, bc.y_max, ny);
                iy * nx + ix
            }
            PartitionStrategy::Time { parts } => {
                cell_of(view.ts[0], bc.t_min, bc.t_max, parts.max(1))
            }
            PartitionStrategy::Hash { parts } => {
                (fnv1a64(&(id as u64).to_le_bytes()) % parts.max(1) as u64) as usize
            }
        };
        buckets[bucket].push(id);
    }
    buckets
        .into_iter()
        .filter(|ids| !ids.is_empty())
        .map(|ids| Shard {
            store: store.gather_trajs(&ids),
            global_ids: ids,
        })
        .collect()
}

/// Index of the cell containing `v` when `[lo, hi]` is split into `n`
/// equal cells; degenerate extents collapse to cell 0, and `v == hi`
/// clamps into the last cell.
fn cell_of(v: f64, lo: f64, hi: f64, n: usize) -> usize {
    let extent = hi - lo;
    if extent <= 0.0 || !extent.is_finite() {
        return 0;
    }
    (((v - lo) / extent * n as f64) as usize).min(n - 1)
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Typed failure modes of shard-set persistence and reopening.
#[derive(Debug)]
pub enum ShardSetError {
    /// Underlying I/O failure (create, read, write).
    Io(io::Error),
    /// The manifest's first line is not [`MANIFEST_MAGIC`] or the header
    /// line is malformed.
    BadManifest {
        /// Human-readable description of what is wrong.
        reason: String,
    },
    /// A manifest line failed to parse.
    Parse {
        /// 1-based line number inside the manifest.
        line: usize,
        /// Human-readable description of the parse failure.
        reason: String,
    },
    /// The manifest references a shard file that does not exist in the
    /// shard-set directory.
    MissingShardFile {
        /// The missing file name as written in the manifest.
        file: String,
    },
    /// The manifest references the same shard file twice.
    DuplicateShardFile {
        /// The duplicated file name.
        file: String,
    },
    /// A shard's network address is not a well-formed `host:port` pair.
    MalformedShardAddr {
        /// The shard file the address was attached to.
        file: String,
        /// The offending address string.
        addr: String,
        /// What is wrong with it.
        reason: String,
    },
    /// Two shards claim the same network address (a placement map must
    /// dial a distinct endpoint per shard).
    DuplicateShardAddr {
        /// The doubly-assigned address.
        addr: String,
    },
    /// A shard's `bounds=` token is not six finite, ordered
    /// comma-separated numbers — or appears twice on one line.
    MalformedShardBounds {
        /// The shard file the bounds were attached to.
        file: String,
        /// The offending bounds string.
        bounds: String,
        /// What is wrong with it.
        reason: String,
    },
    /// Some shard lines carry `bounds=` and others do not. A routing
    /// coordinator must either prune against every shard or none — a
    /// partial set would silently disable pruning for some shards and
    /// make coverage bugs invisible.
    MissingShardBounds {
        /// A shard file with no bounds while others have them.
        file: String,
    },
    /// The manifest's `generation=` line is not a single unsigned
    /// integer — or appears more than once. The generation is the
    /// placement epoch live compaction and re-sharding bump, so a
    /// corrupt value must be a typed error, never a silent zero.
    MalformedGeneration {
        /// The offending generation string.
        value: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A shard's id list is not strictly ascending (the fan-out merge
    /// relies on local order equalling global order).
    UnsortedTrajIds {
        /// The offending shard file.
        file: String,
    },
    /// Two shards both claim the same global trajectory id.
    OverlappingTrajIds {
        /// The doubly-assigned global trajectory id.
        id: TrajId,
    },
    /// The union of all shards' ids is not exactly `0..trajs` as declared
    /// by the header (a gap or out-of-range id).
    IncompleteCover {
        /// Trajectory count the header declares.
        expected: usize,
        /// Distinct in-range ids the shard lines actually cover.
        found: usize,
    },
    /// A shard snapshot holds a different number of trajectories than the
    /// manifest assigns to it.
    TrajCountMismatch {
        /// The shard file.
        file: String,
        /// Ids the manifest lists for it.
        manifest: usize,
        /// Trajectories the snapshot actually holds.
        snapshot: usize,
    },
    /// Opening a shard snapshot failed (corruption, version mismatch, …).
    Snapshot {
        /// The shard file.
        file: String,
        /// The underlying snapshot error.
        source: SnapshotError,
    },
}

impl std::fmt::Display for ShardSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardSetError::Io(e) => write!(f, "io error: {e}"),
            ShardSetError::BadManifest { reason } => write!(f, "bad manifest: {reason}"),
            ShardSetError::Parse { line, reason } => {
                write!(f, "manifest line {line}: {reason}")
            }
            ShardSetError::MissingShardFile { file } => {
                write!(f, "manifest references missing shard file {file}")
            }
            ShardSetError::DuplicateShardFile { file } => {
                write!(f, "manifest references shard file {file} twice")
            }
            ShardSetError::MalformedShardAddr { file, addr, reason } => {
                write!(f, "shard {file}: malformed address {addr:?}: {reason}")
            }
            ShardSetError::DuplicateShardAddr { addr } => {
                write!(f, "address {addr} is assigned to more than one shard")
            }
            ShardSetError::MalformedShardBounds {
                file,
                bounds,
                reason,
            } => {
                write!(f, "shard {file}: malformed bounds {bounds:?}: {reason}")
            }
            ShardSetError::MissingShardBounds { file } => {
                write!(f, "shard {file} has no bounds= token while other shards do")
            }
            ShardSetError::MalformedGeneration { value, reason } => {
                write!(f, "malformed generation {value:?}: {reason}")
            }
            ShardSetError::UnsortedTrajIds { file } => {
                write!(f, "shard {file} lists trajectory ids out of order")
            }
            ShardSetError::OverlappingTrajIds { id } => {
                write!(f, "trajectory id {id} is assigned to more than one shard")
            }
            ShardSetError::IncompleteCover { expected, found } => {
                write!(
                    f,
                    "shards cover {found} of {expected} declared trajectories"
                )
            }
            ShardSetError::TrajCountMismatch {
                file,
                manifest,
                snapshot,
            } => write!(
                f,
                "shard {file}: manifest assigns {manifest} trajectories, snapshot holds {snapshot}"
            ),
            ShardSetError::Snapshot { file, source } => {
                write!(f, "shard {file}: {source}")
            }
        }
    }
}

impl std::error::Error for ShardSetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardSetError::Io(e) => Some(e),
            ShardSetError::Snapshot { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for ShardSetError {
    fn from(e: io::Error) -> Self {
        ShardSetError::Io(e)
    }
}

// ---------------------------------------------------------------------
// The manifest.
// ---------------------------------------------------------------------

/// One manifest entry: a shard snapshot file plus the global ids of the
/// trajectories it holds (in shard-local order, strictly ascending).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardEntry {
    /// File name of the shard snapshot, relative to the shard-set
    /// directory.
    pub file: String,
    /// Network address (`host:port`) of the process serving this shard,
    /// when the manifest doubles as a distributed placement map (the
    /// optional `addr=` manifest token). `None` for purely local sets.
    pub addr: Option<String>,
    /// Bounding cube of the shard's points as the *reopened* snapshot
    /// decodes them (the optional `bounds=` manifest token). A
    /// distributed coordinator prunes its fan-out with these, so for
    /// quantized sets they are computed from the decoded store — not the
    /// pre-quantization input — and match bitwise what the serving
    /// process reports in its handshake. `None` in pre-bounds manifests.
    pub bounds: Option<Cube>,
    /// `global_ids[local]` = global trajectory id.
    pub global_ids: Vec<TrajId>,
}

/// A reopened shard: the store (owned [`PointStore`] or zero-copy
/// [`MappedStore`]), its global id mapping, and the kept bitmap when the
/// shard snapshot was written with one (a simplified database).
#[derive(Debug)]
pub struct OpenShard<S> {
    /// The shard's columns.
    pub store: S,
    /// Shard-local → global trajectory id mapping (strictly ascending).
    pub global_ids: Vec<TrajId>,
    /// Per-shard kept-point bitmap for simplified shard sets.
    pub kept: Option<KeptBitmap>,
}

/// A sharded database on disk: a directory of per-shard snapshot files
/// plus the manifest tying them back together. [`ShardSet::write`]
/// persists a partition; [`ShardSet::load`] validates a manifest (typed
/// errors, never panics); [`ShardSet::open_owned`] /
/// [`ShardSet::open_mapped`] reopen every shard heap-backed or
/// mmap-backed respectively.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSet {
    dir: PathBuf,
    trajs: usize,
    /// Placement epoch (the optional `generation=` manifest line; 0 when
    /// absent). Bumped whenever the set's composition changes — live
    /// compaction folding a delta in, or a future re-sharding — so
    /// cached routing decisions can be invalidated by comparing epochs.
    generation: u64,
    entries: Vec<ShardEntry>,
}

impl ShardSet {
    /// Writes `shards` as one snapshot file each (no kept bitmaps) plus
    /// the manifest into `dir` (created if absent).
    pub fn write(dir: impl AsRef<Path>, shards: &[Shard]) -> Result<ShardSet, ShardSetError> {
        Self::write_impl(dir.as_ref(), shards, None, None)
    }

    /// [`ShardSet::write`] with one kept-point bitmap per shard — the
    /// persisted form of a *sharded simplified* database. Each bitmap
    /// must cover its shard's points (the snapshot writer enforces it).
    pub fn write_with(
        dir: impl AsRef<Path>,
        shards: &[Shard],
        kept: &[KeptBitmap],
    ) -> Result<ShardSet, ShardSetError> {
        assert_eq!(
            shards.len(),
            kept.len(),
            "one kept bitmap per shard required"
        );
        Self::write_impl(dir.as_ref(), shards, Some(kept), None)
    }

    /// [`ShardSet::write`] / [`ShardSet::write_with`] storing every
    /// shard snapshot **quantized** at the given error bound (see
    /// [`write_snapshot_quantized`]). The manifest is unchanged, and
    /// [`ShardSet::open_owned`] / [`ShardSet::open_mapped`] reopen the
    /// set transparently — every decoded coordinate within `max_error`
    /// of the value it was written from.
    pub fn write_quantized(
        dir: impl AsRef<Path>,
        shards: &[Shard],
        kept: Option<&[KeptBitmap]>,
        max_error: f64,
    ) -> Result<ShardSet, ShardSetError> {
        if let Some(kept) = kept {
            assert_eq!(
                shards.len(),
                kept.len(),
                "one kept bitmap per shard required"
            );
        }
        Self::write_impl(dir.as_ref(), shards, kept, Some(max_error))
    }

    fn write_impl(
        dir: &Path,
        shards: &[Shard],
        kept: Option<&[KeptBitmap]>,
        quantize: Option<f64>,
    ) -> Result<ShardSet, ShardSetError> {
        std::fs::create_dir_all(dir)?;
        let trajs: usize = shards.iter().map(|s| s.global_ids.len()).sum();
        let mut entries = Vec::with_capacity(shards.len());
        for (i, shard) in shards.iter().enumerate() {
            debug_assert_eq!(shard.store.len(), shard.global_ids.len());
            let file = format!("shard-{i:04}.snap");
            let bitmap = kept.map(|ks| &ks[i]);
            let path = dir.join(&file);
            match quantize {
                Some(max_error) => write_snapshot_quantized(&shard.store, bitmap, max_error, &path),
                None => write_snapshot_with(&shard.store, bitmap, &path),
            }
            .map_err(|source| ShardSetError::Snapshot {
                file: file.clone(),
                source,
            })?;
            // The manifest's bounds must cover the shard as a *reader*
            // will see it. Quantization shifts every coordinate within
            // the error bound, so for quantized sets the bounds come
            // from reading the snapshot back — decoding is
            // deterministic, so these match what the serving process
            // computes, bitwise.
            let bounds = match quantize {
                Some(_) => read_snapshot(&path)
                    .map_err(|source| ShardSetError::Snapshot {
                        file: file.clone(),
                        source,
                    })?
                    .store
                    .bounding_cube(),
                None => shard.bounds(),
            };
            entries.push(ShardEntry {
                file,
                addr: None,
                bounds: Some(bounds),
                global_ids: shard.global_ids.clone(),
            });
        }
        std::fs::write(
            dir.join(MANIFEST_FILE),
            render_manifest(trajs, 0, &entries)?,
        )?;
        Ok(ShardSet {
            dir: dir.to_path_buf(),
            trajs,
            generation: 0,
            entries,
        })
    }

    /// Assigns one network address (`host:port`) per shard, in shard
    /// order — turning the manifest into the placement map a
    /// distributed coordinator dials. Addresses must be well-formed and
    /// pairwise distinct (typed errors otherwise); nothing is assigned
    /// on failure. Persist with [`ShardSet::save_manifest`].
    ///
    /// # Panics
    /// Panics when `addrs.len() != self.len()`.
    pub fn set_addrs<S: AsRef<str>>(&mut self, addrs: &[S]) -> Result<(), ShardSetError> {
        assert_eq!(
            addrs.len(),
            self.entries.len(),
            "one address per shard required"
        );
        for (e, addr) in self.entries.iter().zip(addrs) {
            let addr = addr.as_ref();
            if let Err(reason) = validate_addr(addr) {
                return Err(ShardSetError::MalformedShardAddr {
                    file: e.file.clone(),
                    addr: addr.to_string(),
                    reason,
                });
            }
        }
        for (i, addr) in addrs.iter().enumerate() {
            if addrs[..i].iter().any(|prev| prev.as_ref() == addr.as_ref()) {
                return Err(ShardSetError::DuplicateShardAddr {
                    addr: addr.as_ref().to_string(),
                });
            }
        }
        for (e, addr) in self.entries.iter_mut().zip(addrs) {
            e.addr = Some(addr.as_ref().to_string());
        }
        Ok(())
    }

    /// Rewrites the manifest in the set's directory, persisting address
    /// assignments made since the set was written or loaded. Shard
    /// snapshot files are untouched.
    pub fn save_manifest(&self) -> Result<(), ShardSetError> {
        std::fs::write(
            self.dir.join(MANIFEST_FILE),
            render_manifest(self.trajs, self.generation, &self.entries)?,
        )?;
        Ok(())
    }

    /// Parses and validates the manifest in `dir`. Rejects — with typed
    /// errors — manifests referencing missing or duplicate shard files,
    /// shards with overlapping or unsorted trajectory ids, and id sets
    /// that do not cover exactly `0..trajs`. Shard snapshots themselves
    /// are opened (and further validated) by [`ShardSet::open_owned`] /
    /// [`ShardSet::open_mapped`].
    pub fn load(dir: impl AsRef<Path>) -> Result<ShardSet, ShardSetError> {
        let dir = dir.as_ref();
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
        let mut lines = text.lines().enumerate();

        let (_, magic) = lines.next().ok_or_else(|| ShardSetError::BadManifest {
            reason: "empty manifest".into(),
        })?;
        if magic.trim_end() != MANIFEST_MAGIC {
            return Err(ShardSetError::BadManifest {
                reason: format!("first line {magic:?} is not {MANIFEST_MAGIC:?}"),
            });
        }
        let (_, header) = lines.next().ok_or_else(|| ShardSetError::BadManifest {
            reason: "missing header line".into(),
        })?;
        let header_fields: Vec<&str> = header.split_whitespace().collect();
        let (shard_count, trajs) = match header_fields.as_slice() {
            ["shards", s, "trajs", m] => match (s.parse::<usize>(), m.parse::<usize>()) {
                (Ok(s), Ok(m)) => (s, m),
                _ => {
                    return Err(ShardSetError::BadManifest {
                        reason: format!("unparseable header counts in {header:?}"),
                    })
                }
            },
            _ => {
                return Err(ShardSetError::BadManifest {
                    reason: format!("malformed header line {header:?}"),
                })
            }
        };

        // Counts from the header are still untrusted here: nothing is
        // allocated from them until they have been cross-checked against
        // what the manifest actually contains, so a corrupt header cannot
        // trigger a huge allocation (it must fail with a typed error).
        let mut entries = Vec::new();
        let mut generation: Option<u64> = None;
        for (lineno, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            match fields.next() {
                Some("shard") => {}
                Some(tok) if tok.starts_with("generation=") => {
                    let value = tok["generation=".len()..].to_string();
                    if generation.is_some() {
                        return Err(ShardSetError::MalformedGeneration {
                            value,
                            reason: "duplicate generation= line".into(),
                        });
                    }
                    if fields.next().is_some() {
                        return Err(ShardSetError::MalformedGeneration {
                            value,
                            reason: "trailing tokens after generation= line".into(),
                        });
                    }
                    let parsed =
                        value
                            .parse::<u64>()
                            .map_err(|_| ShardSetError::MalformedGeneration {
                                value: value.clone(),
                                reason: "not an unsigned integer".into(),
                            })?;
                    generation = Some(parsed);
                    continue;
                }
                other => {
                    return Err(ShardSetError::Parse {
                        line: lineno + 1,
                        reason: format!("expected a `shard` line, found {other:?}"),
                    })
                }
            }
            let file = fields
                .next()
                .ok_or_else(|| ShardSetError::Parse {
                    line: lineno + 1,
                    reason: "missing shard file name".into(),
                })?
                .to_string();
            if file.contains(['/', '\\']) || file == ".." {
                // Writers only emit bare file names; a manifest pointing
                // outside its own directory is hostile or corrupt.
                return Err(ShardSetError::Parse {
                    line: lineno + 1,
                    reason: format!("shard file name {file:?} escapes the shard-set directory"),
                });
            }
            let mut fields = fields.peekable();
            let mut addr = None;
            let mut bounds = None;
            // `addr=` and `bounds=` may appear in either order before
            // the id list, each at most once.
            while let Some(tok) = fields.peek() {
                if let Some(a) = tok.strip_prefix("addr=") {
                    if addr.is_some() {
                        return Err(ShardSetError::Parse {
                            line: lineno + 1,
                            reason: "duplicate addr= token".into(),
                        });
                    }
                    if let Err(reason) = validate_addr(a) {
                        return Err(ShardSetError::MalformedShardAddr {
                            file,
                            addr: a.to_string(),
                            reason,
                        });
                    }
                    addr = Some(a.to_string());
                } else if let Some(b) = tok.strip_prefix("bounds=") {
                    if bounds.is_some() {
                        return Err(ShardSetError::MalformedShardBounds {
                            file,
                            bounds: b.to_string(),
                            reason: "duplicate bounds= token".into(),
                        });
                    }
                    bounds = Some(parse_bounds(&file, b)?);
                } else {
                    break;
                }
                fields.next();
            }
            let mut global_ids = Vec::new();
            for tok in fields {
                let id: TrajId = tok.parse().map_err(|_| ShardSetError::Parse {
                    line: lineno + 1,
                    reason: format!("unparseable trajectory id {tok:?}"),
                })?;
                global_ids.push(id);
            }
            entries.push(ShardEntry {
                file,
                addr,
                bounds,
                global_ids,
            });
        }
        if entries.len() != shard_count {
            return Err(ShardSetError::BadManifest {
                reason: format!(
                    "header declares {shard_count} shards, manifest lists {}",
                    entries.len()
                ),
            });
        }

        // Bounds are all-or-none: a routing coordinator either prunes
        // against every shard or falls back to full fan-out. A manifest
        // where only some shards carry bounds is corrupt.
        if entries.iter().any(|e| e.bounds.is_some()) {
            if let Some(e) = entries.iter().find(|e| e.bounds.is_none()) {
                return Err(ShardSetError::MissingShardBounds {
                    file: e.file.clone(),
                });
            }
        }

        // File-level validation: every referenced file exists, none
        // twice, and no network address is claimed by two shards.
        for (i, e) in entries.iter().enumerate() {
            if entries[..i].iter().any(|prev| prev.file == e.file) {
                return Err(ShardSetError::DuplicateShardFile {
                    file: e.file.clone(),
                });
            }
            if !dir.join(&e.file).is_file() {
                return Err(ShardSetError::MissingShardFile {
                    file: e.file.clone(),
                });
            }
            if let Some(addr) = &e.addr {
                if entries[..i]
                    .iter()
                    .any(|prev| prev.addr.as_deref() == Some(addr.as_str()))
                {
                    return Err(ShardSetError::DuplicateShardAddr { addr: addr.clone() });
                }
            }
        }

        // Id-level validation: sorted within shards, disjoint across
        // shards, covering exactly 0..trajs. The header's `trajs` is
        // bounded by the ids the manifest actually lists before it sizes
        // an allocation — an inflated header count is a typed error, not
        // an out-of-memory abort.
        let listed: usize = entries.iter().map(|e| e.global_ids.len()).sum();
        if trajs > listed {
            return Err(ShardSetError::IncompleteCover {
                expected: trajs,
                found: listed,
            });
        }
        let mut seen = vec![false; trajs];
        let mut covered = 0usize;
        for e in &entries {
            if e.global_ids.windows(2).any(|w| w[0] >= w[1]) {
                return Err(ShardSetError::UnsortedTrajIds {
                    file: e.file.clone(),
                });
            }
            for &id in &e.global_ids {
                if id >= trajs {
                    return Err(ShardSetError::IncompleteCover {
                        expected: trajs,
                        found: covered,
                    });
                }
                if seen[id] {
                    return Err(ShardSetError::OverlappingTrajIds { id });
                }
                seen[id] = true;
                covered += 1;
            }
        }
        if covered != trajs {
            return Err(ShardSetError::IncompleteCover {
                expected: trajs,
                found: covered,
            });
        }

        Ok(ShardSet {
            dir: dir.to_path_buf(),
            trajs,
            generation: generation.unwrap_or(0),
            entries,
        })
    }

    /// The set's placement epoch (the `generation=` manifest line;
    /// 0 for manifests written before generations existed).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Sets the placement epoch. Persist with [`ShardSet::save_manifest`].
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// The shard-set directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total trajectories across all shards.
    #[must_use]
    pub fn total_trajs(&self) -> usize {
        self.trajs
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the set holds no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The manifest entries.
    #[must_use]
    pub fn entries(&self) -> &[ShardEntry] {
        &self.entries
    }

    /// Opens every shard as an owned, heap-backed store (plus its kept
    /// bitmap when present), validating that each snapshot's trajectory
    /// count matches the manifest. Shard files are independent, so the
    /// opens (decode + checksum pass each) run in parallel.
    pub fn open_owned(&self) -> Result<Vec<OpenShard<PointStore>>, ShardSetError> {
        crate::parallel::par_map(&self.entries, |e| {
            let snap = read_snapshot(self.dir.join(&e.file)).map_err(|source| {
                ShardSetError::Snapshot {
                    file: e.file.clone(),
                    source,
                }
            })?;
            check_traj_count(&e.file, e.global_ids.len(), snap.store.len())?;
            Ok(OpenShard {
                store: snap.store,
                global_ids: e.global_ids.clone(),
                kept: snap.kept,
            })
        })
        .into_iter()
        .collect()
    }

    /// Opens every shard zero-copy behind a read-only mapping (plus its
    /// kept bitmap when present) — the serving path: no column is copied
    /// or decoded, each file's one full pass is its checksum
    /// verification, and the per-file opens run in parallel.
    pub fn open_mapped(&self) -> Result<Vec<OpenShard<MappedStore>>, ShardSetError> {
        crate::parallel::par_map(&self.entries, |e| {
            let mapped = MappedStore::open(self.dir.join(&e.file)).map_err(|source| {
                ShardSetError::Snapshot {
                    file: e.file.clone(),
                    source,
                }
            })?;
            check_traj_count(&e.file, e.global_ids.len(), AsColumns::len(&mapped))?;
            let kept = mapped.kept_bitmap();
            Ok(OpenShard {
                store: mapped,
                global_ids: e.global_ids.clone(),
                kept,
            })
        })
        .into_iter()
        .collect()
    }

    /// Reassembles the unsharded database: one store with every
    /// trajectory back at its global id. The inverse of [`partition`]
    /// (for any strategy), used by audits and re-partitioning.
    pub fn unify(&self) -> Result<PointStore, ShardSetError> {
        let shards = self.open_owned()?;
        let parts: Vec<(&PointStore, &[TrajId])> = shards
            .iter()
            .map(|s| (&s.store, s.global_ids.as_slice()))
            .collect();
        Ok(unify_parts(&parts))
    }
}

/// Serializes the manifest: magic, header, the `generation=` epoch line
/// (omitted at epoch 0 so pre-generation manifests stay byte-identical),
/// then one `shard` line per entry (with the optional `addr=` placement
/// and `bounds=` pruning tokens before the id list).
fn render_manifest(trajs: usize, generation: u64, entries: &[ShardEntry]) -> io::Result<Vec<u8>> {
    let mut manifest = Vec::new();
    writeln!(manifest, "{MANIFEST_MAGIC}")?;
    writeln!(manifest, "shards {} trajs {trajs}", entries.len())?;
    if generation != 0 {
        writeln!(manifest, "generation={generation}")?;
    }
    for e in entries {
        write!(manifest, "shard {}", e.file)?;
        if let Some(addr) = &e.addr {
            write!(manifest, " addr={addr}")?;
        }
        if let Some(b) = &e.bounds {
            // `{}` on f64 prints the shortest string that parses back to
            // the same bits, so bounds round-trip bitwise through text.
            write!(
                manifest,
                " bounds={},{},{},{},{},{}",
                b.x_min, b.x_max, b.y_min, b.y_max, b.t_min, b.t_max
            )?;
        }
        for id in &e.global_ids {
            write!(manifest, " {id}")?;
        }
        writeln!(manifest)?;
    }
    Ok(manifest)
}

/// Parses a `bounds=` token body: six comma-separated finite `f64`s,
/// each minimum no greater than its maximum.
fn parse_bounds(file: &str, text: &str) -> Result<Cube, ShardSetError> {
    let malformed = |reason: String| ShardSetError::MalformedShardBounds {
        file: file.to_string(),
        bounds: text.to_string(),
        reason,
    };
    let mut vals = [0.0f64; 6];
    let parts: Vec<&str> = text.split(',').collect();
    if parts.len() != 6 {
        return Err(malformed(format!(
            "expected 6 numbers, found {}",
            parts.len()
        )));
    }
    for (v, tok) in vals.iter_mut().zip(&parts) {
        *v = tok
            .parse::<f64>()
            .map_err(|_| malformed(format!("unparseable number {tok:?}")))?;
        if !v.is_finite() {
            return Err(malformed(format!("non-finite bound {tok:?}")));
        }
    }
    let [x_min, x_max, y_min, y_max, t_min, t_max] = vals;
    if x_min > x_max || y_min > y_max || t_min > t_max {
        return Err(malformed("min bound exceeds max bound".to_string()));
    }
    Ok(Cube {
        x_min,
        x_max,
        y_min,
        y_max,
        t_min,
        t_max,
    })
}

/// A shard address must be a dialable `host:port` pair: non-empty host,
/// port a valid `u16`. (Hostnames are allowed — resolution happens at
/// connect time — so this does not require a literal IP.)
fn validate_addr(addr: &str) -> Result<(), String> {
    let Some((host, port)) = addr.rsplit_once(':') else {
        return Err("missing `:port`".to_string());
    };
    if host.is_empty() {
        return Err("empty host".to_string());
    }
    if port.parse::<u16>().is_err() {
        return Err(format!("unparseable port {port:?}"));
    }
    Ok(())
}

fn check_traj_count(file: &str, manifest: usize, snapshot: usize) -> Result<(), ShardSetError> {
    if manifest != snapshot {
        return Err(ShardSetError::TrajCountMismatch {
            file: file.to_string(),
            manifest,
            snapshot,
        });
    }
    Ok(())
}

/// Merges shards back into one store with trajectories at their global
/// ids. Panics (via indexing) when ids do not cover `0..M` exactly —
/// guaranteed by [`partition`] and by [`ShardSet::load`] validation.
#[must_use]
pub fn unify_shards(shards: &[Shard]) -> PointStore {
    let parts: Vec<(&PointStore, &[TrajId])> = shards
        .iter()
        .map(|s| (&s.store, s.global_ids.as_slice()))
        .collect();
    unify_parts(&parts)
}

/// Layout-agnostic core of [`unify_shards`]: merges `(store, global_ids)`
/// pairs without cloning any shard's columns — the stores may be owned or
/// mapped, borrowed straight from wherever they already live.
fn unify_parts<S: AsColumns>(parts: &[(&S, &[TrajId])]) -> PointStore {
    let total: usize = parts.iter().map(|(_, ids)| ids.len()).sum();
    let points: usize = parts.iter().map(|(s, _)| s.total_points()).sum();
    // locate[global] = (shard, local).
    let mut locate = vec![(0usize, 0usize); total];
    for (si, (_, ids)) in parts.iter().enumerate() {
        for (local, &global) in ids.iter().enumerate() {
            locate[global] = (si, local);
        }
    }
    let mut out = PointStore::with_capacity(total, points);
    for &(si, local) in &locate {
        let _ = out.push_view(parts[si].0.view(local));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, DatasetSpec, Scale};

    fn sample_store() -> PointStore {
        generate(&DatasetSpec::geolife(Scale::Smoke), 77).to_store()
    }

    fn all_strategies() -> [PartitionStrategy; 3] {
        [
            PartitionStrategy::Grid { nx: 2, ny: 2 },
            PartitionStrategy::Time { parts: 3 },
            PartitionStrategy::Hash { parts: 4 },
        ]
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("qdts_shard_tests")
            .join(format!("{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn partition_covers_every_trajectory_exactly_once() {
        let store = sample_store();
        for strategy in all_strategies() {
            let shards = partition(&store, &strategy);
            assert!(!shards.is_empty(), "{strategy:?}");
            let mut seen = vec![false; store.len()];
            for shard in &shards {
                assert!(!shard.store.is_empty(), "empty shard survived");
                assert_eq!(shard.store.len(), shard.global_ids.len());
                assert!(
                    shard.global_ids.windows(2).all(|w| w[0] < w[1]),
                    "ids must stay sorted"
                );
                for (local, &global) in shard.global_ids.iter().enumerate() {
                    assert!(!seen[global], "trajectory {global} in two shards");
                    seen[global] = true;
                    // Whole trajectories, bit-identical columns.
                    let (a, b) = (shard.store.view(local), store.view(global));
                    assert_eq!(a.xs, b.xs);
                    assert_eq!(a.ys, b.ys);
                    assert_eq!(a.ts, b.ts);
                }
            }
            assert!(seen.iter().all(|&s| s), "{strategy:?} lost trajectories");
        }
    }

    #[test]
    fn unify_inverts_partition() {
        let store = sample_store();
        for strategy in all_strategies() {
            let shards = partition(&store, &strategy);
            assert_eq!(unify_shards(&shards), store, "{strategy:?}");
        }
    }

    #[test]
    fn hash_partition_balances_trajectories() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 4 });
        assert_eq!(shards.len(), 4);
        let max = shards.iter().map(|s| s.store.len()).max().unwrap();
        let min = shards.iter().map(|s| s.store.len()).min().unwrap();
        assert!(
            max <= min * 3 + 2,
            "hash shards badly unbalanced: {min}..{max}"
        );
    }

    #[test]
    fn empty_store_partitions_to_no_shards() {
        let store = PointStore::new();
        for strategy in all_strategies() {
            assert!(partition(&store, &strategy).is_empty());
        }
    }

    #[test]
    fn grid_for_produces_at_least_requested_cells() {
        for n in 1..=9 {
            let PartitionStrategy::Grid { nx, ny } = PartitionStrategy::grid_for(n) else {
                panic!("grid_for must return a grid");
            };
            assert!(nx * ny >= n);
        }
    }

    #[test]
    fn shard_set_round_trips_owned_and_mapped() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 3 });
        let dir = temp_dir("round_trip");
        let written = ShardSet::write(&dir, &shards).unwrap();
        assert_eq!(written.len(), shards.len());

        let set = ShardSet::load(&dir).unwrap();
        assert_eq!(set, written);
        assert_eq!(set.total_trajs(), store.len());

        let owned = set.open_owned().unwrap();
        for (shard, open) in shards.iter().zip(&owned) {
            assert_eq!(open.store, shard.store);
            assert_eq!(open.global_ids, shard.global_ids);
            assert_eq!(open.kept, None);
        }
        let mapped = set.open_mapped().unwrap();
        for (shard, open) in shards.iter().zip(&mapped) {
            assert_eq!(open.store.xs(), shard.store.xs());
            assert_eq!(open.store.offsets(), shard.store.offsets());
        }
        assert_eq!(set.unify().unwrap(), store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_shard_set_reopens_within_bound() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 3 });
        let max_error = 1e-3;
        let dir = temp_dir("quantized_set");
        let raw_dir = temp_dir("quantized_set_raw");
        ShardSet::write_quantized(&dir, &shards, None, max_error).unwrap();
        ShardSet::write(&raw_dir, &shards).unwrap();

        let dir_bytes = |d: &PathBuf| -> u64 {
            std::fs::read_dir(d)
                .unwrap()
                .map(|e| e.unwrap().metadata().unwrap().len())
                .sum()
        };
        assert!(dir_bytes(&dir) < dir_bytes(&raw_dir));

        let set = ShardSet::load(&dir).unwrap();
        let within = |xs: &[f64], ys: &[f64]| {
            xs.iter()
                .zip(ys)
                .all(|(a, b)| (a - b).abs() <= max_error * 1.000_001)
        };
        // Both reopen paths decode transparently, within the bound.
        for (shard, open) in shards.iter().zip(set.open_owned().unwrap()) {
            assert_eq!(open.store.offsets(), shard.store.offsets());
            assert!(within(open.store.xs(), shard.store.xs()));
            assert!(within(open.store.ys(), shard.store.ys()));
            assert!(within(open.store.ts(), shard.store.ts()));
        }
        for (shard, open) in shards.iter().zip(set.open_mapped().unwrap()) {
            assert_eq!(open.store.offsets(), shard.store.offsets());
            assert!(within(open.store.xs(), shard.store.xs()));
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&raw_dir).ok();
    }

    #[test]
    fn missing_shard_file_is_a_typed_error() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 2 });
        let dir = temp_dir("missing_file");
        ShardSet::write(&dir, &shards).unwrap();
        std::fs::remove_file(dir.join("shard-0001.snap")).unwrap();
        assert!(matches!(
            ShardSet::load(&dir),
            Err(ShardSetError::MissingShardFile { file }) if file == "shard-0001.snap"
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_and_overlapping_manifests_are_typed_errors() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 2 });
        let dir = temp_dir("dup_overlap");
        ShardSet::write(&dir, &shards).unwrap();
        let manifest_path = dir.join(MANIFEST_FILE);
        let original = std::fs::read_to_string(&manifest_path).unwrap();

        // Duplicate file reference.
        let dup = original.replace("shard-0001.snap", "shard-0000.snap");
        std::fs::write(&manifest_path, &dup).unwrap();
        assert!(matches!(
            ShardSet::load(&dir),
            Err(ShardSetError::DuplicateShardFile { .. })
        ));

        // Overlapping trajectory ids: make shard 1's line repeat shard
        // 0's ids (counts unchanged).
        let lines: Vec<&str> = original.lines().collect();
        let shard0_ids = lines[2]
            .split_whitespace()
            .skip(2)
            .collect::<Vec<_>>()
            .join(" ");
        let first = lines[3]
            .split_whitespace()
            .take(2)
            .collect::<Vec<_>>()
            .join(" ");
        let mut overlapped = lines[..3].join("\n");
        overlapped.push('\n');
        overlapped.push_str(&format!("{first} {shard0_ids}\n"));
        std::fs::write(&manifest_path, &overlapped).unwrap();
        assert!(matches!(
            ShardSet::load(&dir),
            Err(ShardSetError::OverlappingTrajIds { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_addrs_round_trip_through_the_manifest() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 2 });
        let dir = temp_dir("addrs");
        let mut set = ShardSet::write(&dir, &shards).unwrap();
        // A freshly written (or pre-addr) manifest loads with no addrs.
        assert!(ShardSet::load(&dir)
            .unwrap()
            .entries()
            .iter()
            .all(|e| e.addr.is_none()));

        set.set_addrs(&["127.0.0.1:7001", "db-host-2:7002"])
            .unwrap();
        set.save_manifest().unwrap();
        let reloaded = ShardSet::load(&dir).unwrap();
        assert_eq!(reloaded, set);
        assert_eq!(
            reloaded.entries()[1].addr.as_deref(),
            Some("db-host-2:7002")
        );

        // Malformed and duplicate assignments are typed errors and leave
        // the set untouched.
        assert!(matches!(
            set.set_addrs(&["127.0.0.1:7001", "no-port-here"]),
            Err(ShardSetError::MalformedShardAddr { .. })
        ));
        assert!(matches!(
            set.set_addrs(&[":7001", "db-host-2:7002"]),
            Err(ShardSetError::MalformedShardAddr { .. })
        ));
        assert!(matches!(
            set.set_addrs(&["host:99999", "db-host-2:7002"]),
            Err(ShardSetError::MalformedShardAddr { .. })
        ));
        assert!(matches!(
            set.set_addrs(&["same:1", "same:1"]),
            Err(ShardSetError::DuplicateShardAddr { .. })
        ));
        assert_eq!(set.entries()[0].addr.as_deref(), Some("127.0.0.1:7001"));

        // The same rejections apply to a manifest edited on disk.
        let manifest_path = dir.join(MANIFEST_FILE);
        let original = std::fs::read_to_string(&manifest_path).unwrap();
        let dup = original.replace("addr=db-host-2:7002", "addr=127.0.0.1:7001");
        std::fs::write(&manifest_path, dup).unwrap();
        assert!(matches!(
            ShardSet::load(&dir),
            Err(ShardSetError::DuplicateShardAddr { .. })
        ));
        let malformed = original.replace("addr=db-host-2:7002", "addr=db-host-2");
        std::fs::write(&manifest_path, malformed).unwrap();
        assert!(matches!(
            ShardSet::load(&dir),
            Err(ShardSetError::MalformedShardAddr { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generation_round_trips_through_the_manifest() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 2 });
        let dir = temp_dir("generation");
        let mut set = ShardSet::write(&dir, &shards).unwrap();

        // Freshly written (and pre-generation) manifests load at epoch 0,
        // and epoch 0 emits no generation= line at all.
        assert_eq!(set.generation(), 0);
        assert_eq!(ShardSet::load(&dir).unwrap().generation(), 0);
        let manifest_path = dir.join(MANIFEST_FILE);
        assert!(!std::fs::read_to_string(&manifest_path)
            .unwrap()
            .contains("generation="));

        set.set_generation(7);
        set.save_manifest().unwrap();
        let reloaded = ShardSet::load(&dir).unwrap();
        assert_eq!(reloaded.generation(), 7);
        assert_eq!(reloaded, set);

        // Malformed generations are typed errors, never a silent zero.
        let original = std::fs::read_to_string(&manifest_path).unwrap();
        for (bad, what) in [
            ("generation=seven", "non-numeric"),
            ("generation=-3", "negative"),
            ("generation=", "empty"),
            ("generation=7 extra", "trailing tokens"),
            ("generation=7\ngeneration=8", "duplicate"),
        ] {
            let text = original.replace("generation=7", bad);
            std::fs::write(&manifest_path, text).unwrap();
            assert!(
                matches!(
                    ShardSet::load(&dir),
                    Err(ShardSetError::MalformedGeneration { .. })
                ),
                "{what} generation must be rejected"
            );
        }
        std::fs::write(&manifest_path, &original).unwrap();
        assert_eq!(ShardSet::load(&dir).unwrap().generation(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_bounds_round_trip_through_the_manifest() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Grid { nx: 2, ny: 2 });
        let dir = temp_dir("bounds");
        let written = ShardSet::write(&dir, &shards).unwrap();

        // Written bounds are the per-shard bounding cubes, and they
        // reload bitwise-identically through the text manifest.
        let reloaded = ShardSet::load(&dir).unwrap();
        assert_eq!(reloaded, written);
        for (shard, e) in shards.iter().zip(reloaded.entries()) {
            assert_eq!(e.bounds, Some(shard.bounds()));
        }

        // Bounds and addr tokens coexist in either order.
        let mut set = written;
        let addrs: Vec<String> = (0..set.len())
            .map(|i| format!("127.0.0.1:{}", 7001 + i))
            .collect();
        set.set_addrs(&addrs).unwrap();
        set.save_manifest().unwrap();
        assert_eq!(ShardSet::load(&dir).unwrap(), set);
        let manifest_path = dir.join(MANIFEST_FILE);
        let original = std::fs::read_to_string(&manifest_path).unwrap();
        let swapped: String = original
            .lines()
            .map(|l| {
                let fields: Vec<&str> = l.split_whitespace().collect();
                if fields.len() > 3 && fields[2].starts_with("addr=") {
                    let mut out = vec![fields[0], fields[1], fields[3], fields[2]];
                    out.extend(&fields[4..]);
                    out.join(" ") + "\n"
                } else {
                    l.to_string() + "\n"
                }
            })
            .collect();
        assert_eq!(ShardSet::load(&dir).unwrap(), set);
        std::fs::write(&manifest_path, &swapped).unwrap();
        assert_eq!(ShardSet::load(&dir).unwrap(), set);
        std::fs::write(&manifest_path, &original).unwrap();

        // Corrupt bounds land typed errors: unparseable, wrong count,
        // non-finite, inverted, duplicated — and a manifest where only
        // some shards have bounds is rejected too.
        let first_bounds = original
            .split_whitespace()
            .find(|tok| tok.starts_with("bounds="))
            .unwrap()
            .to_string();
        let corrupt = |replacement: &str| {
            std::fs::write(
                &manifest_path,
                original.replacen(&first_bounds, replacement, 1),
            )
            .unwrap();
            ShardSet::load(&dir)
        };
        assert!(matches!(
            corrupt("bounds=a,b,c,d,e,f"),
            Err(ShardSetError::MalformedShardBounds { .. })
        ));
        assert!(matches!(
            corrupt("bounds=1,2,3"),
            Err(ShardSetError::MalformedShardBounds { .. })
        ));
        assert!(matches!(
            corrupt("bounds=1,2,3,4,5,NaN"),
            Err(ShardSetError::MalformedShardBounds { .. })
        ));
        assert!(matches!(
            corrupt("bounds=1,2,3,4,inf,inf"),
            Err(ShardSetError::MalformedShardBounds { .. })
        ));
        assert!(matches!(
            corrupt("bounds=2,1,3,4,5,6"),
            Err(ShardSetError::MalformedShardBounds { .. })
        ));
        assert!(matches!(
            corrupt(&format!("{first_bounds} {first_bounds}")),
            Err(ShardSetError::MalformedShardBounds { .. })
        ));
        assert!(matches!(
            corrupt(""),
            Err(ShardSetError::MissingShardBounds { .. })
        ));

        // A pre-bounds manifest (no bounds= anywhere) still loads.
        let stripped: String = original
            .lines()
            .map(|l| {
                l.split_whitespace()
                    .filter(|tok| !tok.starts_with("bounds="))
                    .collect::<Vec<_>>()
                    .join(" ")
                    + "\n"
            })
            .collect();
        std::fs::write(&manifest_path, stripped).unwrap();
        let legacy_set = ShardSet::load(&dir).unwrap();
        assert!(legacy_set.entries().iter().all(|e| e.bounds.is_none()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_manifest_bounds_match_the_decoded_store() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Time { parts: 3 });
        let dir = temp_dir("quant_bounds");
        let set = ShardSet::write_quantized(&dir, &shards, None, 1e-3).unwrap();
        // The manifest's bounds must cover what a reader decodes —
        // bitwise — not the pre-quantization input.
        for (e, open) in set.entries().iter().zip(set.open_owned().unwrap()) {
            assert_eq!(e.bounds, Some(open.store.bounding_cube()));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incomplete_cover_and_bad_headers_are_typed_errors() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 2 });
        let dir = temp_dir("cover");
        ShardSet::write(&dir, &shards).unwrap();
        let manifest_path = dir.join(MANIFEST_FILE);
        let original = std::fs::read_to_string(&manifest_path).unwrap();

        // Drop one shard line (header now over-declares).
        let mut lines: Vec<&str> = original.lines().collect();
        lines.pop();
        std::fs::write(&manifest_path, lines.join("\n")).unwrap();
        assert!(matches!(
            ShardSet::load(&dir),
            Err(ShardSetError::BadManifest { .. })
        ));

        // Claim one more trajectory than the shards cover.
        let inflated = original.replacen(
            &format!("trajs {}", store.len()),
            &format!("trajs {}", store.len() + 1),
            1,
        );
        std::fs::write(&manifest_path, inflated).unwrap();
        assert!(matches!(
            ShardSet::load(&dir),
            Err(ShardSetError::IncompleteCover { .. })
        ));

        // An absurd header count must come back as a typed error, not an
        // allocation abort.
        let huge = original.replacen(
            &format!("trajs {}", store.len()),
            &format!("trajs {}", u64::MAX),
            1,
        );
        std::fs::write(&manifest_path, huge).unwrap();
        assert!(matches!(
            ShardSet::load(&dir),
            Err(ShardSetError::IncompleteCover { .. })
        ));

        // A shard file name escaping the directory is rejected before any
        // file access.
        let escape = original.replacen("shard-0000.snap", "../outside.snap", 1);
        std::fs::write(&manifest_path, escape).unwrap();
        assert!(matches!(
            ShardSet::load(&dir),
            Err(ShardSetError::Parse { .. })
        ));

        // Garbage magic.
        std::fs::write(&manifest_path, "NOTASHARDSET\n").unwrap();
        assert!(matches!(
            ShardSet::load(&dir),
            Err(ShardSetError::BadManifest { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traj_count_mismatch_is_detected_on_open() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 2 });
        let dir = temp_dir("count_mismatch");
        ShardSet::write(&dir, &shards).unwrap();
        // Overwrite shard 0's snapshot with a smaller, valid snapshot:
        // the manifest still lists the original ids.
        let tiny = store.gather_trajs(&[0]);
        crate::snapshot::write_snapshot(&tiny, dir.join("shard-0000.snap")).unwrap();
        let set = ShardSet::load(&dir).unwrap();
        assert!(matches!(
            set.open_owned(),
            Err(ShardSetError::TrajCountMismatch { .. })
        ));
        assert!(matches!(
            set.open_mapped(),
            Err(ShardSetError::TrajCountMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_snapshot_surfaces_as_typed_error() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Time { parts: 2 });
        let dir = temp_dir("corrupt_shard");
        ShardSet::write(&dir, &shards).unwrap();
        let victim = dir.join("shard-0000.snap");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&victim, &bytes).unwrap();
        let set = ShardSet::load(&dir).unwrap();
        assert!(matches!(
            set.open_owned(),
            Err(ShardSetError::Snapshot { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kept_bitmaps_round_trip_per_shard() {
        let store = sample_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 2 });
        let kept: Vec<KeptBitmap> = shards
            .iter()
            .map(|s| {
                let mut b = KeptBitmap::zeros(s.store.total_points());
                for g in (0..s.store.total_points()).step_by(3) {
                    b.insert(g as u32);
                }
                b
            })
            .collect();
        let dir = temp_dir("kept");
        ShardSet::write_with(&dir, &shards, &kept).unwrap();
        let set = ShardSet::load(&dir).unwrap();
        for (open, expected) in set.open_owned().unwrap().iter().zip(&kept) {
            assert_eq!(open.kept.as_ref(), Some(expected));
        }
        for (open, expected) in set.open_mapped().unwrap().iter().zip(&kept) {
            assert_eq!(open.kept.as_ref(), Some(expected));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
