//! A layout-agnostic read view of a point sequence.
//!
//! Query kernels (EDR dynamic programs, embeddings, similarity checks,
//! windowed distances) only ever need *random access by index* to a
//! time-ordered point sequence. [`PointSeq`] captures exactly that, so one
//! generic kernel serves both storage layouts:
//!
//! - [`Trajectory`] — the AoS compat type (`Vec<Point>`),
//! - [`TrajView`] — a zero-copy column view into a
//!   [`PointStore`](crate::PointStore),
//! - bare `[Point]` slices (windowed restrictions of AoS trajectories).
//!
//! The provided methods implement the shared time-window / interpolation
//! conventions once, keeping AoS and SoA execution bit-identical — the
//! property the cross-layout equality tests pin down.

use crate::geom;
use crate::point::Point;
use crate::store::TrajView;
use crate::traj::Trajectory;

/// Random access to a time-ordered point sequence, independent of layout.
pub trait PointSeq {
    /// Number of points.
    fn n_points(&self) -> usize;

    /// The `i`-th point, by value.
    fn point_at(&self, i: usize) -> Point;

    /// True when the sequence has no points.
    fn no_points(&self) -> bool {
        self.n_points() == 0
    }

    /// Time span `[t1, tn]` of a non-empty sequence.
    fn seq_time_span(&self) -> (f64, f64) {
        (self.point_at(0).t, self.point_at(self.n_points() - 1).t)
    }

    /// Indices `[lo, hi]` (inclusive) of points with timestamps inside
    /// `[ts, te]`, or `None` when the window misses the sequence.
    fn seq_window_indices(&self, ts: f64, te: f64) -> Option<(usize, usize)> {
        if ts > te {
            return None;
        }
        let n = self.n_points();
        let lo = partition_point_t(self, n, |t| t < ts);
        let hi = partition_point_t(self, n, |t| t <= te);
        if lo >= hi {
            None
        } else {
            Some((lo, hi - 1))
        }
    }

    /// Synchronized position at time `t`, linearly interpolated along the
    /// spanning segment and clamped to the endpoints outside the span.
    fn seq_position_at(&self, t: f64) -> Point {
        let n = self.n_points();
        let first = self.point_at(0);
        if t <= first.t {
            return Point::new(first.x, first.y, t);
        }
        let last = self.point_at(n - 1);
        if t >= last.t {
            return Point::new(last.x, last.y, t);
        }
        // First index with time > t; its predecessor starts the segment.
        let hi = partition_point_t(self, n, |pt| pt <= t);
        let a = self.point_at(hi - 1);
        if a.t == t {
            return Point::new(a.x, a.y, t);
        }
        geom::interpolate_at(&a, &self.point_at(hi), t)
    }
}

/// Binary search: the first index in `0..n` whose timestamp fails `keep`.
fn partition_point_t<S: PointSeq + ?Sized>(s: &S, n: usize, keep: impl Fn(f64) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if keep(s.point_at(mid).t) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

impl PointSeq for Trajectory {
    #[inline]
    fn n_points(&self) -> usize {
        self.len()
    }

    #[inline]
    fn point_at(&self, i: usize) -> Point {
        *self.point(i)
    }
}

impl PointSeq for TrajView<'_> {
    #[inline]
    fn n_points(&self) -> usize {
        self.len()
    }

    #[inline]
    fn point_at(&self, i: usize) -> Point {
        self.point(i)
    }
}

impl PointSeq for [Point] {
    #[inline]
    fn n_points(&self) -> usize {
        self.len()
    }

    #[inline]
    fn point_at(&self, i: usize) -> Point {
        self[i]
    }
}

impl<S: PointSeq + ?Sized> PointSeq for &S {
    #[inline]
    fn n_points(&self) -> usize {
        (**self).n_points()
    }

    #[inline]
    fn point_at(&self, i: usize) -> Point {
        (**self).point_at(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PointStore;

    fn traj() -> Trajectory {
        Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(10.0, 0.0, 10.0),
            Point::new(10.0, 10.0, 20.0),
            Point::new(20.0, 10.0, 30.0),
        ])
        .unwrap()
    }

    #[test]
    fn all_impls_agree_on_windows_and_positions() {
        let t = traj();
        let mut store = PointStore::new();
        store.push_traj(&t);
        let v = store.view(0);
        let s: &[Point] = t.points();
        for (ts, te) in [(0.0, 30.0), (5.0, 25.0), (31.0, 40.0), (20.0, 10.0)] {
            assert_eq!(t.seq_window_indices(ts, te), t.window_indices(ts, te));
            assert_eq!(v.seq_window_indices(ts, te), t.window_indices(ts, te));
            assert_eq!(s.seq_window_indices(ts, te), t.window_indices(ts, te));
        }
        for probe in [-5.0, 0.0, 5.0, 10.0, 17.5, 30.0, 99.0] {
            let expect = t.position_at(probe);
            assert_eq!(t.seq_position_at(probe), expect);
            assert_eq!(v.seq_position_at(probe), expect);
            assert_eq!(s.seq_position_at(probe), expect);
        }
    }

    #[test]
    fn spans_match() {
        let t = traj();
        assert_eq!(t.seq_time_span(), t.time_span());
        assert_eq!(t.points().seq_time_span(), t.time_span());
    }
}
