//! Geometry kernel shared by error measures, queries, and the RL agents.
//!
//! Everything here operates on pairs of [`Point`]s interpreted as a segment
//! of movement: the object travels from `a` to `b` in a straight line at
//! constant speed between `a.t` and `b.t`.

use crate::point::Point;

/// Position on segment `(a, b)` at time `t`, by linear interpolation in time.
/// Degenerate segments (`b.t <= a.t`) collapse to `a`'s location.
#[inline]
pub fn interpolate_at(a: &Point, b: &Point, t: f64) -> Point {
    let dt = b.t - a.t;
    if dt <= 0.0 {
        return Point::new(a.x, a.y, t);
    }
    let r = ((t - a.t) / dt).clamp(0.0, 1.0);
    Point::new(a.x + r * (b.x - a.x), a.y + r * (b.y - a.y), t)
}

/// The *synchronized point* of `p` on anchor segment `(a, b)`: the location
/// the simplified trajectory claims for time `p.t`. This is the SED anchor
/// position (Fig. 1 in the paper).
#[inline]
pub fn sync_point(a: &Point, b: &Point, p: &Point) -> Point {
    interpolate_at(a, b, p.t)
}

/// Spatial distance from `p` to the closest point of the *spatial* segment
/// `(a, b)` (projection clamped to the segment). This is the PED of `p`.
pub fn point_segment_distance(a: &Point, b: &Point, p: &Point) -> f64 {
    let (s, _) = project_onto_segment(a, b, p);
    let cx = a.x + s * (b.x - a.x);
    let cy = a.y + s * (b.y - a.y);
    let dx = p.x - cx;
    let dy = p.y - cy;
    (dx * dx + dy * dy).sqrt()
}

/// Projects `p` onto the spatial segment `(a, b)`. Returns `(s, d2)` where
/// `s ∈ [0, 1]` parameterizes the closest point `a + s·(b−a)` and `d2` is the
/// squared distance to it. Zero-length segments return `s = 0`.
pub fn project_onto_segment(a: &Point, b: &Point, p: &Point) -> (f64, f64) {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len2 = abx * abx + aby * aby;
    let s = if len2 <= 0.0 {
        0.0
    } else {
        (((p.x - a.x) * abx + (p.y - a.y) * aby) / len2).clamp(0.0, 1.0)
    };
    let cx = a.x + s * abx;
    let cy = a.y + s * aby;
    let dx = p.x - cx;
    let dy = p.y - cy;
    (s, dx * dx + dy * dy)
}

/// Timestamp of the point on segment `(a, b)` spatially closest to `p`
/// (the segment is traversed at constant speed, so the time interpolates
/// with the same parameter as the position). Used for Agent-Point's
/// temporal feature `v_t` (Eq. 6).
pub fn closest_point_time(a: &Point, b: &Point, p: &Point) -> f64 {
    let (s, _) = project_onto_segment(a, b, p);
    a.t + s * (b.t - a.t)
}

/// Heading of the movement from `a` to `b`, in radians in `(-π, π]`.
/// Zero-length movement reports heading 0.
#[inline]
pub fn direction(a: &Point, b: &Point) -> f64 {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    if dx == 0.0 && dy == 0.0 {
        0.0
    } else {
        dy.atan2(dx)
    }
}

/// Smallest absolute difference between two headings, in `[0, π]`.
#[inline]
pub fn angle_diff(t1: f64, t2: f64) -> f64 {
    let mut d = (t1 - t2).rem_euclid(std::f64::consts::TAU);
    if d > std::f64::consts::PI {
        d = std::f64::consts::TAU - d;
    }
    d
}

/// Average speed of the movement from `a` to `b` in m/s. Zero-duration
/// movement reports speed 0 (GPS fixes can carry duplicate timestamps).
#[inline]
pub fn speed(a: &Point, b: &Point) -> f64 {
    let dt = b.t - a.t;
    if dt <= 0.0 {
        0.0
    } else {
        a.spatial_distance(b) / dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn interpolation_is_linear_in_time() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(10.0, 20.0, 10.0);
        let m = interpolate_at(&a, &b, 5.0);
        assert_eq!((m.x, m.y, m.t), (5.0, 10.0, 5.0));
        // Out-of-range times clamp spatially but keep the requested time.
        let before = interpolate_at(&a, &b, -1.0);
        assert_eq!((before.x, before.y, before.t), (0.0, 0.0, -1.0));
    }

    #[test]
    fn interpolation_degenerate_time_collapses_to_a() {
        let a = Point::new(1.0, 2.0, 5.0);
        let b = Point::new(9.0, 9.0, 5.0);
        let m = interpolate_at(&a, &b, 5.0);
        assert_eq!((m.x, m.y), (1.0, 2.0));
    }

    #[test]
    fn sync_point_matches_figure_1_intuition() {
        // Object truly at (5, 5) at t=5; anchor claims it is at (5, 0).
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(10.0, 0.0, 10.0);
        let p = Point::new(5.0, 5.0, 5.0);
        let s = sync_point(&a, &b, &p);
        assert_eq!((s.x, s.y), (5.0, 0.0));
        assert_eq!(p.spatial_distance(&s), 5.0);
    }

    #[test]
    fn point_segment_distance_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(10.0, 0.0, 10.0);
        // Perpendicular case.
        assert_eq!(
            point_segment_distance(&a, &b, &Point::new(5.0, 3.0, 0.0)),
            3.0
        );
        // Beyond endpoint: distance to the endpoint, not the infinite line.
        assert_eq!(
            point_segment_distance(&a, &b, &Point::new(14.0, 3.0, 0.0)),
            5.0
        );
        // Zero-length segment.
        let z = Point::new(1.0, 1.0, 0.0);
        assert_eq!(
            point_segment_distance(&z, &z, &Point::new(4.0, 5.0, 0.0)),
            5.0
        );
    }

    #[test]
    fn closest_point_time_interpolates_with_projection() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(10.0, 0.0, 20.0);
        // p projects onto x=5, i.e. halfway, i.e. t=10.
        assert_eq!(closest_point_time(&a, &b, &Point::new(5.0, 7.0, 3.0)), 10.0);
        // p beyond the far endpoint clamps to b's time.
        assert_eq!(
            closest_point_time(&a, &b, &Point::new(50.0, 0.0, 3.0)),
            20.0
        );
    }

    #[test]
    fn direction_and_angle_diff() {
        let o = Point::new(0.0, 0.0, 0.0);
        let east = Point::new(1.0, 0.0, 1.0);
        let north = Point::new(0.0, 1.0, 1.0);
        let west = Point::new(-1.0, 0.0, 1.0);
        assert_eq!(direction(&o, &east), 0.0);
        assert!((direction(&o, &north) - FRAC_PI_2).abs() < 1e-12);
        assert!((angle_diff(direction(&o, &east), direction(&o, &west)) - PI).abs() < 1e-12);
        // Wrap-around: -3π/4 vs 3π/4 differ by π/2, not 3π/2.
        assert!((angle_diff(-2.356194490192345, 2.356194490192345) - FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn angle_diff_is_symmetric_and_bounded() {
        for &(a, b) in &[(0.1, 2.9), (-3.0, 3.0), (1.0, 1.0), (-0.5, 0.5)] {
            assert!((angle_diff(a, b) - angle_diff(b, a)).abs() < 1e-12);
            assert!(angle_diff(a, b) >= 0.0 && angle_diff(a, b) <= PI + 1e-12);
        }
    }

    #[test]
    fn speed_handles_degenerate_durations() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(30.0, 40.0, 10.0);
        assert_eq!(speed(&a, &b), 5.0);
        let dup = Point::new(30.0, 40.0, 0.0);
        assert_eq!(speed(&a, &dup), 0.0);
    }
}
