//! Minimal data-parallel map over slices, built on scoped threads.
//!
//! The workspace has no external thread-pool dependency, so every
//! embarrassingly-parallel loop — the query engine's batch paths, the
//! sharded engine's per-shard index builds, per-shard simplification —
//! uses this helper: a work-stealing index counter over `items` with one
//! worker per available core. Results preserve input order, and a panic
//! in any worker propagates to the caller, so `par_map` is a drop-in
//! replacement for a sequential `iter().map().collect()`. (It lives in
//! the data-substrate crate so both `traj-query` and `traj-simp` can
//! share it; `traj_query::parallel` re-exports it.)

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used for a batch of `len` items.
fn worker_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    cores.min(len).max(1)
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Workers pull indices from a shared atomic counter, so uneven per-item
/// cost (a selective query vs. a whole-database one) balances
/// automatically. Falls back to a plain sequential map for tiny batches
/// where thread startup would dominate.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// [`par_map`] variant with **per-worker scratch state**: `init` runs
/// once per worker thread (not once per item), and the returned value is
/// threaded mutably through every item that worker processes. Batch
/// executors use this to reuse allocation-heavy buffers (hit-flag
/// vectors, candidate lists) across the queries of a batch instead of
/// reallocating them per query. Results preserve input order, like
/// [`par_map`]; the sequential fallback reuses one scratch for the whole
/// batch, which is the same sharing contract (scratch must be *reusable*,
/// not *fresh*, per item).
pub fn par_map_with<T, R, S, G, F>(items: &[T], init: G, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 || items.len() < 2 {
        let mut scratch = init();
        return items.iter().map(|item| f(&mut scratch, item)).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let next = AtomicUsize::new(0);
    {
        let f = &f;
        let init = &init;
        let next = &next;
        let mut partials: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut scratch = init();
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, f(&mut scratch, &items[i])));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("parallel worker panicked"));
            }
        });
        for part in partials {
            for (i, r) in part {
                slots[i] = Some(r);
            }
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect()
}

/// [`par_map`] variant whose callback also receives the item index.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let next = AtomicUsize::new(0);
    {
        // Each worker collects (index, value) pairs; merging afterwards
        // restores input order without sharing mutable state across threads.
        let f = &f;
        let next = &next;
        let mut partials: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, f(i, &items[i])));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("parallel worker panicked"));
            }
        });
        for part in partials {
            for (i, r) in part {
                slots[i] = Some(r);
            }
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_variant_sees_correct_indices() {
        let items = vec!["a"; 257];
        let out = par_map_indexed(&items, |i, _| i);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_batches() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn scratch_variant_matches_plain_map_and_reuses_buffers() {
        let items: Vec<usize> = (0..500).collect();
        // Scratch is a reusable buffer; correctness must not depend on it
        // being fresh per item.
        let out = par_map_with(&items, Vec::<usize>::new, |buf, &x| {
            buf.clear();
            buf.extend(0..x % 7);
            x * 2 + buf.len()
        });
        let expected: Vec<usize> = items.iter().map(|&x| x * 2 + x % 7).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn scratch_variant_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_with(&empty, || 0u32, |_, &x| x).is_empty());
        assert_eq!(
            par_map_with(
                &[5u32],
                || 0u32,
                |s, &x| {
                    *s += 1;
                    x + *s
                }
            ),
            vec![6]
        );
    }

    #[test]
    fn uneven_workloads_balance() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            if x % 7 == 0 {
                (0..10_000u64).fold(x, |a, b| a.wrapping_add(b))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], 1);
    }
}
