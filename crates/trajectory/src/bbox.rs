//! Axis-aligned spatio-temporal bounding volumes ("cubes" in the paper).

use crate::point::Point;

/// An axis-aligned box in (x, y, t) space.
///
/// The octree in `traj-index` partitions the database into these cubes, and
/// range queries are expressed as one. Bounds are inclusive on both ends,
/// matching the range-query definition in §III-B of the paper
/// (`q_xmin ≤ x ≤ q_xmax`, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cube {
    /// Minimum x (inclusive).
    pub x_min: f64,
    /// Maximum x (inclusive).
    pub x_max: f64,
    /// Minimum y (inclusive).
    pub y_min: f64,
    /// Maximum y (inclusive).
    pub y_max: f64,
    /// Minimum t (inclusive).
    pub t_min: f64,
    /// Maximum t (inclusive).
    pub t_max: f64,
}

impl Cube {
    /// Creates a cube from explicit bounds. Panics in debug builds when a
    /// minimum exceeds the corresponding maximum.
    pub fn new(x_min: f64, x_max: f64, y_min: f64, y_max: f64, t_min: f64, t_max: f64) -> Self {
        debug_assert!(x_min <= x_max && y_min <= y_max && t_min <= t_max);
        Self {
            x_min,
            x_max,
            y_min,
            y_max,
            t_min,
            t_max,
        }
    }

    /// The empty cube: contains nothing, absorbs nothing under union until
    /// extended with [`Cube::extend`].
    pub fn empty() -> Self {
        Self {
            x_min: f64::INFINITY,
            x_max: f64::NEG_INFINITY,
            y_min: f64::INFINITY,
            y_max: f64::NEG_INFINITY,
            t_min: f64::INFINITY,
            t_max: f64::NEG_INFINITY,
        }
    }

    /// A cube centered at `(cx, cy, ct)` with half-extents `(hx, hy, ht)`.
    pub fn centered(cx: f64, cy: f64, ct: f64, hx: f64, hy: f64, ht: f64) -> Self {
        Self::new(cx - hx, cx + hx, cy - hy, cy + hy, ct - ht, ct + ht)
    }

    /// True when no point has ever been added (see [`Cube::empty`]).
    pub fn is_empty(&self) -> bool {
        self.x_min > self.x_max
    }

    /// Grows the cube to cover `p`.
    pub fn extend(&mut self, p: &Point) {
        self.x_min = self.x_min.min(p.x);
        self.x_max = self.x_max.max(p.x);
        self.y_min = self.y_min.min(p.y);
        self.y_max = self.y_max.max(p.y);
        self.t_min = self.t_min.min(p.t);
        self.t_max = self.t_max.max(p.t);
    }

    /// Grows the cube to also cover `other` (a no-op when `other` is
    /// empty) — how per-node tight bounds union up an index tree.
    pub fn union_with(&mut self, other: &Cube) {
        self.x_min = self.x_min.min(other.x_min);
        self.x_max = self.x_max.max(other.x_max);
        self.y_min = self.y_min.min(other.y_min);
        self.y_max = self.y_max.max(other.y_max);
        self.t_min = self.t_min.min(other.t_min);
        self.t_max = self.t_max.max(other.t_max);
    }

    /// Inclusive containment test on raw coordinates — the columnar hot
    /// path (no `Point` needs to be assembled from the columns first).
    #[inline]
    pub fn contains_xyz(&self, x: f64, y: f64, t: f64) -> bool {
        x >= self.x_min
            && x <= self.x_max
            && y >= self.y_min
            && y <= self.y_max
            && t >= self.t_min
            && t <= self.t_max
    }

    /// Inclusive containment test for a point.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.contains_xyz(p.x, p.y, p.t)
    }

    /// True when the two cubes share any volume (inclusive bounds).
    #[inline]
    pub fn intersects(&self, other: &Cube) -> bool {
        self.x_min <= other.x_max
            && self.x_max >= other.x_min
            && self.y_min <= other.y_max
            && self.y_max >= other.y_min
            && self.t_min <= other.t_max
            && self.t_max >= other.t_min
    }

    /// Center of the cube.
    pub fn center(&self) -> (f64, f64, f64) {
        (
            0.5 * (self.x_min + self.x_max),
            0.5 * (self.y_min + self.y_max),
            0.5 * (self.t_min + self.t_max),
        )
    }

    /// Extent along each axis.
    pub fn extents(&self) -> (f64, f64, f64) {
        (
            self.x_max - self.x_min,
            self.y_max - self.y_min,
            self.t_max - self.t_min,
        )
    }

    /// The eight octants obtained by splitting at the center, ordered by
    /// `(t, y, x)` bits: child `k` takes the upper x-half iff `k & 1 != 0`,
    /// the upper y-half iff `k & 2 != 0`, the upper t-half iff `k & 4 != 0`.
    ///
    /// This is the child ordering the octree (and hence Agent-Cube's 8
    /// "proceed" actions) relies on.
    pub fn octants(&self) -> [Cube; 8] {
        let (cx, cy, ct) = self.center();
        std::array::from_fn(|k| {
            let (x_min, x_max) = if k & 1 == 0 {
                (self.x_min, cx)
            } else {
                (cx, self.x_max)
            };
            let (y_min, y_max) = if k & 2 == 0 {
                (self.y_min, cy)
            } else {
                (cy, self.y_max)
            };
            let (t_min, t_max) = if k & 4 == 0 {
                (self.t_min, ct)
            } else {
                (ct, self.t_max)
            };
            Cube::new(x_min, x_max, y_min, y_max, t_min, t_max)
        })
    }

    /// Index (0..8) of the octant that contains `p`, assuming
    /// `self.contains(p)`. Points exactly on a split plane go to the upper
    /// half, consistent with [`Cube::octants`] when resolving ties upward.
    #[inline]
    pub fn octant_of(&self, p: &Point) -> usize {
        let (cx, cy, ct) = self.center();
        (usize::from(p.x >= cx)) | (usize::from(p.y >= cy) << 1) | (usize::from(p.t >= ct) << 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Cube {
        Cube::new(0.0, 1.0, 0.0, 1.0, 0.0, 1.0)
    }

    #[test]
    fn contains_is_inclusive() {
        let c = unit();
        assert!(c.contains(&Point::new(0.0, 0.0, 0.0)));
        assert!(c.contains(&Point::new(1.0, 1.0, 1.0)));
        assert!(c.contains(&Point::new(0.5, 0.5, 0.5)));
        assert!(!c.contains(&Point::new(1.0001, 0.5, 0.5)));
        assert!(!c.contains(&Point::new(0.5, -0.0001, 0.5)));
    }

    #[test]
    fn empty_cube_contains_nothing() {
        let c = Cube::empty();
        assert!(c.is_empty());
        assert!(!c.contains(&Point::new(0.0, 0.0, 0.0)));
    }

    #[test]
    fn extend_covers_points() {
        let mut c = Cube::empty();
        c.extend(&Point::new(1.0, 2.0, 3.0));
        c.extend(&Point::new(-1.0, 0.0, 9.0));
        assert!(!c.is_empty());
        assert!(c.contains(&Point::new(0.0, 1.0, 5.0)));
        assert_eq!(c.x_min, -1.0);
        assert_eq!(c.t_max, 9.0);
    }

    #[test]
    fn octants_partition_the_cube() {
        let c = unit();
        let kids = c.octants();
        // Every octant is inside the parent and they tile the volume.
        let mut vol = 0.0;
        for k in &kids {
            let (ex, ey, et) = k.extents();
            vol += ex * ey * et;
            assert!(c.intersects(k));
        }
        assert!((vol - 1.0).abs() < 1e-12);
    }

    #[test]
    fn octant_of_matches_octants() {
        let c = unit();
        let kids = c.octants();
        for p in [
            Point::new(0.1, 0.1, 0.1),
            Point::new(0.9, 0.1, 0.1),
            Point::new(0.1, 0.9, 0.1),
            Point::new(0.9, 0.9, 0.9),
            Point::new(0.5, 0.5, 0.5), // tie goes to upper halves => child 7
        ] {
            let k = c.octant_of(&p);
            assert!(kids[k].contains(&p), "point {p} not in octant {k}");
        }
        assert_eq!(c.octant_of(&Point::new(0.5, 0.5, 0.5)), 7);
    }

    #[test]
    fn intersects_detects_overlap_and_disjoint() {
        let a = unit();
        let b = Cube::new(0.5, 1.5, 0.5, 1.5, 0.5, 1.5);
        let c = Cube::new(2.0, 3.0, 2.0, 3.0, 2.0, 3.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn centered_constructor_round_trips() {
        let c = Cube::centered(10.0, 20.0, 30.0, 1.0, 2.0, 3.0);
        assert_eq!(c.center(), (10.0, 20.0, 30.0));
        assert_eq!(c.extents(), (2.0, 4.0, 6.0));
    }
}
