//! Temporal resampling utilities.
//!
//! Real GPS data arrives at irregular intervals; several operations
//! (synchronized similarity, fixed-rate export, alignment of trajectory
//! pairs) want a uniform clock. Resampling interpolates along the
//! trajectory's segments — the same synchronized-position model the SED
//! error measure and the similarity query use.

use crate::traj::Trajectory;

/// Resamples `traj` at a fixed `interval` (seconds), starting at its first
/// timestamp and always including the final position.
///
/// ```
/// use trajectory::{Point, Trajectory};
/// use trajectory::resample::resample_uniform;
///
/// let t = Trajectory::new(vec![
///     Point::new(0.0, 0.0, 0.0),
///     Point::new(100.0, 0.0, 10.0),
/// ]).unwrap();
/// let r = resample_uniform(&t, 2.5);
/// assert_eq!(r.len(), 5); // t = 0, 2.5, 5, 7.5, 10
/// assert!((r.point(2).x - 50.0).abs() < 1e-9);
/// ```
pub fn resample_uniform(traj: &Trajectory, interval: f64) -> Trajectory {
    assert!(interval > 0.0, "interval must be positive");
    let (t0, t1) = traj.time_span();
    let mut pts = Vec::new();
    let mut t = t0;
    while t < t1 {
        pts.push(traj.position_at(t));
        t += interval;
    }
    pts.push(traj.position_at(t1));
    Trajectory::from_sorted_unchecked(pts)
}

/// Resamples `traj` at the timestamps of `clock` (clamped to `traj`'s
/// span), producing a trajectory aligned point-for-point with `clock` —
/// the preprocessing step for synchronized pairwise comparison.
pub fn resample_at(traj: &Trajectory, clock: &Trajectory) -> Trajectory {
    let pts = clock
        .points()
        .iter()
        .map(|p| traj.position_at(p.t))
        .collect();
    Trajectory::from_sorted_unchecked(pts)
}

/// Mean synchronized Euclidean distance between two trajectories over the
/// overlap of their time spans, sampled every `interval` seconds. Returns
/// `None` when the spans do not overlap.
pub fn mean_sync_distance(a: &Trajectory, b: &Trajectory, interval: f64) -> Option<f64> {
    assert!(interval > 0.0);
    let (a0, a1) = a.time_span();
    let (b0, b1) = b.time_span();
    let lo = a0.max(b0);
    let hi = a1.min(b1);
    if lo > hi {
        return None;
    }
    let mut t = lo;
    let mut sum = 0.0;
    let mut n = 0usize;
    loop {
        sum += a.position_at(t).spatial_distance(&b.position_at(t));
        n += 1;
        if t >= hi {
            break;
        }
        t = (t + interval).min(hi);
    }
    Some(sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn line() -> Trajectory {
        Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(30.0, 0.0, 3.0),
            Point::new(30.0, 70.0, 10.0),
        ])
        .unwrap()
    }

    #[test]
    fn uniform_resampling_hits_the_grid() {
        let r = resample_uniform(&line(), 1.0);
        assert_eq!(r.len(), 11);
        for (i, p) in r.points().iter().enumerate() {
            assert!((p.t - i as f64).abs() < 1e-9);
        }
        // Positions interpolate linearly: at t=5, 2/7 of the second leg.
        let p5 = r.point(5);
        assert!((p5.x - 30.0).abs() < 1e-9);
        assert!((p5.y - 20.0).abs() < 1e-9);
    }

    #[test]
    fn final_position_always_included() {
        let r = resample_uniform(&line(), 4.0); // grid 0,4,8 then final 10
        assert_eq!(r.last().t, 10.0);
        assert_eq!((r.last().x, r.last().y), (30.0, 70.0));
    }

    #[test]
    fn resample_at_aligns_clocks() {
        let clock = resample_uniform(&line(), 2.0);
        let aligned = resample_at(&line(), &clock);
        assert_eq!(aligned.len(), clock.len());
        for (a, c) in aligned.points().iter().zip(clock.points()) {
            assert_eq!(a.t, c.t);
        }
    }

    #[test]
    fn sync_distance_of_identical_is_zero() {
        let d = mean_sync_distance(&line(), &line(), 0.5).unwrap();
        assert!(d < 1e-12);
    }

    #[test]
    fn sync_distance_of_parallel_offset_is_the_offset() {
        let a = Trajectory::new(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(100.0, 0.0, 10.0),
        ])
        .unwrap();
        let b = Trajectory::new(vec![
            Point::new(0.0, 25.0, 0.0),
            Point::new(100.0, 25.0, 10.0),
        ])
        .unwrap();
        let d = mean_sync_distance(&a, &b, 1.0).unwrap();
        assert!((d - 25.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_spans_yield_none() {
        let a =
            Trajectory::new(vec![Point::new(0.0, 0.0, 0.0), Point::new(1.0, 0.0, 1.0)]).unwrap();
        let b =
            Trajectory::new(vec![Point::new(0.0, 0.0, 5.0), Point::new(1.0, 0.0, 6.0)]).unwrap();
        assert!(mean_sync_distance(&a, &b, 1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_is_rejected() {
        let _ = resample_uniform(&line(), 0.0);
    }
}
