//! Property-based tests for the snapshot persistence layer: every store
//! round-trips byte-identically through both load paths (owned read and
//! zero-copy mapping), kept bitmaps survive alongside, and *any*
//! single-byte corruption is rejected with a typed error — never a panic,
//! never silently wrong data.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use trajectory::snapshot::{
    read_snapshot_bytes, snapshot_bytes, MappedStore, SnapshotError, HEADER_LEN,
};
use trajectory::{AsColumns, KeptBitmap, Point, PointStore, Trajectory};

/// Strategy: a database of 1..8 trajectories with 1..30 points each
/// (bounded coordinates, non-decreasing times), as a columnar store.
fn arb_store() -> impl Strategy<Value = PointStore> {
    prop::collection::vec(
        prop::collection::vec((-1e5..1e5f64, -1e5..1e5f64, 0.0..60.0f64), 1..30),
        1..8,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|steps| {
                let mut t = 0.0;
                let pts = steps
                    .into_iter()
                    .map(|(x, y, dt)| {
                        t += dt;
                        Point::new(x, y, t)
                    })
                    .collect();
                Trajectory::new(pts).unwrap()
            })
            .collect()
    })
}

/// Strategy: a kept bitmap over `n` points with roughly the given keep
/// probability (endpoints not special-cased — the format does not care).
fn arb_bitmap(n: usize) -> impl Strategy<Value = KeptBitmap> {
    prop::collection::vec(any::<bool>(), n).prop_map(move |bits| {
        let mut b = KeptBitmap::zeros(n);
        for (i, keep) in bits.iter().enumerate() {
            if *keep {
                b.insert(i as u32);
            }
        }
        b
    })
}

/// A unique temp path per invocation so property cases never collide.
fn unique_temp(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("qdts_snapshot_props");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}_{}_{}.snap",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn owned_and_mapped_round_trips_are_byte_identical(store in arb_store()) {
        let bytes = snapshot_bytes(&store, None);

        // Owned path: full structural equality.
        let snap = read_snapshot_bytes(&bytes).unwrap();
        prop_assert_eq!(&snap.store, &store);
        prop_assert!(snap.kept.is_none());

        // Mapped path: identical columns, offsets, and per-trajectory
        // views straight off the file.
        let path = unique_temp("round_trip");
        std::fs::write(&path, &bytes).unwrap();
        let mapped = MappedStore::open(&path).unwrap();
        prop_assert_eq!(mapped.xs(), store.xs());
        prop_assert_eq!(mapped.ys(), store.ys());
        prop_assert_eq!(mapped.ts(), store.ts());
        prop_assert_eq!(mapped.offsets(), store.offsets());
        prop_assert_eq!(AsColumns::len(&mapped), store.len());
        for id in 0..store.len() {
            let (m, o) = (AsColumns::view(&mapped, id), store.view(id));
            prop_assert_eq!(m.xs, o.xs);
            prop_assert_eq!(m.ys, o.ys);
            prop_assert_eq!(m.ts, o.ts);
        }
        prop_assert_eq!(
            AsColumns::bounding_cube(&mapped),
            PointStore::bounding_cube(&store)
        );
        // Detaching the mapping yields the original store again.
        prop_assert_eq!(&mapped.to_point_store(), &store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kept_bitmaps_survive_both_load_paths(
        (store, bitmap) in arb_store().prop_flat_map(|s| {
            let n = s.total_points();
            (Just(s), arb_bitmap(n))
        })
    ) {
        let bytes = snapshot_bytes(&store, Some(&bitmap));
        let snap = read_snapshot_bytes(&bytes).unwrap();
        prop_assert_eq!(&snap.store, &store);
        prop_assert_eq!(snap.kept.as_ref(), Some(&bitmap));

        let path = unique_temp("kept");
        std::fs::write(&path, &bytes).unwrap();
        let mapped = MappedStore::open(&path).unwrap();
        let mapped_bitmap = mapped.kept_bitmap();
        prop_assert_eq!(mapped_bitmap.as_ref(), Some(&bitmap));
        // Membership agrees bit-for-bit through the mapped words.
        let roundtrip = mapped_bitmap.unwrap();
        for gid in 0..store.total_points() as u32 {
            prop_assert_eq!(roundtrip.contains(gid), bitmap.contains(gid));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_single_byte_flip_is_rejected_with_a_typed_error(
        (store, flip, bit) in (arb_store(), 0.0..1.0f64, 0u8..8)
    ) {
        // The checksum covers everything before it, and the header's
        // geometry is canonical — so flipping ANY bit of the file must
        // surface as a typed SnapshotError from both load paths.
        let mut bytes = snapshot_bytes(&store, None);
        let idx = ((bytes.len() - 1) as f64 * flip) as usize;
        bytes[idx] ^= 1 << bit;

        let owned = read_snapshot_bytes(&bytes);
        prop_assert!(owned.is_err(), "flip at {idx} accepted by owned read");
        prop_assert!(
            !matches!(owned.unwrap_err(), SnapshotError::Io(_)),
            "owned read surfaced corruption as Io"
        );

        let path = unique_temp("corrupt");
        std::fs::write(&path, &bytes).unwrap();
        let mapped = MappedStore::open(&path);
        prop_assert!(mapped.is_err(), "flip at {idx} accepted by mmap open");
        prop_assert!(
            !matches!(mapped.unwrap_err(), SnapshotError::Io(_)),
            "mmap open surfaced corruption as Io"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_is_rejected(
        (store, frac) in (arb_store(), 0.0..1.0f64)
    ) {
        let bytes = snapshot_bytes(&store, None);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = read_snapshot_bytes(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::SectionOutOfBounds { .. }
            ),
            "cut at {cut}/{} gave {err}",
            bytes.len()
        );
    }

    #[test]
    fn header_example_constants_hold_for_all_stores(store in arb_store()) {
        // The invariants the format spec documents: canonical section
        // offsets, 64-byte alignment, zero reserved region, trailing
        // checksum position.
        let bytes = snapshot_bytes(&store, None);
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        prop_assert_eq!(u64_at(16) as usize, store.len());
        prop_assert_eq!(u64_at(24) as usize, store.total_points());
        prop_assert_eq!(u64_at(32) as usize, HEADER_LEN);
        for field in [32usize, 40, 48, 56, 72] {
            prop_assert_eq!(u64_at(field) % 64, 0, "field at {} misaligned", field);
        }
        prop_assert!(bytes[80..128].iter().all(|&b| b == 0));
        prop_assert_eq!(bytes.len(), u64_at(72) as usize + 8);
    }
}
