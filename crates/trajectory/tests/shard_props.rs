//! Property tests of the partitioning layer: every strategy must produce
//! a true partition (whole trajectories, each exactly once, columns
//! bit-identical), `unify` must invert it, and the shard-set manifest
//! must round-trip through disk for arbitrary databases.

use proptest::prelude::*;
use trajectory::shard::{partition, unify_shards, PartitionStrategy, ShardSet};
use trajectory::{Point, PointStore, Trajectory};

/// Strategy: a store of 1..10 trajectories with 1..30 points each.
fn arb_store() -> impl Strategy<Value = PointStore> {
    prop::collection::vec(
        prop::collection::vec((-1e5..1e5f64, -1e5..1e5f64, 0.1..500.0f64), 1..30),
        1..10,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|steps| {
                let mut t = 0.0;
                let pts: Vec<Point> = steps
                    .into_iter()
                    .map(|(x, y, dt)| {
                        t += dt;
                        Point::new(x, y, t)
                    })
                    .collect();
                Trajectory::new(pts).unwrap()
            })
            .collect()
    })
}

/// Strategy: an arbitrary partitioner with shard counts 1..6.
fn arb_strategy() -> impl Strategy<Value = PartitionStrategy> {
    (0usize..3, 1usize..4, 1usize..4).prop_map(|(kind, a, b)| match kind {
        0 => PartitionStrategy::Grid { nx: a, ny: b },
        1 => PartitionStrategy::Time { parts: a * b },
        _ => PartitionStrategy::Hash { parts: a * b },
    })
}

fn unique_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("qdts_shard_props").join(format!(
        "case_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_is_a_partition((store, strategy) in (arb_store(), arb_strategy())) {
        let shards = partition(&store, &strategy);
        prop_assert!(!shards.is_empty());
        let mut seen = vec![false; store.len()];
        for shard in &shards {
            prop_assert!(!shard.store.is_empty(), "no empty shards");
            prop_assert_eq!(shard.store.len(), shard.global_ids.len());
            prop_assert!(shard.global_ids.windows(2).all(|w| w[0] < w[1]));
            for (local, &global) in shard.global_ids.iter().enumerate() {
                prop_assert!(!seen[global], "trajectory {} twice", global);
                seen[global] = true;
                let (a, b) = (shard.store.view(local), store.view(global));
                prop_assert_eq!(a.xs, b.xs);
                prop_assert_eq!(a.ys, b.ys);
                prop_assert_eq!(a.ts, b.ts);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every trajectory assigned");
        // Point totals conserved.
        let total: usize = shards.iter().map(|s| s.store.total_points()).sum();
        prop_assert_eq!(total, store.total_points());
        // Shard bounds cover their points.
        for shard in &shards {
            let b = shard.bounds();
            for v in shard.store.views() {
                for i in 0..v.len() {
                    prop_assert!(b.contains_xyz(v.xs[i], v.ys[i], v.ts[i]));
                }
            }
        }
    }

    #[test]
    fn unify_inverts_any_partition((store, strategy) in (arb_store(), arb_strategy())) {
        let shards = partition(&store, &strategy);
        prop_assert_eq!(unify_shards(&shards), store);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shard_set_persistence_round_trips((store, strategy) in (arb_store(), arb_strategy())) {
        let shards = partition(&store, &strategy);
        let dir = unique_dir();
        let written = ShardSet::write(&dir, &shards).unwrap();
        let loaded = ShardSet::load(&dir).unwrap();
        prop_assert_eq!(&loaded, &written);
        prop_assert_eq!(loaded.len(), shards.len());
        prop_assert_eq!(loaded.total_trajs(), store.len());

        let owned = loaded.open_owned().unwrap();
        for (open, shard) in owned.iter().zip(&shards) {
            prop_assert_eq!(&open.store, &shard.store);
            prop_assert_eq!(&open.global_ids, &shard.global_ids);
            prop_assert!(open.kept.is_none());
        }
        let mapped = loaded.open_mapped().unwrap();
        for (open, shard) in mapped.iter().zip(&shards) {
            prop_assert_eq!(open.store.xs(), shard.store.xs());
            prop_assert_eq!(open.store.ys(), shard.store.ys());
            prop_assert_eq!(open.store.ts(), shard.store.ts());
            prop_assert_eq!(open.store.offsets(), shard.store.offsets());
        }
        prop_assert_eq!(loaded.unify().unwrap(), store);
        std::fs::remove_dir_all(&dir).ok();
    }
}
