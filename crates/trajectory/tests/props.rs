//! Property-based tests for the trajectory substrate.

use proptest::prelude::*;
use trajectory::{
    error::ErrorMeasure, geom, Cube, Point, Simplification, Trajectory, TrajectoryDb,
};

/// Strategy: a valid trajectory of 2..=40 points with strictly increasing
/// times and bounded coordinates.
fn arb_trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((-1e4..1e4f64, -1e4..1e4f64, 0.1..50.0f64), 2..40).prop_map(|steps| {
        let mut t = 0.0;
        let pts = steps
            .into_iter()
            .map(|(x, y, dt)| {
                t += dt;
                Point::new(x, y, t)
            })
            .collect();
        Trajectory::new(pts).expect("constructed ordered")
    })
}

/// Strategy: sorted kept-index list for a trajectory of length `n`,
/// always containing 0 and n-1.
fn arb_kept(n: usize) -> BoxedStrategy<Vec<u32>> {
    if n <= 2 {
        return Just((0..n as u32).collect()).boxed();
    }
    prop::collection::btree_set(1..n as u32 - 1, 0..=n - 2)
        .prop_map(move |interior| {
            let mut kept: Vec<u32> = vec![0];
            kept.extend(interior);
            kept.push(n as u32 - 1);
            kept.dedup();
            kept
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn errors_are_nonnegative_and_finite(traj in arb_trajectory()) {
        let n = traj.len();
        for m in ErrorMeasure::ALL {
            let e = m.segment_error(&traj, 0, n - 1);
            prop_assert!(e >= 0.0 && e.is_finite(), "{m}: {e}");
        }
    }

    #[test]
    fn full_keep_has_zero_error(traj in arb_trajectory()) {
        let kept: Vec<u32> = (0..traj.len() as u32).collect();
        for m in ErrorMeasure::ALL {
            prop_assert!(m.trajectory_error(&traj, &kept) < 1e-9, "{m}");
        }
    }

    #[test]
    fn ped_never_exceeds_sed(traj in arb_trajectory()) {
        let n = traj.len();
        for i in 1..n - 1 {
            let ped = ErrorMeasure::Ped.point_error(&traj, 0, n - 1, i);
            let sed = ErrorMeasure::Sed.point_error(&traj, 0, n - 1, i);
            prop_assert!(ped <= sed + 1e-9, "PED {ped} > SED {sed}");
        }
    }

    #[test]
    fn dad_bounded_by_pi(traj in arb_trajectory()) {
        let n = traj.len();
        let e = ErrorMeasure::Dad.segment_error(&traj, 0, n - 1);
        prop_assert!(e <= std::f64::consts::PI + 1e-9);
    }

    #[test]
    fn trajectory_error_covers_every_point(
        (traj, kept) in arb_trajectory().prop_flat_map(|t| {
            let n = t.len();
            (Just(t), arb_kept(n))
        })
    ) {
        // The Eq.2 error must upper-bound the SED of every dropped point
        // w.r.t. its own anchor (Eq.1 takes the max over exactly those).
        let worst = ErrorMeasure::Sed.trajectory_error(&traj, &kept);
        let db = TrajectoryDb::new(vec![traj.clone()]);
        let simp = Simplification::from_kept(&db, vec![kept.clone()]);
        for i in 0..traj.len() as u32 {
            if simp.contains(0, i) {
                continue;
            }
            let (s, e) = simp.anchor(0, i);
            let err = ErrorMeasure::Sed.point_error(&traj, s as usize, e as usize, i as usize);
            prop_assert!(err <= worst + 1e-9);
        }
    }

    #[test]
    fn simplification_insert_remove_roundtrip(
        (traj, idx) in arb_trajectory().prop_flat_map(|t| {
            let n = t.len() as u32;
            (Just(t), 0..n)
        })
    ) {
        let db = TrajectoryDb::new(vec![traj]);
        let mut s = Simplification::most_simplified(&db);
        let before = s.total_points();
        let inserted = s.insert(0, idx);
        let endpoint = idx == 0 || idx as usize == db.get(0).len() - 1;
        prop_assert_eq!(inserted, !endpoint);
        if inserted {
            prop_assert_eq!(s.total_points(), before + 1);
            prop_assert!(s.remove(0, idx));
            prop_assert_eq!(s.total_points(), before);
        }
    }

    #[test]
    fn anchor_always_brackets(
        (traj, kept) in arb_trajectory().prop_flat_map(|t| {
            let n = t.len();
            (Just(t), arb_kept(n))
        })
    ) {
        let db = TrajectoryDb::new(vec![traj]);
        let simp = Simplification::from_kept(&db, vec![kept]);
        for i in 0..db.get(0).len() as u32 {
            let (s, e) = simp.anchor(0, i);
            prop_assert!(s <= i && i <= e);
            if s != e {
                prop_assert!(simp.contains(0, s) && simp.contains(0, e));
            }
        }
    }

    #[test]
    fn position_at_stays_in_bounding_cube(
        (traj, frac) in (arb_trajectory(), 0.0..1.0f64)
    ) {
        let (t0, t1) = traj.time_span();
        let t = t0 + frac * (t1 - t0);
        let p = traj.position_at(t);
        let c = traj.bounding_cube();
        prop_assert!(p.x >= c.x_min - 1e-9 && p.x <= c.x_max + 1e-9);
        prop_assert!(p.y >= c.y_min - 1e-9 && p.y <= c.y_max + 1e-9);
    }

    #[test]
    fn octants_cover_contained_points(
        (x, y, t) in (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64)
    ) {
        let c = Cube::new(0.0, 1.0, 0.0, 1.0, 0.0, 1.0);
        let p = Point::new(x, y, t);
        let k = c.octant_of(&p);
        prop_assert!(c.octants()[k].contains(&p));
    }

    #[test]
    fn angle_diff_triangle_inequality(
        (a, b, c) in (-10.0..10.0f64, -10.0..10.0f64, -10.0..10.0f64)
    ) {
        let ab = geom::angle_diff(a, b);
        let bc = geom::angle_diff(b, c);
        let ac = geom::angle_diff(a, c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn store_round_trips_any_database(
        trajs in prop::collection::vec(arb_trajectory(), 1..8)
    ) {
        // PointStore ↔ Vec<Trajectory> is lossless: every coordinate of
        // every point survives the SoA conversion bit-exactly.
        let db = TrajectoryDb::new(trajs);
        let store = db.to_store();
        prop_assert_eq!(store.len(), db.len());
        prop_assert_eq!(store.total_points(), db.total_points());
        let back = store.to_db();
        for (id, t) in db.iter() {
            prop_assert_eq!(back.get(id).points(), t.points());
            let v = store.view(id);
            for i in 0..t.len() {
                prop_assert_eq!(v.point(i), *t.point(i));
            }
        }
        prop_assert_eq!(back.to_store(), store, "second conversion is stable");
    }

    #[test]
    fn views_answer_reads_identically_to_trajectories(
        (trajs, f0, f1) in (prop::collection::vec(arb_trajectory(), 1..5), 0.0..1.0f64, 0.0..1.0f64)
    ) {
        let db = TrajectoryDb::new(trajs);
        let store = db.to_store();
        for (id, t) in db.iter() {
            let v = store.view(id);
            let (t0, t1) = t.time_span();
            prop_assert_eq!(v.time_span(), (t0, t1));
            let (lo, hi) = if f0 <= f1 { (f0, f1) } else { (f1, f0) };
            let (ws, we) = (t0 + lo * (t1 - t0), t0 + hi * (t1 - t0));
            prop_assert_eq!(v.window_indices(ws, we), t.window_indices(ws, we));
            prop_assert_eq!(v.bounding_cube(), t.bounding_cube());
        }
    }

    #[test]
    fn gather_equals_materialize(
        (trajs, step) in (prop::collection::vec(arb_trajectory(), 1..6), 2usize..7)
    ) {
        let db = TrajectoryDb::new(trajs);
        let store = db.to_store();
        let kepts: Vec<Vec<u32>> = db
            .trajectories()
            .iter()
            .map(|t| {
                let n = t.len() as u32;
                let mut ks: Vec<u32> = (0..n).step_by(step).collect();
                if *ks.last().unwrap() != n - 1 {
                    ks.push(n - 1);
                }
                ks
            })
            .collect();
        let simp = Simplification::from_kept(&db, kepts);
        let gathered = simp.materialize_store(&store);
        let materialized = simp.materialize(&db);
        prop_assert_eq!(gathered, materialized.to_store(),
            "column gather must equal AoS materialize");
        // The bitmap view agrees with per-trajectory membership.
        let bitmap = simp.to_bitmap(&store);
        prop_assert_eq!(bitmap.count(), simp.total_points());
        for (id, t) in db.iter() {
            for idx in 0..t.len() as u32 {
                prop_assert_eq!(
                    bitmap.contains(store.global_id(id, idx)),
                    simp.contains(id, idx)
                );
            }
        }
    }

    #[test]
    fn csv_round_trip_preserves_structure(traj in arb_trajectory()) {
        let db = TrajectoryDb::new(vec![traj]);
        let mut buf = Vec::new();
        trajectory::io::write_csv(&db, &mut buf).unwrap();
        let back = trajectory::io::read_csv(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), db.len());
        prop_assert_eq!(back.total_points(), db.total_points());
    }
}
