//! Property-based equality tests for the vectorized kernels: on every
//! input — including NaN lanes, empty slices, and lengths straddling the
//! lane width — the dispatching kernel must agree with the scalar
//! reference implementation it is defined against. Boolean and
//! selection kernels must agree *exactly*; floating-point accumulations
//! may differ only by reassociation error (lane accumulators summed
//! horizontally), bounded by a tight relative tolerance.
//!
//! The same file runs under three dispatch configurations: the default
//! build (AVX2/NEON when the CPU has it), `QDTS_FORCE_SCALAR=1` (CI's
//! scalar-only job), and `--no-default-features` (the `simd` feature
//! compiled out) — so the equality properties pin all backends to one
//! semantics, not just the one this machine happens to select.

use proptest::prelude::*;
use trajectory::bbox::Cube;
use trajectory::simd;

/// Strategy: a coordinate value, occasionally NaN so the "NaN is never
/// contained / NaN is ignored by bounds" contract is exercised.
fn arb_coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        9 => -1e4..1e4f64,
        1 => Just(f64::NAN),
    ]
}

/// Strategy: three equal-length coordinate columns (0..130 points, so
/// lengths cross the 4-lane blocks and the 64-bit mask words).
fn arb_columns() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>)> {
    (0usize..130).prop_flat_map(|n| {
        (
            prop::collection::vec(arb_coord(), n),
            prop::collection::vec(arb_coord(), n),
            prop::collection::vec(arb_coord(), n),
        )
    })
}

/// Strategy: a cube small enough that containment is non-trivially
/// selective over `arb_coord`'s range.
fn arb_cube() -> impl Strategy<Value = Cube> {
    (
        -1e4..1e4f64,
        0.0..5e3f64,
        -1e4..1e4f64,
        0.0..5e3f64,
        -1e4..1e4f64,
        0.0..5e3f64,
    )
        .prop_map(|(x0, dx, y0, dy, t0, dt)| Cube {
            x_min: x0,
            x_max: x0 + dx,
            y_min: y0,
            y_max: y0 + dy,
            t_min: t0,
            t_max: t0 + dt,
        })
}

/// Strategy: a bitmap (as raw words) covering bits `[0, base + n)`, plus
/// the base offset — mirroring a trajectory's run inside a store-wide
/// kept bitmap. Bias toward all-zero and all-one words so the fast
/// skip/full-span paths are hit, not just the bit-by-bit path.
fn arb_mask(n: usize) -> impl Strategy<Value = (Vec<u64>, usize)> {
    (0usize..150).prop_flat_map(move |base| {
        let words = (base + n).div_ceil(64).max(1);
        (
            prop::collection::vec(
                prop_oneof![2 => Just(0u64), 2 => Just(!0u64), 3 => any::<u64>()],
                words,
            ),
            Just(base),
        )
    })
}

/// Reference for the masked kernels: bit `base + i` gates index `i`.
fn bit_set(words: &[u64], bit: usize) -> bool {
    words[bit / 64] >> (bit % 64) & 1 == 1
}

/// Relative-tolerance comparison for lane-reassociated float sums.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_in_cube_matches_scalar_exactly(
        (xs, ys, ts) in arb_columns(),
        cube in arb_cube(),
    ) {
        prop_assert_eq!(
            simd::any_in_cube(&xs, &ys, &ts, &cube),
            simd::scalar::any_in_cube(&xs, &ys, &ts, &cube)
        );
    }

    #[test]
    fn min_max_matches_scalar_exactly((xs, _, _) in arb_columns()) {
        // min/max are exact operations — no tolerance even across lanes,
        // and NaNs must be ignored identically.
        prop_assert_eq!(simd::min_max(&xs), simd::scalar::min_max(&xs));
    }

    #[test]
    fn min_max_brackets_every_finite_value((xs, _, _) in arb_columns()) {
        let (lo, hi) = simd::min_max(&xs);
        for &v in xs.iter().filter(|v| !v.is_nan()) {
            prop_assert!(lo <= v && v <= hi);
        }
    }

    #[test]
    fn distance_kernels_match_scalar_within_reassociation(
        (a, b, c) in arb_columns(),
    ) {
        // NaN-free inputs here: tolerance comparison is meaningless on NaN,
        // and the containment tests already pin NaN behaviour.
        let clean = |v: &[f64]| -> Vec<f64> {
            v.iter().map(|x| if x.is_nan() { 0.5 } else { *x }).collect()
        };
        let (a, b, c) = (clean(&a), clean(&b), clean(&c));
        prop_assert!(close(
            simd::squared_distance(&a, &b),
            simd::scalar::squared_distance(&a, &b)
        ));
        prop_assert!(close(simd::sum_squares(&a), simd::scalar::sum_squares(&a)));
        prop_assert!(close(
            simd::squared_distance_2d(&a, &b, &c, &a),
            simd::scalar::squared_distance(&a, &c)
                + simd::scalar::squared_distance(&b, &a)
        ));
    }

    #[test]
    fn masked_containment_matches_bit_by_bit_reference(
        ((xs, ys, ts), (words, base)) in arb_columns()
            .prop_flat_map(|cols| {
                let n = cols.0.len();
                (Just(cols), arb_mask(n))
            }),
        cube in arb_cube(),
    ) {
        let n = xs.len();
        let expected = (0..n).any(|i| {
            bit_set(&words, base + i) && cube.contains_xyz(xs[i], ys[i], ts[i])
        });
        prop_assert_eq!(
            simd::any_masked_in_cube(&xs, &ys, &ts, &words, base, &cube),
            expected
        );
    }

    #[test]
    fn gather_matches_index_order_reference(
        ((src, _, _), (words, base)) in arb_columns()
            .prop_flat_map(|cols| {
                let n = cols.0.len();
                (Just(cols), arb_mask(n))
            }),
    ) {
        let expected: Vec<f64> = (0..src.len())
            .filter(|&i| bit_set(&words, base + i))
            .map(|i| src[i])
            .collect();
        let mut out = vec![-1.0]; // pre-existing content must survive
        let appended = simd::gather_masked(&src, &words, base, &mut out);
        prop_assert_eq!(appended, expected.len());
        prop_assert_eq!(out[0].to_bits(), (-1.0f64).to_bits());
        // Bitwise comparison so gathered NaNs count as equal.
        let got: Vec<u64> = out[1..].iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = expected.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn masked_containment_with_all_ones_equals_unmasked(
        (xs, ys, ts) in arb_columns(),
        cube in arb_cube(),
        base in 0usize..100,
    ) {
        let words = vec![!0u64; (base + xs.len()).div_ceil(64).max(1)];
        prop_assert_eq!(
            simd::any_masked_in_cube(&xs, &ys, &ts, &words, base, &cube),
            simd::any_in_cube(&xs, &ys, &ts, &cube)
        );
    }

    #[test]
    fn masked_containment_with_all_zeros_is_false(
        (xs, ys, ts) in arb_columns(),
        cube in arb_cube(),
        base in 0usize..100,
    ) {
        let words = vec![0u64; (base + xs.len()).div_ceil(64).max(1)];
        prop_assert!(!simd::any_masked_in_cube(&xs, &ys, &ts, &words, base, &cube));
    }
}

/// Forcing scalar dispatch at runtime must flip `simd_active()` off and
/// make every kernel bit-identical to the scalar reference — this is the
/// switch CI's scalar-only job and the benchmarks rely on. Kept outside
/// `proptest!` and run on fixed vectors because it mutates global
/// dispatch state (concurrent equality properties stay valid under
/// either dispatch, since both sides of their assertions are
/// dispatch-agnostic or tolerance-compared).
#[test]
fn force_scalar_pins_dispatch_to_the_reference() {
    let xs: Vec<f64> = (0..257).map(|i| (i as f64).sin() * 1e3).collect();
    let ys: Vec<f64> = (0..257).map(|i| (i as f64).cos() * 1e3).collect();
    let ts: Vec<f64> = (0..257).map(|i| i as f64).collect();
    let cube = Cube {
        x_min: -500.0,
        x_max: 500.0,
        y_min: -500.0,
        y_max: 500.0,
        t_min: 0.0,
        t_max: 300.0,
    };
    simd::set_force_scalar(true);
    assert!(!simd::simd_active());
    assert_eq!(simd::active_backend(), "scalar");
    let forced = (
        simd::any_in_cube(&xs, &ys, &ts, &cube),
        simd::min_max(&xs),
        simd::squared_distance(&xs, &ys).to_bits(),
        simd::sum_squares(&ts).to_bits(),
    );
    simd::set_force_scalar(false);
    assert_eq!(forced.0, simd::scalar::any_in_cube(&xs, &ys, &ts, &cube));
    assert_eq!(forced.1, simd::scalar::min_max(&xs));
    assert_eq!(forced.2, simd::scalar::squared_distance(&xs, &ys).to_bits());
    assert_eq!(forced.3, simd::scalar::sum_squares(&ts).to_bits());
}
