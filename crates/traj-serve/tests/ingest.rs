//! Integration tests for wire-format ingestion: a live server accepts
//! `Ingest` frames concurrently with queries, acks only after the WAL
//! sync, serves the new trajectories immediately and byte-identically
//! to in-process execution, survives a server restart, and a server
//! fronting an immutable snapshot rejects writes with a typed error.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use traj_query::{
    DbOptions, Dissimilarity, GenerationalDb, KnnQuery, Query, QueryBatch, QueryExecutor,
    SimilarityQuery, SimpFactory, TrajDb,
};
use traj_serve::{Client, ServeOptions, Server, WireError, ERR_READ_ONLY};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::snapshot::write_snapshot;
use trajectory::{KeepAll, Trajectory, TrajectoryDb};

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("qdts_ingest_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn keep_all() -> SimpFactory {
    Box::new(|| Box::new(KeepAll))
}

fn dataset(seed: u64, trajs: usize) -> TrajectoryDb {
    generate(
        &DatasetSpec::tdrive(Scale::Smoke).with_trajectories(trajs),
        seed,
    )
}

/// A batch exercising every query variant against `db`'s bounds.
fn mixed_batch(db: &TrajectoryDb) -> QueryBatch {
    let bounds = db.bounding_cube();
    let mid_t = (bounds.t_min + bounds.t_max) / 2.0;
    let cube = trajectory::Cube::new(
        bounds.x_min,
        (bounds.x_min + bounds.x_max) / 2.0,
        bounds.y_min,
        (bounds.y_min + bounds.y_max) / 2.0,
        bounds.t_min,
        mid_t,
    );
    let probe = db.get(0).clone();
    QueryBatch::from_queries(vec![
        Query::Range(cube),
        Query::Knn(KnnQuery {
            query: probe.clone(),
            ts: bounds.t_min,
            te: mid_t,
            k: 3,
            measure: Dissimilarity::Edr { eps: 2_000.0 },
        }),
        Query::Similarity(SimilarityQuery {
            query: probe,
            ts: bounds.t_min,
            te: mid_t,
            delta: 5_000.0,
            step: 600.0,
        }),
        Query::RangeKept(cube),
    ])
}

fn trajs_of(db: &TrajectoryDb) -> Vec<Trajectory> {
    db.iter().map(|(_, t)| t.clone()).collect()
}

#[test]
fn live_server_ingests_and_serves_immediately() {
    let base = dataset(3, 12);
    let extra = dataset(17, 5);
    let dir = unique_dir("serve");
    let db = Arc::new(
        GenerationalDb::create(&dir, &base.to_store(), DbOptions::new(), keep_all())
            .expect("create"),
    );
    let server = Server::start(Arc::clone(&db), "127.0.0.1:0", ServeOptions::batched())
        .expect("server start");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let new_trajs = trajs_of(&extra);
    let ack = client.ingest(&new_trajs).expect("ingest acked");
    assert_eq!(ack.accepted, new_trajs.len() as u32);
    assert_eq!(ack.rejected, 0);
    assert_eq!(ack.first_id, Some(base.len()));
    assert_eq!(ack.total_trajs, (base.len() + new_trajs.len()) as u64);

    // The ack means queryable *now*: the wire answers match in-process
    // execution over the merged view, and the new ids are reachable.
    let combined: TrajectoryDb = trajs_of(&base).into_iter().chain(new_trajs).collect();
    let batch = mixed_batch(&combined);
    let over_wire = client.execute_batch(&batch).expect("batch over wire");
    let in_process = db.execute_batch(&batch);
    assert_eq!(over_wire, in_process);
    assert_eq!(db.len(), combined.len());

    let stats = server.stats();
    assert_eq!(stats.ingests, 1);
    assert_eq!(stats.ingested_trajs, extra.len() as u64);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingested_data_survives_a_server_restart() {
    let base = dataset(5, 8);
    let extra = dataset(23, 4);
    let dir = unique_dir("restart");
    let db = Arc::new(
        GenerationalDb::create(&dir, &base.to_store(), DbOptions::new(), keep_all())
            .expect("create"),
    );
    let server = Server::start(Arc::clone(&db), "127.0.0.1:0", ServeOptions::batched())
        .expect("server start");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ingest(&trajs_of(&extra)).expect("ingest acked");
    server.shutdown();
    drop(client);
    drop(db); // release the WAL file before reopening the directory

    // A fresh process opening the same directory replays the WAL and
    // serves everything the old server acked.
    let reopened = Arc::new(
        GenerationalDb::open(&dir, DbOptions::new(), keep_all()).expect("reopen after restart"),
    );
    assert_eq!(reopened.len(), base.len() + extra.len());
    let server = Server::start(
        Arc::clone(&reopened),
        "127.0.0.1:0",
        ServeOptions::batched(),
    )
    .expect("second server");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let combined: TrajectoryDb = trajs_of(&base)
        .into_iter()
        .chain(trajs_of(&extra))
        .collect();
    let batch = mixed_batch(&combined);
    assert_eq!(
        client.execute_batch(&batch).expect("batch after restart"),
        reopened.execute_batch(&batch)
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn static_server_rejects_ingest_with_a_typed_error() {
    let base = dataset(7, 6);
    let snap = unique_dir("static").with_extension("snap");
    write_snapshot(&base.to_store(), &snap).expect("write snapshot");
    let db = TrajDb::open(&snap, DbOptions::new()).expect("open snapshot");
    let server = Server::start(db, "127.0.0.1:0", ServeOptions::batched()).expect("server start");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let err = client
        .ingest(&trajs_of(&base))
        .expect_err("read-only must reject");
    match err {
        WireError::Remote { code, .. } => assert_eq!(code, ERR_READ_ONLY),
        other => panic!("expected a Remote error, got {other}"),
    }

    // The connection stays usable for reads after the typed rejection.
    let batch = mixed_batch(&base);
    let results = client.execute_batch(&batch).expect("reads still served");
    assert_eq!(results.len(), batch.len());
    server.shutdown();
    std::fs::remove_file(&snap).ok();
}

#[test]
fn concurrent_writers_and_readers_stay_consistent() {
    let base = dataset(11, 10);
    let dir = unique_dir("mixed");
    let db = Arc::new(
        GenerationalDb::create(&dir, &base.to_store(), DbOptions::new(), keep_all())
            .expect("create"),
    );
    let server = Server::start(Arc::clone(&db), "127.0.0.1:0", ServeOptions::batched())
        .expect("server start");
    let addr = server.local_addr();

    const WRITERS: usize = 3;
    const BATCHES: usize = 4;
    let barrier = Arc::new(Barrier::new(WRITERS + 1));
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connect");
            barrier.wait();
            let mut accepted = 0u64;
            for b in 0..BATCHES {
                let chunk = dataset(100 + (w * BATCHES + b) as u64, 2);
                let ack = client.ingest(&trajs_of(&chunk)).expect("ingest acked");
                accepted += u64::from(ack.accepted);
            }
            accepted
        }));
    }
    // One reader hammers range queries while the writers append; every
    // response must be well-formed and monotonically growing in ids.
    let reader = {
        let bounds = base.bounding_cube();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("reader connect");
            let mut seen_max = 0usize;
            for _ in 0..24 {
                let batch = QueryBatch::from_queries(vec![Query::Range(bounds)]);
                let results = client.execute_batch(&batch).expect("read during writes");
                if let traj_query::QueryResult::Range(ids) = &results[0] {
                    if let Some(max) = ids.iter().max() {
                        assert!(*max >= seen_max || seen_max == 0);
                        seen_max = *max;
                    }
                }
            }
        })
    };
    barrier.wait();
    let written: u64 = handles.into_iter().map(|h| h.join().expect("writer")).sum();
    reader.join().expect("reader");

    assert_eq!(written, (WRITERS * BATCHES * 2) as u64);
    assert_eq!(db.len(), base.len() + written as usize);
    // Everything acked is durable: reopen from disk and compare counts.
    server.shutdown();
    drop(db);
    let reopened =
        GenerationalDb::open(&dir, DbOptions::new(), keep_all()).expect("reopen after writes");
    assert_eq!(reopened.len(), base.len() + written as usize);
    std::fs::remove_dir_all(&dir).ok();
}
