//! Property-based tests for the wire format, mirroring the snapshot
//! corruption suites: every `Query`/`QueryResult`/`QueryBatch` variant
//! round-trips exactly through a frame, and *any* single-bit flip,
//! truncation, or oversized length prefix is rejected with a typed
//! [`WireError`] — never a panic, never silently wrong data.

use proptest::prelude::*;
use traj_query::{
    Dissimilarity, KnnQuery, Query, QueryBatch, QueryResult, SimilarityQuery, T2vecEmbedder,
};
use traj_serve::wire::{
    decode_message, encode_message, IngestAck, Message, ShardInfo, ShardResult, WireError,
    MAX_PAYLOAD,
};
use trajectory::{Cube, Point, Trajectory};

fn arb_cube() -> impl Strategy<Value = Cube> {
    (
        -1e6..1e6f64,
        0.0..1e5f64,
        -1e6..1e6f64,
        0.0..1e5f64,
        0.0..1e9f64,
        0.0..1e6f64,
    )
        .prop_map(|(x, dx, y, dy, t, dt)| Cube::new(x, x + dx, y, y + dy, t, t + dt))
}

fn arb_trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((-1e5..1e5f64, -1e5..1e5f64, 0.001..60.0f64), 1..20).prop_map(|steps| {
        let mut t = 0.0;
        let pts = steps
            .into_iter()
            .map(|(x, y, dt)| {
                t += dt;
                Point::new(x, y, t)
            })
            .collect();
        Trajectory::new(pts).expect("generated trajectories are valid")
    })
}

fn arb_measure() -> impl Strategy<Value = Dissimilarity> {
    prop_oneof![
        (1.0..1e5f64).prop_map(|eps| Dissimilarity::Edr { eps }),
        (10.0..1e4f64, 1usize..256).prop_map(|(cell_size, dim)| {
            Dissimilarity::T2vec(T2vecEmbedder { cell_size, dim })
        }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    prop_oneof![
        arb_cube().prop_map(Query::Range),
        (
            arb_trajectory(),
            0.0..1e6f64,
            0.0..1e6f64,
            1usize..50,
            arb_measure()
        )
            .prop_map(|(query, ts, dte, k, measure)| {
                Query::Knn(KnnQuery {
                    query,
                    ts,
                    te: ts + dte,
                    k,
                    measure,
                })
            }),
        (
            arb_trajectory(),
            0.0..1e6f64,
            0.0..1e6f64,
            1.0..1e5f64,
            1.0..1e4f64
        )
            .prop_map(|(query, ts, dte, delta, step)| {
                Query::Similarity(SimilarityQuery {
                    query,
                    ts,
                    te: ts + dte,
                    delta,
                    step,
                })
            }),
        arb_cube().prop_map(Query::RangeKept),
    ]
}

fn arb_ids() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..1_000_000, 0..40)
}

fn arb_result() -> impl Strategy<Value = QueryResult> {
    prop_oneof![
        arb_ids().prop_map(QueryResult::Range),
        arb_ids().prop_map(QueryResult::Knn),
        arb_ids().prop_map(QueryResult::Similarity),
        prop_oneof![Just(None), arb_ids().prop_map(Some)].prop_map(QueryResult::RangeKept),
    ]
}

/// Scored kNN candidate lists as a shard produces them: finite,
/// non-negative-zero distances, strictly ascending in `(distance, id)`
/// (the decode-side invariant).
fn arb_candidates() -> impl Strategy<Value = Vec<(f64, usize)>> {
    prop::collection::vec((0.0..1e6f64, 0usize..1_000_000), 0..40).prop_map(|mut cands| {
        cands.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        cands.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        cands
    })
}

fn arb_shard_result() -> impl Strategy<Value = ShardResult> {
    prop_oneof![
        arb_ids().prop_map(ShardResult::Ids),
        prop_oneof![Just(None), arb_ids().prop_map(Some)].prop_map(ShardResult::Kept),
        arb_candidates().prop_map(ShardResult::Candidates),
    ]
}

fn arb_shard_info() -> impl Strategy<Value = ShardInfo> {
    (
        0u64..1 << 48,
        0u64..1 << 48,
        any::<bool>(),
        prop_oneof![Just(None), arb_cube().prop_map(Some)],
    )
        .prop_map(|(trajs, points, has_kept, bounds)| ShardInfo {
            trajs,
            points,
            has_kept,
            bounds,
        })
}

/// Ingest acks as a live server produces them: `first_id` present
/// exactly when something was accepted (the decode-side invariant).
fn arb_ingest_ack() -> impl Strategy<Value = IngestAck> {
    (
        0u32..10_000,
        0u32..10_000,
        0usize..1_000_000,
        0u64..1 << 48,
        0u64..1 << 48,
    )
        .prop_map(
            |(accepted, rejected, first, total_trajs, total_points)| IngestAck {
                accepted,
                rejected,
                first_id: (accepted > 0).then_some(first),
                total_trajs,
                total_points,
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        prop::collection::vec(arb_query(), 0..8)
            .prop_map(|qs| Message::Request(QueryBatch::from_queries(qs))),
        prop::collection::vec(arb_result(), 0..8).prop_map(Message::Response),
        (prop::collection::vec(32u8..127, 0..60), 0u16..100).prop_map(|(bytes, code)| {
            Message::Error {
                code,
                message: String::from_utf8(bytes).expect("printable ASCII"),
            }
        }),
        Just(Message::Hello),
        arb_shard_info().prop_map(Message::ShardInfo),
        (any::<u64>(), prop::collection::vec(arb_query(), 0..8)).prop_map(|(id, qs)| {
            Message::ShardRequest {
                id,
                batch: QueryBatch::from_queries(qs),
            }
        }),
        (
            any::<u64>(),
            prop::collection::vec(arb_shard_result(), 0..8)
        )
            .prop_map(|(id, results)| Message::ShardResponse { id, results }),
        prop::collection::vec(arb_trajectory(), 0..6).prop_map(Message::Ingest),
        arb_ingest_ack().prop_map(Message::IngestAck),
    ]
}

/// Structural equality over messages (Query intentionally has no Eq
/// impl beyond PartialEq; compare per variant).
fn assert_message_eq(a: &Message, b: &Message) -> Result<(), TestCaseError> {
    match (a, b) {
        (Message::Request(x), Message::Request(y)) => {
            prop_assert_eq!(x.queries(), y.queries());
        }
        (Message::Response(x), Message::Response(y)) => {
            prop_assert_eq!(x, y);
        }
        (
            Message::Error {
                code: ca,
                message: ma,
            },
            Message::Error {
                code: cb,
                message: mb,
            },
        ) => {
            prop_assert_eq!(ca, cb);
            prop_assert_eq!(ma, mb);
        }
        (Message::Hello, Message::Hello) => {}
        (Message::ShardInfo(x), Message::ShardInfo(y)) => {
            prop_assert_eq!(x, y);
        }
        (
            Message::ShardRequest { id: ia, batch: x },
            Message::ShardRequest { id: ib, batch: y },
        ) => {
            prop_assert_eq!(ia, ib);
            prop_assert_eq!(x.queries(), y.queries());
        }
        (
            Message::ShardResponse { id: ia, results: x },
            Message::ShardResponse { id: ib, results: y },
        ) => {
            prop_assert_eq!(ia, ib);
            prop_assert_eq!(x, y);
        }
        (Message::Ingest(x), Message::Ingest(y)) => {
            prop_assert_eq!(x, y);
        }
        (Message::IngestAck(x), Message::IngestAck(y)) => {
            prop_assert_eq!(x, y);
        }
        _ => prop_assert!(false, "message kind changed in round trip"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_message_round_trips_exactly(msg in arb_message()) {
        let frame = encode_message(&msg);
        let decoded = decode_message(&frame).expect("own encoding decodes");
        assert_message_eq(&msg, &decoded)?;
    }

    #[test]
    fn every_single_bit_flip_is_rejected(
        (msg, pos, bit) in (arb_message(), 0.0..1.0f64, 0u8..8)
    ) {
        let mut frame = encode_message(&msg);
        let idx = ((frame.len() - 1) as f64 * pos) as usize;
        frame[idx] ^= 1 << bit;
        let err = decode_message(&frame);
        prop_assert!(err.is_err(), "bit {bit} flip at {idx} accepted");
        // Typed, never an Io error from a buffer decode.
        prop_assert!(
            !matches!(err.unwrap_err(), WireError::Io(_)),
            "corruption surfaced as Io"
        );
    }

    #[test]
    fn every_truncation_is_rejected(
        (msg, frac) in (arb_message(), 0.0..1.0f64)
    ) {
        let frame = encode_message(&msg);
        let cut = ((frame.len() - 1) as f64 * frac) as usize;
        let err = decode_message(&frame[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, WireError::Truncated { .. }),
            "cut at {cut}/{} gave {err}",
            frame.len()
        );
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocation(
        (msg, extra) in (arb_message(), 1u64..u32::MAX as u64)
    ) {
        let mut frame = encode_message(&msg);
        let huge = (MAX_PAYLOAD as u64 + extra).min(u32::MAX as u64) as u32;
        frame[8..12].copy_from_slice(&huge.to_le_bytes());
        prop_assert!(matches!(
            decode_message(&frame),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn streaming_and_buffer_decodes_agree(msg in arb_message()) {
        // read_message over an in-memory stream sees the same message
        // decode_message sees over the buffer.
        let frame = encode_message(&msg);
        let mut cursor = std::io::Cursor::new(frame.clone());
        let streamed = traj_serve::wire::read_message(&mut cursor)
            .expect("stream decode")
            .expect("not EOF");
        let buffered = decode_message(&frame).expect("buffer decode");
        assert_message_eq(&streamed, &buffered)?;
        // And the stream is left exactly at the frame boundary.
        prop_assert_eq!(cursor.position() as usize, frame.len());
        prop_assert!(traj_serve::wire::read_message(&mut cursor).expect("clean EOF").is_none());
    }
}

#[test]
fn version_and_kind_corruption_give_specific_errors() {
    let frame = encode_message(&Message::Request(QueryBatch::new()));

    let mut v = frame.clone();
    v[4] = 2;
    assert!(matches!(
        decode_message(&v),
        Err(WireError::UnsupportedVersion {
            found: 2,
            supported: 1
        })
    ));

    let mut k = frame.clone();
    k[6] = 10;
    assert!(matches!(
        decode_message(&k),
        Err(WireError::UnknownKind { kind: 10 })
    ));

    let mut m = frame.clone();
    m[0] = b'X';
    assert!(matches!(
        decode_message(&m),
        Err(WireError::BadMagic { .. })
    ));

    let mut r = frame;
    r[7] = 1;
    assert!(matches!(
        decode_message(&r),
        Err(WireError::Malformed { .. })
    ));
}
