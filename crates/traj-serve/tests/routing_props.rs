//! Property test for bound-pruned routing: for random probe cubes and
//! time windows — inside, straddling, and fully outside the data's
//! bounding cube — a coordinator fanning out over in-process shard
//! servers answers byte-identically to the full single-process
//! database, across every partitioner × index backend combination.
//! Pruning is an invisible optimization: whichever shards it routes
//! away from, the merged answer (and its wire encoding) never changes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use traj_query::{
    BackendKind, DbOptions, Dissimilarity, KnnQuery, Query, QueryBatch, QueryExecutor,
    SimilarityQuery, TrajDb,
};
use traj_serve::wire::{encode_message, Message};
use traj_serve::{
    Coordinator, CoordinatorOptions, Placement, ResponseStatus, ServeOptions, Server,
};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::shard::{partition, PartitionStrategy, ShardSet};
use trajectory::{Cube, KeptBitmap, TrajectoryDb};

/// Writes a plain shard directory with keep-every-other-point bitmaps.
fn write_shard_dir(db: &TrajectoryDb, strategy: &PartitionStrategy) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let store = db.to_store();
    let shards = partition(&store, strategy);
    let kept: Vec<KeptBitmap> = shards
        .iter()
        .map(|sh| {
            let mut bitmap = KeptBitmap::zeros(sh.store.total_points());
            for p in (0..sh.store.total_points()).step_by(2) {
                bitmap.insert(p as u32);
            }
            bitmap
        })
        .collect();
    let parent = std::env::temp_dir().join("qdts_routing_props");
    std::fs::create_dir_all(&parent).expect("temp dir");
    let dir = parent.join(format!(
        "shards_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    ShardSet::write_with(&dir, &shards, &kept).expect("write shards");
    dir
}

/// One partitioner × backend combination: a coordinator over leaked
/// in-process shard servers, plus the full-directory ground truth.
struct Combo {
    label: String,
    truth: TrajDb,
    coordinator: Coordinator,
}

static FIXTURE: OnceLock<(TrajectoryDb, Vec<Combo>)> = OnceLock::new();

fn fixture() -> &'static (TrajectoryDb, Vec<Combo>) {
    FIXTURE.get_or_init(|| {
        let db = generate(&DatasetSpec::tdrive(Scale::Smoke).with_trajectories(24), 3);
        let partitioners: [(&str, PartitionStrategy); 3] = [
            ("grid 2x2", PartitionStrategy::Grid { nx: 2, ny: 2 }),
            ("time 3", PartitionStrategy::Time { parts: 3 }),
            ("hash 3", PartitionStrategy::Hash { parts: 3 }),
        ];
        let backends: [(&str, BackendKind); 3] = [
            ("octree", BackendKind::Octree),
            ("kd", BackendKind::MedianKd),
            ("scan", BackendKind::Scan),
        ];
        let opts = CoordinatorOptions {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(10),
            retries: 1,
            backoff: Duration::from_millis(10),
            ..CoordinatorOptions::default()
        };
        let mut combos = Vec::new();
        for (part_label, strategy) in &partitioners {
            let dir = write_shard_dir(&db, strategy);
            for (backend_label, backend) in backends {
                let mut set = ShardSet::load(&dir).expect("load manifest");
                let mut addrs = Vec::new();
                for e in set.entries() {
                    let shard_db =
                        TrajDb::open(dir.join(&e.file), DbOptions::new().backend(backend))
                            .expect("open shard");
                    let server = Server::start(shard_db, "127.0.0.1:0", ServeOptions::batched())
                        .expect("start shard server");
                    addrs.push(server.local_addr().to_string());
                    // The servers must outlive every proptest case.
                    std::mem::forget(server);
                }
                set.set_addrs(&addrs).expect("assign addrs");
                let placement = Placement::from_manifest(&set).expect("placement");
                let coordinator = Coordinator::connect(placement, opts).expect("connect");
                assert!(
                    coordinator.shard_bounds().iter().all(Option::is_some),
                    "manifest bounds must reach the routing table"
                );
                combos.push(Combo {
                    label: format!("partition `{part_label}`, backend `{backend_label}`"),
                    truth: TrajDb::open(&dir, DbOptions::new().backend(backend))
                        .expect("open shard dir in-process"),
                    coordinator,
                });
            }
        }
        (db, combos)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pruned_routing_answers_like_the_full_database(
        (kind, fr, probe, k) in (
            0u8..4,
            (
                -0.15..1.15f64,
                -0.15..1.15f64,
                -0.15..1.15f64,
                -0.15..1.15f64,
                -0.15..1.15f64,
                -0.15..1.15f64,
            ),
            0usize..1024,
            1usize..6,
        )
    ) {
        let (db, combos) = fixture();
        let b = db.bounding_cube();
        let lerp = |lo: f64, hi: f64, f: f64| lo + (hi - lo) * f;
        let axis = |lo: f64, hi: f64, f0: f64, f1: f64| {
            let (a, z) = (lerp(lo, hi, f0), lerp(lo, hi, f1));
            if a <= z { (a, z) } else { (z, a) }
        };
        let (x0, x1) = axis(b.x_min, b.x_max, fr.0, fr.1);
        let (y0, y1) = axis(b.y_min, b.y_max, fr.2, fr.3);
        let (t0, t1) = axis(b.t_min, b.t_max, fr.4, fr.5);
        let cube = Cube::new(x0, x1, y0, y1, t0, t1);
        let probe_traj = db.get(probe % db.len()).clone();
        let query = match kind {
            0 => Query::Range(cube),
            1 => Query::RangeKept(cube),
            2 => Query::Similarity(SimilarityQuery {
                query: probe_traj,
                ts: t0,
                te: t1,
                delta: 5_000.0,
                step: 600.0,
            }),
            _ => Query::Knn(KnnQuery {
                query: probe_traj,
                ts: t0,
                te: t1,
                k,
                measure: Dissimilarity::Edr { eps: 2_000.0 },
            }),
        };
        let batch = QueryBatch::from_queries(vec![query]);
        for combo in combos {
            let expected = combo.truth.execute_batch(&batch);
            let resp = combo
                .coordinator
                .execute_batch(&batch)
                .expect("distributed batch");
            prop_assert_eq!(&resp.status, &ResponseStatus::Complete, "{}", combo.label);
            prop_assert_eq!(&resp.results, &expected, "{}: results diverge", combo.label);
            prop_assert_eq!(
                encode_message(&Message::Response(resp.results)),
                encode_message(&Message::Response(expected)),
                "{}: encodings diverge",
                combo.label
            );
        }
    }
}
